//! Strategies for collections, mirroring `proptest::collection`.

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A range of collection sizes, convertible from `usize` and
/// `Range<usize>`.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            min: exact,
            max: exact + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        assert!(range.start < range.end, "empty size range");
        SizeRange {
            min: range.start,
            max: range.end,
        }
    }
}

/// Returns a strategy generating `Vec`s whose length is drawn from `size`
/// and whose elements are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let span = (self.size.max - self.size.min) as u64;
        let len = self.size.min + (rng.next_u64() % span.max(1)) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
