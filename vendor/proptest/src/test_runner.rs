//! The case runner behind the [`proptest!`](crate::proptest) macro.

use std::fmt;

use crate::strategy::Strategy;

/// Configuration of a property test, mirroring
/// `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Maximum number of input rejections (`prop_assume!` failures) allowed
    /// across the whole run before giving up.
    pub max_global_rejects: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

impl Config {
    /// A default configuration overridden to run `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Config {
            cases,
            ..Config::default()
        }
    }
}

/// Why a single test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The input was rejected by `prop_assume!`; the case is retried with a
    /// fresh input.
    Reject(String),
    /// An assertion failed; the whole test fails.
    Fail(String),
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// Creates a rejection with the given message.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject(r) => write!(f, "input rejected: {r}"),
            TestCaseError::Fail(r) => write!(f, "{r}"),
        }
    }
}

/// The deterministic generator handed to strategies.
///
/// xoshiro256++ seeded from a fixed constant: property runs are fully
/// reproducible (upstream proptest persists failing seeds instead).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        let mut splitmix = move || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [splitmix(), splitmix(), splitmix(), splitmix()];
        TestRng { s }
    }

    /// Returns the next random `u64`.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Runs a property over many sampled inputs.
pub struct TestRunner {
    config: Config,
    rng: TestRng,
}

impl TestRunner {
    /// Creates a runner with the given configuration and the fixed seed.
    pub fn new(config: Config) -> Self {
        TestRunner {
            config,
            rng: TestRng::from_seed(0x4c32_5235_6f75_7465),
        }
    }

    /// Runs `test` on `config.cases` inputs sampled from `strategy`.
    ///
    /// Returns `Err` with a human-readable report on the first failing case
    /// (no shrinking) or when too many inputs are rejected.
    pub fn run<S, F>(&mut self, strategy: &S, test: F) -> Result<(), String>
    where
        S: Strategy,
        S::Value: Clone + fmt::Debug,
        F: Fn(S::Value) -> Result<(), TestCaseError>,
    {
        let mut passed = 0u32;
        let mut rejected = 0u32;
        while passed < self.config.cases {
            let input = strategy.sample(&mut self.rng);
            match test(input.clone()) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    if rejected > self.config.max_global_rejects {
                        return Err(format!(
                            "too many global rejects ({rejected}) after {passed} passed cases"
                        ));
                    }
                }
                Err(TestCaseError::Fail(reason)) => {
                    return Err(format!(
                        "property failed after {passed} passed cases: {reason}\ninput: {input:#?}\n\
                         (minimal-counterexample shrinking is not implemented in the vendored stand-in)"
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn failing_property_reports_input() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(16));
        let result = runner.run(&(0u32..100), |n| {
            if n >= 50 {
                return Err(TestCaseError::fail("n too large"));
            }
            Ok(())
        });
        assert!(result.is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_samples_within_range(x in 0usize..10, pair in (0.0f64..1.0, 5u8..6)) {
            prop_assert!(x < 10);
            prop_assert!((0.0..1.0).contains(&pair.0));
            prop_assert_eq!(pair.1, 5);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..4) {
            prop_assume!(x != 3);
            prop_assert!(x < 3);
        }
    }

    proptest! {
        #[test]
        fn vec_strategy_respects_size(v in crate::collection::vec(0u8..4, 1..9)) {
            prop_assert!(!v.is_empty() && v.len() < 9);
            prop_assert!(v.iter().all(|&b| b < 4));
        }
    }
}
