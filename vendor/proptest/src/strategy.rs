//! Input-generation strategies: the [`Strategy`] trait plus range, tuple
//! and mapped strategies.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating random values of an associated type.
///
/// Unlike upstream proptest there is no value tree / shrinking: a strategy
/// simply samples fresh values.
pub trait Strategy {
    /// The type of values this strategy generates.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Returns a strategy generating `f(v)` for `v` sampled from `self`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy generating a constant value, mirroring `proptest::strategy::Just`.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (low, high) = (*self.start(), *self.end());
                assert!(low <= high, "cannot sample empty range");
                let span = (high as i128 - low as i128) as u128 + 1;
                low.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}
impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + rng.unit_f64() as $t * (self.end - self.start)
            }
        }
    )*};
}
impl_range_strategy_float!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
