//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing crate.
//!
//! Implements the API subset used by `tests/property_invariants.rs` (see
//! `vendor/README.md`): the [`proptest!`] macro, `prop_assert!`-style
//! assertion macros, the [`strategy::Strategy`] trait with `prop_map`,
//! range and tuple strategies, [`collection::vec`] and
//! [`test_runner::Config::with_cases`].
//!
//! Differences from upstream: random input generation only — failing cases
//! are **not shrunk** to minimal counterexamples, and the RNG seed is a
//! fixed constant (runs are fully deterministic).

#![warn(missing_docs)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The most commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// item expands to a `#[test]` function running the body over sampled
/// inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::Config::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; expands one test function at a
/// time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr); ) => {};
    (($config:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let strategy = ($($strat,)+);
            let mut runner = $crate::test_runner::TestRunner::new($config);
            let outcome = runner.run(&strategy, |($($arg,)+)| {
                $body
                Ok(())
            });
            if let Err(message) = outcome {
                panic!("{}", message);
            }
        }
        $crate::__proptest_items! { ($config); $($rest)* }
    };
}

/// Asserts a condition inside a property test, failing the current case
/// (instead of panicking) when it does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts two values compare equal inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}`\n  left: `{:?}`\n right: `{:?}`",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
}

/// Discards the current case (without failing) when an assumption about the
/// generated input does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}
