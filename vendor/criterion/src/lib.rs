//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmarking crate.
//!
//! Implements the API subset used by `crates/bench/benches/` (see
//! `vendor/README.md`): benchmark groups, `bench_with_input`/`bench_function`,
//! `Bencher::iter`, `BenchmarkId` and the `criterion_group!`/`criterion_main!`
//! macros. Measurement is a plain wall-clock mean/min/max over
//! `sample_size` timed runs after one warm-up run — no statistical analysis,
//! outlier detection, plots or saved baselines.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("== bench group: {name}");
        BenchmarkGroup {
            _parent: self,
            name,
            sample_size: 10,
        }
    }

    /// Runs a single free-standing benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, mut f: F) {
        let samples = self.sample_size;
        run_one(&id.into(), samples, &mut f);
    }
}

/// A group of benchmarks sharing a name prefix and sampling configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed runs per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f` against a borrowed `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, self.sample_size, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Benchmarks a no-input closure inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into());
        run_one(&label, self.sample_size, &mut f);
        self
    }

    /// Finishes the group (upstream writes reports here; the stand-in has
    /// already printed per-benchmark lines).
    pub fn finish(&mut self) {}
}

fn run_one(label: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    // Upstream criterion's `--test` mode (`cargo bench ... -- --test`): run
    // each routine exactly once to check it works, with no warm-up and no
    // timed samples.  Used by CI as a cheap bench smoke.
    if std::env::args().any(|a| a == "--test") {
        let mut once = Bencher {
            elapsed: Duration::ZERO,
        };
        f(&mut once);
        eprintln!("bench {label:<50} ok (--test mode, 1 run)");
        return;
    }

    // Warm-up run, untimed.
    let mut warmup = Bencher {
        elapsed: Duration::ZERO,
    };
    f(&mut warmup);

    let mut total = Duration::ZERO;
    let mut min = Duration::MAX;
    let mut max = Duration::ZERO;
    for _ in 0..samples {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        total += b.elapsed;
        min = min.min(b.elapsed);
        max = max.max(b.elapsed);
    }
    eprintln!(
        "bench {label:<50} mean {:>12.3?}  min {:>12.3?}  max {:>12.3?}  ({samples} samples)",
        total / samples as u32,
        min,
        max,
    );
}

/// Passed to benchmark closures; times the routine under test.
pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    /// Times one execution of `routine` (upstream runs many iterations and
    /// averages; the stand-in records a single timed call per sample).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        black_box(routine());
        self.elapsed += start.elapsed();
    }
}

/// Identifier of one benchmark within a group: a function name plus a
/// parameter rendering.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a displayed parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Declares a benchmark group function, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main` function, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("stub");
        let mut runs = 0usize;
        group
            .sample_size(3)
            .bench_with_input(BenchmarkId::new("count", 1), &5u64, |b, &n| {
                b.iter(|| (0..n).sum::<u64>());
                runs += 1;
            });
        group.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
    }
}
