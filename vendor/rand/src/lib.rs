//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! Implements the API subset used by the `l2r` workspace (see
//! `vendor/README.md` for the exact surface and the swap-back plan):
//! [`Rng`], [`RngCore`], [`SeedableRng`] and [`rngs::StdRng`].
//!
//! The only semantic difference from upstream `rand` 0.8 is the `StdRng`
//! algorithm: xoshiro256++ seeded through SplitMix64 instead of ChaCha12.
//! Streams are deterministic for a given seed but not bit-compatible with
//! upstream, so seeded test expectations must not assume upstream values.

#![warn(missing_docs)]

pub mod rngs;

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of random `u64`s.
pub trait RngCore {
    /// Returns the next random `u64` from the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32` from the stream.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be deterministically seeded.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (`f64`/`f32`: uniform in `[0, 1)`; integers: uniform over the full
    /// range; `bool`: fair coin).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range`, which may be half-open (`a..b`) or
    /// inclusive (`a..=b`).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types sampleable by [`Rng::gen`] from their standard distribution.
pub trait Standard: Sized {
    /// Draws one standard-distributed value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a uniform distribution over sub-ranges, usable with
/// [`Rng::gen_range`].
pub trait SampleUniform: Sized {
    /// Samples uniformly from `[low, high)`. `low < high` is guaranteed by
    /// the caller.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Samples uniformly from `[low, high]`. `low <= high` is guaranteed by
    /// the caller.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = (high as i128 - low as i128) as u128;
                low.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = (high as i128 - low as i128) as u128 + 1;
                low.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                low + <$t as Standard>::sample_standard(rng) * (high - low)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                // Good enough for a stand-in: the closed upper bound has
                // measure zero anyway.
                low + <$t as Standard>::sample_standard(rng) * (high - low)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        assert!(low <= high, "cannot sample empty range");
        T::sample_inclusive(rng, low, high)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn determinism() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_hit_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..5usize)] = true;
            let inc = rng.gen_range(0..=4usize);
            assert!(inc <= 4);
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits = {hits}");
    }
}
