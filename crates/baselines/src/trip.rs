//! **TRIP** — personalized travel times (the paper's reference \[27\]).
//!
//! The original TRIP models personalized travel times as ratios between a
//! driver's experienced travel time and the population average.  Without real
//! timestamps per edge we adapt the idea faithfully to the information
//! available in map-matched paths: for every driver and road type we measure
//! how much more (or less) the driver uses that road type compared to the
//! fastest paths for the same trips, and turn the difference into a
//! per-road-type travel-time multiplier.  Road types the driver favours get
//! multipliers below 1 (subjectively "faster"), avoided ones above 1.  Query
//! answering is a single-objective Dijkstra over the personalized weights —
//! which is why TRIP's running time matches Shortest/Fastest in Figure 12.

use std::collections::HashMap;

use l2r_road_network::{dijkstra, fastest_path, CostType, Path, RoadNetwork, RoadType, VertexId};
use l2r_trajectory::{DriverId, MatchedTrajectory};

use crate::BaselineRouter;

/// Per-driver, per-road-type travel-time multipliers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TripProfile {
    /// Multiplier per road type (index = `RoadType::index()`).
    pub multipliers: [f64; RoadType::COUNT],
    /// Number of trajectories the profile was learned from.
    pub support: usize,
}

impl Default for TripProfile {
    fn default() -> Self {
        TripProfile {
            multipliers: [1.0; RoadType::COUNT],
            support: 0,
        }
    }
}

/// The TRIP personalized router.
#[derive(Debug, Clone)]
pub struct Trip {
    profiles: HashMap<DriverId, TripProfile>,
    /// How strongly usage differences translate into multipliers.
    sensitivity: f64,
}

/// Travel-time share per road type of a path (sums to 1 for non-trivial
/// paths).
fn road_type_shares(net: &RoadNetwork, path: &Path) -> Option<[f64; RoadType::COUNT]> {
    let mut shares = [0.0f64; RoadType::COUNT];
    let mut total = 0.0;
    for eid in path.edge_ids(net).ok()? {
        let e = net.edge(eid);
        let tt = e.cost(CostType::TravelTime);
        shares[e.road_type.index()] += tt;
        total += tt;
    }
    if total <= 0.0 {
        return None;
    }
    for s in shares.iter_mut() {
        *s /= total;
    }
    Some(shares)
}

impl Trip {
    /// Learns per-driver road-type usage profiles from training trajectories.
    pub fn train(net: &RoadNetwork, trajectories: &[MatchedTrajectory]) -> Trip {
        Self::train_with_sensitivity(net, trajectories, 0.6)
    }

    /// [`Trip::train`] with an explicit sensitivity (how strongly usage
    /// differences bend the personalized weights).
    pub fn train_with_sensitivity(
        net: &RoadNetwork,
        trajectories: &[MatchedTrajectory],
        sensitivity: f64,
    ) -> Trip {
        let mut diffs: HashMap<DriverId, ([f64; RoadType::COUNT], usize)> = HashMap::new();
        for t in trajectories {
            let (s, d) = (t.source(), t.destination());
            if s == d {
                continue;
            }
            let Some(actual) = road_type_shares(net, &t.path) else {
                continue;
            };
            let Some(fast) = fastest_path(net, s, d).and_then(|p| road_type_shares(net, &p)) else {
                continue;
            };
            let entry = diffs.entry(t.driver).or_insert(([0.0; RoadType::COUNT], 0));
            for i in 0..RoadType::COUNT {
                entry.0[i] += actual[i] - fast[i];
            }
            entry.1 += 1;
        }
        let profiles = diffs
            .into_iter()
            .map(|(driver, (sums, count))| {
                let mut multipliers = [1.0f64; RoadType::COUNT];
                for i in 0..RoadType::COUNT {
                    let mean_diff = sums[i] / count.max(1) as f64;
                    // Favoured road types (positive diff) become subjectively
                    // faster; avoided ones slower.  Clamped to stay positive.
                    multipliers[i] = (1.0 - sensitivity * mean_diff).clamp(0.3, 3.0);
                }
                (
                    driver,
                    TripProfile {
                        multipliers,
                        support: count,
                    },
                )
            })
            .collect();
        Trip {
            profiles,
            sensitivity,
        }
    }

    /// The learned profile of a driver (neutral for unseen drivers).
    pub fn profile(&self, driver: DriverId) -> TripProfile {
        self.profiles.get(&driver).copied().unwrap_or_default()
    }

    /// Number of drivers with learned profiles.
    pub fn num_drivers(&self) -> usize {
        self.profiles.len()
    }

    /// The sensitivity used during training.
    pub fn sensitivity(&self) -> f64 {
        self.sensitivity
    }
}

impl BaselineRouter for Trip {
    fn name(&self) -> &'static str {
        "TRIP"
    }

    fn route(
        &self,
        net: &RoadNetwork,
        source: VertexId,
        destination: VertexId,
        driver: DriverId,
    ) -> Option<Path> {
        if source == destination {
            return Some(Path::single(source));
        }
        if source.idx() >= net.num_vertices() || destination.idx() >= net.num_vertices() {
            return None;
        }
        let profile = self.profile(driver);
        dijkstra(net, source, Some(destination), |e| {
            e.cost(CostType::TravelTime) * profile.multipliers[e.road_type.index()]
        })
        .path_to(destination)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use l2r_datagen::{
        generate_network, generate_workload, SyntheticNetworkConfig, WorkloadConfig,
    };

    #[test]
    fn untrained_trip_equals_fastest() {
        let syn = generate_network(&SyntheticNetworkConfig::tiny());
        let trip = Trip::train(&syn.net, &[]);
        let s = syn.districts[0].center;
        let d = syn.districts.last().unwrap().center;
        let trip_path = trip.route(&syn.net, s, d, DriverId(0)).unwrap();
        let fast = fastest_path(&syn.net, s, d).unwrap();
        assert_eq!(
            trip_path, fast,
            "neutral multipliers reproduce the fastest path"
        );
    }

    #[test]
    fn profiles_reflect_road_type_usage() {
        let syn = generate_network(&SyntheticNetworkConfig::tiny());
        let wl = generate_workload(&syn, &WorkloadConfig::tiny(150));
        let trip = Trip::train(&syn.net, &wl.trajectories);
        assert!(trip.num_drivers() > 0);
        for t in &wl.trajectories {
            let p = trip.profile(t.driver);
            for m in p.multipliers {
                assert!((0.3..=3.0).contains(&m));
            }
        }
    }

    #[test]
    fn routing_returns_valid_paths_for_test_queries() {
        let syn = generate_network(&SyntheticNetworkConfig::tiny());
        let wl = generate_workload(&syn, &WorkloadConfig::tiny(120));
        let (train, test) = wl.temporal_split(0.8);
        let trip = Trip::train(&syn.net, &train);
        for t in test.iter().take(15) {
            let p = trip
                .route(&syn.net, t.source(), t.destination(), t.driver)
                .expect("TRIP should find a path");
            assert!(p.validate(&syn.net).is_ok());
        }
    }

    #[test]
    fn invalid_queries_are_rejected() {
        let syn = generate_network(&SyntheticNetworkConfig::tiny());
        let trip = Trip::train(&syn.net, &[]);
        assert!(trip
            .route(&syn.net, VertexId(0), VertexId(10_000_000), DriverId(0))
            .is_none());
        let trivial = trip
            .route(&syn.net, VertexId(3), VertexId(3), DriverId(0))
            .unwrap();
        assert!(trivial.is_trivial());
    }
}
