//! # l2r-baselines
//!
//! The routing baselines the paper compares learn-to-route against
//! (Section VII-C / VII-D):
//!
//! * [`simple`] — **Shortest** and **Fastest** (plain Dijkstra on distance /
//!   travel time);
//! * [`dom`] — **Dom** \[26\], personalized multi-cost routing: per-driver
//!   weights over distance / travel time / fuel learned from the driver's
//!   trajectories, applied through an expensive skyline (Pareto) search at
//!   query time;
//! * [`trip`] — **TRIP** \[27\], personalized travel times: per-driver,
//!   per-road-type travel-time ratios learned from trajectories and applied
//!   as edge-weight multipliers;
//! * [`external`] — a stand-in for the Google Directions API used in
//!   Figures 13/14: an "online routing service" without access to local
//!   trajectories, returning sparse way-points.
//!
//! All baselines implement the common [`BaselineRouter`] trait so the
//! evaluation harness can treat them uniformly.

#![warn(missing_docs)]

pub mod dom;
pub mod external;
pub mod simple;
pub mod trip;

use l2r_road_network::{Path, RoadNetwork, VertexId};
use l2r_trajectory::DriverId;

pub use dom::Dom;
pub use external::{ExternalRouter, ExternalRouterConfig};
pub use simple::{FastestRouter, ShortestRouter};
pub use trip::Trip;

/// A routing baseline: produces a road-network path for a query, possibly
/// personalized to a driver.
pub trait BaselineRouter {
    /// Short display name used in reports ("Shortest", "Dom", …).
    fn name(&self) -> &'static str;

    /// Routes from `source` to `destination` for `driver` (non-personalized
    /// baselines ignore the driver).
    fn route(
        &self,
        net: &RoadNetwork,
        source: VertexId,
        destination: VertexId,
        driver: DriverId,
    ) -> Option<Path>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use l2r_datagen::{generate_network, SyntheticNetworkConfig};

    #[test]
    fn trait_objects_can_be_collected() {
        let routers: Vec<Box<dyn BaselineRouter>> =
            vec![Box::new(ShortestRouter), Box::new(FastestRouter)];
        let syn = generate_network(&SyntheticNetworkConfig::tiny());
        let s = syn.districts[0].center;
        let d = syn.districts.last().unwrap().center;
        for r in &routers {
            let p = r.route(&syn.net, s, d, DriverId(0)).unwrap();
            assert_eq!(p.source(), s);
            assert_eq!(p.destination(), d);
            assert!(!r.name().is_empty());
        }
    }
}
