//! The cost-centric baselines: **Shortest** and **Fastest** paths.

use l2r_road_network::{fastest_path, shortest_path, Path, RoadNetwork, VertexId};
use l2r_trajectory::DriverId;

use crate::BaselineRouter;

/// Minimum-distance routing (Dijkstra on `wDI`).
#[derive(Debug, Clone, Copy, Default)]
pub struct ShortestRouter;

impl BaselineRouter for ShortestRouter {
    fn name(&self) -> &'static str {
        "Shortest"
    }

    fn route(
        &self,
        net: &RoadNetwork,
        source: VertexId,
        destination: VertexId,
        _driver: DriverId,
    ) -> Option<Path> {
        shortest_path(net, source, destination)
    }
}

/// Minimum-travel-time routing (Dijkstra on `wTT`).
#[derive(Debug, Clone, Copy, Default)]
pub struct FastestRouter;

impl BaselineRouter for FastestRouter {
    fn name(&self) -> &'static str {
        "Fastest"
    }

    fn route(
        &self,
        net: &RoadNetwork,
        source: VertexId,
        destination: VertexId,
        _driver: DriverId,
    ) -> Option<Path> {
        fastest_path(net, source, destination)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use l2r_datagen::{generate_network, SyntheticNetworkConfig};
    use l2r_road_network::CostType;

    #[test]
    fn shortest_is_never_longer_than_fastest() {
        let syn = generate_network(&SyntheticNetworkConfig::tiny());
        let s = syn.districts[0].center;
        let d = syn.districts.last().unwrap().center;
        let short = ShortestRouter.route(&syn.net, s, d, DriverId(0)).unwrap();
        let fast = FastestRouter.route(&syn.net, s, d, DriverId(0)).unwrap();
        assert!(short.length_m(&syn.net).unwrap() <= fast.length_m(&syn.net).unwrap() + 1e-6);
        assert!(
            fast.cost(&syn.net, CostType::TravelTime).unwrap()
                <= short.cost(&syn.net, CostType::TravelTime).unwrap() + 1e-6
        );
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(ShortestRouter.name(), "Shortest");
        assert_eq!(FastestRouter.name(), "Fastest");
    }
}
