//! An external "online routing service" stand-in for the Google Directions
//! API comparison of Figures 13/14.
//!
//! The real comparison queries Google Maps with the test sources,
//! destinations and departure times and receives a sparse sequence of
//! way-points.  We cannot call a commercial API from a reproduction, so this
//! module models the relevant characteristics of such a service:
//!
//! * it has **no access to local trajectories** — it routes on its own
//!   travel-time estimates, which differ from the free-flow weights by a
//!   deterministic per-edge perturbation plus a bias towards the high-level
//!   road hierarchy (commercial engines strongly prefer arterials);
//! * it returns a **sparse way-point polyline** (not a road-network path),
//!   which is evaluated against ground-truth paths with the 10 m band
//!   methodology of Figure 14.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use l2r_road_network::{
    dijkstra, path_to_waypoints, CostType, Path, Point, RoadNetwork, RoadType, VertexId,
};
use l2r_trajectory::DriverId;

use crate::BaselineRouter;

/// Configuration of the external reference router.
#[derive(Debug, Clone, Copy)]
pub struct ExternalRouterConfig {
    /// Relative strength of the deterministic per-edge travel-time
    /// perturbation (0.2 = up to ±20 %).
    pub perturbation: f64,
    /// Multiplicative bonus applied to motorway/trunk/primary edges
    /// (values < 1 make the service prefer the arterial hierarchy).
    pub hierarchy_bias: f64,
    /// Every `waypoint_stride`-th path vertex is emitted as a way-point.
    pub waypoint_stride: usize,
    /// Gaussian-ish jitter applied to way-point coordinates, metres.
    pub waypoint_jitter_m: f64,
    /// Seed of the deterministic perturbation.
    pub seed: u64,
}

impl Default for ExternalRouterConfig {
    fn default() -> Self {
        ExternalRouterConfig {
            perturbation: 0.25,
            hierarchy_bias: 0.85,
            waypoint_stride: 3,
            waypoint_jitter_m: 3.0,
            seed: 0x6006,
        }
    }
}

/// The external reference router.
#[derive(Debug, Clone)]
pub struct ExternalRouter {
    /// Pre-computed per-edge travel-time multipliers.
    edge_multiplier: Vec<f64>,
    config: ExternalRouterConfig,
}

impl ExternalRouter {
    /// Builds the router for a network (pre-computes its private travel-time
    /// estimates).
    pub fn new(net: &RoadNetwork, config: ExternalRouterConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let edge_multiplier = net
            .edges()
            .iter()
            .map(|e| {
                let noise = 1.0 + (rng.gen::<f64>() * 2.0 - 1.0) * config.perturbation;
                let bias = match e.road_type {
                    RoadType::Motorway | RoadType::Trunk | RoadType::Primary => {
                        config.hierarchy_bias
                    }
                    _ => 1.0,
                };
                (noise * bias).max(0.05)
            })
            .collect();
        ExternalRouter {
            edge_multiplier,
            config,
        }
    }

    /// Builds the router with default settings.
    pub fn with_defaults(net: &RoadNetwork) -> Self {
        Self::new(net, ExternalRouterConfig::default())
    }

    /// The road-network path the service would drive (its internal result).
    pub fn route_path(
        &self,
        net: &RoadNetwork,
        source: VertexId,
        destination: VertexId,
    ) -> Option<Path> {
        if source.idx() >= net.num_vertices() || destination.idx() >= net.num_vertices() {
            return None;
        }
        if source == destination {
            return Some(Path::single(source));
        }
        dijkstra(net, source, Some(destination), |e| {
            e.cost(CostType::TravelTime) * self.edge_multiplier[e.id.idx()]
        })
        .path_to(destination)
    }

    /// The way-point polyline returned to the client (what the evaluation
    /// band-matches against ground truth, Figure 14).
    pub fn route_waypoints(
        &self,
        net: &RoadNetwork,
        source: VertexId,
        destination: VertexId,
    ) -> Option<Vec<Point>> {
        let path = self.route_path(net, source, destination)?;
        let mut rng = StdRng::seed_from_u64(
            self.config.seed ^ ((source.0 as u64) << 32 | destination.0 as u64),
        );
        let mut wps = path_to_waypoints(net, &path, self.config.waypoint_stride.max(1));
        for p in wps.iter_mut() {
            p.x += (rng.gen::<f64>() * 2.0 - 1.0) * self.config.waypoint_jitter_m;
            p.y += (rng.gen::<f64>() * 2.0 - 1.0) * self.config.waypoint_jitter_m;
        }
        Some(wps)
    }
}

impl BaselineRouter for ExternalRouter {
    fn name(&self) -> &'static str {
        "External"
    }

    fn route(
        &self,
        net: &RoadNetwork,
        source: VertexId,
        destination: VertexId,
        _driver: DriverId,
    ) -> Option<Path> {
        self.route_path(net, source, destination)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use l2r_datagen::{generate_network, SyntheticNetworkConfig};
    use l2r_road_network::band_match_similarity_10m;

    #[test]
    fn routes_are_valid_and_deterministic() {
        let syn = generate_network(&SyntheticNetworkConfig::tiny());
        let ext = ExternalRouter::with_defaults(&syn.net);
        let s = syn.districts[0].center;
        let d = syn.districts.last().unwrap().center;
        let p1 = ext.route_path(&syn.net, s, d).unwrap();
        let p2 = ext.route_path(&syn.net, s, d).unwrap();
        assert_eq!(p1, p2);
        assert!(p1.validate(&syn.net).is_ok());
    }

    #[test]
    fn waypoints_band_match_their_own_path() {
        let syn = generate_network(&SyntheticNetworkConfig::tiny());
        let ext = ExternalRouter::with_defaults(&syn.net);
        let s = syn.districts[0].center;
        let d = syn.districts.last().unwrap().center;
        let path = ext.route_path(&syn.net, s, d).unwrap();
        let wps = ext.route_waypoints(&syn.net, s, d).unwrap();
        assert!(wps.len() >= 2);
        // The service's way-points trace its own path closely (within the
        // 10 m band for most of the length despite jitter + downsampling).
        let sim = band_match_similarity_10m(&syn.net, &path, &wps);
        assert!(sim > 0.5, "band similarity {sim}");
    }

    #[test]
    fn service_differs_from_plain_fastest_somewhere() {
        use l2r_road_network::fastest_path;
        let syn = generate_network(&SyntheticNetworkConfig::tiny());
        let ext = ExternalRouter::with_defaults(&syn.net);
        let mut differs = false;
        for a in syn.districts.iter().take(6) {
            for b in syn.districts.iter().rev().take(6) {
                if a.index == b.index {
                    continue;
                }
                let p = ext.route_path(&syn.net, a.center, b.center);
                let f = fastest_path(&syn.net, a.center, b.center);
                if let (Some(p), Some(f)) = (p, f) {
                    if p != f {
                        differs = true;
                    }
                }
            }
        }
        assert!(
            differs,
            "the external service should not coincide with Fastest everywhere"
        );
    }

    #[test]
    fn invalid_and_trivial_queries() {
        let syn = generate_network(&SyntheticNetworkConfig::tiny());
        let ext = ExternalRouter::with_defaults(&syn.net);
        assert!(ext
            .route_path(&syn.net, VertexId(0), VertexId(10_000_000))
            .is_none());
        assert!(ext
            .route_path(&syn.net, VertexId(2), VertexId(2))
            .unwrap()
            .is_trivial());
    }
}
