//! **Dom** — personalized multi-cost routing (the paper's reference \[26\]).
//!
//! Dom learns, per driver, how strongly the driver trades off distance,
//! travel time and fuel consumption: each training trajectory is compared to
//! the single-objective optima for its (source, destination) pair, and cost
//! types on which the driver stays close to optimal receive higher weight.
//! At query time Dom enumerates skyline (Pareto-optimal) paths — the
//! expensive multi-objective search the paper attributes its high running
//! time to — and returns the skyline path minimising the driver's weighted
//! cost.

use std::collections::HashMap;

use l2r_road_network::{
    lowest_cost_path, skyline_paths, weighted_path, CostType, Path, RoadNetwork, VertexId,
};
use l2r_trajectory::{DriverId, MatchedTrajectory};

use crate::BaselineRouter;

/// Per-driver preference weights over (distance, travel time, fuel).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriverWeights {
    /// Normalised weights, summing to 1.
    pub weights: [f64; 3],
    /// Number of trajectories the weights were learned from.
    pub support: usize,
}

impl Default for DriverWeights {
    fn default() -> Self {
        DriverWeights {
            weights: [1.0 / 3.0; 3],
            support: 0,
        }
    }
}

/// The Dom personalized router.
#[derive(Debug, Clone)]
pub struct Dom {
    drivers: HashMap<DriverId, DriverWeights>,
    /// Cap on skyline labels per vertex (keeps the exponential search
    /// bounded).
    max_labels_per_vertex: usize,
    /// Per-cost normalisation used to put the three costs on the same scale.
    cost_scale: [f64; 3],
}

impl Dom {
    /// Learns per-driver weights from training trajectories.
    ///
    /// For every trajectory, the ratio `optimal_cost / actual_cost ∈ (0, 1]`
    /// is computed per cost type; a ratio close to 1 means the driver's path
    /// is near-optimal for that cost, so the cost receives more weight.
    pub fn train(net: &RoadNetwork, trajectories: &[MatchedTrajectory]) -> Dom {
        let mut per_driver: HashMap<DriverId, ([f64; 3], usize)> = HashMap::new();
        for t in trajectories {
            let (s, d) = (t.source(), t.destination());
            if s == d {
                continue;
            }
            let mut ratios = [0.0f64; 3];
            let mut ok = true;
            for cost in CostType::ALL {
                let actual = match t.path.cost(net, cost) {
                    Ok(c) if c > 0.0 => c,
                    _ => {
                        ok = false;
                        break;
                    }
                };
                let optimal = lowest_cost_path(net, s, d, cost)
                    .and_then(|p| p.cost(net, cost).ok())
                    .unwrap_or(actual);
                ratios[cost.index()] = (optimal / actual).clamp(0.0, 1.0);
            }
            if !ok {
                continue;
            }
            let entry = per_driver.entry(t.driver).or_insert(([0.0; 3], 0));
            for (sum, ratio) in entry.0.iter_mut().zip(ratios.iter()) {
                *sum += ratio;
            }
            entry.1 += 1;
        }
        let drivers = per_driver
            .into_iter()
            .map(|(driver, (sums, count))| {
                let mut w = [0.0f64; 3];
                let mut total = 0.0;
                for i in 0..3 {
                    // Emphasise costs the driver is consistently near-optimal
                    // on; squaring sharpens the contrast between objectives.
                    let mean = sums[i] / count.max(1) as f64;
                    w[i] = mean * mean;
                    total += w[i];
                }
                if total <= 0.0 {
                    return (driver, DriverWeights::default());
                }
                for v in w.iter_mut() {
                    *v /= total;
                }
                (
                    driver,
                    DriverWeights {
                        weights: w,
                        support: count,
                    },
                )
            })
            .collect();

        // Scale so that a "typical" edge contributes comparably under each
        // cost type (otherwise fuel, measured in ml, dominates).
        let mut scale = [1.0f64; 3];
        if net.num_edges() > 0 {
            let mut sums = [0.0f64; 3];
            for e in net.edges() {
                for c in CostType::ALL {
                    sums[c.index()] += e.cost(c);
                }
            }
            for i in 0..3 {
                scale[i] = if sums[i] > 0.0 {
                    net.num_edges() as f64 / sums[i]
                } else {
                    1.0
                };
            }
        }

        Dom {
            drivers,
            max_labels_per_vertex: 8,
            cost_scale: scale,
        }
    }

    /// The learned weights of a driver (uniform for unseen drivers).
    pub fn driver_weights(&self, driver: DriverId) -> DriverWeights {
        self.drivers.get(&driver).copied().unwrap_or_default()
    }

    /// Number of drivers with learned weights.
    pub fn num_drivers(&self) -> usize {
        self.drivers.len()
    }
}

impl BaselineRouter for Dom {
    fn name(&self) -> &'static str {
        "Dom"
    }

    fn route(
        &self,
        net: &RoadNetwork,
        source: VertexId,
        destination: VertexId,
        driver: DriverId,
    ) -> Option<Path> {
        let w = self.driver_weights(driver).weights;
        let scaled = [
            w[0] * self.cost_scale[0],
            w[1] * self.cost_scale[1],
            w[2] * self.cost_scale[2],
        ];
        // The expensive multi-objective skyline search of the original
        // method; pick the skyline path minimising the personalized weighted
        // cost.
        let skyline = skyline_paths(net, source, destination, self.max_labels_per_vertex);
        let best = skyline
            .into_iter()
            .min_by(|a, b| {
                a.cost
                    .weighted_sum(scaled)
                    .total_cmp(&b.cost.weighted_sum(scaled))
            })
            .map(|s| s.path);
        // Extremely large queries can exhaust the label cap before reaching
        // the target; fall back to a weighted single-objective search.
        best.or_else(|| weighted_path(net, source, destination, scaled))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use l2r_datagen::{
        generate_network, generate_workload, SyntheticNetworkConfig, WorkloadConfig,
    };
    use l2r_trajectory::TrajectoryId;

    #[test]
    fn training_learns_normalised_weights() {
        let syn = generate_network(&SyntheticNetworkConfig::tiny());
        let wl = generate_workload(&syn, &WorkloadConfig::tiny(120));
        let dom = Dom::train(&syn.net, &wl.trajectories);
        assert!(dom.num_drivers() > 0);
        for t in &wl.trajectories {
            let w = dom.driver_weights(t.driver);
            let sum: f64 = w.weights.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
            assert!(w.weights.iter().all(|v| *v >= 0.0));
        }
        // Unseen drivers get uniform weights.
        let unseen = dom.driver_weights(DriverId(9999));
        assert_eq!(unseen.support, 0);
        assert!((unseen.weights[0] - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn routing_returns_valid_paths() {
        let syn = generate_network(&SyntheticNetworkConfig::tiny());
        let wl = generate_workload(&syn, &WorkloadConfig::tiny(80));
        let dom = Dom::train(&syn.net, &wl.trajectories);
        for t in wl.trajectories.iter().take(10) {
            let p = dom
                .route(&syn.net, t.source(), t.destination(), t.driver)
                .expect("Dom should find a path");
            assert!(p.validate(&syn.net).is_ok());
            assert_eq!(p.source(), t.source());
            assert_eq!(p.destination(), t.destination());
        }
    }

    #[test]
    fn time_oriented_drivers_get_time_heavy_weights() {
        use l2r_road_network::fastest_path;
        let syn = generate_network(&SyntheticNetworkConfig::tiny());
        // A driver who always drives exactly the fastest path between distant
        // districts.
        let s = syn.districts[0].center;
        let d = syn.districts.last().unwrap().center;
        let fast = fastest_path(&syn.net, s, d).unwrap();
        let trajectories = vec![MatchedTrajectory::new(
            TrajectoryId(0),
            DriverId(7),
            fast,
            0.0,
        )];
        let dom = Dom::train(&syn.net, &trajectories);
        let w = dom.driver_weights(DriverId(7));
        assert_eq!(w.support, 1);
        assert!(
            w.weights[CostType::TravelTime.index()] >= w.weights[CostType::Distance.index()] - 1e-9,
            "travel-time weight should not be below the distance weight: {:?}",
            w.weights
        );
    }
}
