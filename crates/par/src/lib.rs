//! # l2r-par
//!
//! A minimal, dependency-free parallel map built on [`std::thread::scope`],
//! used to fan the embarrassingly parallel stages of the L2R offline pipeline
//! (per-T-edge preference learning, per-B-edge path assignment) across cores.
//!
//! Design points:
//!
//! * **Deterministic output** — results come back in input order regardless
//!   of thread scheduling, so callers can produce output bit-identical to a
//!   serial run.
//! * **Per-thread state** — [`par_map_init`] gives every worker its own
//!   scratch state (e.g. a reusable Dijkstra search space), created once per
//!   thread rather than once per item.
//! * **Chunked work stealing** — workers grab fixed-size chunks of the index
//!   range from a shared atomic cursor, so uneven item costs still balance.
//! * **`L2R_THREADS` override** — the thread count defaults to the available
//!   hardware parallelism and can be pinned with the `L2R_THREADS`
//!   environment variable (`L2R_THREADS=1` forces a fully serial run on the
//!   calling thread).
//!
//! The build environment has no crates.io access, hence no rayon; this covers
//! the small API surface the pipeline needs.

#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};

/// Name of the environment variable overriding the worker thread count.
pub const THREADS_ENV: &str = "L2R_THREADS";

/// Process-wide programmatic thread override (0 = unset).  Set by
/// [`set_thread_override`]; takes precedence over [`THREADS_ENV`] so CLI
/// flags (`reproduce --threads N`) can pin the worker count without the
/// caller mutating the environment (`set_var` racing `getenv` from already
/// running worker threads is undefined behaviour on glibc).
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Pins (or, with `None`, releases) the process-wide worker thread count.
///
/// A pinned count takes precedence over the [`THREADS_ENV`] environment
/// variable.  `Some(0)` is treated as `None` (no override).
pub fn set_thread_override(threads: Option<usize>) {
    THREAD_OVERRIDE.store(threads.unwrap_or(0), Ordering::Relaxed);
}

/// The active programmatic override, if any.
pub fn thread_override() -> Option<usize> {
    match THREAD_OVERRIDE.load(Ordering::Relaxed) {
        0 => None,
        n => Some(n),
    }
}

/// The number of worker threads parallel maps use: the programmatic
/// [`set_thread_override`] pin when present, else the value of
/// [`THREADS_ENV`] when it parses to a positive integer, otherwise the
/// available hardware parallelism (1 when that cannot be determined).
pub fn max_threads() -> usize {
    if let Some(t) = thread_override() {
        return t;
    }
    threads_from_override(std::env::var(THREADS_ENV).ok().as_deref())
}

/// The policy behind [`max_threads`], with the environment lookup injected:
/// tests exercise every override variant through this function instead of
/// mutating the real environment (`set_var` racing `getenv` from the
/// parallel fits other tests run is undefined behaviour on glibc).  Public
/// so CLI front-ends can resolve a user-supplied thread count through the
/// exact same policy before pinning it with [`set_thread_override`].
pub fn threads_from_override(value: Option<&str>) -> usize {
    if let Some(v) = value {
        if let Ok(t) = v.trim().parse::<usize>() {
            if t >= 1 {
                return t;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Parallel map preserving input order: `f(index, &item)` for every item,
/// using [`max_threads`] workers.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_with(max_threads(), items, || (), |(), i, t| f(i, t))
}

/// Parallel map with per-thread state: every worker calls `init` once and
/// passes the state to each `f(&mut state, index, &item)` call.  Use this to
/// amortise expensive scratch structures (search spaces, buffers) across the
/// items a thread processes.  Results are returned in input order.
pub fn par_map_init<T, R, S, I, F>(items: &[T], init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> R + Sync,
{
    par_map_with(max_threads(), items, init, f)
}

/// [`par_map_init`] with an explicit thread count (mainly for tests; normal
/// callers should respect the `L2R_THREADS` override via [`par_map_init`]).
///
/// `threads <= 1` (or a single-item input) runs serially on the calling
/// thread with no thread spawned at all.  A panic in `f` propagates to the
/// caller.
pub fn par_map_with<T, R, S, I, F>(threads: usize, items: &[T], init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> R + Sync,
{
    let threads = threads.max(1).min(items.len());
    if threads <= 1 {
        let mut state = init();
        return items
            .iter()
            .enumerate()
            .map(|(i, t)| f(&mut state, i, t))
            .collect();
    }

    // Chunked work stealing: 4 chunks per thread balances stealing overhead
    // against tail latency from uneven item costs.
    let chunk = items.len().div_ceil(threads * 4).max(1);
    let cursor = AtomicUsize::new(0);
    let mut collected: Vec<(usize, R)> = Vec::with_capacity(items.len());
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            handles.push(scope.spawn(|| {
                let mut state = init();
                let mut out: Vec<(usize, R)> = Vec::new();
                loop {
                    let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                    if start >= items.len() {
                        break;
                    }
                    let end = (start + chunk).min(items.len());
                    for (i, item) in items.iter().enumerate().take(end).skip(start) {
                        out.push((i, f(&mut state, i, item)));
                    }
                }
                out
            }));
        }
        for handle in handles {
            match handle.join() {
                Ok(part) => collected.extend(part),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    debug_assert_eq!(collected.len(), items.len());
    collected.sort_unstable_by_key(|(i, _)| *i);
    collected.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_preserve_input_order() {
        let items: Vec<usize> = (0..1000).collect();
        for threads in [1, 2, 3, 8] {
            let out = par_map_with(
                threads,
                &items,
                || (),
                |(), i, v| {
                    assert_eq!(i, *v);
                    v * 2
                },
            );
            let expected: Vec<usize> = items.iter().map(|v| v * 2).collect();
            assert_eq!(out, expected, "threads={threads}");
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map_with(4, &empty, || (), |(), _, v| *v).is_empty());
        assert_eq!(par_map_with(4, &[7u32], || (), |(), _, v| *v), vec![7]);
    }

    #[test]
    fn init_runs_once_per_worker_and_state_is_reused() {
        let inits = AtomicUsize::new(0);
        let items: Vec<u32> = (0..64).collect();
        let out = par_map_with(
            3,
            &items,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                0usize // per-thread item counter
            },
            |count, _, v| {
                *count += 1;
                *v
            },
        );
        assert_eq!(out, items);
        let n = inits.load(Ordering::Relaxed);
        assert!((1..=3).contains(&n), "one init per worker, got {n}");
    }

    #[test]
    fn matches_serial_run_bit_for_bit() {
        let items: Vec<f64> = (0..257).map(|i| i as f64 * 0.1).collect();
        let work = |v: &f64| (v.sin() * 1e6).to_bits();
        let serial: Vec<u64> = items.iter().map(work).collect();
        let parallel = par_map_with(5, &items, || (), |(), _, v| work(v));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn worker_panics_propagate() {
        let items: Vec<u32> = (0..32).collect();
        let result = std::panic::catch_unwind(|| {
            par_map_with(
                2,
                &items,
                || (),
                |(), _, v| {
                    assert!(*v != 17, "boom");
                    *v
                },
            )
        });
        assert!(result.is_err());
    }

    #[test]
    fn env_override_controls_thread_count() {
        // Exercised through the injectable lookup: no `set_var`, so this
        // cannot race the `getenv` calls of concurrently running tests.
        assert_eq!(threads_from_override(Some("3")), 3);
        assert_eq!(threads_from_override(Some(" 2 ")), 2);
        assert_eq!(threads_from_override(Some("1")), 1);
        assert!(threads_from_override(Some("not-a-number")) >= 1);
        assert!(threads_from_override(Some("0")) >= 1);
        assert!(threads_from_override(Some("-4")) >= 1);
        assert!(threads_from_override(None) >= 1);
        // The public entry point agrees with the injected policy for the
        // environment this process actually has.
        assert_eq!(
            max_threads(),
            threads_from_override(std::env::var(THREADS_ENV).ok().as_deref())
        );
        // The programmatic pin wins over the environment; releasing it
        // restores the env policy.  Kept inside this single test (not a
        // sibling) so no concurrently running test observes the pin.
        set_thread_override(Some(5));
        assert_eq!(thread_override(), Some(5));
        assert_eq!(max_threads(), 5);
        set_thread_override(Some(0));
        assert_eq!(thread_override(), None);
        set_thread_override(None);
        assert_eq!(
            max_threads(),
            threads_from_override(std::env::var(THREADS_ENV).ok().as_deref())
        );
    }
}
