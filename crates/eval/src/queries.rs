//! Test queries: held-out trajectories turned into routing queries with their
//! ground-truth (driver-chosen) paths, bucketed by distance and region
//! coverage as in Section VII-A.

use l2r_core::{L2r, RegionCoverage};
use l2r_road_network::{Path, RoadNetwork, VertexId};
use l2r_trajectory::{DriverId, MatchedTrajectory};

/// One evaluation query derived from a held-out trajectory.
#[derive(Debug, Clone)]
pub struct TestQuery {
    /// Query source.
    pub source: VertexId,
    /// Query destination.
    pub destination: VertexId,
    /// The driver who produced the ground-truth trajectory.
    pub driver: DriverId,
    /// Departure time of the trajectory.
    pub departure_time_s: f64,
    /// The path the driver actually took (the ground truth of Section VII-A).
    pub ground_truth: Path,
    /// Ground-truth travel distance in km (used for distance bucketing).
    pub distance_km: f64,
    /// Whether the endpoints are covered by regions of the fitted model.
    pub coverage: RegionCoverage,
}

/// Builds evaluation queries from held-out trajectories.
///
/// Trivial trajectories and trajectories whose endpoints coincide are
/// dropped; at most `max_queries` queries are returned (in departure-time
/// order).
pub fn build_test_queries(
    net: &RoadNetwork,
    model: &L2r,
    test: &[MatchedTrajectory],
    max_queries: usize,
) -> Vec<TestQuery> {
    let mut queries = Vec::new();
    for t in test {
        if queries.len() >= max_queries {
            break;
        }
        let s = t.source();
        let d = t.destination();
        if s == d || t.path.is_trivial() {
            continue;
        }
        let Ok(distance_m) = t.path.length_m(net) else {
            continue;
        };
        queries.push(TestQuery {
            source: s,
            destination: d,
            driver: t.driver,
            departure_time_s: t.departure_time_s,
            ground_truth: t.path.clone(),
            distance_km: distance_m / 1000.0,
            coverage: model.coverage(s, d),
        });
    }
    queries
}

/// Index of the distance bucket a query falls into, given ascending bucket
/// bounds in km (queries beyond the last bound fall into the final bucket).
pub fn distance_bucket(distance_km: f64, bounds_km: &[f64]) -> usize {
    bounds_km
        .iter()
        .position(|b| distance_km <= *b)
        .unwrap_or(bounds_km.len().saturating_sub(1))
}

/// Human-readable labels of the distance buckets, e.g. `(0,10]`.
pub fn distance_bucket_labels(bounds_km: &[f64]) -> Vec<String> {
    let mut labels = Vec::with_capacity(bounds_km.len());
    let mut lo = 0.0;
    for b in bounds_km {
        labels.push(format!("({:.0},{:.0}]", lo, b));
        lo = *b;
    }
    labels
}

/// Display label of a coverage category.
pub fn coverage_label(c: RegionCoverage) -> &'static str {
    match c {
        RegionCoverage::InRegion => "InRegion",
        RegionCoverage::InOutRegion => "InOutRegion",
        RegionCoverage::OutRegion => "OutRegion",
    }
}

/// All coverage categories in report order.
pub const COVERAGE_CATEGORIES: [RegionCoverage; 3] = [
    RegionCoverage::InRegion,
    RegionCoverage::InOutRegion,
    RegionCoverage::OutRegion,
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{build_dataset, DatasetSpec, Scale};

    #[test]
    fn queries_are_built_from_held_out_trajectories() {
        let ds = build_dataset(DatasetSpec::d1(Scale::Quick));
        let queries = build_test_queries(&ds.synthetic.net, &ds.model, &ds.test, 40);
        assert!(!queries.is_empty());
        assert!(queries.len() <= 40);
        for q in &queries {
            assert_ne!(q.source, q.destination);
            assert!(q.distance_km > 0.0);
            assert_eq!(q.ground_truth.source(), q.source);
            assert_eq!(q.ground_truth.destination(), q.destination);
        }
    }

    #[test]
    fn distance_bucketing() {
        let bounds = vec![10.0, 50.0, 100.0, 500.0];
        assert_eq!(distance_bucket(3.0, &bounds), 0);
        assert_eq!(distance_bucket(10.0, &bounds), 0);
        assert_eq!(distance_bucket(30.0, &bounds), 1);
        assert_eq!(distance_bucket(99.0, &bounds), 2);
        assert_eq!(distance_bucket(400.0, &bounds), 3);
        // Beyond the last bound: final bucket.
        assert_eq!(distance_bucket(900.0, &bounds), 3);
        let labels = distance_bucket_labels(&bounds);
        assert_eq!(labels[0], "(0,10]");
        assert_eq!(labels[3], "(100,500]");
    }

    #[test]
    fn coverage_labels_are_stable() {
        assert_eq!(coverage_label(RegionCoverage::InRegion), "InRegion");
        assert_eq!(coverage_label(RegionCoverage::OutRegion), "OutRegion");
        assert_eq!(COVERAGE_CATEGORIES.len(), 3);
    }
}
