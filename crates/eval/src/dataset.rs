//! Experiment datasets: a synthetic network + workload + fitted L2R model,
//! mirroring the two data sets of the paper (D1 = Denmark-like, D2 =
//! Chengdu-like) at two scales (quick for tests, full for benchmarks).

use std::time::Duration;

use l2r_core::{L2r, L2rConfig};
use l2r_datagen::{
    generate_network, generate_workload, SyntheticNetwork, SyntheticNetworkConfig, Workload,
    WorkloadConfig,
};
use l2r_trajectory::MatchedTrajectory;

/// Scale of a dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small: suitable for unit/integration tests (seconds).
    Quick,
    /// Full: used by the benchmark harness (minutes).
    Full,
    /// Country-scale: ~100k-vertex network, the `--scale xl` axis of the
    /// reproduce harness (tens of minutes on one core).
    Xl,
    /// Half-million-vertex stress scale (`--scale xxl`); network generation
    /// and routing only at benchmark time — not part of CI.
    Xxl,
}

impl Scale {
    /// The scale's stable label, as recorded in BENCH JSON and accepted by
    /// the reproduce harness's `--scale` flag.
    pub fn label(self) -> &'static str {
        match self {
            Scale::Quick => "quick",
            Scale::Full => "full",
            Scale::Xl => "xl",
            Scale::Xxl => "xxl",
        }
    }

    /// Parses a `--scale` argument (the inverse of [`Scale::label`]).
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "quick" => Some(Scale::Quick),
            "full" => Some(Scale::Full),
            "xl" => Some(Scale::Xl),
            "xxl" => Some(Scale::Xxl),
            _ => None,
        }
    }
}

/// Specification of an experiment dataset.
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    /// Display name ("D1", "D2").
    pub name: &'static str,
    /// Network generator configuration.
    pub network: SyntheticNetworkConfig,
    /// Workload generator configuration.
    pub workload: WorkloadConfig,
    /// Distance bucket bounds (km) used for per-distance reports
    /// (Figures 10–13, Table II).
    pub distance_bounds_km: Vec<f64>,
    /// Area bucket bounds (km²) used for Table IV.
    pub area_bounds_km2: Vec<f64>,
    /// Fraction of the time period used as training data.
    pub train_fraction: f64,
    /// Maximum number of test queries evaluated.
    pub max_test_queries: usize,
    /// L2R configuration.
    pub l2r: L2rConfig,
}

impl DatasetSpec {
    /// The Denmark-like data set (D1).
    pub fn d1(scale: Scale) -> DatasetSpec {
        let (network, workload, max_q) = match scale {
            Scale::Quick => (
                SyntheticNetworkConfig::tiny(),
                WorkloadConfig::d1_like(300),
                60,
            ),
            Scale::Full => (
                SyntheticNetworkConfig::denmark_like(),
                WorkloadConfig::d1_like(3000),
                250,
            ),
            Scale::Xl => (
                SyntheticNetworkConfig::denmark_xl(),
                WorkloadConfig::xl_like(1600),
                120,
            ),
            Scale::Xxl => (
                SyntheticNetworkConfig::denmark_xxl(),
                WorkloadConfig::xxl_like(2500),
                120,
            ),
        };
        DatasetSpec {
            name: "D1",
            network,
            workload: WorkloadConfig {
                seed: 0xD1D1,
                ..workload
            },
            distance_bounds_km: vec![10.0, 50.0, 100.0, 500.0],
            area_bounds_km2: l2r_region_graph::d1_bounds_km2(),
            train_fraction: 0.75,
            max_test_queries: max_q,
            l2r: match scale {
                Scale::Quick => L2rConfig::fast(),
                _ => L2rConfig::default(),
            },
        }
    }

    /// The Chengdu-like data set (D2).
    pub fn d2(scale: Scale) -> DatasetSpec {
        // The country-scale presets are Denmark-derived (the paper's D2 is a
        // city network with no country-scale counterpart), so the XL/XXL
        // arms reuse the N1-XL/N1-XXL networks with the D2 workload profile;
        // the reproduce harness exercises the scale axis through D1 only.
        let (network, workload, max_q) = match scale {
            Scale::Quick => (
                SyntheticNetworkConfig::tiny(),
                WorkloadConfig::d2_like(300),
                60,
            ),
            Scale::Full => (
                SyntheticNetworkConfig::chengdu_like(),
                WorkloadConfig::d2_like(2500),
                250,
            ),
            Scale::Xl => (
                SyntheticNetworkConfig::denmark_xl(),
                WorkloadConfig::xl_like(1600),
                120,
            ),
            Scale::Xxl => (
                SyntheticNetworkConfig::denmark_xxl(),
                WorkloadConfig::xxl_like(2500),
                120,
            ),
        };
        DatasetSpec {
            name: "D2",
            network,
            workload: WorkloadConfig {
                seed: 0xD2D2,
                ..workload
            },
            distance_bounds_km: vec![5.0, 10.0, 35.0],
            area_bounds_km2: l2r_region_graph::d2_bounds_km2(),
            train_fraction: 0.75,
            max_test_queries: max_q,
            l2r: match scale {
                Scale::Quick => L2rConfig::fast(),
                _ => L2rConfig::default(),
            },
        }
    }
}

/// A fully materialised dataset: network, workload, split and fitted model.
pub struct Dataset {
    /// The specification the dataset was built from.
    pub spec: DatasetSpec,
    /// The synthetic network (with district metadata).
    pub synthetic: SyntheticNetwork,
    /// The full workload (with ground-truth latent preferences).
    pub workload: Workload,
    /// Training trajectories (earlier period).
    pub train: Vec<MatchedTrajectory>,
    /// Test trajectories (later period).
    pub test: Vec<MatchedTrajectory>,
    /// The fitted learn-to-route model.
    pub model: L2r,
    /// Wall time of the `L2r::fit` call that produced `model`.
    pub fit_time: Duration,
    /// Number of Dijkstra searches that fit performed (from
    /// `l2r_road_network::searches_performed`).
    pub fit_searches: u64,
}

/// Builds a dataset: generates the network and workload, splits temporally
/// and fits L2R on the training part.
pub fn build_dataset(spec: DatasetSpec) -> Dataset {
    let synthetic = generate_network(&spec.network);
    let workload = generate_workload(&synthetic, &spec.workload);
    let (train, test) = workload.temporal_split(spec.train_fraction);
    let searches_before = l2r_road_network::searches_performed();
    let t0 = std::time::Instant::now();
    let model = L2r::fit(&synthetic.net, &train, spec.l2r.clone())
        .expect("fitting on a generated workload never fails");
    let fit_time = t0.elapsed();
    let fit_searches = l2r_road_network::searches_performed() - searches_before;
    Dataset {
        spec,
        synthetic,
        workload,
        train,
        test,
        model,
        fit_time,
        fit_searches,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_datasets_build_and_split() {
        let ds = build_dataset(DatasetSpec::d1(Scale::Quick));
        assert!(!ds.train.is_empty());
        assert!(!ds.test.is_empty());
        assert_eq!(
            ds.train.len() + ds.test.len(),
            ds.workload.trajectories.len()
        );
        assert!(ds.model.stats().num_regions > 0);
        assert_eq!(ds.spec.name, "D1");
    }

    #[test]
    fn d1_and_d2_specs_differ_in_distance_buckets() {
        let d1 = DatasetSpec::d1(Scale::Quick);
        let d2 = DatasetSpec::d2(Scale::Quick);
        assert_ne!(d1.distance_bounds_km, d2.distance_bounds_km);
        assert!(d1.distance_bounds_km.last().unwrap() > d2.distance_bounds_km.last().unwrap());
    }

    #[test]
    fn full_specs_use_larger_networks() {
        let quick = DatasetSpec::d1(Scale::Quick);
        let full = DatasetSpec::d1(Scale::Full);
        assert!(
            full.network.districts_x * full.network.districts_y
                > quick.network.districts_x * quick.network.districts_y
        );
        assert!(full.workload.num_trajectories > quick.workload.num_trajectories);
    }
}
