//! The routing-method comparison behind Figures 10, 11, 12 and 13: accuracy
//! (Equations 1 and 4) and online running time, bucketed by travel distance
//! and by region coverage.

use std::time::Instant;

use l2r_baselines::BaselineRouter;
use l2r_core::L2r;
use l2r_road_network::{
    band_match_similarity_10m, path_similarity, path_similarity_jaccard, Path, RoadNetwork,
};

use crate::queries::{
    coverage_label, distance_bucket, distance_bucket_labels, TestQuery, COVERAGE_CATEGORIES,
};

/// Aggregated statistics of one method over one bucket of queries.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BucketStat {
    /// Bucket label (distance range or coverage category).
    pub label: String,
    /// Number of queries answered in the bucket.
    pub count: usize,
    /// Mean Equation 1 accuracy (0–100 %).
    pub accuracy_eq1: f64,
    /// Mean Equation 4 accuracy (0–100 %).
    pub accuracy_eq4: f64,
    /// Mean online running time per query, in microseconds.
    pub mean_runtime_us: f64,
}

/// Comparison results of one routing method.
#[derive(Debug, Clone)]
pub struct MethodResult {
    /// Method name ("L2R", "Shortest", …).
    pub name: String,
    /// Per-distance-bucket statistics (Figures 10/11/12 left columns).
    pub by_distance: Vec<BucketStat>,
    /// Per-coverage statistics (Figures 10/11/12 right columns).
    pub by_coverage: Vec<BucketStat>,
    /// Overall statistics across all answered queries.
    pub overall: BucketStat,
}

/// Internal accumulator.
#[derive(Debug, Clone, Default)]
struct Acc {
    count: usize,
    eq1: f64,
    eq4: f64,
    runtime_us: f64,
}

impl Acc {
    fn add(&mut self, eq1: f64, eq4: f64, runtime_us: f64) {
        self.count += 1;
        self.eq1 += eq1;
        self.eq4 += eq4;
        self.runtime_us += runtime_us;
    }

    fn finish(&self, label: String) -> BucketStat {
        let n = self.count.max(1) as f64;
        BucketStat {
            label,
            count: self.count,
            accuracy_eq1: self.eq1 / n * 100.0,
            accuracy_eq4: self.eq4 / n * 100.0,
            mean_runtime_us: self.runtime_us / n,
        }
    }
}

/// A routing method under evaluation.
pub enum Method<'a> {
    /// The fitted learn-to-route model.
    L2r(&'a L2r),
    /// Any baseline implementing [`BaselineRouter`].
    Baseline(&'a dyn BaselineRouter),
}

impl<'a> Method<'a> {
    /// Display name.
    pub fn name(&self) -> &str {
        match self {
            Method::L2r(_) => "L2R",
            Method::Baseline(b) => b.name(),
        }
    }

    fn route(&self, net: &RoadNetwork, q: &TestQuery) -> Option<Path> {
        match self {
            Method::L2r(m) => m.route(q.source, q.destination).map(|r| r.path),
            Method::Baseline(b) => b.route(net, q.source, q.destination, q.driver),
        }
    }
}

/// Runs the full comparison of `methods` over `queries`.
///
/// Every method answers every query; accuracy is measured against the
/// ground-truth (driver) path with both similarity functions, and the online
/// running time is measured per query.
pub fn compare_methods(
    net: &RoadNetwork,
    methods: &[Method<'_>],
    queries: &[TestQuery],
    distance_bounds_km: &[f64],
) -> Vec<MethodResult> {
    let labels = distance_bucket_labels(distance_bounds_km);
    methods
        .iter()
        .map(|method| {
            let mut by_distance: Vec<Acc> = vec![Acc::default(); labels.len()];
            let mut by_coverage: Vec<Acc> = vec![Acc::default(); COVERAGE_CATEGORIES.len()];
            let mut overall = Acc::default();
            for q in queries {
                let t0 = Instant::now();
                let path = method.route(net, q);
                let runtime_us = t0.elapsed().as_secs_f64() * 1e6;
                let Some(path) = path else { continue };
                let eq1 = path_similarity(net, &q.ground_truth, &path);
                let eq4 = path_similarity_jaccard(net, &q.ground_truth, &path);
                let db = distance_bucket(q.distance_km, distance_bounds_km);
                by_distance[db].add(eq1, eq4, runtime_us);
                let cb = COVERAGE_CATEGORIES
                    .iter()
                    .position(|c| *c == q.coverage)
                    .unwrap_or(0);
                by_coverage[cb].add(eq1, eq4, runtime_us);
                overall.add(eq1, eq4, runtime_us);
            }
            MethodResult {
                name: method.name().to_string(),
                by_distance: by_distance
                    .iter()
                    .zip(&labels)
                    .map(|(a, l)| a.finish(l.clone()))
                    .collect(),
                by_coverage: by_coverage
                    .iter()
                    .zip(COVERAGE_CATEGORIES)
                    .map(|(a, c)| a.finish(coverage_label(c).to_string()))
                    .collect(),
                overall: overall.finish("overall".to_string()),
            }
        })
        .collect()
}

/// The Figure 13 comparison: L2R accuracy (Equation 1) versus the external
/// reference router's band-matched accuracy, bucketed by distance and
/// coverage.
#[derive(Debug, Clone)]
pub struct ExternalComparison {
    /// Per-distance buckets: (label, L2R accuracy %, external accuracy %).
    pub by_distance: Vec<(String, f64, f64)>,
    /// Per-coverage buckets: (label, L2R accuracy %, external accuracy %).
    pub by_coverage: Vec<(String, f64, f64)>,
}

/// Runs the L2R vs external-service comparison (Figures 13/14).
pub fn compare_with_external(
    net: &RoadNetwork,
    model: &L2r,
    external: &l2r_baselines::ExternalRouter,
    queries: &[TestQuery],
    distance_bounds_km: &[f64],
) -> ExternalComparison {
    let labels = distance_bucket_labels(distance_bounds_km);
    let mut dist_acc: Vec<(Acc, Acc)> = vec![(Acc::default(), Acc::default()); labels.len()];
    let mut cov_acc: Vec<(Acc, Acc)> =
        vec![(Acc::default(), Acc::default()); COVERAGE_CATEGORIES.len()];
    for q in queries {
        let l2r_acc = model
            .route(q.source, q.destination)
            .map(|r| path_similarity(net, &q.ground_truth, &r.path))
            .unwrap_or(0.0);
        let ext_acc = external
            .route_waypoints(net, q.source, q.destination)
            .map(|wps| band_match_similarity_10m(net, &q.ground_truth, &wps))
            .unwrap_or(0.0);
        let db = distance_bucket(q.distance_km, distance_bounds_km);
        dist_acc[db].0.add(l2r_acc, 0.0, 0.0);
        dist_acc[db].1.add(ext_acc, 0.0, 0.0);
        let cb = COVERAGE_CATEGORIES
            .iter()
            .position(|c| *c == q.coverage)
            .unwrap_or(0);
        cov_acc[cb].0.add(l2r_acc, 0.0, 0.0);
        cov_acc[cb].1.add(ext_acc, 0.0, 0.0);
    }
    ExternalComparison {
        by_distance: dist_acc
            .iter()
            .zip(&labels)
            .map(|((l, e), label)| {
                (
                    label.clone(),
                    l.finish(String::new()).accuracy_eq1,
                    e.finish(String::new()).accuracy_eq1,
                )
            })
            .collect(),
        by_coverage: cov_acc
            .iter()
            .zip(COVERAGE_CATEGORIES)
            .map(|((l, e), c)| {
                (
                    coverage_label(c).to_string(),
                    l.finish(String::new()).accuracy_eq1,
                    e.finish(String::new()).accuracy_eq1,
                )
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{build_dataset, DatasetSpec, Scale};
    use crate::queries::build_test_queries;
    use l2r_baselines::{Dom, ExternalRouter, FastestRouter, ShortestRouter, Trip};

    fn setup() -> (crate::dataset::Dataset, Vec<TestQuery>) {
        let ds = build_dataset(DatasetSpec::d1(Scale::Quick));
        let queries = build_test_queries(&ds.synthetic.net, &ds.model, &ds.test, 30);
        (ds, queries)
    }

    #[test]
    fn comparison_produces_results_for_every_method() {
        let (ds, queries) = setup();
        assert!(!queries.is_empty());
        let dom = Dom::train(&ds.synthetic.net, &ds.train);
        let trip = Trip::train(&ds.synthetic.net, &ds.train);
        let methods = vec![
            Method::L2r(&ds.model),
            Method::Baseline(&ShortestRouter),
            Method::Baseline(&FastestRouter),
            Method::Baseline(&dom),
            Method::Baseline(&trip),
        ];
        let results = compare_methods(
            &ds.synthetic.net,
            &methods,
            &queries,
            &ds.spec.distance_bounds_km,
        );
        assert_eq!(results.len(), 5);
        for r in &results {
            assert!(r.overall.count > 0, "{} answered no queries", r.name);
            assert!(r.overall.accuracy_eq1 >= 0.0 && r.overall.accuracy_eq1 <= 100.0);
            assert!(r.overall.accuracy_eq4 <= r.overall.accuracy_eq1 + 1e-9);
            assert!(r.overall.mean_runtime_us > 0.0);
            assert_eq!(r.by_distance.len(), ds.spec.distance_bounds_km.len());
            assert_eq!(r.by_coverage.len(), 3);
        }
        // Headline sanity check: L2R should not be clearly worse than
        // Shortest on the synthetic workload.
        let l2r = &results[0];
        let shortest = &results[1];
        assert!(l2r.overall.accuracy_eq1 >= shortest.overall.accuracy_eq1 * 0.9);
    }

    #[test]
    fn external_comparison_produces_bounded_accuracies() {
        let (ds, queries) = setup();
        let ext = ExternalRouter::with_defaults(&ds.synthetic.net);
        let cmp = compare_with_external(
            &ds.synthetic.net,
            &ds.model,
            &ext,
            &queries,
            &ds.spec.distance_bounds_km,
        );
        assert_eq!(cmp.by_distance.len(), ds.spec.distance_bounds_km.len());
        assert_eq!(cmp.by_coverage.len(), 3);
        for (_, l2r, ext) in cmp.by_distance.iter().chain(cmp.by_coverage.iter()) {
            assert!(*l2r >= 0.0 && *l2r <= 100.0);
            assert!(*ext >= 0.0 && *ext <= 100.0);
        }
    }
}
