//! # l2r-eval
//!
//! The evaluation harness of the learn-to-route reproduction: everything
//! needed to regenerate the tables and figures of Section VII.
//!
//! * [`dataset`] — the D1-like and D2-like experiment datasets (synthetic
//!   network + workload + temporal split + fitted model) at quick and full
//!   scales;
//! * [`queries`] — held-out trajectories turned into evaluation queries with
//!   distance and region-coverage buckets;
//! * [`compare`] — the multi-method accuracy / running-time comparison behind
//!   Figures 10–13;
//! * [`experiments`] — one driver per table/figure (Table II, Table IV,
//!   Figure 6(a)/(b), Figure 9(a)/(b), offline times, preference recovery);
//! * [`report`] — plain-text rendering of every result.

#![warn(missing_docs)]

pub mod compare;
pub mod dataset;
pub mod experiments;
pub mod queries;
pub mod report;

pub use compare::{
    compare_methods, compare_with_external, BucketStat, ExternalComparison, Method, MethodResult,
};
pub use dataset::{build_dataset, Dataset, DatasetSpec, Scale};
pub use experiments::{
    fig6a, fig6b, fig9a, fig9b, offline_times, preference_recovery, table2, table4, Fig6aResult,
    Fig6bBucket, Fig9aPoint, Fig9bPoint, OfflineRow, RecoveryResult,
};
pub use queries::{
    build_test_queries, coverage_label, distance_bucket, distance_bucket_labels, TestQuery,
    COVERAGE_CATEGORIES,
};
pub use report::{
    render_table, report_accuracy, report_fig13, report_fig6a, report_fig6b, report_fig9a,
    report_fig9b, report_offline, report_runtime, report_table2, report_table4,
};
