//! Plain-text report formatting for the experiment results: every table and
//! figure is printed as an aligned ASCII table so the `reproduce` binary's
//! output can be compared against the paper side by side.

use l2r_region_graph::RegionSizeBucket;
use l2r_trajectory::DistanceDistribution;

use crate::compare::{ExternalComparison, MethodResult};
use crate::experiments::{Fig6aResult, Fig6bBucket, Fig9aPoint, Fig9bPoint, OfflineRow};

/// Renders a simple aligned table.
pub fn render_table(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    out.push_str(&format!("## {title}\n"));
    let fmt_row = |cells: &[String]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| {
                format!(
                    "{:width$}",
                    c,
                    width = widths.get(i).copied().unwrap_or(c.len())
                )
            })
            .collect::<Vec<_>>()
            .join(" | ")
    };
    out.push_str(&fmt_row(
        &header.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
    ));
    out.push('\n');
    out.push_str(
        &widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<_>>()
            .join("-+-"),
    );
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    out.push('\n');
    out
}

/// Table II report.
pub fn report_table2(name: &str, dist: &DistanceDistribution) -> String {
    let labels = dist.labels();
    let pct = dist.percentages();
    let rows: Vec<Vec<String>> = labels
        .iter()
        .zip(&dist.counts)
        .zip(&pct)
        .map(|((l, c), p)| vec![l.clone(), c.to_string(), format!("{p:.1}")])
        .collect();
    render_table(
        &format!("Table II — trajectory distance distribution ({name})"),
        &["distance (km)", "# trajectories", "percentage (%)"],
        &rows,
    )
}

/// Table IV report.
pub fn report_table4(name: &str, buckets: &[RegionSizeBucket]) -> String {
    let rows: Vec<Vec<String>> = buckets
        .iter()
        .map(|b| {
            let label = if b.hi_km2.is_finite() {
                format!("({:.0},{:.0}]", b.lo_km2, b.hi_km2)
            } else {
                format!(">{:.0}", b.lo_km2)
            };
            vec![
                label,
                b.count.to_string(),
                format!("{:.1}", b.percentage),
                format!("{:.1}", b.max_diameter_km),
            ]
        })
        .collect();
    render_table(
        &format!("Table IV — region sizes ({name})"),
        &[
            "area (km²)",
            "# regions",
            "percentage (%)",
            "max diameter (km)",
        ],
        &rows,
    )
}

/// Figure 6(a) report.
pub fn report_fig6a(name: &str, r: &Fig6aResult) -> String {
    let mut rows = vec![
        vec!["T-edges analysed".to_string(), r.num_t_edges.to_string()],
        vec![
            "% single preference".to_string(),
            format!("{:.1}", r.pct_single_preference),
        ],
        vec![
            "edges with 1 / 2 / 3+ preferences".to_string(),
            format!(
                "{} / {} / {}",
                r.unique_preference_histogram[0],
                r.unique_preference_histogram[1],
                r.unique_preference_histogram[2]
            ),
        ],
    ];
    rows.push(vec![
        "learned masters DI / TT / FC".to_string(),
        format!(
            "{} / {} / {}",
            r.master_distribution[0], r.master_distribution[1], r.master_distribution[2]
        ),
    ]);
    render_table(
        &format!("Figure 6(a) — preference distribution ({name})"),
        &["metric", "value"],
        &rows,
    )
}

/// Figure 6(b) report.
pub fn report_fig6b(name: &str, buckets: &[Fig6bBucket]) -> String {
    let rows: Vec<Vec<String>> = buckets
        .iter()
        .map(|b| {
            vec![
                format!("[{:.1},{:.1})", b.similarity_lo, b.similarity_lo + 0.1),
                format!("{:.1}", b.mean_preference_similarity),
                format!("{:.1}", b.pair_percentage),
                b.count.to_string(),
            ]
        })
        .collect();
    render_table(
        &format!("Figure 6(b) — T-edge similarity vs preference similarity ({name})"),
        &[
            "T-edge similarity",
            "pref similarity (%)",
            "pairs (%)",
            "pairs",
        ],
        &rows,
    )
}

/// Figure 9(a) report.
pub fn report_fig9a(name: &str, points: &[Fig9aPoint]) -> String {
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                format!("{}X", p.partitions_used),
                format!("{:.1}", p.accuracy),
                format!("{:.1}", p.null_rate * 100.0),
            ]
        })
        .collect();
    render_table(
        &format!("Figure 9(a) — transfer accuracy vs # T-edges ({name})"),
        &["# T-edge partitions", "accuracy (%)", "null rate (%)"],
        &rows,
    )
}

/// Figure 9(b) report.
pub fn report_fig9b(name: &str, points: &[Fig9bPoint]) -> String {
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                format!("{:.1}", p.amr),
                format!("{:.1}", p.accuracy),
                format!("{:.1}", p.null_rate),
                format!("{:.1}", p.runtime_ms),
                p.similarity_edges.to_string(),
            ]
        })
        .collect();
    render_table(
        &format!("Figure 9(b) — varying amr ({name})"),
        &[
            "amr",
            "accuracy (%)",
            "N-rate (%)",
            "run-time (ms)",
            "similarity edges",
        ],
        &rows,
    )
}

/// Figures 10/11 (accuracy) report for one bucketing dimension.
pub fn report_accuracy(
    title: &str,
    results: &[MethodResult],
    by_coverage: bool,
    eq4: bool,
) -> String {
    let buckets: Vec<String> = match results.first() {
        Some(r) => {
            let src = if by_coverage {
                &r.by_coverage
            } else {
                &r.by_distance
            };
            src.iter().map(|b| b.label.clone()).collect()
        }
        None => Vec::new(),
    };
    let mut header: Vec<&str> = vec!["method"];
    let bucket_refs: Vec<&str> = buckets.iter().map(|s| s.as_str()).collect();
    header.extend(bucket_refs);
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            let src = if by_coverage {
                &r.by_coverage
            } else {
                &r.by_distance
            };
            let mut row = vec![r.name.clone()];
            row.extend(src.iter().map(|b| {
                let v = if eq4 { b.accuracy_eq4 } else { b.accuracy_eq1 };
                format!("{v:.1}")
            }));
            row
        })
        .collect();
    render_table(title, &header, &rows)
}

/// Figure 12 (running time) report for one bucketing dimension.
pub fn report_runtime(title: &str, results: &[MethodResult], by_coverage: bool) -> String {
    let buckets: Vec<String> = match results.first() {
        Some(r) => {
            let src = if by_coverage {
                &r.by_coverage
            } else {
                &r.by_distance
            };
            src.iter().map(|b| b.label.clone()).collect()
        }
        None => Vec::new(),
    };
    let mut header: Vec<&str> = vec!["method"];
    let bucket_refs: Vec<&str> = buckets.iter().map(|s| s.as_str()).collect();
    header.extend(bucket_refs);
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            let src = if by_coverage {
                &r.by_coverage
            } else {
                &r.by_distance
            };
            let mut row = vec![r.name.clone()];
            row.extend(src.iter().map(|b| format!("{:.0}", b.mean_runtime_us)));
            row
        })
        .collect();
    render_table(title, &header, &rows)
}

/// Figure 13 report.
pub fn report_fig13(name: &str, cmp: &ExternalComparison) -> String {
    let mut rows: Vec<Vec<String>> = Vec::new();
    for (label, l2r, ext) in cmp.by_distance.iter().chain(cmp.by_coverage.iter()) {
        rows.push(vec![
            label.clone(),
            format!("{l2r:.1}"),
            format!("{ext:.1}"),
        ]);
    }
    render_table(
        &format!("Figure 13 — L2R vs external routing service ({name})"),
        &["bucket", "L2R (%)", "External (%)"],
        &rows,
    )
}

/// Offline processing time report.
pub fn report_offline(name: &str, rows: &[OfflineRow]) -> String {
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| vec![r.stage.to_string(), format!("{:.1}", r.time_ms)])
        .collect();
    render_table(
        &format!("Offline processing time ({name})"),
        &["stage", "time (ms)"],
        &table_rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_table_aligns_columns() {
        let out = render_table(
            "demo",
            &["a", "long-header"],
            &[
                vec!["1".to_string(), "2".to_string()],
                vec!["wide-cell".to_string(), "x".to_string()],
            ],
        );
        assert!(out.contains("## demo"));
        assert!(out.contains("long-header"));
        // Title, header, separator and two rows.
        assert_eq!(out.lines().filter(|l| !l.is_empty()).count(), 5);
    }

    #[test]
    fn reports_contain_expected_labels() {
        let dist = DistanceDistribution {
            bounds_km: vec![10.0],
            counts: vec![3, 1],
        };
        let t2 = report_table2("D1", &dist);
        assert!(t2.contains("Table II"));
        assert!(t2.contains("(0,10]"));

        let fig9a = report_fig9a(
            "D1",
            &[Fig9aPoint {
                partitions_used: 1,
                accuracy: 55.0,
                null_rate: 0.2,
            }],
        );
        assert!(fig9a.contains("1X"));
        assert!(fig9a.contains("55.0"));

        let offline = report_offline(
            "D1",
            &[OfflineRow {
                stage: "clustering",
                time_ms: 12.5,
            }],
        );
        assert!(offline.contains("clustering"));
        assert!(offline.contains("12.5"));
    }
}
