//! Per-table / per-figure experiment drivers.
//!
//! Every public function regenerates the data behind one table or figure of
//! the paper's evaluation (Section VII); the `reproduce` binary in
//! `l2r-bench` prints them and `EXPERIMENTS.md` records paper-vs-measured.

use std::collections::HashMap;
use std::time::Instant;

use l2r_core::L2r;
use l2r_preference::{
    learn_per_path_preferences, transfer_preferences, LearnConfig, Preference, TransferConfig,
};
use l2r_region_graph::{region_size_distribution, RegionEdgeId, RegionSizeBucket};
use l2r_road_network::{CostType, RoadNetwork};
use l2r_trajectory::{DistanceDistribution, MatchedTrajectory};

use crate::dataset::Dataset;

// ---------------------------------------------------------------------------
// Table II — trajectory distance distribution
// ---------------------------------------------------------------------------

/// Table II: the distance distribution of a workload's trajectories.
pub fn table2(
    net: &RoadNetwork,
    trajectories: &[MatchedTrajectory],
    bounds_km: Vec<f64>,
) -> DistanceDistribution {
    DistanceDistribution::compute(net, trajectories, bounds_km)
        .expect("workload trajectories are valid paths")
}

// ---------------------------------------------------------------------------
// Table IV — region sizes
// ---------------------------------------------------------------------------

/// Table IV: the region-size distribution of a fitted model.
pub fn table4(model: &L2r, area_bounds_km2: &[f64]) -> Vec<RegionSizeBucket> {
    region_size_distribution(model.region_graph().regions(), area_bounds_km2)
}

// ---------------------------------------------------------------------------
// Figure 6(a) — distribution of learned preferences
// ---------------------------------------------------------------------------

/// Result of the Figure 6(a) experiment.
#[derive(Debug, Clone)]
pub struct Fig6aResult {
    /// Percentage of T-edges whose observed paths all map to a single
    /// routing preference.
    pub pct_single_preference: f64,
    /// Histogram over the number of unique preferences per T-edge
    /// (index 0 = exactly one preference, 1 = two, 2 = three or more).
    pub unique_preference_histogram: [usize; 3],
    /// Distribution of the learned (edge-level) preferences over the master
    /// cost features DI / TT / FC.
    pub master_distribution: [usize; CostType::COUNT],
    /// Number of T-edges analysed.
    pub num_t_edges: usize,
}

/// Figure 6(a): how many distinct preferences the paths of each T-edge
/// exhibit, and how learned preferences distribute over cost features.
pub fn fig6a(model: &L2r, learn: &LearnConfig) -> Fig6aResult {
    let net = model.network();
    let rg = model.region_graph();
    let mut histogram = [0usize; 3];
    let mut num_t_edges = 0usize;
    for edge in rg.t_edges() {
        if edge.paths.is_empty() {
            continue;
        }
        num_t_edges += 1;
        let per_path = learn_per_path_preferences(net, &edge.paths, learn);
        let unique: std::collections::HashSet<_> =
            per_path.iter().map(|lp| lp.preference).collect();
        let bucket = match unique.len() {
            0 | 1 => 0,
            2 => 1,
            _ => 2,
        };
        histogram[bucket] += 1;
    }
    let mut master_distribution = [0usize; CostType::COUNT];
    for lp in model.learned_preferences().values() {
        master_distribution[lp.preference.master.index()] += 1;
    }
    Fig6aResult {
        pct_single_preference: histogram[0] as f64 / num_t_edges.max(1) as f64 * 100.0,
        unique_preference_histogram: histogram,
        master_distribution,
        num_t_edges,
    }
}

// ---------------------------------------------------------------------------
// Figure 6(b) — T-edge similarity vs. preference similarity
// ---------------------------------------------------------------------------

/// One similarity bucket of the Figure 6(b) experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig6bBucket {
    /// Lower bound of the T-edge similarity bucket (width 0.1).
    pub similarity_lo: f64,
    /// Mean preference (Jaccard) similarity of the pairs in the bucket, %.
    pub mean_preference_similarity: f64,
    /// Share of all analysed pairs that fall into this bucket, %.
    pub pair_percentage: f64,
    /// Number of pairs in the bucket.
    pub count: usize,
}

/// Figure 6(b): bucket T-edge pairs by their `reSim` similarity and report
/// the mean preference similarity per bucket plus the share of pairs.
///
/// At most `max_pairs` pairs are analysed (the first ones in a deterministic
/// order) to keep the quadratic pair enumeration bounded.
pub fn fig6b(model: &L2r, max_pairs: usize) -> Vec<Fig6bBucket> {
    let rg = model.region_graph();
    let learned = model.learned_preferences();
    let edges: Vec<RegionEdgeId> = {
        let mut e: Vec<RegionEdgeId> = learned.keys().copied().collect();
        e.sort();
        e
    };
    let descriptors: HashMap<RegionEdgeId, l2r_preference::RegionEdgeDescriptor> = edges
        .iter()
        .map(|id| {
            (
                *id,
                l2r_preference::RegionEdgeDescriptor::build(rg, rg.edge(*id)),
            )
        })
        .collect();
    let mut buckets = [(0usize, 0.0f64); 10];
    let mut total_pairs = 0usize;
    'outer: for i in 0..edges.len() {
        for j in (i + 1)..edges.len() {
            if total_pairs >= max_pairs {
                break 'outer;
            }
            total_pairs += 1;
            let sim = descriptors[&edges[i]].normalized_similarity(&descriptors[&edges[j]]);
            let pref_sim = learned[&edges[i]]
                .preference
                .jaccard(&learned[&edges[j]].preference);
            let b = ((sim * 10.0).floor() as usize).min(9);
            buckets[b].0 += 1;
            buckets[b].1 += pref_sim;
        }
    }
    buckets
        .iter()
        .enumerate()
        .map(|(i, (count, pref_sum))| Fig6bBucket {
            similarity_lo: i as f64 / 10.0,
            mean_preference_similarity: if *count > 0 {
                pref_sum / *count as f64 * 100.0
            } else {
                0.0
            },
            pair_percentage: *count as f64 / total_pairs.max(1) as f64 * 100.0,
            count: *count,
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Figure 9(a) — transfer accuracy vs. number of T-edge partitions
// ---------------------------------------------------------------------------

/// One measurement of the Figure 9(a) sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig9aPoint {
    /// Number of training partitions used (1 = "X", 2 = "2X", …).
    pub partitions_used: usize,
    /// Mean Jaccard accuracy of the transferred preferences against the
    /// held-out ground truth, %.
    pub accuracy: f64,
    /// Fraction of held-out edges that received a null preference.
    pub null_rate: f64,
}

/// Partitions the learned T-edge preferences into `k` deterministic folds.
fn partition_edges(model: &L2r, k: usize) -> Vec<Vec<RegionEdgeId>> {
    let mut ids: Vec<RegionEdgeId> = model.learned_preferences().keys().copied().collect();
    ids.sort();
    let mut folds = vec![Vec::new(); k.max(1)];
    for (i, id) in ids.into_iter().enumerate() {
        folds[i % k.max(1)].push(id);
    }
    folds
}

/// Figure 9(a): hold one fifth of the T-edge preferences out as ground truth
/// and transfer from 1, 2, 3 and 4 of the remaining partitions.
pub fn fig9a(model: &L2r, transfer: &TransferConfig) -> Vec<Fig9aPoint> {
    let folds = partition_edges(model, 5);
    let ground_truth: &Vec<RegionEdgeId> = &folds[4];
    let learned = model.learned_preferences();
    let mut out = Vec::new();
    for used in 1..=4usize {
        let labeled: HashMap<RegionEdgeId, Preference> = folds[..used]
            .iter()
            .flatten()
            .map(|id| (*id, learned[id].preference))
            .collect();
        let result = transfer_preferences(model.region_graph(), &labeled, ground_truth, transfer);
        let mut acc = 0.0;
        let mut n = 0usize;
        for id in ground_truth {
            if let Some(Some(p)) = result.preferences.get(id) {
                acc += p.jaccard(&learned[id].preference);
                n += 1;
            }
        }
        out.push(Fig9aPoint {
            partitions_used: used,
            accuracy: if n > 0 { acc / n as f64 * 100.0 } else { 0.0 },
            null_rate: result.null_rate,
        });
    }
    out
}

// ---------------------------------------------------------------------------
// Figure 9(b) — varying the adjacency-matrix reduction threshold amr
// ---------------------------------------------------------------------------

/// One measurement of the Figure 9(b) sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig9bPoint {
    /// The `amr` threshold.
    pub amr: f64,
    /// Mean Jaccard accuracy against the held-out ground truth, %.
    pub accuracy: f64,
    /// Percentage of held-out edges with a null transferred preference.
    pub null_rate: f64,
    /// Wall-clock time of the transfer, milliseconds.
    pub runtime_ms: f64,
    /// Number of similarity-graph edges kept.
    pub similarity_edges: usize,
}

/// Figure 9(b): transfer from 4 partitions to the held-out fifth while
/// varying `amr` over `amr_values`.
pub fn fig9b(model: &L2r, base: &TransferConfig, amr_values: &[f64]) -> Vec<Fig9bPoint> {
    let folds = partition_edges(model, 5);
    let ground_truth = &folds[4];
    let learned = model.learned_preferences();
    let labeled: HashMap<RegionEdgeId, Preference> = folds[..4]
        .iter()
        .flatten()
        .map(|id| (*id, learned[id].preference))
        .collect();
    amr_values
        .iter()
        .map(|amr| {
            let config = TransferConfig { amr: *amr, ..*base };
            let t0 = Instant::now();
            let result =
                transfer_preferences(model.region_graph(), &labeled, ground_truth, &config);
            let runtime_ms = t0.elapsed().as_secs_f64() * 1000.0;
            let mut acc = 0.0;
            let mut n = 0usize;
            for id in ground_truth {
                if let Some(Some(p)) = result.preferences.get(id) {
                    acc += p.jaccard(&learned[id].preference);
                    n += 1;
                }
            }
            Fig9bPoint {
                amr: *amr,
                accuracy: if n > 0 { acc / n as f64 * 100.0 } else { 0.0 },
                null_rate: result.null_rate * 100.0,
                runtime_ms,
                similarity_edges: result.similarity_edges,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Offline processing time (Section VII-C)
// ---------------------------------------------------------------------------

/// One row of the offline-processing-time report.
#[derive(Debug, Clone, PartialEq)]
pub struct OfflineRow {
    /// Pipeline stage name.
    pub stage: &'static str,
    /// Wall-clock time in milliseconds.
    pub time_ms: f64,
}

/// The offline processing times of a fitted model, in pipeline order
/// (clustering / region graph / learning / transfer / apply).
pub fn offline_times(model: &L2r) -> Vec<OfflineRow> {
    let s = model.stats();
    vec![
        OfflineRow {
            stage: "clustering",
            time_ms: s.clustering_time.as_secs_f64() * 1000.0,
        },
        OfflineRow {
            stage: "region-graph",
            time_ms: s.region_graph_time.as_secs_f64() * 1000.0,
        },
        OfflineRow {
            stage: "preference-learning",
            time_ms: s.learning_time.as_secs_f64() * 1000.0,
        },
        OfflineRow {
            stage: "preference-transfer",
            time_ms: s.transfer_time.as_secs_f64() * 1000.0,
        },
        OfflineRow {
            stage: "apply-to-b-edges",
            time_ms: s.apply_time.as_secs_f64() * 1000.0,
        },
    ]
}

// ---------------------------------------------------------------------------
// Ground-truth preference recovery (extension enabled by synthetic data)
// ---------------------------------------------------------------------------

/// Result of the preference-recovery experiment (not in the paper; possible
/// here because the synthetic workload has known latent preferences).
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryResult {
    /// Number of trajectory-covered district pairs evaluated.
    pub evaluated: usize,
    /// Mean Equation 1 similarity between the path L2R recommends between a
    /// covered district pair's centres and the path the pair's *latent*
    /// preference would drive, %.
    pub mean_similarity: f64,
    /// Share of covered pairs where that similarity is at least 0.9, %.
    pub pct_high_similarity: f64,
}

/// Measures how well the fitted model reproduces the *latent* (generator)
/// behaviour on trajectory-covered district pairs: for each covered pair the
/// latent preference defines the "true" driver path between the district
/// centres, and L2R's recommendation is compared against it.
///
/// This goes beyond the paper's evaluation (which only has observed
/// trajectories, not the underlying preferences) and is possible because the
/// synthetic workload's latent preferences are known.
pub fn preference_recovery(ds: &Dataset) -> RecoveryResult {
    let model = &ds.model;
    let net = model.network();
    let syn = &ds.synthetic;
    let mut evaluated = 0usize;
    let mut total_sim = 0.0;
    let mut high = 0usize;
    let mut pairs: Vec<(&(usize, usize), &l2r_datagen::LatentPreference)> =
        ds.workload.latent.iter().collect();
    pairs.sort_by_key(|(p, _)| **p);
    for (pair, latent) in pairs.into_iter().take(300) {
        let s = syn.districts[pair.0].center;
        let d = syn.districts[pair.1].center;
        let Some(latent_path) = l2r_datagen::route_with_preference(net, s, d, *latent) else {
            continue;
        };
        if latent_path.is_trivial() {
            continue;
        }
        let Some(route) = model.route(s, d) else {
            continue;
        };
        let sim = l2r_road_network::path_similarity(net, &latent_path, &route.path);
        evaluated += 1;
        total_sim += sim;
        if sim >= 0.9 {
            high += 1;
        }
    }
    RecoveryResult {
        evaluated,
        mean_similarity: total_sim / evaluated.max(1) as f64 * 100.0,
        pct_high_similarity: high as f64 / evaluated.max(1) as f64 * 100.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{build_dataset, DatasetSpec, Scale};

    fn dataset() -> Dataset {
        build_dataset(DatasetSpec::d1(Scale::Quick))
    }

    #[test]
    fn table2_distribution_covers_all_trajectories() {
        let ds = dataset();
        let dist = table2(
            &ds.synthetic.net,
            &ds.workload.trajectories,
            ds.spec.distance_bounds_km.clone(),
        );
        assert_eq!(dist.total(), ds.workload.trajectories.len());
        assert!((dist.percentages().iter().sum::<f64>() - 100.0).abs() < 1e-6);
    }

    #[test]
    fn table4_buckets_cover_all_regions() {
        let ds = dataset();
        let buckets = table4(&ds.model, &ds.spec.area_bounds_km2);
        let total: usize = buckets.iter().map(|b| b.count).sum();
        assert_eq!(total, ds.model.region_graph().num_regions());
    }

    #[test]
    fn fig6a_reports_mostly_single_preferences() {
        let ds = dataset();
        let r = fig6a(&ds.model, &ds.model.config().learn.clone());
        assert!(r.num_t_edges > 0);
        assert!(
            r.pct_single_preference > 50.0,
            "paper reports >70%, got {}",
            r.pct_single_preference
        );
        let hist_total: usize = r.unique_preference_histogram.iter().sum();
        assert_eq!(hist_total, r.num_t_edges);
        let master_total: usize = r.master_distribution.iter().sum();
        assert_eq!(master_total, ds.model.learned_preferences().len());
    }

    #[test]
    fn fig6b_buckets_sum_to_all_pairs() {
        let ds = dataset();
        let buckets = fig6b(&ds.model, 2000);
        assert_eq!(buckets.len(), 10);
        let pct: f64 = buckets.iter().map(|b| b.pair_percentage).sum();
        assert!(
            (pct - 100.0).abs() < 1.0,
            "pair percentages should sum to ~100, got {pct}"
        );
        for b in &buckets {
            assert!(b.mean_preference_similarity >= 0.0 && b.mean_preference_similarity <= 100.0);
        }
    }

    #[test]
    fn fig9a_accuracy_is_reported_for_all_partition_counts() {
        let ds = dataset();
        let pts = fig9a(&ds.model, &ds.model.config().transfer);
        assert_eq!(pts.len(), 4);
        for (i, p) in pts.iter().enumerate() {
            assert_eq!(p.partitions_used, i + 1);
            assert!(p.accuracy >= 0.0 && p.accuracy <= 100.0);
        }
    }

    #[test]
    fn fig9b_sweep_reports_tradeoffs() {
        let ds = dataset();
        let pts = fig9b(&ds.model, &ds.model.config().transfer, &[0.5, 0.7, 0.9]);
        assert_eq!(pts.len(), 3);
        // Similarity graphs get sparser as amr grows.
        assert!(pts[0].similarity_edges >= pts[2].similarity_edges);
        // Null rate does not decrease as amr grows.
        assert!(pts[2].null_rate >= pts[0].null_rate - 1e-9);
    }

    #[test]
    fn offline_times_are_positive() {
        let ds = dataset();
        let rows = offline_times(&ds.model);
        assert_eq!(rows.len(), 5);
        assert!(rows.iter().all(|r| r.time_ms >= 0.0));
        assert!(rows.iter().any(|r| r.time_ms > 0.0));
    }

    #[test]
    fn preference_recovery_beats_chance() {
        let ds = dataset();
        let r = preference_recovery(&ds);
        assert!(r.evaluated > 0);
        // The model's recommendations on covered district pairs should
        // largely reproduce what the latent preferences would drive.
        assert!(
            r.mean_similarity > 60.0,
            "L2R should reproduce the latent behaviour on covered pairs, got {:.1}%",
            r.mean_similarity
        );
        assert!(
            r.pct_high_similarity > 40.0,
            "high-similarity share {:.1}%",
            r.pct_high_similarity
        );
    }
}
