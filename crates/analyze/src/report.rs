//! Human and JSON reporters for a [`Report`].
//!
//! [`Report`]: crate::Report
//!
//! The JSON shape follows the `BENCH_*.json` convention of the bench
//! harness: a flat, hand-emitted object that CI uploads as an artifact and
//! diff-tools can track across commits — no serde in a dependency-free
//! workspace.

use crate::{Report, Waiver};

/// Renders the report for terminals: findings grouped by rule with
/// clickable `path:line:col` spans, then a one-line waiver summary.
pub fn human(report: &Report) -> String {
    let mut out = String::new();
    for (rule, findings) in report.by_rule() {
        let desc = report
            .rules
            .iter()
            .find(|(n, _)| n == rule)
            .map(|(_, d)| d.as_str())
            .unwrap_or("");
        out.push_str(&format!("{rule}: {} finding(s) — {desc}\n", findings.len()));
        for f in findings {
            out.push_str(&format!(
                "  {}:{}:{}: {}\n      {}\n",
                f.path, f.line, f.column, f.message, f.snippet
            ));
        }
    }
    let inline = report
        .waived
        .iter()
        .filter(|f| f.allowed == Some(Waiver::Inline))
        .count();
    let frozen = report.waived.len() - inline;
    out.push_str(&format!(
        "{} file(s) scanned, {} rule(s): {} violation(s), {} waived ({} inline allow, {} frozen-file)\n",
        report.files_scanned,
        report.rules.len(),
        report.findings.len(),
        report.waived.len(),
        inline,
        frozen,
    ));
    out
}

/// Renders the machine-readable report (`BENCH`-style JSON).
pub fn json(report: &Report) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"tool\": \"l2r-analyze\",\n");
    out.push_str(&format!(
        "  \"files_scanned\": {},\n  \"violations\": {},\n  \"waived\": {},\n",
        report.files_scanned,
        report.findings.len(),
        report.waived.len()
    ));
    out.push_str("  \"rules\": [\n");
    for (i, (name, desc)) in report.rules.iter().enumerate() {
        let by_rule = report.by_rule();
        let count = by_rule.get(name.as_str()).map(|v| v.len()).unwrap_or(0);
        out.push_str(&format!(
            "    {{\"name\": {}, \"violations\": {count}, \"description\": {}}}{}\n",
            escape(name),
            escape(desc),
            comma(i, report.rules.len())
        ));
    }
    out.push_str("  ],\n  \"findings\": [\n");
    for (i, f) in report.findings.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"column\": {}, \"message\": {}, \"snippet\": {}}}{}\n",
            escape(&f.rule),
            escape(&f.path),
            f.line,
            f.column,
            escape(&f.message),
            escape(&f.snippet),
            comma(i, report.findings.len())
        ));
    }
    out.push_str("  ],\n  \"waivers\": [\n");
    for (i, f) in report.waived.iter().enumerate() {
        let via = match f.allowed {
            Some(Waiver::FrozenFile) => "frozen-file",
            _ => "inline-allow",
        };
        out.push_str(&format!(
            "    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"via\": \"{via}\"}}{}\n",
            escape(&f.rule),
            escape(&f.path),
            f.line,
            comma(i, report.waived.len())
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn comma(i: usize, len: usize) -> &'static str {
    if i + 1 < len {
        ","
    } else {
        ""
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
