//! CLI for the workspace lint engine.
//!
//! ```sh
//! cargo run -p l2r-analyze -- check           # human report, exit 1 on violations
//! cargo run -p l2r-analyze -- check --json    # BENCH-style JSON on stdout
//! cargo run -p l2r-analyze -- rules           # list the shipped rules
//! ```

use l2r_analyze::{report, rules, Config};

fn usage(error: &str) -> ! {
    eprintln!(
        "error: {error}

usage: l2r-analyze <command> [flags]

commands:
  check          scan the workspace; exit 0 iff no unallowed findings
  rules          list every rule with its description

flags:
  --json         emit the machine-readable report (check only)
  --root <dir>   workspace root to scan (default: this build's workspace)"
    );
    std::process::exit(2);
}

fn main() {
    let mut command: Option<String> = None;
    let mut json = false;
    let mut root = l2r_analyze::default_root();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--root" => match args.next() {
                Some(dir) => root = dir.into(),
                None => usage("--root requires a directory argument"),
            },
            other if other.starts_with("--") => usage(&format!("unknown flag `{other}`")),
            other if command.is_none() => command = Some(other.to_string()),
            other => usage(&format!("unexpected argument `{other}`")),
        }
    }
    match command.as_deref() {
        Some("rules") => {
            for rule in rules::all_rules() {
                println!("{:28} {}", rule.name(), rule.description());
            }
        }
        Some("check") => {
            let config = Config::for_root(&root);
            let report = match l2r_analyze::run(&config) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("error: scanning {}: {e}", root.display());
                    std::process::exit(2);
                }
            };
            if json {
                print!("{}", report::json(&report));
            } else {
                print!("{}", report::human(&report));
            }
            if !report.findings.is_empty() {
                std::process::exit(1);
            }
        }
        Some(other) => usage(&format!("unknown command `{other}`")),
        None => usage("a command is required"),
    }
}
