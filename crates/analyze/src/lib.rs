//! `l2r-analyze` — the workspace's dependency-free static-analysis engine.
//!
//! PRs 2–8 accumulated invariants that only lived in after-the-fact tests
//! and reviewer memory: NaN-safe `total_cmp` ordering, SAFETY-commented
//! `unsafe`, FFI contained to one audited region, justified atomic
//! orderings, panic-free serving hot paths, and deterministic iteration in
//! the offline fit.  This crate turns each into a structural check that
//! runs three ways, so it cannot be skipped:
//!
//! * `cargo run -p l2r-analyze -- check` — the CI job (`--json` for the
//!   machine-readable report uploaded next to the BENCH artifacts);
//! * `reproduce -- analyze` — a violations section in the bench harness;
//! * `tests/static_analysis.rs` — a tier-1 test that walks the workspace
//!   and asserts zero unallowed findings, making `cargo test -q` the gate.
//!
//! ## Waivers
//!
//! A finding is waived per line with `// l2r: allow(<rule>[, <rule>…]) —
//! reason` on the offending line or in the comment block directly above
//! it.  Frozen files ([`Config::frozen`], e.g. the pre-PR baseline
//! `crates/bench/src/legacy.rs`) are waived wholesale.  Waivers are never
//! silent: they are counted and listed in both reporters.

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

pub mod lexer;
pub mod report;
pub mod rules;

use lexer::Line;

/// What the engine scans and what it forgives.
#[derive(Debug, Clone)]
pub struct Config {
    /// Workspace root; every reported path is relative to it.
    pub root: PathBuf,
    /// Path suffixes of frozen files: scanned, but every finding is
    /// pre-waived (and reported as such).
    pub frozen: Vec<String>,
    /// Path fragments that exclude a file from the walk entirely
    /// (generated output, vendored stand-ins, the rule fixture corpus).
    pub skip: Vec<String>,
}

impl Config {
    /// The workspace defaults: `legacy.rs` is the deliberately frozen
    /// pre-PR-2 baseline; `target/`, `vendor/` (offline stand-ins for
    /// crates.io, not first-party code) and fixture corpora are skipped.
    pub fn for_root(root: impl Into<PathBuf>) -> Config {
        Config {
            root: root.into(),
            frozen: vec!["crates/bench/src/legacy.rs".to_string()],
            skip: vec![
                "/target/".to_string(),
                "/vendor/".to_string(),
                "/.git/".to_string(),
                "/tests/fixtures/".to_string(),
            ],
        }
    }
}

/// How a recorded finding was waived.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Waiver {
    /// An inline `l2r: allow(rule)` on or directly above the line.
    Inline,
    /// The whole file is on the frozen allowlist.
    FrozenFile,
}

/// One rule violation, with its span.
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: String,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// 1-based byte column of the offending token.
    pub column: usize,
    pub message: String,
    /// The offending line's code, trimmed.
    pub snippet: String,
    /// `None` while unresolved / unallowed; set by the engine.
    pub allowed: Option<Waiver>,
}

/// The result of one engine run.
#[derive(Debug)]
pub struct Report {
    /// Unallowed findings — non-empty fails `check`, `reproduce` and the
    /// tier-1 test.
    pub findings: Vec<Finding>,
    /// Findings waived inline or by the frozen-file allowlist.
    pub waived: Vec<Finding>,
    pub files_scanned: usize,
    /// `(name, description)` of every rule that ran.
    pub rules: Vec<(String, String)>,
}

impl Report {
    /// Unallowed findings per rule (BTreeMap: deterministic order — the
    /// engine holds itself to its own standard).
    pub fn by_rule(&self) -> BTreeMap<&str, Vec<&Finding>> {
        let mut map: BTreeMap<&str, Vec<&Finding>> = BTreeMap::new();
        for r in &self.rules {
            map.entry(r.0.as_str()).or_default();
        }
        for f in &self.findings {
            map.entry(f.rule.as_str()).or_default().push(f);
        }
        map
    }
}

/// A lexed source file plus the per-line allow sets rules query.
pub struct SourceFile {
    /// Workspace-relative path (`/`-separated).
    pub rel: String,
    pub lines: Vec<Line>,
    /// Effective `l2r: allow(..)` rule names per line.
    allows: Vec<Vec<String>>,
}

impl SourceFile {
    /// Lexes `src` and resolves per-line allows.
    pub fn new(rel: impl Into<String>, src: &str) -> SourceFile {
        let lines = lexer::lex(src);
        let own: Vec<Vec<String>> = lines.iter().map(|l| parse_allows(&l.comment)).collect();
        // A line inherits allows from the contiguous run of comment-only
        // lines directly above it (plus its own trailing comment).
        let allows = (0..lines.len())
            .map(|i| {
                let mut eff = own[i].clone();
                let mut j = i;
                while j > 0 && comment_only(&lines[j - 1]) {
                    j -= 1;
                    eff.extend(own[j].iter().cloned());
                }
                eff
            })
            .collect();
        SourceFile {
            rel: rel.into(),
            lines,
            allows,
        }
    }

    /// Is `rule` allowed on 0-based line `i`?
    pub fn is_allowed(&self, i: usize, rule: &str) -> bool {
        self.allows[i].iter().any(|r| r == rule)
    }

    /// The comment text adjacent to line `i`: its own trailing comment
    /// plus the contiguous comment-only block directly above.
    pub fn comment_context(&self, i: usize) -> String {
        let mut parts = vec![self.lines[i].comment.clone()];
        let mut j = i;
        while j > 0 && comment_only(&self.lines[j - 1]) {
            j -= 1;
            parts.push(self.lines[j].comment.clone());
        }
        parts.join("\n")
    }
}

fn comment_only(line: &Line) -> bool {
    line.code.trim().is_empty() && !line.comment.trim().is_empty()
}

/// Extracts rule names from every `l2r: allow(a, b)` in a comment.
fn parse_allows(comment: &str) -> Vec<String> {
    let mut rules = Vec::new();
    let mut from = 0;
    const MARK: &str = "l2r: allow(";
    while let Some(pos) = comment[from..].find(MARK) {
        let start = from + pos + MARK.len();
        if let Some(close) = comment[start..].find(')') {
            for rule in comment[start..start + close].split(',') {
                let rule = rule.trim();
                if !rule.is_empty() {
                    rules.push(rule.to_string());
                }
            }
            from = start + close;
        } else {
            break;
        }
    }
    rules
}

/// Runs every rule over one in-memory file (the test seam: fixtures call
/// this directly).  Findings come back resolved against inline allows but
/// not against any frozen-file config.
pub fn analyze_source(rel: &str, src: &str) -> Vec<Finding> {
    let file = SourceFile::new(rel, src);
    let mut out = Vec::new();
    for rule in rules::all_rules() {
        if !rule.applies_to(rel) {
            continue;
        }
        let mut raw = Vec::new();
        rule.check(&file, &mut raw);
        for mut f in raw {
            if file.is_allowed(f.line - 1, &f.rule) {
                f.allowed = Some(Waiver::Inline);
            }
            out.push(f);
        }
    }
    out
}

/// Walks the workspace under `config.root` and runs every rule.
pub fn run(config: &Config) -> io::Result<Report> {
    let mut files = Vec::new();
    collect_rs_files(&config.root, &config.skip, &mut files)?;
    files.sort(); // deterministic report order, any filesystem
    let rule_set = rules::all_rules();

    let mut findings = Vec::new();
    let mut waived = Vec::new();
    for path in &files {
        let rel = rel_path(&config.root, path);
        let src = std::fs::read_to_string(path)?;
        let frozen = config.frozen.iter().any(|f| rel.ends_with(f));
        let file = SourceFile::new(rel, &src);
        for rule in &rule_set {
            if !rule.applies_to(&file.rel) {
                continue;
            }
            let mut raw = Vec::new();
            rule.check(&file, &mut raw);
            for mut f in raw {
                if file.is_allowed(f.line - 1, &f.rule) {
                    f.allowed = Some(Waiver::Inline);
                } else if frozen {
                    f.allowed = Some(Waiver::FrozenFile);
                }
                if f.allowed.is_some() {
                    waived.push(f);
                } else {
                    findings.push(f);
                }
            }
        }
    }
    Ok(Report {
        findings,
        waived,
        files_scanned: files.len(),
        rules: rule_set
            .iter()
            .map(|r| (r.name().to_string(), r.description().to_string()))
            .collect(),
    })
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

fn collect_rs_files(dir: &Path, skip: &[String], out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        // Normalise for fragment matching regardless of platform.
        let probe = format!(
            "/{}/",
            path.components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/")
        );
        if skip.iter().any(|s| probe.contains(s.as_str())) {
            continue;
        }
        if entry.file_type()?.is_dir() {
            collect_rs_files(&path, skip, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// The workspace root this binary was built in (two levels above the
/// crate manifest); `--root` overrides it at the CLI.
pub fn default_root() -> PathBuf {
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .unwrap_or(manifest)
        .to_path_buf()
}
