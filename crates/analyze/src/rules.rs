//! The rule set: each rule turns one PR 2–8 invariant into a structural
//! check.
//!
//! Rules ask line-shaped questions of a lexed [`SourceFile`] (comment- and
//! string-aware, see [`crate::lexer`]) and emit [`Finding`]s with a
//! `path:line:col` span.  Every rule can be waived per line with
//!
//! ```text
//! // l2r: allow(<rule-name>) — reason
//! ```
//!
//! on the offending line or in the comment block directly above it; the
//! engine (not the rule) resolves allows, so every waiver is still counted
//! and reported.  Frozen files (`Config::frozen`) are waived wholesale.

use crate::{Finding, SourceFile};

/// A single static check.
pub trait Rule {
    /// Rule name as used in `l2r: allow(<name>)` and reports.
    fn name(&self) -> &'static str;
    /// One-line description for `l2r-analyze rules` and the README table.
    fn description(&self) -> &'static str;
    /// Whether the rule runs on this workspace-relative path at all.
    fn applies_to(&self, rel: &str) -> bool;
    /// Scans one file, pushing raw findings (the engine resolves allows).
    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>);
}

/// Every shipped rule, in reporting order.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(FloatTotalCmp),
        Box::new(UnsafeNeedsSafety),
        Box::new(FfiContainment),
        Box::new(AtomicOrderingJustified),
        Box::new(NoPanicHotPath),
        Box::new(NondeterministicIteration),
    ]
}

/// Byte columns (0-based) where `token` occurs in `code` with non-ident
/// characters (or the line edge) on both sides.
fn token_columns(code: &str, token: &str) -> Vec<usize> {
    let bytes = code.as_bytes();
    let mut cols = Vec::new();
    let mut from = 0;
    while let Some(pos) = code[from..].find(token) {
        let at = from + pos;
        let before_ok = at == 0 || !is_ident_byte(bytes[at - 1]);
        let end = at + token.len();
        let after_ok = end >= bytes.len() || !is_ident_byte(bytes[end]);
        if before_ok && after_ok {
            cols.push(at);
        }
        from = at + token.len().max(1);
    }
    cols
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

fn finding(
    rule: &dyn Rule,
    file: &SourceFile,
    line: usize,
    col: usize,
    message: String,
) -> Finding {
    Finding {
        rule: rule.name().to_string(),
        path: file.rel.clone(),
        line: line + 1,
        column: col + 1,
        message,
        snippet: file.lines[line].code.trim().to_string(),
        allowed: None,
    }
}

// ---------------------------------------------------------------------------
// float-total-cmp
// ---------------------------------------------------------------------------

/// PR 4's invariant: float comparators must use `total_cmp`, never
/// `partial_cmp` — a NaN reaching `partial_cmp(..).unwrap_or(Equal)` makes
/// heaps and sorts silently non-deterministic.  The three `PartialOrd`
/// shims that delegate to a total order carry explicit allows (their
/// audit trail), and the frozen pre-PR baseline `crates/bench/src/legacy.rs`
/// is waived by config.
pub struct FloatTotalCmp;

impl Rule for FloatTotalCmp {
    fn name(&self) -> &'static str {
        "float-total-cmp"
    }
    fn description(&self) -> &'static str {
        "ban partial_cmp-based comparators/sorts; float ordering must go through total_cmp (NaN-safe, PR 4)"
    }
    fn applies_to(&self, _rel: &str) -> bool {
        true
    }
    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        for (i, line) in file.lines.iter().enumerate() {
            for col in token_columns(&line.code, "partial_cmp") {
                out.push(finding(
                    self,
                    file,
                    i,
                    col,
                    "partial_cmp is NaN-unsafe in comparators; use f64::total_cmp \
                     (or allow an Ord shim explicitly)"
                        .to_string(),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// unsafe-needs-safety
// ---------------------------------------------------------------------------

/// Every `unsafe` block, fn, or impl must carry a `// SAFETY:` comment on
/// the same line or in the comment block directly above, stating the
/// invariant that makes it sound (mirrors `clippy::undocumented_unsafe_blocks`,
/// but comment- and raw-string-aware and CI-gated through `cargo test`).
pub struct UnsafeNeedsSafety;

impl Rule for UnsafeNeedsSafety {
    fn name(&self) -> &'static str {
        "unsafe-needs-safety"
    }
    fn description(&self) -> &'static str {
        "every unsafe block/fn/impl needs an adjacent `// SAFETY:` justification"
    }
    fn applies_to(&self, _rel: &str) -> bool {
        true
    }
    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        for (i, line) in file.lines.iter().enumerate() {
            for col in token_columns(&line.code, "unsafe") {
                if !file.comment_context(i).contains("SAFETY:") {
                    out.push(finding(
                        self,
                        file,
                        i,
                        col,
                        "unsafe without an adjacent `// SAFETY:` comment stating why it is sound"
                            .to_string(),
                    ));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// ffi-containment
// ---------------------------------------------------------------------------

/// The file that is allowed to declare foreign functions, and only between
/// its `l2r: ffi-region begin` / `end` marker comments.
const FFI_FILE: &str = "crates/serve/src/reactor.rs";

/// Hand-declared FFI stays in one audited place: the `poll(2)` sys region
/// of the reactor (the workspace is dependency-free, so there is no libc
/// crate to lean on).  A second `extern` block elsewhere would dodge that
/// audit.
pub struct FfiContainment;

impl Rule for FfiContainment {
    fn name(&self) -> &'static str {
        "ffi-containment"
    }
    fn description(&self) -> &'static str {
        "extern \"C\" declarations only inside the marked sys region of crates/serve/src/reactor.rs"
    }
    fn applies_to(&self, _rel: &str) -> bool {
        true
    }
    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        let designated = file.rel.ends_with(FFI_FILE);
        let mut in_region = false;
        for (i, line) in file.lines.iter().enumerate() {
            if line.comment.contains("l2r: ffi-region begin") {
                in_region = true;
            }
            if line.comment.contains("l2r: ffi-region end") {
                in_region = false;
            }
            // String contents are blanked by the lexer, so every foreign
            // ABI declaration uniformly lexes as `extern ""`.
            if let Some(col) = line.code.find("extern \"") {
                if !(designated && in_region) {
                    out.push(finding(
                        self,
                        file,
                        i,
                        col,
                        format!(
                            "foreign declarations belong in the `l2r: ffi-region` of {FFI_FILE}"
                        ),
                    ));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// atomic-ordering-justified
// ---------------------------------------------------------------------------

/// Receiver names that conventionally carry cross-thread *synchronisation*
/// (not just counting); `Relaxed` on these needs an explicit justification
/// because it is exactly the shape of a silent ordering regression.
const SYNC_FLAG_NAMES: &[&str] = &[
    "shutdown", "stop", "stopped", "armed", "closing", "draining", "drain", "dead", "running",
    "halted", "done", "ready",
];

const NON_RELAXED: &[&str] = &[
    "Ordering::SeqCst",
    "Ordering::AcqRel",
    "Ordering::Acquire",
    "Ordering::Release",
];

/// PR 6–8 accumulated 85 atomic call sites.  Orderings are load-bearing
/// and silent to review: a non-`Relaxed` ordering claims a happens-before
/// edge (say which), and `Relaxed` on a synchronisation flag claims there
/// isn't one (say why that is safe).  The justification is a comment
/// containing `ordering:` on the line or directly above it.
pub struct AtomicOrderingJustified;

impl AtomicOrderingJustified {
    /// Does the comment context contain a justification marker
    /// (`ordering:`)?  `Ordering::X` mentioned inside a comment must not
    /// count, so the colon must not be doubled.
    fn justified(context: &str) -> bool {
        let lower = context.to_lowercase();
        let mut from = 0;
        while let Some(pos) = lower[from..].find("ordering:") {
            let at = from + pos;
            if lower.as_bytes().get(at + "ordering:".len()) != Some(&b':') {
                return true;
            }
            from = at + "ordering:".len();
        }
        false
    }

    /// The last identifier of the receiver of the first atomic op on the
    /// line (`self.stats.shutdown.load(..)` → `shutdown`;
    /// `draws[site].fetch_add(..)` → `draws`).
    fn receiver_ident(code: &str) -> Option<String> {
        const OPS: &[&str] = &[
            ".load(",
            ".store(",
            ".swap(",
            ".fetch_",
            ".compare_exchange",
        ];
        let dot = OPS.iter().filter_map(|op| code.find(op)).min()?;
        let bytes = code.as_bytes();
        let mut i = dot;
        // Skip one index group: `name[expr].load(..)`.
        if i > 0 && bytes[i - 1] == b']' {
            let mut depth = 0i32;
            while i > 0 {
                i -= 1;
                match bytes[i] {
                    b']' => depth += 1,
                    b'[' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
            }
        }
        let end = i;
        while i > 0 && is_ident_byte(bytes[i - 1]) {
            i -= 1;
        }
        (i < end).then(|| code[i..end].to_string())
    }
}

impl Rule for AtomicOrderingJustified {
    fn name(&self) -> &'static str {
        "atomic-ordering-justified"
    }
    fn description(&self) -> &'static str {
        "non-Relaxed atomic orderings (and Relaxed on named synchronisation flags) need an `ordering:` comment"
    }
    fn applies_to(&self, _rel: &str) -> bool {
        true
    }
    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        for (i, line) in file.lines.iter().enumerate() {
            let code = &line.code;
            let non_relaxed = NON_RELAXED
                .iter()
                .filter_map(|t| code.find(t).map(|c| (c, *t)))
                .min();
            let relaxed_sync = code.find("Ordering::Relaxed").and_then(|col| {
                let recv = Self::receiver_ident(code)?;
                SYNC_FLAG_NAMES
                    .contains(&recv.as_str())
                    .then_some((col, recv))
            });
            let Some((col, what)) = non_relaxed
                .map(|(c, t)| (c, format!("`{t}` claims a happens-before edge")))
                .or(relaxed_sync.map(|(c, recv)| {
                    (
                        c,
                        format!("`Ordering::Relaxed` on synchronisation flag `{recv}`"),
                    )
                }))
            else {
                continue;
            };
            if !Self::justified(&file.comment_context(i)) {
                out.push(finding(
                    self,
                    file,
                    i,
                    col,
                    format!("{what}; add an `// ordering:` comment saying why"),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// no-panic-hot-path
// ---------------------------------------------------------------------------

/// Request-path files where a panic is an outage, not a control-flow tool
/// (PR 7's `catch_unwind` isolation is the last line of defence, and every
/// caught panic discards a scratch and shows up as an internal error).
const HOT_PATH_FILES: &[&str] = &[
    "crates/serve/src/reactor.rs",
    "crates/serve/src/frame.rs",
    "crates/serve/src/queue.rs",
];

const PANIC_TOKENS: &[&str] = &[
    ".unwrap()",
    ".expect(",
    "panic!",
    "unreachable!",
    "todo!",
    "unimplemented!",
];

/// Bans panicking constructs in the serving hot path (test modules are
/// exempt — assertions are what tests are for).
pub struct NoPanicHotPath;

impl Rule for NoPanicHotPath {
    fn name(&self) -> &'static str {
        "no-panic-hot-path"
    }
    fn description(&self) -> &'static str {
        "unwrap/expect/panic!/unreachable! banned in the serving request path (reactor/frame/queue)"
    }
    fn applies_to(&self, rel: &str) -> bool {
        HOT_PATH_FILES.iter().any(|f| rel.ends_with(f))
    }
    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        for (i, line) in file.lines.iter().enumerate() {
            if line.in_test {
                continue;
            }
            for token in PANIC_TOKENS {
                if let Some(col) = line.code.find(token) {
                    out.push(finding(
                        self,
                        file,
                        i,
                        col,
                        format!(
                            "{} in a request path: return an error (or allow with the invariant \
                             that makes it unreachable)",
                            token.trim_start_matches('.')
                        ),
                    ));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// nondeterministic-iteration
// ---------------------------------------------------------------------------

/// Crates whose outputs must be bit-identical run to run (PR 2's
/// deterministic parallel fit; region-transfer correctness depends on it).
const DETERMINISTIC_CRATES: &[&str] = &[
    "crates/core/src/",
    "crates/region-graph/src/",
    "crates/preference/src/",
];

const ITER_METHODS: &[&str] = &[
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".into_iter()",
    ".into_keys()",
    ".into_values()",
    ".drain(",
    ".retain(",
];

/// Flags iteration over `HashMap`/`HashSet` bindings in the offline-fit
/// crates: hash iteration order varies between runs and silently breaks
/// the bit-exactness tests.  Sites that sort afterwards (or are
/// order-insensitive) carry an allow with a sortedness note.
///
/// Detection is intra-file: pass 1 collects identifiers declared with a
/// `HashMap`/`HashSet` type (let-bindings, struct fields, fn params on
/// their own line); pass 2 flags iteration through those identifiers.
/// Iteration over values returned by method calls is out of reach — the
/// fixture corpus documents the contract.
pub struct NondeterministicIteration;

impl NondeterministicIteration {
    fn tracked_names(file: &SourceFile) -> Vec<String> {
        let mut names = Vec::new();
        for line in &file.lines {
            let code = line.code.trim_start();
            if !code.contains("HashMap") && !code.contains("HashSet") {
                continue;
            }
            // `let [mut] name` bindings (type or initialiser mentions the
            // hash collection somewhere on the line).
            if let Some(rest) = code.strip_prefix("let ") {
                let rest = rest.strip_prefix("mut ").unwrap_or(rest);
                if let Some(name) = leading_ident(rest) {
                    names.push(name);
                }
                continue;
            }
            // `name: HashMap<..>` struct fields / fn params on their own
            // line (visibility prefixes stripped).
            let rest = code
                .strip_prefix("pub(crate) ")
                .or_else(|| code.strip_prefix("pub "))
                .unwrap_or(code);
            if let Some(name) = leading_ident(rest) {
                let after = &rest[name.len()..];
                let after = after.trim_start();
                if let Some(ty) = after.strip_prefix(':') {
                    if ty.contains("HashMap") || ty.contains("HashSet") {
                        names.push(name);
                    }
                }
            }
        }
        names.sort();
        names.dedup();
        names
    }

    /// The receiver identifier of an iteration method ending at byte `dot`
    /// (the `.`); `None` when the receiver is a call result or otherwise
    /// not a plain binding/field/index chain.
    fn receiver_before(code: &str, dot: usize) -> Option<String> {
        let bytes = code.as_bytes();
        let mut i = dot;
        if i == 0 {
            return None;
        }
        if bytes[i - 1] == b')' {
            return None; // method-call result: unresolvable intra-file
        }
        if bytes[i - 1] == b']' {
            let mut depth = 0i32;
            while i > 0 {
                i -= 1;
                match bytes[i] {
                    b']' => depth += 1,
                    b'[' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
            }
        }
        let end = i;
        while i > 0 && is_ident_byte(bytes[i - 1]) {
            i -= 1;
        }
        (i < end).then(|| code[i..end].to_string())
    }
}

impl Rule for NondeterministicIteration {
    fn name(&self) -> &'static str {
        "nondeterministic-iteration"
    }
    fn description(&self) -> &'static str {
        "unordered HashMap/HashSet iteration in the offline-fit crates (core, region-graph, preference) needs a sortedness note"
    }
    fn applies_to(&self, rel: &str) -> bool {
        DETERMINISTIC_CRATES.iter().any(|c| rel.contains(c))
    }
    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        let tracked = Self::tracked_names(file);
        if tracked.is_empty() {
            return;
        }
        for (i, line) in file.lines.iter().enumerate() {
            if line.in_test {
                continue;
            }
            let code = &line.code;
            let mut hit: Option<(usize, String)> = None;
            for m in ITER_METHODS {
                let mut from = 0;
                while let Some(pos) = code[from..].find(m) {
                    let dot = from + pos;
                    if let Some(recv) = Self::receiver_before(code, dot) {
                        if tracked.contains(&recv) && hit.as_ref().is_none_or(|(c, _)| dot < *c) {
                            hit = Some((dot, recv));
                        }
                    }
                    from = dot + m.len();
                }
            }
            // `for x in map` / `for (k, v) in &map` without a method call.
            if hit.is_none() && code.contains("for ") {
                if let Some(pos) = code.rfind(" in ") {
                    let expr = code[pos + 4..].trim_end_matches('{').trim();
                    let expr = expr.trim_start_matches('&');
                    let expr = expr.strip_prefix("mut ").unwrap_or(expr);
                    let last = expr.rsplit('.').next().unwrap_or(expr);
                    if !last.is_empty()
                        && last.bytes().all(is_ident_byte)
                        && tracked.contains(&last.to_string())
                    {
                        hit = Some((pos + 4, last.to_string()));
                    }
                }
            }
            if let Some((col, recv)) = hit {
                out.push(finding(
                    self,
                    file,
                    i,
                    col,
                    format!(
                        "iteration over unordered hash collection `{recv}` in a \
                         deterministic-fit crate; sort first or allow with a sortedness note"
                    ),
                ));
            }
        }
    }
}

/// The identifier at the start of `s`, if any.
fn leading_ident(s: &str) -> Option<String> {
    let end = s.bytes().position(|b| !is_ident_byte(b)).unwrap_or(s.len());
    (end > 0 && !s.as_bytes()[0].is_ascii_digit()).then(|| s[..end].to_string())
}
