//! A hand-rolled, single-pass Rust *line* lexer.
//!
//! The engine does not need a full parse tree — every rule in
//! [`crate::rules`] asks line-shaped questions ("does this line's *code*
//! mention `partial_cmp`?", "is there a `SAFETY:` comment next to this
//! `unsafe`?").  What it must never do is get those answers from text that
//! is actually inside a string literal or a comment — a doc example
//! containing `unsafe`, or `r#"…partial_cmp…"#` in a test fixture, must
//! not fire a rule.  So the lexer walks the file once, character by
//! character, and splits every line into
//!
//! * `code` — the line with comments removed and the *contents* of
//!   string/char literals blanked (the delimiting quotes survive, so the
//!   code shape stays recognisable), and
//! * `comment` — the text of any `//`, `///`, `//!` or `/* … */` comment
//!   that touches the line (block comments contribute to every line they
//!   span).
//!
//! It understands the token shapes that trip naive scanners:
//!
//! * raw strings `r"…"`, `r#"…"#` (any hash depth), byte strings `b"…"`,
//!   `br#"…"#` — including raw strings that *contain* `"` or `unsafe`;
//! * raw identifiers (`r#match`) — not raw strings;
//! * nested block comments (`/* outer /* inner */ still comment */`),
//!   which Rust permits and many greps get wrong;
//! * char literals vs. lifetimes (`'x'` vs. `'a`), including escapes;
//! * brace depth, tracked over *code* only, so region-shaped rules
//!   (`#[cfg(test)]` modules, FFI regions) can bracket spans of lines.

/// One source line, split into its code and comment parts.
#[derive(Debug, Clone, Default)]
pub struct Line {
    /// Code text: comments stripped, literal contents blanked.
    pub code: String,
    /// Comment text touching this line (line + block comments).
    pub comment: String,
    /// Brace depth (over code) at the start of the line.
    pub depth_start: u32,
    /// Brace depth (over code) at the end of the line.
    pub depth_end: u32,
    /// Inside a `#[cfg(test)]`-gated `mod` region.
    pub in_test: bool,
}

/// Lexer mode between characters.
enum Mode {
    Code,
    /// Inside `/* … */`; the payload is the nesting depth.
    Block(u32),
    /// Inside a `"…"` string (escapes honoured).
    Str,
    /// Inside an `r##"…"##` raw string; payload is the hash count.
    RawStr(u32),
}

/// Splits `src` into lexed [`Line`]s and marks `#[cfg(test)]` mod regions.
pub fn lex(src: &str) -> Vec<Line> {
    let cs: Vec<char> = src.chars().collect();
    let mut lines: Vec<Line> = Vec::new();
    let mut cur = Line::default();
    let mut depth: u32 = 0;
    cur.depth_start = depth;
    let mut mode = Mode::Code;
    let mut i = 0usize;

    // Closes the current line and starts the next one.
    macro_rules! newline {
        () => {{
            cur.depth_end = depth;
            lines.push(std::mem::take(&mut cur));
            cur.depth_start = depth;
        }};
    }

    while i < cs.len() {
        let c = cs[i];
        if c == '\n' {
            newline!();
            i += 1;
            continue;
        }
        match mode {
            Mode::Code => {
                let next = cs.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    // Line comment: the rest of the line is comment text.
                    let mut j = i + 2;
                    // Doc-comment sigils are not part of the text.
                    while matches!(cs.get(j), Some('/') | Some('!')) {
                        j += 1;
                    }
                    while j < cs.len() && cs[j] != '\n' {
                        cur.comment.push(cs[j]);
                        j += 1;
                    }
                    i = j;
                } else if c == '/' && next == Some('*') {
                    mode = Mode::Block(1);
                    i += 2;
                } else if c == '"' {
                    cur.code.push('"');
                    mode = Mode::Str;
                    i += 1;
                } else if is_raw_string_start(&cs, i) {
                    // r"…" / r#"…"# / br#"…"# — count the hashes.
                    let mut j = i;
                    while cs[j] != '"' {
                        cur.code.push(cs[j]);
                        j += 1;
                    }
                    let hashes = cs[i..j].iter().filter(|c| **c == '#').count() as u32;
                    cur.code.push('"');
                    mode = Mode::RawStr(hashes);
                    i = j + 1;
                } else if c == 'b' && next == Some('\'') {
                    // Byte literal b'…'.
                    cur.code.push('b');
                    i += 1;
                } else if c == '\'' {
                    if let Some(end) = char_literal_end(&cs, i) {
                        // Blank the contents, keep the quotes.
                        cur.code.push('\'');
                        cur.code.push('\'');
                        i = end + 1;
                    } else {
                        // A lifetime; emit as code.
                        cur.code.push('\'');
                        i += 1;
                    }
                } else {
                    if c == '{' {
                        depth += 1;
                    } else if c == '}' {
                        depth = depth.saturating_sub(1);
                    }
                    cur.code.push(c);
                    i += 1;
                }
            }
            Mode::Block(d) => {
                let next = cs.get(i + 1).copied();
                if c == '/' && next == Some('*') {
                    mode = Mode::Block(d + 1); // Rust block comments nest
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    mode = if d == 1 {
                        Mode::Code
                    } else {
                        Mode::Block(d - 1)
                    };
                    i += 2;
                } else {
                    cur.comment.push(c);
                    i += 1;
                }
            }
            Mode::Str => {
                if c == '\\' {
                    i += 2; // skip the escaped character (blanked anyway)
                } else if c == '"' {
                    cur.code.push('"');
                    mode = Mode::Code;
                    i += 1;
                } else {
                    i += 1; // blank string contents
                }
            }
            Mode::RawStr(hashes) => {
                if c == '"' && closes_raw_string(&cs, i, hashes) {
                    cur.code.push('"');
                    for _ in 0..hashes {
                        cur.code.push('#');
                    }
                    mode = Mode::Code;
                    i += 1 + hashes as usize;
                } else {
                    i += 1; // blank raw-string contents
                }
            }
        }
    }
    // Final line (files without a trailing newline still lex fully).
    if !cur.code.is_empty() || !cur.comment.is_empty() {
        newline!();
    }

    mark_test_regions(&mut lines);
    lines
}

/// Is `cs[i..]` the start of a raw (byte) string literal — `r"`, `r#…#"`,
/// `br"`, `br#…#"` — and not a raw identifier (`r#match`) or the tail of a
/// longer identifier (`carr#…`)?
fn is_raw_string_start(cs: &[char], i: usize) -> bool {
    if i > 0 && is_ident_char(cs[i - 1]) {
        return false; // …r is the tail of an identifier
    }
    let mut j = i;
    if cs[j] == 'b' {
        j += 1;
    }
    if cs.get(j) != Some(&'r') {
        return false;
    }
    j += 1;
    while cs.get(j) == Some(&'#') {
        j += 1;
    }
    cs.get(j) == Some(&'"')
}

/// Does the `"` at `cs[i]` close a raw string opened with `hashes` hashes?
fn closes_raw_string(cs: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| cs.get(i + k) == Some(&'#'))
}

/// If `cs[i]` (a `'`) opens a char literal, returns the index of its
/// closing `'`; `None` means it is a lifetime.
fn char_literal_end(cs: &[char], i: usize) -> Option<usize> {
    match cs.get(i + 1)? {
        '\\' => {
            // Escaped char literal: scan for the closing quote.
            let mut j = i + 2;
            while j < cs.len() && j < i + 12 {
                if cs[j] == '\\' {
                    j += 2;
                    continue;
                }
                if cs[j] == '\'' {
                    return Some(j);
                }
                j += 1;
            }
            None
        }
        _ => {
            // 'x' is a char literal; 'x anything-else is a lifetime.
            if cs.get(i + 2) == Some(&'\'') {
                Some(i + 2)
            } else {
                None
            }
        }
    }
}

pub(crate) fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Marks every line inside a `#[cfg(test)] mod … { … }` region.
///
/// `#[cfg(test)]` on non-`mod` items (a lone `use`, a helper fn) does not
/// open a region — only the conventional test module does.
fn mark_test_regions(lines: &mut [Line]) {
    let mut i = 0;
    while i < lines.len() {
        if !lines[i].code.contains("#[cfg(test)]") {
            i += 1;
            continue;
        }
        // The `mod` may share the attribute's line or follow within the
        // next few lines (more attributes / comments in between).
        let mut mod_line = None;
        for (j, line) in lines.iter().enumerate().skip(i).take(5) {
            let code = line.code.trim_start();
            if code.contains("mod ") || code.starts_with("mod ") {
                mod_line = Some(j);
                break;
            }
        }
        let Some(m) = mod_line else {
            i += 1;
            continue;
        };
        let base = lines[m].depth_start;
        let mut entered = false;
        let mut j = m;
        while j < lines.len() {
            lines[j].in_test = true;
            if lines[j].depth_end > base {
                entered = true; // the mod's `{` has been seen
            }
            // The region ends on the line whose closing brace returns the
            // depth to the base.
            if entered && lines[j].depth_end <= base {
                break;
            }
            j += 1;
        }
        i = j + 1;
    }
}
