//! Fixture-driven rule tests: every rule must fire on its firing example,
//! respect `l2r: allow(...)`, and stay silent on the look-alikes (strings,
//! comments, test modules).

use l2r_analyze::{analyze_source, Finding, Waiver};

/// `(unallowed, inline-waived)` finding counts for one rule.
fn counts(findings: &[Finding], rule: &str) -> (usize, usize) {
    let of_rule: Vec<&Finding> = findings.iter().filter(|f| f.rule == rule).collect();
    let waived = of_rule
        .iter()
        .filter(|f| f.allowed == Some(Waiver::Inline))
        .count();
    (of_rule.len() - waived, waived)
}

#[test]
fn float_total_cmp_fires_and_respects_allow() {
    let findings = analyze_source(
        "crates/x/src/lib.rs",
        include_str!("fixtures/float_total_cmp.rs"),
    );
    assert_eq!(counts(&findings, "float-total-cmp"), (1, 1));
    // The string/raw-string/comment mentions contributed nothing.
    assert!(findings
        .iter()
        .all(|f| f.rule == "float-total-cmp" && f.snippet.contains("sort_by")));
}

#[test]
fn unsafe_needs_safety_fires_and_respects_safety_and_allow() {
    let findings = analyze_source(
        "crates/x/src/lib.rs",
        include_str!("fixtures/unsafe_needs_safety.rs"),
    );
    // Three unsafe blocks: one bare (fires), one SAFETY-commented (clean),
    // one allowed (waived).
    assert_eq!(counts(&findings, "unsafe-needs-safety"), (1, 1));
}

#[test]
fn ffi_containment_fires_outside_the_region() {
    let findings = analyze_source(
        "crates/x/src/lib.rs",
        include_str!("fixtures/ffi_containment.rs"),
    );
    assert_eq!(counts(&findings, "ffi-containment"), (1, 1));
}

#[test]
fn ffi_containment_accepts_the_marked_reactor_region() {
    let findings = analyze_source(
        "crates/serve/src/reactor.rs",
        include_str!("fixtures/ffi_region.rs"),
    );
    assert_eq!(counts(&findings, "ffi-containment"), (0, 0));
}

#[test]
fn ffi_region_markers_do_not_travel_to_other_files() {
    // The same marked source under any other path still fires: the region
    // is only honoured in the designated file.
    let findings = analyze_source(
        "crates/x/src/lib.rs",
        include_str!("fixtures/ffi_region.rs"),
    );
    assert_eq!(counts(&findings, "ffi-containment"), (1, 0));
}

#[test]
fn atomic_ordering_fires_and_respects_comments_and_allow() {
    let findings = analyze_source(
        "crates/x/src/lib.rs",
        include_str!("fixtures/atomic_ordering.rs"),
    );
    // Bare Acquire + bare Relaxed-on-`stop` fire; the two `ordering:`
    // commented sites are clean; the allowed site is waived; the Relaxed
    // stats counter never fires.
    assert_eq!(counts(&findings, "atomic-ordering-justified"), (2, 1));
}

#[test]
fn no_panic_hot_path_fires_only_outside_test_modules() {
    let findings = analyze_source(
        "crates/serve/src/frame.rs",
        include_str!("fixtures/no_panic_hot_path.rs"),
    );
    assert_eq!(counts(&findings, "no-panic-hot-path"), (1, 1));
}

#[test]
fn no_panic_hot_path_ignores_files_off_the_hot_path() {
    let findings = analyze_source(
        "crates/eval/src/lib.rs",
        include_str!("fixtures/no_panic_hot_path.rs"),
    );
    assert_eq!(counts(&findings, "no-panic-hot-path"), (0, 0));
}

#[test]
fn nondeterministic_iteration_fires_and_respects_allow() {
    let findings = analyze_source(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/nondet_iteration.rs"),
    );
    // `.values()` loop + `for .. in &counts` fire; the collected-then-sorted
    // site is waived; `Vec::iter` never fires.
    assert_eq!(counts(&findings, "nondeterministic-iteration"), (2, 1));
}

#[test]
fn nondeterministic_iteration_ignores_non_deterministic_crates() {
    let findings = analyze_source(
        "crates/serve/src/lib.rs",
        include_str!("fixtures/nondet_iteration.rs"),
    );
    assert_eq!(counts(&findings, "nondeterministic-iteration"), (0, 0));
}

#[test]
fn findings_carry_one_based_spans() {
    let findings = analyze_source(
        "crates/x/src/lib.rs",
        "fn f(x: f64, y: f64) {\n    x.partial_cmp(&y);\n}\n",
    );
    let f = &findings[0];
    assert_eq!((f.line, f.column), (2, 7));
    assert_eq!(f.snippet, "x.partial_cmp(&y);");
}

#[test]
fn one_allow_can_waive_multiple_rules() {
    let src = "\
// l2r: allow(float-total-cmp, unsafe-needs-safety) — fixture: both waived
unsafe { x.partial_cmp(&y) }
";
    let findings = analyze_source("crates/x/src/lib.rs", src);
    assert!(findings.len() >= 2);
    assert!(findings.iter().all(|f| f.allowed == Some(Waiver::Inline)));
}
