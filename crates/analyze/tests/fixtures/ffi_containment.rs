// Fixture: ffi-containment — an extern block outside the designated
// region fires; one under an inline allow is waived.

extern "C" {
    fn firing_foreign_fn();
}

// l2r: allow(ffi-containment) — fixture: deliberately waived site
extern "C" {
    fn waived_foreign_fn();
}

const NOT_FFI: &str = "extern \"C\" inside a string literal must not fire";
