// Fixture: one firing and one waived float-total-cmp site.  Not compiled —
// the engine walk skips tests/fixtures/; tests feed it to analyze_source.

fn firing(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
}

fn waived(xs: &mut [f64]) {
    // l2r: allow(float-total-cmp) — fixture: deliberately waived site
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
}

const IN_A_STRING: &str = "partial_cmp in a string literal must not fire";
const IN_A_RAW_STRING: &str = r#"partial_cmp in a raw string must not fire"#;
// partial_cmp in a comment must not fire either.
