// Fixture: no-panic-hot-path — tests feed this under a request-path file
// name (crates/serve/src/frame.rs); firing, waived, and test-exempt sites.

fn firing(v: Option<u32>) -> u32 {
    v.unwrap()
}

fn waived(v: Option<u32>) -> u32 {
    // l2r: allow(no-panic-hot-path) — fixture: invariant makes this infallible
    v.expect("fixture invariant")
}

const NOT_A_PANIC: &str = "panic! inside a string literal must not fire";

#[cfg(test)]
mod tests {
    #[test]
    fn assertions_in_tests_are_exempt() {
        Some(1u32).unwrap();
        panic!("test modules may panic freely");
    }
}
