// Fixture: atomic-ordering-justified — firing (non-Relaxed without a
// comment, Relaxed on a sync flag), justified, and waived sites.

use std::sync::atomic::{AtomicBool, Ordering};

fn firing_non_relaxed(flag: &AtomicBool) -> bool {
    flag.load(Ordering::Acquire)
}

fn firing_relaxed_sync_flag(stop: &AtomicBool) -> bool {
    stop.load(Ordering::Relaxed)
}

fn justified(flag: &AtomicBool) -> bool {
    // ordering: Acquire — fixture: pairs with a Release store elsewhere.
    flag.load(Ordering::Acquire)
}

fn justified_inline(stop: &AtomicBool) -> bool {
    stop.load(Ordering::Relaxed) // ordering: no data carried; join() syncs
}

fn waived(stop: &AtomicBool) -> bool {
    // l2r: allow(atomic-ordering-justified) — fixture: deliberately waived
    stop.load(Ordering::Relaxed)
}

fn plain_counter_is_fine(hits: &std::sync::atomic::AtomicU64) -> u64 {
    hits.load(Ordering::Relaxed)
}

// A comment mentioning Ordering::Acquire must not count as justification,
// and this comment alone must not fire anything.
