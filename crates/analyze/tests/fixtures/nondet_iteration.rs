// Fixture: nondeterministic-iteration — tests feed this under a
// deterministic-fit crate path (crates/core/src/...); firing and waived.

use std::collections::HashMap;

fn firing() -> f64 {
    let m: HashMap<u32, f64> = HashMap::new();
    let mut total = 0.0;
    for v in m.values() {
        total += v;
    }
    total
}

fn firing_for_loop() -> u64 {
    let counts: HashMap<u32, u64> = HashMap::new();
    let mut n = 0;
    for (_k, v) in &counts {
        n += v;
    }
    n
}

fn waived() -> Vec<u32> {
    let m: HashMap<u32, f64> = HashMap::new();
    // l2r: allow(nondeterministic-iteration) — fixture: collected then sorted below
    let mut ks: Vec<u32> = m.keys().copied().collect();
    ks.sort_unstable();
    ks
}

fn sorted_vec_is_fine() -> u32 {
    let v: Vec<u32> = vec![1, 2, 3];
    v.iter().sum()
}
