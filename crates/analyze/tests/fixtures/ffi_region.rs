// Fixture: the same extern block is clean when it sits inside the marked
// sys region — tests feed this under the designated reactor.rs path.

// l2r: ffi-region begin
extern "C" {
    fn contained_foreign_fn();
}
// l2r: ffi-region end

fn after_the_region() {}
