// Fixture: unsafe-needs-safety — firing, SAFETY-justified, and waived.

fn firing(p: *const u8) -> u8 {
    unsafe { *p }
}

fn justified(p: *const u8) -> u8 {
    // SAFETY: fixture — the caller guarantees `p` points to a live byte.
    unsafe { *p }
}

fn waived(p: *const u8) -> u8 {
    // l2r: allow(unsafe-needs-safety) — fixture: deliberately waived site
    unsafe { *p }
}

const DOC_EXAMPLE: &str = r#"this raw string contains unsafe { } and must not fire"#;
/* a block comment mentioning unsafe must not fire */
