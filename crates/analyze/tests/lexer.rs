//! Lexer edge cases: the token shapes that trip naive grep-based linters.

use l2r_analyze::lexer::lex;

#[test]
fn line_comments_are_split_from_code() {
    let lines = lex("let x = 1; // trailing note\n");
    assert_eq!(lines[0].code, "let x = 1; ");
    assert_eq!(lines[0].comment, " trailing note");
}

#[test]
fn string_contents_are_blanked_but_quotes_survive() {
    let lines = lex("let s = \"unsafe { partial_cmp } // not a comment\";\n");
    assert_eq!(lines[0].code, "let s = \"\";");
    assert!(lines[0].comment.is_empty());
}

#[test]
fn escaped_quotes_do_not_end_strings() {
    let lines = lex("let s = \"a \\\" b\"; let t = 1;\n");
    assert_eq!(lines[0].code, "let s = \"\"; let t = 1;");
}

#[test]
fn raw_strings_containing_unsafe_are_blanked() {
    let lines = lex("let s = r#\"unsafe { *p } \" still inside\"#; let x = 1;\n");
    assert_eq!(lines[0].code, "let s = r#\"\"#; let x = 1;");
    assert!(!lines[0].code.contains("unsafe"));
}

#[test]
fn raw_string_hash_depth_is_honoured() {
    // `"#` does not close an `r##"…"##` string; `"##` does.
    let lines = lex("let s = r##\"has \"# inside\"##; let x = 1;\n");
    assert_eq!(lines[0].code, "let s = r##\"\"##; let x = 1;");
}

#[test]
fn byte_raw_strings_are_recognised() {
    let lines = lex("let s = br#\"unsafe\"#;\n");
    assert!(!lines[0].code.contains("unsafe"));
}

#[test]
fn raw_identifiers_are_not_raw_strings() {
    let lines = lex("let r#match = 1; let after = \"x\";\n");
    assert_eq!(lines[0].code, "let r#match = 1; let after = \"\";");
}

#[test]
fn nested_block_comments_stay_comments() {
    let lines = lex("/* outer /* inner unsafe */ still comment */ let x = 1;\n");
    assert_eq!(lines[0].code.trim(), "let x = 1;");
    assert!(lines[0].comment.contains("inner unsafe"));
}

#[test]
fn multiline_block_comments_touch_every_line() {
    let lines = lex("/* one\ntwo unsafe\nthree */ let x = 1;\n");
    assert!(lines[0].code.trim().is_empty());
    assert!(lines[1].code.trim().is_empty());
    assert!(lines[1].comment.contains("two unsafe"));
    assert_eq!(lines[2].code.trim(), "let x = 1;");
}

#[test]
fn char_literals_are_blanked_and_lifetimes_survive() {
    let lines = lex("let c = '\"'; fn f<'a>(x: &'a str) {}\n");
    assert_eq!(lines[0].code, "let c = ''; fn f<'a>(x: &'a str) {}");
    let lines = lex("let c = '\\n'; let s = \"x\";\n");
    assert_eq!(lines[0].code, "let c = ''; let s = \"\";");
}

#[test]
fn brace_depth_is_tracked_over_code_only() {
    let lines = lex("fn f() { // {not code\n    let s = \"}\";\n}\n");
    assert_eq!(lines[0].depth_end, 1, "comment braces do not count");
    assert_eq!(lines[1].depth_end, 1, "string braces do not count");
    assert_eq!(lines[2].depth_end, 0);
}

#[test]
fn cfg_test_modules_are_marked() {
    let src = "\
fn prod() {}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {}
}

fn also_prod() {}
";
    let lines = lex(src);
    assert!(!lines[0].in_test);
    assert!(lines[3].in_test, "mod line is in the region");
    assert!(lines[5].in_test, "body is in the region");
    assert!(lines[6].in_test, "closing brace line is in the region");
    assert!(!lines[8].in_test, "code after the module is not");
}

#[test]
fn cfg_test_on_a_single_item_does_not_open_a_region() {
    let src = "#[cfg(test)]\nuse std::fmt;\n\nfn prod() {}\n";
    let lines = lex(src);
    assert!(lines.iter().all(|l| !l.in_test));
}
