//! Figure 9 bench: preference transfer — accuracy vs. the number of labelled
//! T-edge partitions (9a) and the amr parameter sweep (9b).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use l2r_bench::{bench_scale, datasets, DatasetChoice};
use l2r_eval::{fig9a, fig9b};

fn bench_fig9(c: &mut Criterion) {
    let scale = bench_scale();
    let sets = datasets(DatasetChoice::Both, scale);
    let mut group = c.benchmark_group("fig9_transfer");
    group.sample_size(10);
    for ds in &sets {
        group.bench_with_input(
            BenchmarkId::new("fig9a_partitions", ds.spec.name),
            ds,
            |b, ds| {
                b.iter(|| fig9a(&ds.model, &ds.model.config().transfer));
            },
        );
        for amr in [0.5, 0.7, 0.9] {
            group.bench_with_input(
                BenchmarkId::new(format!("fig9b_amr_{amr}"), ds.spec.name),
                ds,
                |b, ds| {
                    b.iter(|| fig9b(&ds.model, &ds.model.config().transfer, &[amr]));
                },
            );
        }
        let points = fig9b(&ds.model, &ds.model.config().transfer, &[0.5, 0.7, 0.9]);
        for p in points {
            println!(
                "[fig9b/{}] amr={:.1} accuracy={:.1}% null-rate={:.1}% time={:.1}ms",
                ds.spec.name, p.amr, p.accuracy, p.null_rate, p.runtime_ms
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig9);
criterion_main!(benches);
