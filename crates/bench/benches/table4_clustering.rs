//! Table IV bench: modularity-based clustering, region-graph construction and
//! the region-size distribution.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use l2r_bench::bench_scale;
use l2r_datagen::{generate_network, generate_workload};
use l2r_eval::DatasetSpec;
use l2r_region_graph::{
    bottom_up_clustering, region_size_distribution, RegionGraph, TrajectoryGraph,
};

fn bench_table4(c: &mut Criterion) {
    let scale = bench_scale();
    let mut group = c.benchmark_group("table4_clustering");
    group.sample_size(10);
    for spec in [DatasetSpec::d1(scale), DatasetSpec::d2(scale)] {
        let syn = generate_network(&spec.network);
        let workload = generate_workload(&syn, &spec.workload);
        let tg = TrajectoryGraph::build(&syn.net, &workload.trajectories);
        group.bench_with_input(
            BenchmarkId::new("bottom_up_clustering", spec.name),
            &tg,
            |b, tg| {
                b.iter(|| bottom_up_clustering(tg));
            },
        );
        let clusters = bottom_up_clustering(&tg);
        group.bench_with_input(
            BenchmarkId::new("region_graph_build", spec.name),
            &clusters,
            |b, clusters| {
                b.iter(|| RegionGraph::build(&syn.net, clusters, &workload.trajectories, 2));
            },
        );
        let rg = RegionGraph::build(&syn.net, &clusters, &workload.trajectories, 2);
        let buckets = region_size_distribution(rg.regions(), &spec.area_bounds_km2);
        println!(
            "[table4/{}] regions = {}, counts per area bucket = {:?}",
            spec.name,
            rg.num_regions(),
            buckets.iter().map(|b| b.count).collect::<Vec<_>>()
        );
    }
    group.finish();
}

criterion_group!(benches, bench_table4);
criterion_main!(benches);
