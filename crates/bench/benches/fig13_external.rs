//! Figure 13/14 bench: the external reference router and the 10 m band
//! matching of its way-point polylines against ground-truth paths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use l2r_baselines::ExternalRouter;
use l2r_bench::{bench_scale, datasets, DatasetChoice};
use l2r_eval::{build_test_queries, compare_with_external};
use l2r_road_network::band_match_similarity_10m;

fn bench_fig13(c: &mut Criterion) {
    let scale = bench_scale();
    let sets = datasets(DatasetChoice::Both, scale);
    let mut group = c.benchmark_group("fig13_external");
    group.sample_size(10);
    for ds in &sets {
        let net = &ds.synthetic.net;
        let ext = ExternalRouter::with_defaults(net);
        let queries =
            build_test_queries(net, &ds.model, &ds.test, ds.spec.max_test_queries.min(60));
        if queries.is_empty() {
            continue;
        }
        // Way-point generation throughput of the external service.
        group.bench_with_input(
            BenchmarkId::new("external_waypoints", ds.spec.name),
            &queries,
            |b, qs| {
                b.iter(|| {
                    for q in qs {
                        let _ = ext.route_waypoints(net, q.source, q.destination);
                    }
                });
            },
        );
        // Band matching (the Figure 14 geometry) on pre-computed way-points.
        let prepared: Vec<_> = queries
            .iter()
            .filter_map(|q| {
                ext.route_waypoints(net, q.source, q.destination)
                    .map(|w| (q.ground_truth.clone(), w))
            })
            .collect();
        group.bench_with_input(
            BenchmarkId::new("band_matching", ds.spec.name),
            &prepared,
            |b, prepared| {
                b.iter(|| {
                    prepared
                        .iter()
                        .map(|(gt, wps)| band_match_similarity_10m(net, gt, wps))
                        .sum::<f64>()
                });
            },
        );
        // The full comparison, printed once.
        let cmp =
            compare_with_external(net, &ds.model, &ext, &queries, &ds.spec.distance_bounds_km);
        for (label, l2r, external) in &cmp.by_distance {
            println!(
                "[fig13/{}] {:<10} L2R={:.1}% External={:.1}%",
                ds.spec.name, label, l2r, external
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig13);
criterion_main!(benches);
