//! Figure 6 bench: learning routing preferences for T-edges (6a) and the
//! pairwise region-edge similarity analysis (6b).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use l2r_bench::{bench_scale, datasets, DatasetChoice};
use l2r_eval::{fig6a, fig6b};
use l2r_preference::{learn_edge_preference, LearnConfig};

fn bench_fig6(c: &mut Criterion) {
    let scale = bench_scale();
    let sets = datasets(DatasetChoice::Both, scale);
    let mut group = c.benchmark_group("fig6_preference_learning");
    group.sample_size(10);
    for ds in &sets {
        // Learning a single T-edge preference (the inner loop of Step 1).
        let rg = ds.model.region_graph();
        if let Some(edge) = rg.t_edges().max_by_key(|e| e.paths.len()) {
            group.bench_with_input(
                BenchmarkId::new("learn_edge_preference", ds.spec.name),
                &edge.paths,
                |b, paths| {
                    b.iter(|| {
                        learn_edge_preference(ds.model.network(), paths, &LearnConfig::default())
                    });
                },
            );
        }
        // The full Figure 6(a) experiment.
        group.bench_with_input(BenchmarkId::new("fig6a", ds.spec.name), ds, |b, ds| {
            b.iter(|| fig6a(&ds.model, &ds.model.config().learn.clone()));
        });
        // The Figure 6(b) pairwise similarity analysis (bounded pair count).
        group.bench_with_input(BenchmarkId::new("fig6b", ds.spec.name), ds, |b, ds| {
            b.iter(|| fig6b(&ds.model, 10_000));
        });
        let r = fig6a(&ds.model, &ds.model.config().learn.clone());
        println!(
            "[fig6a/{}] {} T-edges, {:.1}% single preference, masters DI/TT/FC = {:?}",
            ds.spec.name, r.num_t_edges, r.pct_single_preference, r.master_distribution
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
