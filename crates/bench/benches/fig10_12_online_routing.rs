//! Figures 10, 11 and 12 bench: online routing of L2R and the four baselines
//! over held-out queries — per-query latency (Figure 12) with the accuracy
//! numbers (Figures 10/11) printed alongside.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use l2r_baselines::{BaselineRouter, Dom, FastestRouter, ShortestRouter, Trip};
use l2r_bench::{bench_scale, datasets, DatasetChoice};
use l2r_eval::{build_test_queries, compare_methods, Method, TestQuery};

fn bench_online_routing(c: &mut Criterion) {
    let scale = bench_scale();
    let sets = datasets(DatasetChoice::Both, scale);
    let mut group = c.benchmark_group("fig10_12_online_routing");
    group.sample_size(10);
    for ds in &sets {
        let net = &ds.synthetic.net;
        let queries: Vec<TestQuery> =
            build_test_queries(net, &ds.model, &ds.test, ds.spec.max_test_queries.min(60));
        if queries.is_empty() {
            continue;
        }
        let dom = Dom::train(net, &ds.train);
        let trip = Trip::train(net, &ds.train);

        // Per-method query throughput (the Figure 12 measurement).
        group.bench_with_input(BenchmarkId::new("L2R", ds.spec.name), &queries, |b, qs| {
            b.iter(|| {
                for q in qs {
                    let _ = ds.model.route(q.source, q.destination);
                }
            });
        });
        let baselines: Vec<(&str, &dyn BaselineRouter)> = vec![
            ("Shortest", &ShortestRouter),
            ("Fastest", &FastestRouter),
            ("Dom", &dom),
            ("TRIP", &trip),
        ];
        for (name, router) in &baselines {
            group.bench_with_input(BenchmarkId::new(*name, ds.spec.name), &queries, |b, qs| {
                b.iter(|| {
                    for q in qs {
                        let _ = router.route(net, q.source, q.destination, q.driver);
                    }
                });
            });
        }

        // Accuracy summary (Figures 10/11) printed once per dataset.
        let methods = vec![
            Method::L2r(&ds.model),
            Method::Baseline(&ShortestRouter),
            Method::Baseline(&FastestRouter),
            Method::Baseline(&dom),
            Method::Baseline(&trip),
        ];
        let results = compare_methods(net, &methods, &queries, &ds.spec.distance_bounds_km);
        for r in &results {
            println!(
                "[fig10-12/{}] {:<8} acc-eq1={:.1}% acc-eq4={:.1}% mean-time={:.0}µs over {} queries",
                ds.spec.name,
                r.name,
                r.overall.accuracy_eq1,
                r.overall.accuracy_eq4,
                r.overall.mean_runtime_us,
                r.overall.count
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_online_routing);
criterion_main!(benches);
