//! Table II bench: workload generation and the trajectory distance
//! distribution for the D1-like and D2-like data sets.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use l2r_bench::bench_scale;
use l2r_datagen::{generate_network, generate_workload};
use l2r_eval::{table2, DatasetSpec};
use l2r_trajectory::DistanceDistribution;

fn bench_table2(c: &mut Criterion) {
    let scale = bench_scale();
    let mut group = c.benchmark_group("table2_workload");
    group.sample_size(10);
    for spec in [DatasetSpec::d1(scale), DatasetSpec::d2(scale)] {
        let syn = generate_network(&spec.network);
        group.bench_with_input(
            BenchmarkId::new("generate_workload", spec.name),
            &spec,
            |b, spec| {
                b.iter(|| generate_workload(&syn, &spec.workload));
            },
        );
        let workload = generate_workload(&syn, &spec.workload);
        group.bench_with_input(
            BenchmarkId::new("distance_distribution", spec.name),
            &spec,
            |b, spec| {
                b.iter(|| {
                    table2(
                        &syn.net,
                        &workload.trajectories,
                        spec.distance_bounds_km.clone(),
                    )
                });
            },
        );
        // Print the distribution once so the bench output doubles as the
        // Table II report.
        let dist: DistanceDistribution = table2(
            &syn.net,
            &workload.trajectories,
            spec.distance_bounds_km.clone(),
        );
        println!(
            "[table2/{}] counts = {:?}, percentages = {:?}",
            spec.name,
            dist.counts,
            dist.percentages()
                .iter()
                .map(|p| (p * 10.0).round() / 10.0)
                .collect::<Vec<_>>()
        );
    }
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
