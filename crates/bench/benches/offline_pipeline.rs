//! Offline processing bench (Section VII-C): the full `L2r::fit` pipeline and
//! its individual stages.  Honours the `L2R_THREADS` override; run with
//! `L2R_THREADS=1` to measure the serial (allocation-free) baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use l2r_bench::bench_scale;
use l2r_core::L2r;
use l2r_datagen::{generate_network, generate_workload};
use l2r_eval::{offline_times, DatasetSpec};
use l2r_road_network::searches_performed;

fn bench_offline(c: &mut Criterion) {
    let scale = bench_scale();
    println!("[offline] worker threads: {}", l2r_par::max_threads());
    let mut group = c.benchmark_group("offline_pipeline");
    group.sample_size(10);
    for spec in [DatasetSpec::d1(scale), DatasetSpec::d2(scale)] {
        let syn = generate_network(&spec.network);
        let workload = generate_workload(&syn, &spec.workload);
        let (train, _) = workload.temporal_split(spec.train_fraction);
        group.bench_with_input(
            BenchmarkId::new("l2r_fit", spec.name),
            &train,
            |b, train| {
                b.iter(|| L2r::fit(&syn.net, train, spec.l2r.clone()).expect("fit"));
            },
        );
        // Print the per-stage breakdown once (the Section VII-C numbers),
        // plus the search throughput of a single fit.
        let searches_before = searches_performed();
        let t0 = std::time::Instant::now();
        let model = L2r::fit(&syn.net, &train, spec.l2r.clone()).expect("fit");
        let fit_s = t0.elapsed().as_secs_f64();
        let searches = searches_performed() - searches_before;
        for row in offline_times(&model) {
            println!(
                "[offline/{}] {:<20} {:.1} ms",
                spec.name, row.stage, row.time_ms
            );
        }
        println!(
            "[offline/{}] {:<20} {} ({:.0}/s)",
            spec.name,
            "searches",
            searches,
            searches as f64 / fit_s.max(1e-9)
        );
    }
    group.finish();
}

criterion_group!(benches, bench_offline);
criterion_main!(benches);
