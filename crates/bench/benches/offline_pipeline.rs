//! Offline processing bench (Section VII-C): the full `L2r::fit` pipeline and
//! its individual stages.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use l2r_bench::bench_scale;
use l2r_core::L2r;
use l2r_datagen::{generate_network, generate_workload};
use l2r_eval::{offline_times, DatasetSpec};

fn bench_offline(c: &mut Criterion) {
    let scale = bench_scale();
    let mut group = c.benchmark_group("offline_pipeline");
    group.sample_size(10);
    for spec in [DatasetSpec::d1(scale), DatasetSpec::d2(scale)] {
        let syn = generate_network(&spec.network);
        let workload = generate_workload(&syn, &spec.workload);
        let (train, _) = workload.temporal_split(spec.train_fraction);
        group.bench_with_input(
            BenchmarkId::new("l2r_fit", spec.name),
            &train,
            |b, train| {
                b.iter(|| L2r::fit(&syn.net, train, spec.l2r.clone()).expect("fit"));
            },
        );
        // Print the per-stage breakdown once (the Section VII-C numbers).
        let model = L2r::fit(&syn.net, &train, spec.l2r.clone()).expect("fit");
        for row in offline_times(&model) {
            println!(
                "[offline/{}] {:<20} {:.1} ms",
                spec.name, row.stage, row.time_ms
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_offline);
criterion_main!(benches);
