//! The **pre-PR online serving path, frozen verbatim** as the benchmark
//! baseline of `BENCH_online.json`.
//!
//! The compiled `PreparedRouter` claims a speedup over "the free `route`
//! path as it existed before the online-serving work".  To keep that
//! comparison honest and reproducible inside one run, this module preserves
//! the historical implementation byte-for-byte in behaviour **and in cost
//! profile**: full Dijkstra searches whose settle order is materialised into
//! a fresh `Vec` and then scanned for an anchor, per-call allocation of
//! `visited`/`parent` arrays in the region-graph search, per-call
//! transfer-center `Vec`s (including the per-call centroid-distance scan for
//! regions without observed centers), candidate scans that clone / reverse /
//! re-validate attached paths on every query, and O(n²) `Path::concat`
//! stitching.
//!
//! It must never be "improved": its only job is to be the measured baseline.
//! Results stay bit-identical to both the current free `route` function and
//! the `PreparedRouter` (asserted by `online_bench_for` on every run).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use l2r_core::{RegionPath, RouteResult, RouteStrategy};
use l2r_region_graph::{RegionEdgeId, RegionGraph, RegionId};
use l2r_road_network::{fastest_path, fastest_path_with_settle_order, Path, RoadNetwork, VertexId};

/// Routes exactly like the pre-PR free `route` function (same results, same
/// per-query allocation behaviour).
pub fn legacy_route(
    net: &RoadNetwork,
    rg: &RegionGraph,
    source: VertexId,
    destination: VertexId,
) -> Option<RouteResult> {
    if source == destination {
        return Some(RouteResult {
            path: Path::single(source),
            strategy: RouteStrategy::FastestFallback,
        });
    }
    match (rg.region_of(source), rg.region_of(destination)) {
        (Some(rs), Some(rd)) => route_case1(net, rg, source, destination, rs, rd),
        _ => route_case2(net, rg, source, destination),
    }
}

fn route_case1(
    net: &RoadNetwork,
    rg: &RegionGraph,
    source: VertexId,
    destination: VertexId,
    rs: RegionId,
    rd: RegionId,
) -> Option<RouteResult> {
    if rs == rd {
        if let Some(path) = inner_region_route(rg, rs, source, destination) {
            return Some(RouteResult {
                path,
                strategy: RouteStrategy::InnerRegionTrajectory,
            });
        }
        return fastest_path(net, source, destination).map(|path| RouteResult {
            path,
            strategy: RouteStrategy::InnerRegionFastest,
        });
    }
    let region_path = legacy_find_region_path(rg, rs, rd)?;
    match region_path_to_road_path(net, rg, &region_path, source, destination) {
        Some(path) => Some(RouteResult {
            path,
            strategy: RouteStrategy::RegionPath,
        }),
        None => fastest_path(net, source, destination).map(|path| RouteResult {
            path,
            strategy: RouteStrategy::FastestFallback,
        }),
    }
}

fn route_case2(
    net: &RoadNetwork,
    rg: &RegionGraph,
    source: VertexId,
    destination: VertexId,
) -> Option<RouteResult> {
    let source_anchor = match rg.region_of(source) {
        Some(_) => Some(source),
        None => find_anchor(net, rg, source, destination),
    };
    let dest_anchor = match rg.region_of(destination) {
        Some(_) => Some(destination),
        None => find_anchor(net, rg, destination, source),
    };
    let (Some(sa), Some(da)) = (source_anchor, dest_anchor) else {
        return fastest_path(net, source, destination).map(|path| RouteResult {
            path,
            strategy: RouteStrategy::FastestFallback,
        });
    };
    let rs = rg.region_of(sa)?;
    let rd = rg.region_of(da)?;
    let middle = route_case1(net, rg, sa, da, rs, rd)?;
    let mut full = if sa == source {
        Path::single(source)
    } else {
        fastest_path(net, source, sa)?
    };
    full = full.concat(&middle.path);
    if da != destination {
        full = full.concat(&fastest_path(net, da, destination)?);
    }
    Some(RouteResult {
        path: full,
        strategy: RouteStrategy::Stitched,
    })
}

/// The historical anchor search: a full fastest-path search whose settle
/// order is copied into a fresh `Vec` and then scanned.
fn find_anchor(
    net: &RoadNetwork,
    rg: &RegionGraph,
    from: VertexId,
    towards: VertexId,
) -> Option<VertexId> {
    let (_, settle_order) = fastest_path_with_settle_order(net, from, towards);
    settle_order
        .into_iter()
        .find(|v| rg.region_of(*v).is_some())
}

/// The historical inner-region routing: `subpath` on every stored path, in
/// both orientations (each reversal materialised).
fn inner_region_route(
    rg: &RegionGraph,
    region: RegionId,
    source: VertexId,
    destination: VertexId,
) -> Option<Path> {
    let mut best: Option<(Path, usize)> = None;
    for sp in rg.inner_paths(region) {
        if let Some(sub) = sp.path.subpath(source, destination) {
            if !sub.is_trivial() && best.as_ref().map(|(_, s)| sp.support > *s).unwrap_or(true) {
                best = Some((sub, sp.support));
            }
        }
        let rev = sp.path.reversed();
        if let Some(sub) = rev.subpath(source, destination) {
            if !sub.is_trivial() && best.as_ref().map(|(_, s)| sp.support > *s).unwrap_or(true) {
                best = Some((sub, sp.support));
            }
        }
    }
    best.map(|(p, _)| p)
}

/// The historical per-call transfer-center resolution: clones the observed
/// centers, or scans the region for the centroid-closest vertex.
fn transfer_centers_or_default(net: &RoadNetwork, rg: &RegionGraph, r: RegionId) -> Vec<VertexId> {
    let centers = rg.transfer_centers(r);
    if !centers.is_empty() {
        return centers.to_vec();
    }
    let region = rg.region(r);
    region
        .vertices
        .iter()
        .min_by(|a, b| {
            let da = net.vertex(**a).point.distance(&region.centroid);
            let db = net.vertex(**b).point.distance(&region.centroid);
            da.partial_cmp(&db).unwrap_or(Ordering::Equal)
        })
        .map(|v| vec![*v])
        .unwrap_or_default()
}

/// The historical stitching: per-query candidate scan (clone / reverse /
/// validate) over every attached path, gaps bridged by fastest paths, all
/// joined with `Path::concat`.
fn region_path_to_road_path(
    net: &RoadNetwork,
    rg: &RegionGraph,
    region_path: &RegionPath,
    source: VertexId,
    destination: VertexId,
) -> Option<Path> {
    let mut acc = Path::single(source);
    let mut current = source;
    for (i, eid) in region_path.edges.iter().enumerate() {
        let from_region = region_path.regions[i];
        let to_region = region_path.regions[i + 1];
        let edge = rg.edge(*eid);

        let mut candidate: Option<(Path, usize)> = None;
        for sp in &edge.paths {
            let src = rg.region_of(sp.path.source());
            let dst = rg.region_of(sp.path.destination());
            if src == Some(from_region) && dst == Some(to_region) {
                if candidate
                    .as_ref()
                    .map(|(_, s)| sp.support > *s)
                    .unwrap_or(true)
                {
                    candidate = Some((sp.path.clone(), sp.support));
                }
            } else if src == Some(to_region) && dst == Some(from_region) {
                let rev = sp.path.reversed();
                if rev.validate(net).is_ok()
                    && candidate
                        .as_ref()
                        .map(|(_, s)| sp.support > *s)
                        .unwrap_or(true)
                {
                    candidate = Some((rev, sp.support));
                }
            }
        }

        let segment = match candidate {
            Some((p, _)) => p,
            None => {
                let target = transfer_centers_or_default(net, rg, to_region)
                    .into_iter()
                    .next()?;
                fastest_path(net, current, target)?
            }
        };

        if segment.source() != current {
            let connector = fastest_path(net, current, segment.source())?;
            acc = acc.concat(&connector);
        }
        current = segment.destination();
        acc = acc.concat(&segment);
    }
    if current != destination {
        let tail = fastest_path(net, current, destination)?;
        acc = acc.concat(&tail);
    }
    Some(acc)
}

/// An entry of the historical best-first frontier.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Frontier {
    distance_to_dest: f64,
    hops: usize,
    region: RegionId,
}

impl Eq for Frontier {}

impl Ord for Frontier {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .distance_to_dest
            .partial_cmp(&self.distance_to_dest)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.hops.cmp(&self.hops))
            .then_with(|| other.region.0.cmp(&self.region.0))
    }
}

impl PartialOrd for Frontier {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The historical region-graph search: allocates fresh `visited`/`parent`
/// arrays and a fresh heap on every call.
fn legacy_find_region_path(
    rg: &RegionGraph,
    source: RegionId,
    destination: RegionId,
) -> Option<RegionPath> {
    if source == destination {
        return Some(RegionPath {
            regions: vec![source],
            edges: Vec::new(),
        });
    }
    if let Some(e) = rg.edge_between(source, destination) {
        return Some(RegionPath {
            regions: vec![source, destination],
            edges: vec![e],
        });
    }

    let n = rg.num_regions();
    let mut visited = vec![false; n];
    let mut parent: Vec<Option<(RegionId, RegionEdgeId)>> = vec![None; n];
    let mut heap = BinaryHeap::new();
    visited[source.idx()] = true;
    heap.push(Frontier {
        distance_to_dest: rg.region_distance_m(source, destination),
        hops: 0,
        region: source,
    });

    while let Some(Frontier { hops, region, .. }) = heap.pop() {
        if region == destination {
            break;
        }
        if let Some(e) = rg.edge_between(region, destination) {
            if !visited[destination.idx()] {
                visited[destination.idx()] = true;
                parent[destination.idx()] = Some((region, e));
                break;
            }
        }
        for eid in rg.adjacent_edges(region) {
            let next = rg.edge(*eid).other(region);
            if visited[next.idx()] {
                continue;
            }
            visited[next.idx()] = true;
            parent[next.idx()] = Some((region, *eid));
            heap.push(Frontier {
                distance_to_dest: rg.region_distance_m(next, destination),
                hops: hops + 1,
                region: next,
            });
        }
    }

    if !visited[destination.idx()] {
        return None;
    }
    let mut regions = vec![destination];
    let mut edges = Vec::new();
    let mut cur = destination;
    while let Some((prev, e)) = parent[cur.idx()] {
        edges.push(e);
        regions.push(prev);
        cur = prev;
    }
    regions.reverse();
    edges.reverse();
    Some(RegionPath { regions, edges })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{datasets, DatasetChoice};
    use l2r_eval::Scale;

    #[test]
    fn legacy_route_matches_the_current_router() {
        let ds = &datasets(DatasetChoice::D1, Scale::Quick)[0];
        let net = &ds.synthetic.net;
        let rg = ds.model.region_graph();
        let n = net.num_vertices() as u32;
        let mut compared = 0usize;
        for i in (0..n).step_by(9) {
            for j in (1..n).step_by(7) {
                let (s, d) = (VertexId(i), VertexId(j));
                assert_eq!(
                    legacy_route(net, rg, s, d),
                    l2r_core::route(net, rg, s, d),
                    "query {s:?} -> {d:?}"
                );
                compared += 1;
            }
        }
        assert!(compared > 50);
    }
}
