//! # l2r-bench
//!
//! Benchmark harness of the learn-to-route reproduction.
//!
//! * `src/bin/reproduce.rs` — regenerates every table and figure of the
//!   paper's evaluation section and prints them as plain-text tables
//!   (`cargo run --release -p l2r-bench --bin reproduce -- --full` for the
//!   benchmark-scale datasets, omit `--full` for a quick run).
//! * `benches/` — one Criterion bench per table/figure measuring the cost of
//!   the corresponding pipeline stage or query workload.
//!
//! This library part only hosts shared helpers for those targets.

#![warn(missing_docs)]

use l2r_eval::{build_dataset, Dataset, DatasetSpec, Scale};

/// Which datasets an experiment runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetChoice {
    /// Only the Denmark-like data set.
    D1,
    /// Only the Chengdu-like data set.
    D2,
    /// Both data sets.
    Both,
}

/// Builds the datasets selected by `choice` at the given scale.
pub fn datasets(choice: DatasetChoice, scale: Scale) -> Vec<Dataset> {
    let mut specs = Vec::new();
    if matches!(choice, DatasetChoice::D1 | DatasetChoice::Both) {
        specs.push(DatasetSpec::d1(scale));
    }
    if matches!(choice, DatasetChoice::D2 | DatasetChoice::Both) {
        specs.push(DatasetSpec::d2(scale));
    }
    specs.into_iter().map(build_dataset).collect()
}

/// Scale used by the Criterion benches: quick by default, full when the
/// `L2R_BENCH_FULL` environment variable is set (non-empty).
pub fn bench_scale() -> Scale {
    match std::env::var("L2R_BENCH_FULL") {
        Ok(v) if !v.is_empty() && v != "0" => Scale::Full,
        _ => Scale::Quick,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_choice_builds_the_requested_sets() {
        let only_d1 = datasets(DatasetChoice::D1, Scale::Quick);
        assert_eq!(only_d1.len(), 1);
        assert_eq!(only_d1[0].spec.name, "D1");
    }

    #[test]
    fn bench_scale_defaults_to_quick() {
        std::env::remove_var("L2R_BENCH_FULL");
        assert_eq!(bench_scale(), Scale::Quick);
    }
}
