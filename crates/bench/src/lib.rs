//! # l2r-bench
//!
//! Benchmark harness of the learn-to-route reproduction.
//!
//! * `src/bin/reproduce.rs` — regenerates every table and figure of the
//!   paper's evaluation section and prints them as plain-text tables
//!   (`cargo run --release -p l2r-bench --bin reproduce -- --full` for the
//!   benchmark-scale datasets, omit `--full` for a quick run).
//! * `benches/` — one Criterion bench per table/figure measuring the cost of
//!   the corresponding pipeline stage or query workload.
//!
//! This library part only hosts shared helpers for those targets.

#![warn(missing_docs)]

use l2r_eval::{build_dataset, offline_times, Dataset, DatasetSpec, OfflineRow, Scale};

/// Which datasets an experiment runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetChoice {
    /// Only the Denmark-like data set.
    D1,
    /// Only the Chengdu-like data set.
    D2,
    /// Both data sets.
    Both,
}

/// Builds the datasets selected by `choice` at the given scale.
pub fn datasets(choice: DatasetChoice, scale: Scale) -> Vec<Dataset> {
    let mut specs = Vec::new();
    if matches!(choice, DatasetChoice::D1 | DatasetChoice::Both) {
        specs.push(DatasetSpec::d1(scale));
    }
    if matches!(choice, DatasetChoice::D2 | DatasetChoice::Both) {
        specs.push(DatasetSpec::d2(scale));
    }
    specs.into_iter().map(build_dataset).collect()
}

/// Scale used by the Criterion benches: quick by default, full when the
/// `L2R_BENCH_FULL` environment variable is set (non-empty).
pub fn bench_scale() -> Scale {
    match std::env::var("L2R_BENCH_FULL") {
        Ok(v) if !v.is_empty() && v != "0" => Scale::Full,
        _ => Scale::Quick,
    }
}

// ---------------------------------------------------------------------------
// Machine-readable offline benchmark report (BENCH_offline.json)
// ---------------------------------------------------------------------------

/// Offline-pipeline measurements for one dataset: total fit wall time, the
/// per-stage breakdown, and the Dijkstra search throughput.
#[derive(Debug, Clone)]
pub struct OfflineBenchDataset {
    /// Dataset name (`D1` / `D2`).
    pub name: String,
    /// Total `L2r::fit` wall time in milliseconds.
    pub fit_ms: f64,
    /// Per-stage wall times (pipeline order).
    pub stages: Vec<OfflineRow>,
    /// Number of Dijkstra searches (all variants) the fit performed.
    pub searches: u64,
    /// Search throughput over the whole fit.
    pub searches_per_sec: f64,
    /// Region-graph sizes, for context.
    pub num_regions: usize,
    /// Number of T-edges.
    pub num_t_edges: usize,
    /// Number of B-edges.
    pub num_b_edges: usize,
}

/// The full offline benchmark report serialised to `BENCH_offline.json`.
#[derive(Debug, Clone)]
pub struct OfflineBenchReport {
    /// `quick` or `full`.
    pub scale: Scale,
    /// Worker thread count the run used (`L2R_THREADS` or hardware).
    pub threads: usize,
    /// One entry per dataset.
    pub datasets: Vec<OfflineBenchDataset>,
}

/// The per-dataset report entry, from the instrumentation `build_dataset`
/// recorded around the dataset's (single) `L2r::fit` call.
pub fn offline_report_for(ds: &Dataset) -> OfflineBenchDataset {
    let fit_ms = ds.fit_time.as_secs_f64() * 1000.0;
    let searches_per_sec = if fit_ms > 0.0 {
        ds.fit_searches as f64 / (fit_ms / 1000.0)
    } else {
        0.0
    };
    let stats = ds.model.stats();
    OfflineBenchDataset {
        name: ds.spec.name.to_string(),
        fit_ms,
        stages: offline_times(&ds.model),
        searches: ds.fit_searches,
        searches_per_sec,
        num_regions: stats.num_regions,
        num_t_edges: stats.num_t_edges,
        num_b_edges: stats.num_b_edges,
    }
}

/// Renders the report as pretty-printed JSON (hand-rolled; the build
/// environment has no serde).
pub fn offline_bench_json(report: &OfflineBenchReport) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"offline_pipeline\",\n");
    out.push_str(&format!(
        "  \"scale\": \"{}\",\n",
        if report.scale == Scale::Full {
            "full"
        } else {
            "quick"
        }
    ));
    out.push_str(&format!("  \"threads\": {},\n", report.threads));
    out.push_str("  \"datasets\": [\n");
    for (i, ds) in report.datasets.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{}\",\n", ds.name));
        out.push_str(&format!("      \"fit_ms\": {:.3},\n", ds.fit_ms));
        out.push_str("      \"stages_ms\": {\n");
        for (j, row) in ds.stages.iter().enumerate() {
            out.push_str(&format!(
                "        \"{}\": {:.3}{}\n",
                row.stage.replace('-', "_"),
                row.time_ms,
                if j + 1 < ds.stages.len() { "," } else { "" }
            ));
        }
        out.push_str("      },\n");
        out.push_str(&format!("      \"searches\": {},\n", ds.searches));
        out.push_str(&format!(
            "      \"searches_per_sec\": {:.0},\n",
            ds.searches_per_sec
        ));
        out.push_str(&format!("      \"num_regions\": {},\n", ds.num_regions));
        out.push_str(&format!("      \"num_t_edges\": {},\n", ds.num_t_edges));
        out.push_str(&format!("      \"num_b_edges\": {}\n", ds.num_b_edges));
        out.push_str(&format!(
            "    }}{}\n",
            if i + 1 < report.datasets.len() {
                ","
            } else {
                ""
            }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_choice_builds_the_requested_sets() {
        let only_d1 = datasets(DatasetChoice::D1, Scale::Quick);
        assert_eq!(only_d1.len(), 1);
        assert_eq!(only_d1[0].spec.name, "D1");
    }

    #[test]
    fn bench_scale_defaults_to_quick() {
        // Read-only on purpose: mutating the environment here would race
        // with concurrently running tests whose fits read `L2R_THREADS`
        // (concurrent getenv/unsetenv is undefined behaviour on glibc).
        if std::env::var("L2R_BENCH_FULL").is_ok() {
            return;
        }
        assert_eq!(bench_scale(), Scale::Quick);
    }

    #[test]
    fn offline_report_measures_a_fit_and_renders_json() {
        let ds = &datasets(DatasetChoice::D1, Scale::Quick)[0];
        let entry = offline_report_for(ds);
        assert_eq!(entry.name, "D1");
        assert!(entry.fit_ms > 0.0);
        assert!(entry.searches > 0, "a fit performs Dijkstra searches");
        assert!(entry.searches_per_sec > 0.0);
        assert_eq!(entry.stages.len(), 5);
        let report = OfflineBenchReport {
            scale: Scale::Quick,
            threads: l2r_par::max_threads(),
            datasets: vec![entry],
        };
        let json = offline_bench_json(&report);
        assert!(json.contains("\"bench\": \"offline_pipeline\""));
        assert!(json.contains("\"scale\": \"quick\""));
        assert!(json.contains("\"name\": \"D1\""));
        assert!(json.contains("\"preference_learning\""));
        assert!(json.contains("\"searches_per_sec\""));
        // Balanced braces / brackets as a cheap well-formedness check.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces in {json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
