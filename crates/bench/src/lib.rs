//! # l2r-bench
//!
//! Benchmark harness of the learn-to-route reproduction.
//!
//! * `src/bin/reproduce.rs` — regenerates every table and figure of the
//!   paper's evaluation section and prints them as plain-text tables
//!   (`cargo run --release -p l2r-bench --bin reproduce -- --full` for the
//!   benchmark-scale datasets, omit `--full` for a quick run).
//! * `benches/` — one Criterion bench per table/figure measuring the cost of
//!   the corresponding pipeline stage or query workload.
//!
//! This library part only hosts shared helpers for those targets.

#![warn(missing_docs)]

pub mod legacy;
pub mod scaling;
pub mod serving;

pub use legacy::legacy_route;
pub use scaling::{
    compile_bench_for, decode_bench_for, fit_determinism_check, peak_rss_bytes,
    transfer_sim_bench_for, CompileBench, DecodeBench, FitDeterminism, TransferSimBench,
};
pub use serving::{
    serving_bench_for, ConcurrencySweepPoint, HotSwapReport, ResilienceReport, ServingBenchDataset,
    ServingSweepPoint,
};

use std::time::Instant;

use l2r_core::{QueryScratch, RouteStrategy};
use l2r_eval::{
    build_dataset, build_test_queries, coverage_label, offline_times, Dataset, DatasetSpec,
    OfflineRow, Scale, TestQuery, COVERAGE_CATEGORIES,
};
use l2r_road_network::VertexId;

/// Which datasets an experiment runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetChoice {
    /// Only the Denmark-like data set.
    D1,
    /// Only the Chengdu-like data set.
    D2,
    /// Both data sets.
    Both,
}

/// Builds the datasets selected by `choice` at the given scale.
pub fn datasets(choice: DatasetChoice, scale: Scale) -> Vec<Dataset> {
    let mut specs = Vec::new();
    if matches!(choice, DatasetChoice::D1 | DatasetChoice::Both) {
        specs.push(DatasetSpec::d1(scale));
    }
    if matches!(choice, DatasetChoice::D2 | DatasetChoice::Both) {
        specs.push(DatasetSpec::d2(scale));
    }
    specs.into_iter().map(build_dataset).collect()
}

/// Derives the per-dataset snapshot path from a base path by inserting the
/// dataset name before the extension: `target/model.l2r` + `D1` →
/// `target/model.D1.l2r` (no extension: `target/model` → `target/model.D1`).
pub fn snapshot_path_for(base: &str, dataset: &str) -> std::path::PathBuf {
    let base = std::path::Path::new(base);
    let mut name = base
        .file_stem()
        .unwrap_or_default()
        .to_string_lossy()
        .into_owned();
    name.push('.');
    name.push_str(dataset);
    if let Some(ext) = base.extension() {
        name.push('.');
        name.push_str(&ext.to_string_lossy());
    }
    base.with_file_name(name)
}

/// Scale used by the Criterion benches: quick by default, full when the
/// `L2R_BENCH_FULL` environment variable is set (non-empty).
pub fn bench_scale() -> Scale {
    match std::env::var("L2R_BENCH_FULL") {
        Ok(v) if !v.is_empty() && v != "0" => Scale::Full,
        _ => Scale::Quick,
    }
}

// ---------------------------------------------------------------------------
// Machine-readable offline benchmark report (BENCH_offline.json)
// ---------------------------------------------------------------------------

/// Offline-pipeline measurements for one dataset: total fit wall time, the
/// per-stage breakdown, and the Dijkstra search throughput.
#[derive(Debug, Clone)]
pub struct OfflineBenchDataset {
    /// Dataset name (`D1` / `D2`).
    pub name: String,
    /// Total `L2r::fit` wall time in milliseconds.
    pub fit_ms: f64,
    /// Per-stage wall times (pipeline order).
    pub stages: Vec<OfflineRow>,
    /// Number of Dijkstra searches (all variants) the fit performed.
    pub searches: u64,
    /// Search throughput over the whole fit.
    pub searches_per_sec: f64,
    /// Region-graph sizes, for context.
    pub num_regions: usize,
    /// Number of T-edges.
    pub num_t_edges: usize,
    /// Number of B-edges.
    pub num_b_edges: usize,
}

/// The full offline benchmark report serialised to `BENCH_offline.json`.
#[derive(Debug, Clone)]
pub struct OfflineBenchReport {
    /// Scale the report was measured at (`quick`/`full`/`xl`/`xxl`).
    pub scale: Scale,
    /// Worker thread count the run used (`L2R_THREADS` or hardware).
    pub threads: usize,
    /// Peak resident set size of the run in bytes (Linux `VmHWM`; `None`
    /// elsewhere).
    pub peak_rss_bytes: Option<u64>,
    /// Naive vs radius-bounded similarity-graph timing, measured on the
    /// first dataset's fitted region graph.
    pub transfer: Option<TransferSimBench>,
    /// Cross-thread refit determinism check on the first dataset.
    pub fit_determinism: Option<FitDeterminism>,
    /// One entry per dataset.
    pub datasets: Vec<OfflineBenchDataset>,
}

/// The per-dataset report entry, from the instrumentation `build_dataset`
/// recorded around the dataset's (single) `L2r::fit` call.
pub fn offline_report_for(ds: &Dataset) -> OfflineBenchDataset {
    let fit_ms = ds.fit_time.as_secs_f64() * 1000.0;
    let searches_per_sec = if fit_ms > 0.0 {
        ds.fit_searches as f64 / (fit_ms / 1000.0)
    } else {
        0.0
    };
    let stats = ds.model.stats();
    OfflineBenchDataset {
        name: ds.spec.name.to_string(),
        fit_ms,
        stages: offline_times(&ds.model),
        searches: ds.fit_searches,
        searches_per_sec,
        num_regions: stats.num_regions,
        num_t_edges: stats.num_t_edges,
        num_b_edges: stats.num_b_edges,
    }
}

/// Renders the report as pretty-printed JSON (hand-rolled; the build
/// environment has no serde).
pub fn offline_bench_json(report: &OfflineBenchReport) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"offline_pipeline\",\n");
    out.push_str(&format!("  \"scale\": \"{}\",\n", report.scale.label()));
    out.push_str(&format!("  \"threads\": {},\n", report.threads));
    if let Some(rss) = report.peak_rss_bytes {
        out.push_str(&format!("  \"peak_rss_bytes\": {rss},\n"));
    }
    if let Some(t) = &report.transfer {
        out.push_str(&format!(
            "  \"transfer_similarity\": {{ \"edges\": {}, \"pairs\": {}, \"naive_ms\": {:.3}, \"bounded_ms\": {:.3}, \"speedup\": {:.2}, \"identical\": {} }},\n",
            t.edges, t.pairs, t.naive_ms, t.bounded_ms, t.speedup, t.identical
        ));
    }
    if let Some(d) = &report.fit_determinism {
        out.push_str(&format!(
            "  \"fit_determinism\": {{ \"threads_a\": {}, \"threads_b\": {}, \"identical\": {} }},\n",
            d.threads_a, d.threads_b, d.identical
        ));
    }
    out.push_str("  \"datasets\": [\n");
    for (i, ds) in report.datasets.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{}\",\n", ds.name));
        out.push_str(&format!("      \"fit_ms\": {:.3},\n", ds.fit_ms));
        out.push_str("      \"stages_ms\": {\n");
        for (j, row) in ds.stages.iter().enumerate() {
            out.push_str(&format!(
                "        \"{}\": {:.3}{}\n",
                row.stage.replace('-', "_"),
                row.time_ms,
                if j + 1 < ds.stages.len() { "," } else { "" }
            ));
        }
        out.push_str("      },\n");
        out.push_str(&format!("      \"searches\": {},\n", ds.searches));
        out.push_str(&format!(
            "      \"searches_per_sec\": {:.0},\n",
            ds.searches_per_sec
        ));
        out.push_str(&format!("      \"num_regions\": {},\n", ds.num_regions));
        out.push_str(&format!("      \"num_t_edges\": {},\n", ds.num_t_edges));
        out.push_str(&format!("      \"num_b_edges\": {}\n", ds.num_b_edges));
        out.push_str(&format!(
            "    }}{}\n",
            if i + 1 < report.datasets.len() {
                ","
            } else {
                ""
            }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

// ---------------------------------------------------------------------------
// Machine-readable online serving benchmark report (BENCH_online.json)
// ---------------------------------------------------------------------------

/// Latency distribution of one serving path over a query workload.
#[derive(Debug, Clone, Default)]
pub struct OnlineLatencyStats {
    /// Mean per-query latency in microseconds.
    pub mean_us: f64,
    /// Median per-query latency.
    pub p50_us: f64,
    /// 95th-percentile per-query latency.
    pub p95_us: f64,
    /// 99th-percentile per-query latency.
    pub p99_us: f64,
    /// Single-threaded queries per second implied by the mean.
    pub qps: f64,
}

impl OnlineLatencyStats {
    /// Computes the stats from raw per-query samples (microseconds).
    fn from_samples(samples: &mut [f64]) -> OnlineLatencyStats {
        if samples.is_empty() {
            return OnlineLatencyStats::default();
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let mean_us = samples.iter().sum::<f64>() / samples.len() as f64;
        OnlineLatencyStats {
            mean_us,
            p50_us: percentile(samples, 50.0),
            p95_us: percentile(samples, 95.0),
            p99_us: percentile(samples, 99.0),
            qps: if mean_us > 0.0 { 1e6 / mean_us } else { 0.0 },
        }
    }
}

/// Nearest-rank percentile of an ascending-sorted sample slice.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Per-bucket latency of the three serving paths.
#[derive(Debug, Clone)]
pub struct OnlineCoverageRow {
    /// Coverage label (`InRegion` / `InOutRegion` / `OutRegion`).
    pub label: &'static str,
    /// Number of queries in the bucket.
    pub count: usize,
    /// Mean pre-PR baseline latency (µs).
    pub baseline_mean_us: f64,
    /// Mean current free-`route` latency (µs).
    pub free_mean_us: f64,
    /// Mean `Engine` latency (µs).
    pub prepared_mean_us: f64,
    /// `baseline_mean_us / prepared_mean_us` (0 when the bucket is empty).
    pub speedup: f64,
}

/// Snapshot-serving measurements: size of the persisted model and the time
/// to load it back (the warm-restart cost a server pays instead of re-running
/// `L2r::fit`).
#[derive(Debug, Clone)]
pub struct OnlineSnapshotInfo {
    /// Path the model was loaded from.
    pub path: String,
    /// Snapshot file size in bytes.
    pub bytes: u64,
    /// Wall time of `load_model` in milliseconds.
    pub load_ms: f64,
}

/// Online serving measurements for one dataset: the same query workload
/// answered by the free `route` function and by a compiled
/// [`l2r_core::Engine`], plus the batched `route_many` throughput.
#[derive(Debug, Clone)]
pub struct OnlineBenchDataset {
    /// Dataset name (`D1` / `D2`).
    pub name: String,
    /// Number of distinct queries in the workload.
    pub queries: usize,
    /// Timed rounds over the workload (samples = queries × rounds).
    pub rounds: usize,
    /// Whether every prepared answer was bit-identical to both the current
    /// free answer and the frozen pre-PR baseline answer.
    pub equivalent: bool,
    /// One-time `Engine` compilation cost in milliseconds.
    pub prepare_ms: f64,
    /// Set when the prepared router was built from a model loaded off disk
    /// (`reproduce -- online --snapshot <path>`): snapshot size + load time.
    pub snapshot: Option<OnlineSnapshotInfo>,
    /// Latency of the frozen pre-PR `route` implementation
    /// ([`legacy_route`]): full settle-order materialisation, per-call
    /// allocations, candidate re-scans, `concat` stitching.
    pub baseline: OnlineLatencyStats,
    /// Latency of the current free `route` function (early-exit anchors,
    /// thread-local scratch reuse, borrowed transfer centers — but still
    /// per-query scans and `concat`).
    pub free: OnlineLatencyStats,
    /// Latency of `Engine::route` through one reused scratch.
    pub prepared: OnlineLatencyStats,
    /// `baseline.mean_us / prepared.mean_us` — the headline acceptance
    /// number: compiled serving vs the pre-PR query path, same run.
    pub speedup_mean: f64,
    /// `free.mean_us / prepared.mean_us` — what compiling adds on top of the
    /// satellite fixes that already landed in the free path.
    pub speedup_vs_free: f64,
    /// Wall time of one `route_many` batch over the whole workload.
    pub batch_ms: f64,
    /// Batched throughput (all `L2R_THREADS` workers together).
    pub batch_qps: f64,
    /// Per-strategy result counts of the prepared router (report order).
    pub strategies: Vec<(&'static str, usize)>,
    /// Free-vs-prepared latency per region-coverage bucket.
    pub coverage: Vec<OnlineCoverageRow>,
}

/// The full online benchmark report serialised to `BENCH_online.json`.
#[derive(Debug, Clone)]
pub struct OnlineBenchReport {
    /// Scale the report was measured at (`quick`/`full`/`xl`/`xxl`).
    pub scale: Scale,
    /// Worker thread count used by `route_many` (`L2R_THREADS` or hardware).
    pub threads: usize,
    /// Peak resident set size of the run in bytes (Linux `VmHWM`; `None`
    /// elsewhere).
    pub peak_rss_bytes: Option<u64>,
    /// Serial vs parallel `Engine` compile timing on the first dataset.
    pub compile: Option<CompileBench>,
    /// Serial vs parallel snapshot decode timing on the first dataset.
    pub decode: Option<DecodeBench>,
    /// One entry per dataset.
    pub datasets: Vec<OnlineBenchDataset>,
    /// Multi-threaded serving section (`reproduce -- serving`): thread
    /// sweep, hot-swap under load, TCP loopback.  Empty when the serving
    /// experiment did not run.
    pub serving: Vec<ServingBenchDataset>,
}

/// Measures the online serving trajectory of one dataset: per-query latency
/// of the free `route` path versus a compiled `Engine` (same
/// queries, same run — the acceptance comparison), the strategy mix, a
/// per-coverage breakdown, and the batched `route_many` throughput.
///
/// With `snapshot` set, the prepared router is built from the model *loaded
/// from that file* instead of the in-memory fit, the load time and file size
/// are recorded, and the equivalence flag additionally certifies that the
/// loaded model answers bit-identically to the never-serialized one.
///
/// # Panics
/// Panics if `snapshot` points at a missing or invalid file — callers
/// wanting a diagnostic instead should validate with
/// [`l2r_core::load_model`] first (the `reproduce` binary does).
pub fn online_bench_for(
    ds: &Dataset,
    rounds: usize,
    snapshot: Option<&std::path::Path>,
) -> OnlineBenchDataset {
    let rounds = rounds.max(1);
    let net = &ds.synthetic.net;
    let model = &ds.model;
    let queries: Vec<TestQuery> =
        build_test_queries(net, model, &ds.test, ds.spec.max_test_queries);

    let loaded: Option<(l2r_core::L2r, OnlineSnapshotInfo)> = snapshot.map(|path| {
        let bytes = std::fs::metadata(path)
            .unwrap_or_else(|e| panic!("snapshot {} is unreadable: {e}", path.display()))
            .len();
        let t0 = Instant::now();
        let loaded = l2r_core::load_model(path)
            .unwrap_or_else(|e| panic!("snapshot {} failed to load: {e}", path.display()));
        let load_ms = t0.elapsed().as_secs_f64() * 1000.0;
        (
            loaded,
            OnlineSnapshotInfo {
                path: path.display().to_string(),
                bytes,
                load_ms,
            },
        )
    });
    // Obtain an owned serving model *before* the clock starts: `prepare_ms`
    // must measure index compilation only, not the model clone/move the
    // owned `Engine` needs.
    let (serving_model, snapshot_info) = match loaded {
        Some((m, info)) => (m, Some(info)),
        None => (model.clone(), None),
    };
    let t0 = Instant::now();
    let prepared = serving_model.into_engine();
    let prepare_ms = t0.elapsed().as_secs_f64() * 1000.0;
    let mut scratch = QueryScratch::new();

    // Warm-up pass: populates thread-local and scratch buffers, checks
    // baseline/free/prepared equivalence and records the strategy mix.
    let net_graph = model.region_graph();
    let mut equivalent = true;
    let mut strategy_counts = vec![0usize; RouteStrategy::ALL.len()];
    for q in &queries {
        let baseline = legacy_route(net, net_graph, q.source, q.destination);
        let free = model.route(q.source, q.destination);
        let fast = prepared.route(&mut scratch, q.source, q.destination);
        if free != fast || baseline != fast {
            equivalent = false;
        }
        if let Some(r) = &fast {
            let slot = RouteStrategy::ALL
                .iter()
                .position(|s| *s == r.strategy)
                .expect("strategy is always in ALL");
            strategy_counts[slot] += 1;
        }
    }

    // Timed rounds: identical query order on all three paths, each
    // implementation measured in its own full pass over the workload so no
    // path runs on caches warmed by another implementation answering the
    // same query an instant earlier.
    let mut baseline_samples: Vec<f64> = Vec::with_capacity(queries.len() * rounds);
    let mut free_samples: Vec<f64> = Vec::with_capacity(queries.len() * rounds);
    let mut prepared_samples: Vec<f64> = Vec::with_capacity(queries.len() * rounds);
    let mut cov_acc = vec![(0usize, 0.0f64, 0.0f64, 0.0f64); COVERAGE_CATEGORIES.len()];
    let bucket_of = |q: &TestQuery| {
        COVERAGE_CATEGORIES
            .iter()
            .position(|c| *c == q.coverage)
            .unwrap_or(0)
    };
    for _ in 0..rounds {
        let round_base = baseline_samples.len();
        for q in &queries {
            let t0 = Instant::now();
            let _ = legacy_route(net, net_graph, q.source, q.destination);
            baseline_samples.push(t0.elapsed().as_secs_f64() * 1e6);
        }
        for q in &queries {
            let t0 = Instant::now();
            let _ = model.route(q.source, q.destination);
            free_samples.push(t0.elapsed().as_secs_f64() * 1e6);
        }
        for q in &queries {
            let t0 = Instant::now();
            let _ = prepared.route(&mut scratch, q.source, q.destination);
            prepared_samples.push(t0.elapsed().as_secs_f64() * 1e6);
        }
        for (i, q) in queries.iter().enumerate() {
            let cb = bucket_of(q);
            cov_acc[cb].0 += 1;
            cov_acc[cb].1 += baseline_samples[round_base + i];
            cov_acc[cb].2 += free_samples[round_base + i];
            cov_acc[cb].3 += prepared_samples[round_base + i];
        }
    }

    // Batched serving throughput.
    let pairs: Vec<(VertexId, VertexId)> =
        queries.iter().map(|q| (q.source, q.destination)).collect();
    let t0 = Instant::now();
    let batch = prepared.route_many(&pairs);
    let batch_s = t0.elapsed().as_secs_f64();
    debug_assert_eq!(batch.len(), pairs.len());

    let baseline = OnlineLatencyStats::from_samples(&mut baseline_samples);
    let free = OnlineLatencyStats::from_samples(&mut free_samples);
    let prepared_stats = OnlineLatencyStats::from_samples(&mut prepared_samples);
    OnlineBenchDataset {
        name: ds.spec.name.to_string(),
        queries: queries.len(),
        rounds,
        equivalent,
        prepare_ms,
        snapshot: snapshot_info,
        speedup_mean: if prepared_stats.mean_us > 0.0 {
            baseline.mean_us / prepared_stats.mean_us
        } else {
            0.0
        },
        speedup_vs_free: if prepared_stats.mean_us > 0.0 {
            free.mean_us / prepared_stats.mean_us
        } else {
            0.0
        },
        baseline,
        free,
        prepared: prepared_stats,
        batch_ms: batch_s * 1000.0,
        batch_qps: if batch_s > 0.0 {
            pairs.len() as f64 / batch_s
        } else {
            0.0
        },
        strategies: RouteStrategy::ALL
            .iter()
            .zip(strategy_counts)
            .map(|(s, c)| (s.label(), c))
            .collect(),
        coverage: COVERAGE_CATEGORIES
            .iter()
            .zip(cov_acc)
            .map(|(c, (samples, baseline_us, free_us, prepared_us))| {
                let n = samples.max(1) as f64;
                let baseline_mean = baseline_us / n;
                let free_mean = free_us / n;
                let prepared_mean = prepared_us / n;
                // `samples` counts every timed round; report distinct queries
                // so bucket sizes line up with the workload and strategy mix.
                let count = samples / rounds;
                OnlineCoverageRow {
                    label: coverage_label(*c),
                    count,
                    baseline_mean_us: baseline_mean,
                    free_mean_us: free_mean,
                    prepared_mean_us: prepared_mean,
                    speedup: if count > 0 && prepared_mean > 0.0 {
                        baseline_mean / prepared_mean
                    } else {
                        0.0
                    },
                }
            })
            .collect(),
    }
}

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the online report as pretty-printed JSON (hand-rolled; the build
/// environment has no serde).
pub fn online_bench_json(report: &OnlineBenchReport) -> String {
    fn stats(out: &mut String, key: &str, s: &OnlineLatencyStats, trailing_comma: bool) {
        out.push_str(&format!(
            "      \"{}\": {{ \"mean_us\": {:.3}, \"p50_us\": {:.3}, \"p95_us\": {:.3}, \"p99_us\": {:.3}, \"qps\": {:.0} }}{}\n",
            key, s.mean_us, s.p50_us, s.p95_us, s.p99_us, s.qps,
            if trailing_comma { "," } else { "" }
        ));
    }
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"online_serving\",\n");
    out.push_str(&format!("  \"scale\": \"{}\",\n", report.scale.label()));
    out.push_str(&format!("  \"threads\": {},\n", report.threads));
    if let Some(rss) = report.peak_rss_bytes {
        out.push_str(&format!("  \"peak_rss_bytes\": {rss},\n"));
    }
    if let Some(c) = &report.compile {
        out.push_str(&format!(
            "  \"engine_compile\": {{ \"threads\": {}, \"serial_ms\": {:.3}, \"parallel_ms\": {:.3}, \"speedup\": {:.2} }},\n",
            c.threads, c.serial_ms, c.parallel_ms, c.speedup
        ));
    }
    if let Some(d) = &report.decode {
        out.push_str(&format!(
            "  \"snapshot_decode\": {{ \"threads\": {}, \"bytes\": {}, \"serial_ms\": {:.3}, \"parallel_ms\": {:.3}, \"speedup\": {:.2}, \"identical\": {} }},\n",
            d.threads, d.bytes, d.serial_ms, d.parallel_ms, d.speedup, d.identical
        ));
    }
    out.push_str("  \"datasets\": [\n");
    for (i, ds) in report.datasets.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{}\",\n", ds.name));
        out.push_str(&format!("      \"queries\": {},\n", ds.queries));
        out.push_str(&format!("      \"rounds\": {},\n", ds.rounds));
        out.push_str(&format!("      \"equivalent\": {},\n", ds.equivalent));
        out.push_str(&format!("      \"prepare_ms\": {:.3},\n", ds.prepare_ms));
        if let Some(snap) = &ds.snapshot {
            // The path is the one user-controlled string in this report;
            // escape it so the hand-rolled JSON stays parseable.
            out.push_str(&format!(
                "      \"snapshot\": {{ \"path\": \"{}\", \"bytes\": {}, \"load_ms\": {:.3} }},\n",
                json_escape(&snap.path),
                snap.bytes,
                snap.load_ms
            ));
        }
        stats(&mut out, "baseline_route_pre_pr", &ds.baseline, true);
        stats(&mut out, "free_route", &ds.free, true);
        stats(&mut out, "prepared", &ds.prepared, true);
        out.push_str(&format!(
            "      \"speedup_mean\": {:.2},\n",
            ds.speedup_mean
        ));
        out.push_str(&format!(
            "      \"speedup_vs_free\": {:.2},\n",
            ds.speedup_vs_free
        ));
        out.push_str(&format!(
            "      \"route_many\": {{ \"batch_ms\": {:.3}, \"qps\": {:.0} }},\n",
            ds.batch_ms, ds.batch_qps
        ));
        out.push_str("      \"strategies\": {\n");
        for (j, (label, count)) in ds.strategies.iter().enumerate() {
            out.push_str(&format!(
                "        \"{}\": {}{}\n",
                label,
                count,
                if j + 1 < ds.strategies.len() { "," } else { "" }
            ));
        }
        out.push_str("      },\n");
        out.push_str("      \"coverage\": [\n");
        for (j, row) in ds.coverage.iter().enumerate() {
            out.push_str(&format!(
                "        {{ \"label\": \"{}\", \"count\": {}, \"baseline_mean_us\": {:.3}, \"free_mean_us\": {:.3}, \"prepared_mean_us\": {:.3}, \"speedup\": {:.2} }}{}\n",
                row.label,
                row.count,
                row.baseline_mean_us,
                row.free_mean_us,
                row.prepared_mean_us,
                row.speedup,
                if j + 1 < ds.coverage.len() { "," } else { "" }
            ));
        }
        out.push_str("      ]\n");
        out.push_str(&format!(
            "    }}{}\n",
            if i + 1 < report.datasets.len() {
                ","
            } else {
                ""
            }
        ));
    }
    if report.serving.is_empty() {
        out.push_str("  ]\n}\n");
    } else {
        out.push_str("  ],\n");
        serving_json(&mut out, &report.serving);
        out.push_str("}\n");
    }
    out
}

/// Renders the `"serving"` section (multi-threaded engine sweep, hot-swap
/// under load, TCP loopback) of `BENCH_online.json`.
fn serving_json(out: &mut String, entries: &[ServingBenchDataset]) {
    out.push_str("  \"serving\": [\n");
    for (i, ds) in entries.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{}\",\n", ds.name));
        out.push_str(&format!("      \"queries\": {},\n", ds.queries));
        out.push_str(&format!(
            "      \"engine_build_ms\": {:.3},\n",
            ds.engine_build_ms
        ));
        out.push_str(&format!(
            "      \"scratches_created\": {},\n",
            ds.scratches_created
        ));
        out.push_str("      \"sweep\": [\n");
        for (j, p) in ds.sweep.iter().enumerate() {
            out.push_str(&format!(
                "        {{ \"threads\": {}, \"queries\": {}, \"wall_ms\": {:.3}, \"qps\": {:.0}, \"mean_us\": {:.3}, \"p50_us\": {:.3}, \"p99_us\": {:.3} }}{}\n",
                p.threads,
                p.queries,
                p.wall_ms,
                p.qps,
                p.mean_us,
                p.p50_us,
                p.p99_us,
                if j + 1 < ds.sweep.len() { "," } else { "" }
            ));
        }
        out.push_str("      ],\n");
        out.push_str(&format!(
            "      \"single_thread_qps\": {:.0},\n",
            ds.single_thread_qps
        ));
        out.push_str(&format!("      \"peak_qps\": {:.0},\n", ds.peak_qps));
        out.push_str(&format!("      \"scaling\": {:.2},\n", ds.scaling));
        let hs = &ds.hot_swap;
        out.push_str(&format!(
            "      \"hot_swap\": {{ \"worker_threads\": {}, \"reloads\": {}, \"queries\": {}, \"failed\": {}, \"steady_p99_us\": {:.3}, \"swap_p99_us\": {:.3}, \"p99_spike_ratio\": {:.2} }},\n",
            hs.worker_threads,
            hs.reloads,
            hs.queries,
            hs.failed,
            hs.steady_p99_us,
            hs.swap_p99_us,
            hs.p99_spike_ratio
        ));
        let tcp = &ds.tcp;
        out.push_str(&format!(
            "      \"tcp\": {{ \"connections\": {}, \"requests\": {}, \"errors\": {}, \"qps\": {:.0}, \"p50_us\": {:.3}, \"p99_us\": {:.3}, \"reload_generation\": {} }},\n",
            tcp.connections,
            tcp.requests,
            tcp.errors,
            tcp.qps,
            tcp.p50_us,
            tcp.p99_us,
            tcp.reload_generation
        ));
        out.push_str("      \"concurrency_sweep\": [\n");
        for (j, p) in ds.concurrency.iter().enumerate() {
            out.push_str(&format!(
                "        {{ \"protocol\": \"{}\", \"connections\": {}, \"pipeline\": {}, \"requests\": {}, \"errors\": {}, \"busy_retries\": {}, \"qps\": {:.0}, \"p50_us\": {:.3}, \"p99_us\": {:.3} }}{}\n",
                p.protocol,
                p.connections,
                p.pipeline,
                p.requests,
                p.errors,
                p.busy_retries,
                p.qps,
                p.p50_us,
                p.p99_us,
                if j + 1 < ds.concurrency.len() { "," } else { "" }
            ));
        }
        out.push_str("      ],\n");
        let rs = &ds.resilience;
        out.push_str("      \"resilience\": {\n");
        out.push_str(&format!(
            "        \"connections\": {}, \"slow_connections\": {}, \"requests\": {}, \"answered\": {}, \"noroutes\": {},\n",
            rs.connections, rs.slow_connections, rs.requests, rs.answered, rs.noroutes
        ));
        out.push_str(&format!(
            "        \"internal_errors\": {}, \"deadline_exceeded\": {}, \"other_errors\": {}, \"busy_retries\": {},\n",
            rs.internal_errors, rs.deadline_exceeded, rs.other_errors, rs.busy_retries
        ));
        out.push_str(&format!(
            "        \"qps\": {:.0}, \"p50_us\": {:.3}, \"p99_us\": {:.3},\n",
            rs.qps, rs.p50_us, rs.p99_us
        ));
        out.push_str(&format!(
            "        \"panics_injected\": {}, \"panics_caught\": {}, \"workers_respawned\": {}, \"idle_reaped\": {}, \"write_stalls\": {}, \"open_connections_after\": {},\n",
            rs.panics_injected,
            rs.panics_caught,
            rs.workers_respawned,
            rs.idle_reaped,
            rs.write_stalls,
            rs.open_connections_after
        ));
        out.push_str(&format!(
            "        \"invariant_violations\": [{}]\n",
            rs.invariant_violations
                .iter()
                .map(|v| format!("\"{}\"", v.replace('\\', "\\\\").replace('"', "\\\"")))
                .collect::<Vec<_>>()
                .join(", ")
        ));
        out.push_str("      },\n");
        let lc = &ds.lifecycle;
        out.push_str("      \"lifecycle\": {\n");
        out.push_str(&format!(
            "        \"publishes\": {}, \"publish_mean_ms\": {:.3}, \"publish_max_ms\": {:.3},\n",
            lc.publishes, lc.publish_mean_ms, lc.publish_max_ms
        ));
        out.push_str(&format!(
            "        \"store_reloads\": {}, \"rollbacks\": {}, \"swap_failed\": {}, \"canary_rejections\": {},\n",
            lc.store_reloads, lc.rollbacks, lc.swap_failed, lc.canary_rejections
        ));
        out.push_str(&format!(
            "        \"crash_points\": {}, \"crash_recoveries\": {},\n",
            lc.crash_points, lc.crash_recoveries
        ));
        out.push_str(&format!(
            "        \"invariant_violations\": [{}]\n",
            lc.invariant_violations
                .iter()
                .map(|v| format!("\"{}\"", v.replace('\\', "\\\\").replace('"', "\\\"")))
                .collect::<Vec<_>>()
                .join(", ")
        ));
        out.push_str("      }\n");
        out.push_str(&format!(
            "    }}{}\n",
            if i + 1 < entries.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_choice_builds_the_requested_sets() {
        let only_d1 = datasets(DatasetChoice::D1, Scale::Quick);
        assert_eq!(only_d1.len(), 1);
        assert_eq!(only_d1[0].spec.name, "D1");
    }

    #[test]
    fn snapshot_paths_embed_the_dataset_name() {
        assert_eq!(
            snapshot_path_for("target/model.l2r", "D1"),
            std::path::PathBuf::from("target/model.D1.l2r")
        );
        assert_eq!(
            snapshot_path_for("model", "D2"),
            std::path::PathBuf::from("model.D2")
        );
    }

    #[test]
    fn bench_scale_defaults_to_quick() {
        // Read-only on purpose: mutating the environment here would race
        // with concurrently running tests whose fits read `L2R_THREADS`
        // (concurrent getenv/unsetenv is undefined behaviour on glibc).
        if std::env::var("L2R_BENCH_FULL").is_ok() {
            return;
        }
        assert_eq!(bench_scale(), Scale::Quick);
    }

    #[test]
    fn offline_report_measures_a_fit_and_renders_json() {
        let ds = &datasets(DatasetChoice::D1, Scale::Quick)[0];
        let entry = offline_report_for(ds);
        assert_eq!(entry.name, "D1");
        assert!(entry.fit_ms > 0.0);
        assert!(entry.searches > 0, "a fit performs Dijkstra searches");
        assert!(entry.searches_per_sec > 0.0);
        assert_eq!(entry.stages.len(), 5);
        let report = OfflineBenchReport {
            scale: Scale::Quick,
            threads: l2r_par::max_threads(),
            peak_rss_bytes: peak_rss_bytes(),
            transfer: Some(transfer_sim_bench_for(ds)),
            fit_determinism: None,
            datasets: vec![entry],
        };
        let json = offline_bench_json(&report);
        assert!(json.contains("\"bench\": \"offline_pipeline\""));
        assert!(json.contains("\"scale\": \"quick\""));
        assert!(json.contains("\"transfer_similarity\""));
        assert!(json.contains("\"identical\": true"));
        if report.peak_rss_bytes.is_some() {
            assert!(json.contains("\"peak_rss_bytes\""));
        }
        assert!(json.contains("\"name\": \"D1\""));
        assert!(json.contains("\"preference_learning\""));
        assert!(json.contains("\"searches_per_sec\""));
        // Balanced braces / brackets as a cheap well-formedness check.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces in {json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn online_report_measures_serving_and_renders_json() {
        let ds = &datasets(DatasetChoice::D1, Scale::Quick)[0];
        let entry = online_bench_for(ds, 1, None);
        assert_eq!(entry.name, "D1");
        assert!(entry.snapshot.is_none());
        assert!(entry.queries > 0);
        assert!(
            entry.equivalent,
            "prepared answers must be bit-identical to the free and pre-PR routes"
        );
        assert!(entry.baseline.mean_us > 0.0);
        assert!(entry.free.mean_us > 0.0);
        assert!(entry.prepared.mean_us > 0.0);
        assert!(entry.prepared.p50_us <= entry.prepared.p99_us);
        assert!(entry.batch_qps > 0.0);
        let answered: usize = entry.strategies.iter().map(|(_, c)| c).sum();
        assert!(answered > 0, "the strategy mix covers answered queries");
        assert_eq!(entry.coverage.len(), 3);
        assert_eq!(
            entry.coverage.iter().map(|r| r.count).sum::<usize>(),
            entry.queries,
            "coverage buckets partition the distinct queries"
        );

        let report = OnlineBenchReport {
            scale: Scale::Quick,
            threads: l2r_par::max_threads(),
            peak_rss_bytes: peak_rss_bytes(),
            compile: Some(compile_bench_for(ds)),
            decode: Some(decode_bench_for(ds)),
            datasets: vec![entry],
            serving: Vec::new(),
        };
        let json = online_bench_json(&report);
        assert!(json.contains("\"bench\": \"online_serving\""));
        assert!(json.contains("\"engine_compile\""));
        assert!(json.contains("\"snapshot_decode\""));
        assert!(json.contains("\"baseline_route_pre_pr\""));
        assert!(json.contains("\"free_route\""));
        assert!(json.contains("\"prepared\""));
        assert!(json.contains("\"speedup_mean\""));
        assert!(json.contains("\"InnerRegionTrajectory\""));
        assert!(json.contains("\"InRegion\""));
        assert!(
            !json.contains("\"serving\""),
            "no serving section when empty"
        );
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn serving_section_renders_valid_json() {
        // Synthetic entry: the JSON layer is exercised without paying for a
        // real multi-threaded benchmark run here (`serving_bench_for` has its
        // own end-to-end test below).
        let entry = ServingBenchDataset {
            name: "D1".to_string(),
            queries: 100,
            engine_build_ms: 12.5,
            scratches_created: 4,
            sweep: vec![
                serving::ServingSweepPoint {
                    threads: 1,
                    queries: 1000,
                    answered: 990,
                    wall_ms: 10.0,
                    qps: 100_000.0,
                    mean_us: 9.5,
                    p50_us: 8.0,
                    p99_us: 30.0,
                },
                serving::ServingSweepPoint {
                    threads: 4,
                    queries: 4000,
                    answered: 3960,
                    wall_ms: 12.0,
                    qps: 330_000.0,
                    mean_us: 11.0,
                    p50_us: 9.0,
                    p99_us: 42.0,
                },
            ],
            single_thread_qps: 100_000.0,
            peak_qps: 330_000.0,
            scaling: 3.3,
            hot_swap: HotSwapReport {
                worker_threads: 4,
                reloads: 5,
                queries: 123_456,
                failed: 0,
                steady_p99_us: 30.0,
                swap_p99_us: 60.0,
                p99_spike_ratio: 2.0,
            },
            tcp: serving::TcpReport {
                connections: 2,
                requests: 2000,
                errors: 0,
                qps: 25_000.0,
                p50_us: 70.0,
                p99_us: 250.0,
                reload_generation: 2,
            },
            concurrency: vec![
                serving::ConcurrencySweepPoint {
                    protocol: "ascii".to_string(),
                    connections: 512,
                    pipeline: 1,
                    requests: 32_768,
                    errors: 0,
                    busy_retries: 0,
                    qps: 70_000.0,
                    p50_us: 120.0,
                    p99_us: 900.0,
                },
                serving::ConcurrencySweepPoint {
                    protocol: "binary".to_string(),
                    connections: 512,
                    pipeline: 32,
                    requests: 32_768,
                    errors: 0,
                    busy_retries: 3,
                    qps: 400_000.0,
                    p50_us: 80.0,
                    p99_us: 700.0,
                },
            ],
            resilience: serving::ResilienceReport {
                connections: 20,
                slow_connections: 2,
                requests: 4000,
                answered: 3950,
                noroutes: 10,
                internal_errors: 40,
                deadline_exceeded: 0,
                other_errors: 0,
                busy_retries: 7,
                qps: 50_000.0,
                p50_us: 90.0,
                p99_us: 1500.0,
                panics_injected: 40,
                panics_caught: 40,
                workers_respawned: 0,
                idle_reaped: 0,
                write_stalls: 0,
                open_connections_after: 0,
                invariant_violations: vec!["example \"violation\"".to_string()],
            },
            lifecycle: serving::LifecycleReport {
                publishes: 5,
                publish_mean_ms: 1.25,
                publish_max_ms: 3.0,
                store_reloads: 3,
                rollbacks: 3,
                swap_failed: 0,
                canary_rejections: 1,
                crash_points: 9,
                crash_recoveries: 9,
                invariant_violations: Vec::new(),
            },
        };
        let report = OnlineBenchReport {
            scale: Scale::Quick,
            threads: 4,
            peak_rss_bytes: None,
            compile: None,
            decode: None,
            datasets: Vec::new(),
            serving: vec![entry],
        };
        let json = online_bench_json(&report);
        assert!(json.contains("\"serving\": ["), "{json}");
        assert!(json.contains("\"sweep\": ["), "{json}");
        assert!(json.contains("\"hot_swap\""), "{json}");
        assert!(json.contains("\"failed\": 0"), "{json}");
        assert!(json.contains("\"tcp\""), "{json}");
        assert!(json.contains("\"single_thread_qps\""), "{json}");
        assert!(json.contains("\"concurrency_sweep\": ["), "{json}");
        assert!(json.contains("\"protocol\": \"binary\""), "{json}");
        assert!(json.contains("\"busy_retries\": 3"), "{json}");
        assert!(json.contains("\"resilience\": {"), "{json}");
        assert!(json.contains("\"panics_injected\": 40"), "{json}");
        assert!(json.contains("\"lifecycle\": {"), "{json}");
        assert!(json.contains("\"canary_rejections\": 1"), "{json}");
        assert!(json.contains("\"crash_recoveries\": 9"), "{json}");
        // Violation strings are JSON-escaped.
        assert!(
            json.contains("\"invariant_violations\": [\"example \\\"violation\\\"\"]"),
            "{json}"
        );
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn serving_bench_runs_end_to_end_on_the_quick_dataset() {
        let ds = &datasets(DatasetChoice::D1, Scale::Quick)[0];
        let entry = serving_bench_for(ds, 1, None, &[1, 8]);
        assert_eq!(entry.name, "D1");
        assert!(entry.queries > 0);
        assert!(!entry.sweep.is_empty());
        assert!(
            entry.sweep.iter().any(|p| p.threads > 1),
            "sweep spans threads"
        );
        for p in &entry.sweep {
            assert!(p.qps > 0.0);
            assert!(p.p50_us <= p.p99_us);
        }
        assert!(entry.single_thread_qps > 0.0);
        assert!(entry.peak_qps >= entry.single_thread_qps);
        // The pool never creates more scratches than the widest sweep point.
        let max_threads = entry.sweep.iter().map(|p| p.threads).max().unwrap();
        assert!(entry.scratches_created <= max_threads);
        // Hot-swap under load: reloads happened, zero failed queries.
        assert!(entry.hot_swap.reloads >= 5);
        assert!(entry.hot_swap.queries > 0);
        assert_eq!(
            entry.hot_swap.failed, 0,
            "no query may ever observe a half-swapped model"
        );
        // TCP loopback: real requests flowed, the live reload bumped the
        // generation past the in-process swaps.
        assert!(entry.tcp.requests > 0);
        assert_eq!(entry.tcp.errors, 0);
        assert!(entry.tcp.reload_generation >= 2);
        // Concurrency sweep: both protocols at every connection count,
        // nothing lost at any point.
        assert_eq!(
            entry.concurrency.len(),
            4,
            "2 connection counts x 2 protocols"
        );
        for p in &entry.concurrency {
            assert!(p.requests > 0);
            assert_eq!(
                p.errors, 0,
                "{} sweep at {} connections",
                p.protocol, p.connections
            );
            assert!(p.qps > 0.0);
        }
        assert!(entry
            .concurrency
            .iter()
            .any(|p| p.protocol == "binary" && p.pipeline > 1));
        // Resilience: faults were genuinely injected, the error taxonomy
        // accounts for all of them, and every invariant held.
        let rs = &entry.resilience;
        assert!(rs.requests > 0);
        assert!(rs.qps > 0.0);
        assert!(
            rs.panics_injected > 0,
            "1% of {} requests must inject at least one panic",
            rs.requests
        );
        assert_eq!(rs.panics_caught, rs.panics_injected);
        assert_eq!(rs.internal_errors, rs.panics_injected);
        assert_eq!(rs.workers_respawned, 0);
        assert_eq!(rs.other_errors, 0);
        assert_eq!(rs.open_connections_after, 0);
        assert_eq!(
            rs.invariant_violations,
            Vec::<String>::new(),
            "resilience invariants must hold"
        );
        // Lifecycle: durable publishes happened, swaps + rollbacks were
        // exercised under load, the poisoned snapshot was rejected, and
        // every simulated crash point recovered to a durable generation.
        let lc = &entry.lifecycle;
        assert_eq!(lc.publishes, 5);
        assert!(lc.publish_mean_ms > 0.0 && lc.publish_max_ms >= lc.publish_mean_ms);
        assert_eq!(lc.store_reloads, 3);
        assert_eq!(lc.rollbacks, 3);
        assert_eq!(lc.swap_failed, 0, "no query may diverge across a swap");
        assert_eq!(
            lc.canary_rejections, 1,
            "poisoned snapshot must be rejected"
        );
        assert!(
            lc.crash_points > 0,
            "the crash matrix must cover real fs ops"
        );
        assert_eq!(lc.crash_recoveries, lc.crash_points);
        assert_eq!(
            lc.invariant_violations,
            Vec::<String>::new(),
            "lifecycle invariants must hold"
        );
    }

    #[test]
    fn online_report_can_serve_from_a_snapshot() {
        let ds = &datasets(DatasetChoice::D1, Scale::Quick)[0];
        let path = std::env::temp_dir().join(format!(
            "l2r-bench-snapshot-test-{}.l2r",
            std::process::id()
        ));
        let saved = l2r_core::save_model(&ds.model, &path).expect("save");
        let entry = online_bench_for(ds, 1, Some(&path));
        std::fs::remove_file(&path).ok();
        let snap = entry.snapshot.as_ref().expect("snapshot info recorded");
        assert_eq!(snap.bytes, saved);
        assert!(snap.load_ms > 0.0);
        assert!(
            entry.equivalent,
            "a loaded model must serve bit-identically to the in-memory fit"
        );
        let report = OnlineBenchReport {
            scale: Scale::Quick,
            threads: l2r_par::max_threads(),
            peak_rss_bytes: None,
            compile: None,
            decode: None,
            datasets: vec![entry],
            serving: Vec::new(),
        };
        let json = online_bench_json(&report);
        assert!(json.contains("\"snapshot\""));
        assert!(json.contains("\"load_ms\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn json_escape_handles_special_characters() {
        assert_eq!(json_escape("target/model.l2r"), "target/model.l2r");
        assert_eq!(json_escape(r"C:\models\a.l2r"), r"C:\\models\\a.l2r");
        assert_eq!(json_escape("a\"b"), "a\\\"b");
        assert_eq!(json_escape("a\nb"), "a\\u000ab");
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let sorted: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&sorted, 50.0), 50.0);
        assert_eq!(percentile(&sorted, 95.0), 95.0);
        assert_eq!(percentile(&sorted, 99.0), 99.0);
        assert_eq!(percentile(&sorted, 100.0), 100.0);
        assert_eq!(percentile(&[42.0], 50.0), 42.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }
}
