//! Country-scale instrumentation for the reproduce harness: peak-RSS
//! sampling, the naive-vs-radius-bounded transfer-similarity comparison,
//! the serial-vs-parallel engine-compile and snapshot-decode comparisons,
//! and the cross-thread fit-determinism check.
//!
//! Everything here is measurement only — the pass/fail policy (which
//! numbers gate a `reproduce` run at which scale) lives in the binary.

use std::time::Instant;

use l2r_eval::Dataset;
use l2r_preference::{build_descriptors, build_similarity_rows, build_similarity_rows_naive};

/// Peak resident set size of this process in bytes, read from the `VmHWM`
/// line of `/proc/self/status`.  Dependency-free and Linux-only; returns
/// `None` on other platforms (or if the file is unreadable), in which case
/// the BENCH reports omit the field.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().strip_suffix("kB")?.trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

/// Naive vs radius-bounded construction of the transfer similarity graph,
/// on the fitted model's own region-edge descriptors and `amr`.
#[derive(Debug, Clone)]
pub struct TransferSimBench {
    /// Number of region edges (similarity-graph nodes).
    pub edges: usize,
    /// Number of kept similarity pairs (identical for both builders).
    pub pairs: usize,
    /// Wall time of the naive O(n²) scan in milliseconds.
    pub naive_ms: f64,
    /// Wall time of the radius-bounded scan in milliseconds.
    pub bounded_ms: f64,
    /// `naive_ms / bounded_ms`.
    pub speedup: f64,
    /// Whether the two builders produced bit-identical rows (they must).
    pub identical: bool,
}

/// Times both similarity-graph builders on `ds`'s fitted region graph.
pub fn transfer_sim_bench_for(ds: &Dataset) -> TransferSimBench {
    let rg = ds.model.region_graph();
    let edges: Vec<&l2r_region_graph::RegionEdge> = rg.edges().iter().collect();
    let descriptors = build_descriptors(rg, &edges);
    let amr = ds.model.config().transfer.amr;
    let t0 = Instant::now();
    let naive = build_similarity_rows_naive(&descriptors, amr);
    let naive_ms = t0.elapsed().as_secs_f64() * 1000.0;
    let t0 = Instant::now();
    let bounded = build_similarity_rows(&descriptors, amr);
    let bounded_ms = t0.elapsed().as_secs_f64() * 1000.0;
    TransferSimBench {
        edges: descriptors.len(),
        pairs: bounded.iter().map(Vec::len).sum(),
        naive_ms,
        bounded_ms,
        speedup: if bounded_ms > 0.0 {
            naive_ms / bounded_ms
        } else {
            0.0
        },
        identical: naive == bounded,
    }
}

/// Result of refitting a dataset under a different worker-thread count and
/// comparing the encoded snapshots byte for byte.
#[derive(Debug, Clone)]
pub struct FitDeterminism {
    /// Thread count of the original fit (the run's ambient `L2R_THREADS`).
    pub threads_a: usize,
    /// Thread count of the verification refit.
    pub threads_b: usize,
    /// Whether both fits encode to exactly the same snapshot bytes.
    pub identical: bool,
}

/// Refits `ds` under a different thread count and checks the two fitted
/// models encode to bit-identical snapshots.  The ambient thread override is
/// restored before returning.
pub fn fit_determinism_check(ds: &Dataset) -> FitDeterminism {
    let threads_a = l2r_par::max_threads();
    // Cross a real thread boundary even on a single-core host: par_map with
    // an override > 1 spawns actual worker threads regardless of core count.
    let threads_b = if threads_a == 1 { 4 } else { 1 };
    // Structural encode: snapshots carry wall-clock stage timings as
    // provenance, which trivially differ between any two fits — the
    // determinism contract is over everything else.
    let bytes_a = l2r_core::encode_model_structural(&ds.model);
    let saved = l2r_par::thread_override();
    l2r_par::set_thread_override(Some(threads_b));
    let refit = l2r_core::L2r::fit(&ds.synthetic.net, &ds.train, ds.spec.l2r.clone())
        .expect("refitting the same training data never fails");
    l2r_par::set_thread_override(saved);
    let bytes_b = l2r_core::encode_model_structural(&refit);
    FitDeterminism {
        threads_a,
        threads_b,
        identical: bytes_a == bytes_b,
    }
}

/// Serial vs parallel `Engine` compilation of the same fitted model.
#[derive(Debug, Clone)]
pub struct CompileBench {
    /// Worker threads the parallel compile used.
    pub threads: usize,
    /// Engine compile wall time with a single worker, milliseconds.
    pub serial_ms: f64,
    /// Engine compile wall time at the ambient thread count, milliseconds.
    pub parallel_ms: f64,
    /// `serial_ms / parallel_ms`.
    pub speedup: f64,
}

/// Compiles `ds`'s model twice — single-threaded and at the ambient thread
/// count — and reports both wall times.  The ambient override is restored.
pub fn compile_bench_for(ds: &Dataset) -> CompileBench {
    let threads = l2r_par::max_threads();
    let saved = l2r_par::thread_override();
    l2r_par::set_thread_override(Some(1));
    let serial_model = ds.model.clone();
    let t0 = Instant::now();
    let serial_engine = serial_model.into_engine();
    let serial_ms = t0.elapsed().as_secs_f64() * 1000.0;
    drop(serial_engine);
    l2r_par::set_thread_override(saved);
    let parallel_model = ds.model.clone();
    let t0 = Instant::now();
    let parallel_engine = parallel_model.into_engine();
    let parallel_ms = t0.elapsed().as_secs_f64() * 1000.0;
    drop(parallel_engine);
    CompileBench {
        threads,
        serial_ms,
        parallel_ms,
        speedup: if parallel_ms > 0.0 {
            serial_ms / parallel_ms
        } else {
            0.0
        },
    }
}

/// Serial vs parallel snapshot decode of the same encoded model.
#[derive(Debug, Clone)]
pub struct DecodeBench {
    /// Worker threads the parallel decode used.
    pub threads: usize,
    /// Snapshot size in bytes.
    pub bytes: u64,
    /// Decode wall time with a single worker, milliseconds.
    pub serial_ms: f64,
    /// Decode wall time at the ambient thread count, milliseconds.
    pub parallel_ms: f64,
    /// `serial_ms / parallel_ms`.
    pub speedup: f64,
    /// Whether the parallel decode re-encodes to the original bytes.
    pub identical: bool,
}

/// Encodes `ds`'s model once and decodes it twice — single-threaded and at
/// the ambient thread count — checking the parallel decode round-trips to
/// the exact input bytes.  The ambient override is restored.
pub fn decode_bench_for(ds: &Dataset) -> DecodeBench {
    let threads = l2r_par::max_threads();
    let bytes = l2r_core::encode_model(&ds.model);
    let saved = l2r_par::thread_override();
    l2r_par::set_thread_override(Some(1));
    let t0 = Instant::now();
    let serial = l2r_core::decode_model(&bytes).expect("freshly encoded snapshot decodes");
    let serial_ms = t0.elapsed().as_secs_f64() * 1000.0;
    drop(serial);
    l2r_par::set_thread_override(saved);
    let t0 = Instant::now();
    let parallel = l2r_core::decode_model(&bytes).expect("freshly encoded snapshot decodes");
    let parallel_ms = t0.elapsed().as_secs_f64() * 1000.0;
    let identical = l2r_core::encode_model(&parallel) == bytes;
    DecodeBench {
        threads,
        bytes: bytes.len() as u64,
        serial_ms,
        parallel_ms,
        speedup: if parallel_ms > 0.0 {
            serial_ms / parallel_ms
        } else {
            0.0
        },
        identical,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{datasets, DatasetChoice};
    use l2r_eval::Scale;

    #[test]
    fn peak_rss_reports_a_plausible_value_on_linux() {
        if !std::path::Path::new("/proc/self/status").exists() {
            return;
        }
        let rss = peak_rss_bytes().expect("VmHWM is present on Linux");
        // A Rust test binary occupies somewhere between 1 MiB and 1 TiB.
        assert!(rss > 1 << 20, "peak RSS {rss} implausibly small");
        assert!(rss < 1 << 40, "peak RSS {rss} implausibly large");
    }

    #[test]
    fn scaling_benches_run_on_the_quick_dataset() {
        let ds = &datasets(DatasetChoice::D1, Scale::Quick)[0];

        let transfer = transfer_sim_bench_for(ds);
        assert!(transfer.edges > 0);
        assert!(transfer.identical, "builders must agree bit for bit");

        let compile = compile_bench_for(ds);
        assert!(compile.serial_ms > 0.0 && compile.parallel_ms > 0.0);

        let decode = decode_bench_for(ds);
        assert!(decode.bytes > 0);
        assert!(decode.identical, "parallel decode must round-trip");

        let det = fit_determinism_check(ds);
        assert_ne!(det.threads_a, det.threads_b);
        assert!(det.identical, "fits must not depend on the thread count");
        // The check restores the ambient override.
        assert_eq!(l2r_par::max_threads(), det.threads_a);
    }
}
