//! The multi-threaded serving benchmark behind `reproduce -- serving`.
//!
//! Four measurements per dataset, all over one shared `Arc<Engine>` (the
//! production serving shape — PR 3's single-scratch numbers measured the
//! same engine from one thread):
//!
//! 1. **Thread sweep** — N serving threads hammer the shared engine, each
//!    with a pooled [`QueryScratch`]; reports aggregate qps and the latency
//!    distribution per thread count.  On multi-core hardware aggregate
//!    throughput scales with threads; the sweep records whatever the host
//!    provides.
//! 2. **Hot-swap under load** — worker threads route continuously through a
//!    [`ModelRegistry`] while the main thread repeatedly hot-reloads the
//!    dataset's `.l2r` snapshot.  Every answer is compared bit-exactly
//!    against the expected result: `failed` must stay **zero** (no query
//!    ever observes a missing or half-swapped model), and the p99 during
//!    swapping vs steady state quantifies the latency spike a reload costs.
//! 3. **TCP loopback** — an actual `l2r-serve` server on an ephemeral
//!    loopback port, driven end-to-end (load generator + a live `reload`)
//!    so the full wire path is on the record.
//! 4. **Resilience** — a second server with a deterministic
//!    [`FaultPlan`] injecting 1% handler panics, driven with a tenth of
//!    the connections acting as slow clients; qps, the full error
//!    taxonomy, and an invariant checklist (exact panic accounting, no
//!    worker deaths, no leaked connections) go on the record and
//!    `reproduce -- serving` fails on any violation.
//! 5. **Model lifecycle** — the crash-safe model store end to end: publish
//!    latency, store-reloads and rollbacks applied while workers route
//!    (every answer still bit-exact), a poisoned-canary snapshot that must
//!    be rejected with the old engine serving on, and a compact crash
//!    matrix (a simulated crash at every mutating filesystem operation of
//!    a publish, each of which must recover to the newest durable
//!    generation).  Violations gate `reproduce -- serving` like the
//!    resilience checklist does.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use l2r_core::store::PUBLISH_OP_COMMIT;
use l2r_core::{
    compute_canaries, encode_snapshot_with, Engine, FaultFs, FsFaultConfig, FsFaultKind,
    ModelRegistry, ModelStore, QueryScratch, RegistryError, RouteResult, ScratchPool, StoreFs,
    StoreOptions,
};
use l2r_eval::{build_test_queries, Dataset, TestQuery};
use l2r_serve::{Client, FaultConfig, FaultPlan, LoadConfig, Protocol, Server, ServerConfig};

/// One thread-count measurement of the sweep.
#[derive(Debug, Clone)]
pub struct ServingSweepPoint {
    /// Serving threads used.
    pub threads: usize,
    /// Total queries routed across all threads.
    pub queries: u64,
    /// Queries answered with a route.
    pub answered: u64,
    /// Wall time of the whole point (spawn to join).
    pub wall_ms: f64,
    /// Aggregate throughput: `queries / wall`.
    pub qps: f64,
    /// Mean per-query latency (µs) across all threads.
    pub mean_us: f64,
    /// Median per-query latency (µs).
    pub p50_us: f64,
    /// 99th-percentile per-query latency (µs).
    pub p99_us: f64,
}

/// Hot-swap-under-load measurement.
#[derive(Debug, Clone)]
pub struct HotSwapReport {
    /// Worker threads hammering the registry during the swaps.
    pub worker_threads: usize,
    /// Successful hot-reloads performed while the workers ran.
    pub reloads: u64,
    /// Queries routed across the steady and swap phases.
    pub queries: u64,
    /// Queries whose answer differed from the expected result or that found
    /// no engine — **must be zero**: a hot-swap is atomic.
    pub failed: u64,
    /// p99 latency (µs) of the steady phase (no reloads).
    pub steady_p99_us: f64,
    /// p99 latency (µs) while reloads were being applied.
    pub swap_p99_us: f64,
    /// `swap_p99_us / steady_p99_us` — the latency spike a reload costs.
    pub p99_spike_ratio: f64,
}

/// One point of the connection-concurrency sweep: `connections` concurrent
/// clients speaking `protocol` (with `pipeline` requests in flight per
/// connection on the binary protocol) against the event-driven server.
#[derive(Debug, Clone)]
pub struct ConcurrencySweepPoint {
    /// Wire protocol driven: `ascii` or `binary`.
    pub protocol: String,
    /// Concurrent client connections.
    pub connections: usize,
    /// Pipelined requests in flight per connection.
    pub pipeline: usize,
    /// Total `route` requests issued.
    pub requests: u64,
    /// Requests answered `ERR` — **must be zero**: the sweep loses nothing.
    pub errors: u64,
    /// `BUSY` replies that were retried (retries succeeded; nothing lost).
    pub busy_retries: u64,
    /// Aggregate requests/second through the wire.
    pub qps: f64,
    /// Median round-trip latency (µs).
    pub p50_us: f64,
    /// 99th-percentile round-trip latency (µs).
    pub p99_us: f64,
}

/// Resilience measurement: qps and error taxonomy of a loopback server
/// running under a deterministic fault plan (1% injected handler panics)
/// while a tenth of the client connections are deliberately slow
/// (fragmented, stalling writers).  The `invariant_violations` list is the
/// verdict — it **must be empty**: every injected panic surfaced as
/// exactly one request-scoped error, no worker died, no protocol error
/// leaked, no connection was left behind.
#[derive(Debug, Clone)]
pub struct ResilienceReport {
    /// Concurrent client connections of the run.
    pub connections: usize,
    /// How many of them were slow clients.
    pub slow_connections: usize,
    /// Total requests completed.
    pub requests: u64,
    /// Requests answered with a route.
    pub answered: u64,
    /// Requests answered `NOROUTE`.
    pub noroutes: u64,
    /// Requests answered with an isolated-panic internal error (must equal
    /// `panics_injected` exactly).
    pub internal_errors: u64,
    /// Requests answered "deadline exceeded".
    pub deadline_exceeded: u64,
    /// Any other `ERR` replies (must be zero).
    pub other_errors: u64,
    /// `BUSY` replies retried until served.
    pub busy_retries: u64,
    /// Aggregate requests/second under the fault plan.
    pub qps: f64,
    /// Median round-trip latency (µs).
    pub p50_us: f64,
    /// 99th-percentile round-trip latency (µs).
    pub p99_us: f64,
    /// Handler panics the fault plan injected.
    pub panics_injected: u64,
    /// Panics the server's isolation layer caught.
    pub panics_caught: u64,
    /// Event loops the watchdog had to respawn (must be zero — a handler
    /// panic never kills a worker).
    pub workers_respawned: u64,
    /// Idle connections reaped during the run.
    pub idle_reaped: u64,
    /// Write-stalled connections disconnected during the run.
    pub write_stalls: u64,
    /// Connections still registered after shutdown (must be zero).
    pub open_connections_after: usize,
    /// Human-readable description of every violated invariant; an empty
    /// list is the pass verdict `reproduce -- serving` gates on.
    pub invariant_violations: Vec<String>,
}

/// Model-lifecycle measurement: the crash-safe store, validated hot-swap
/// and rollback exercised under live query load, plus a compact crash
/// matrix.  Like the resilience checklist, `invariant_violations` **must
/// be empty** — `reproduce -- serving` fails otherwise.
#[derive(Debug, Clone)]
pub struct LifecycleReport {
    /// Generations published into the store for the latency measurement.
    pub publishes: u64,
    /// Mean durable-publish latency (encode + fsync-chained rename), ms.
    pub publish_mean_ms: f64,
    /// Slowest durable publish of the run, ms.
    pub publish_max_ms: f64,
    /// Store-directory hot-swaps applied while workers were routing.
    pub store_reloads: u64,
    /// Rollbacks applied while workers were routing.
    pub rollbacks: u64,
    /// Queries that diverged from the serial reference during the
    /// swap/rollback hammering — must be zero.
    pub swap_failed: u64,
    /// Poisoned-canary snapshots correctly rejected (expected: 1).
    pub canary_rejections: u64,
    /// Crash-injection points exercised (one per mutating fs op of a
    /// publish).
    pub crash_points: u64,
    /// Crash points after which the store recovered the newest durable
    /// generation (must equal `crash_points`).
    pub crash_recoveries: u64,
    /// Human-readable description of every violated invariant; empty is
    /// the pass verdict.
    pub invariant_violations: Vec<String>,
}

/// End-to-end TCP measurement through a real `l2r-serve` server.
#[derive(Debug, Clone)]
pub struct TcpReport {
    /// Client connections used by the load generator.
    pub connections: usize,
    /// `route` requests issued over TCP.
    pub requests: u64,
    /// Requests answered `ERR` (0 on a healthy run).
    pub errors: u64,
    /// Aggregate requests/second through the wire.
    pub qps: f64,
    /// Median round-trip latency (µs).
    pub p50_us: f64,
    /// 99th-percentile round-trip latency (µs).
    pub p99_us: f64,
    /// Registry generation after the live `reload` request.
    pub reload_generation: u64,
}

/// The serving section entry of one dataset.
#[derive(Debug, Clone)]
pub struct ServingBenchDataset {
    /// Dataset name (`D1` / `D2`).
    pub name: String,
    /// Distinct queries in the workload.
    pub queries: usize,
    /// Engine build cost (model (re)load/clone + index compilation), ms.
    pub engine_build_ms: f64,
    /// Scratches the shared pool created over the whole sweep — bounded by
    /// the largest thread count, proving batches reuse warmed scratches.
    pub scratches_created: usize,
    /// One point per thread count.
    pub sweep: Vec<ServingSweepPoint>,
    /// Aggregate qps of the single-thread sweep point.
    pub single_thread_qps: f64,
    /// Best aggregate qps across the sweep.
    pub peak_qps: f64,
    /// `peak_qps / single_thread_qps`.
    pub scaling: f64,
    /// Hot-swap-under-load measurement.
    pub hot_swap: HotSwapReport,
    /// TCP loopback measurement.
    pub tcp: TcpReport,
    /// Connection-concurrency sweep over both wire protocols.
    pub concurrency: Vec<ConcurrencySweepPoint>,
    /// Fault-injection resilience measurement.
    pub resilience: ResilienceReport,
    /// Crash-safe store + validated-swap lifecycle measurement.
    pub lifecycle: LifecycleReport,
}

use crate::percentile;

/// The thread counts the sweep visits: 1, 2, 4 plus the configured
/// `max_threads`, deduplicated and capped at 8.
fn sweep_threads() -> Vec<usize> {
    let mut threads = vec![1usize, 2, 4, l2r_par::max_threads().min(8)];
    threads.sort_unstable();
    threads.dedup();
    threads
}

/// Runs the full serving benchmark for one dataset.  With `snapshot` set,
/// the engine is built from that `.l2r` file (and the hot-swap phase reloads
/// it); otherwise the in-memory model is used and a temporary snapshot is
/// written for the swap phase.  `sweep_connections` sets the connection
/// counts of the concurrency sweep (each driven over both wire protocols);
/// pass a short list to keep test runs fast.
pub fn serving_bench_for(
    ds: &Dataset,
    rounds: usize,
    snapshot: Option<&std::path::Path>,
    sweep_connections: &[usize],
) -> ServingBenchDataset {
    let rounds = rounds.max(1);
    let queries: Vec<TestQuery> = build_test_queries(
        &ds.synthetic.net,
        &ds.model,
        &ds.test,
        ds.spec.max_test_queries,
    );

    // Build the engine exactly like a serving process would.  Without a
    // snapshot the model is cloned *before* the clock starts, so
    // `engine_build_ms` measures load + index compilation, not the clone.
    let t0;
    let engine: Arc<Engine> = Arc::new(match snapshot {
        Some(path) => {
            t0 = Instant::now();
            Engine::load(path)
                .unwrap_or_else(|e| panic!("snapshot {} failed to load: {e}", path.display()))
        }
        None => {
            let model = ds.model.clone();
            t0 = Instant::now();
            model.into_engine()
        }
    });
    let engine_build_ms = t0.elapsed().as_secs_f64() * 1000.0;

    // Expected answers (serial, one scratch) — the bit-equivalence reference
    // for every concurrent phase below.
    let mut scratch = QueryScratch::new();
    let expected: Vec<Option<RouteResult>> = queries
        .iter()
        .map(|q| engine.route(&mut scratch, q.source, q.destination))
        .collect();
    let expected_answered = expected.iter().filter(|r| r.is_some()).count() as u64;

    // --- 1. Thread sweep -------------------------------------------------
    // Aim for enough queries per thread that spawn overhead is noise.
    let sweep_rounds = (20_000 / queries.len().max(1)).max(rounds);
    let pool = ScratchPool::new();
    let mut sweep = Vec::new();
    for &threads in &sweep_threads() {
        let t0 = Instant::now();
        let per_thread: Vec<(Vec<f64>, u64)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let engine = &engine;
                    let queries = &queries;
                    let pool = &pool;
                    scope.spawn(move || {
                        let mut latencies = Vec::with_capacity(queries.len() * sweep_rounds);
                        let mut answered = 0u64;
                        for _ in 0..sweep_rounds {
                            // One pooled scratch per batch: across batches the
                            // pool hands the warmed scratch back out.
                            let mut scratch = pool.acquire();
                            for q in queries {
                                let q0 = Instant::now();
                                let r = engine.route(&mut scratch, q.source, q.destination);
                                latencies.push(q0.elapsed().as_secs_f64() * 1e6);
                                answered += r.is_some() as u64;
                            }
                        }
                        (latencies, answered)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("sweep worker"))
                .collect()
        });
        let wall = t0.elapsed();
        let mut latencies: Vec<f64> = Vec::new();
        let mut answered = 0u64;
        for (mut lat, ans) in per_thread {
            latencies.append(&mut lat);
            answered += ans;
        }
        assert_eq!(
            answered,
            expected_answered * (threads * sweep_rounds) as u64,
            "concurrent serving must answer exactly like the serial reference"
        );
        latencies.sort_by(|a, b| a.total_cmp(b));
        let total = latencies.len() as u64;
        let mean_us = latencies.iter().sum::<f64>() / latencies.len().max(1) as f64;
        sweep.push(ServingSweepPoint {
            threads,
            queries: total,
            answered,
            wall_ms: wall.as_secs_f64() * 1000.0,
            qps: if wall.as_secs_f64() > 0.0 {
                total as f64 / wall.as_secs_f64()
            } else {
                0.0
            },
            mean_us,
            p50_us: percentile(&latencies, 50.0),
            p99_us: percentile(&latencies, 99.0),
        });
    }
    let single_thread_qps = sweep
        .iter()
        .find(|p| p.threads == 1)
        .map(|p| p.qps)
        .unwrap_or(0.0);
    let peak_qps = sweep.iter().map(|p| p.qps).fold(0.0f64, f64::max);

    // --- 2. Hot-swap under load ------------------------------------------
    // The swap phase needs a snapshot file to reload from.
    let (swap_path, temp_snapshot) = match snapshot {
        Some(path) => (path.to_path_buf(), false),
        None => {
            let path = std::env::temp_dir().join(format!(
                "l2r-serving-bench-{}-{}.l2r",
                ds.spec.name,
                std::process::id()
            ));
            l2r_core::save_model(&ds.model, &path).expect("temp snapshot for hot-swap");
            (path, true)
        }
    };
    let registry = ModelRegistry::new();
    registry.insert_shared(ds.spec.name, Arc::clone(&engine));
    let worker_threads = sweep_threads().into_iter().max().unwrap_or(1).max(2);
    let (steady, steady_p99_us) = hammer_registry(
        &registry,
        ds.spec.name,
        &queries,
        &expected,
        worker_threads,
        |_stop| {
            std::thread::sleep(Duration::from_millis(40));
            0
        },
    );
    let (hammer, swap_p99_us) = hammer_registry(
        &registry,
        ds.spec.name,
        &queries,
        &expected,
        worker_threads,
        |_stop| {
            let mut reloads = 0u64;
            for _ in 0..5 {
                registry
                    .reload(ds.spec.name, &swap_path)
                    .expect("hot-reload of a freshly written snapshot");
                reloads += 1;
                std::thread::sleep(Duration::from_millis(2));
            }
            reloads
        },
    );
    let hot_swap = HotSwapReport {
        worker_threads,
        reloads: hammer.reloads,
        queries: steady.queries + hammer.queries,
        // Steady-phase mismatches count too: a concurrency bug with no
        // reload in flight must not slip through as "0 failed".
        failed: steady.failed + hammer.failed,
        steady_p99_us,
        swap_p99_us,
        p99_spike_ratio: if steady_p99_us > 0.0 {
            swap_p99_us / steady_p99_us
        } else {
            0.0
        },
    };

    // --- 3. TCP loopback --------------------------------------------------
    let tcp_registry = ModelRegistry::new();
    tcp_registry.insert_shared(ds.spec.name, Arc::clone(&engine));
    let server = Server::bind("127.0.0.1:0", 2, tcp_registry).expect("bind loopback serving bench");
    let addr = server.local_addr();
    let handle = server.start();
    let requests_per_conn = (queries.len() * rounds).clamp(200, 2000);
    let report = l2r_serve::run_load(
        addr,
        &LoadConfig {
            dataset: ds.spec.name.to_string(),
            protocol: Protocol::Ascii,
            connections: 2,
            pipeline: 1,
            requests_per_conn,
            seed: 0x5E17_1E55,
            ..LoadConfig::default()
        },
    )
    .expect("load generator against loopback server");

    // Connection-concurrency sweep: the same server, both wire protocols,
    // rising connection counts.  The total request volume is held roughly
    // constant so every point costs about the same wall time.
    let mut concurrency = Vec::new();
    for &connections in sweep_connections {
        for (protocol, pipeline) in [(Protocol::Ascii, 1usize), (Protocol::Binary, 32)] {
            let point = l2r_serve::run_load(
                addr,
                &LoadConfig {
                    dataset: ds.spec.name.to_string(),
                    protocol,
                    connections,
                    pipeline,
                    requests_per_conn: (32_768 / connections).max(8),
                    seed: 0x5E17_1E55 ^ connections as u64,
                    ..LoadConfig::default()
                },
            )
            .unwrap_or_else(|e| panic!("{connections}-connection {protocol:?} sweep failed: {e}"));
            concurrency.push(ConcurrencySweepPoint {
                protocol: protocol.label().to_string(),
                connections,
                pipeline,
                requests: point.requests,
                errors: point.errors,
                busy_retries: point.busy_retries,
                qps: point.qps,
                p50_us: point.p50_us,
                p99_us: point.p99_us,
            });
        }
    }

    // --- 4. Resilience under injected faults ------------------------------
    // A dedicated server with a deterministic fault plan: 1% of route
    // executions panic inside the handler, and every 10th client is a slow
    // (fragmented, stalling) writer.  The server must convert each panic
    // into exactly one request-scoped error and lose nothing else.
    let resilience = {
        // Injected faults panic on purpose; keep their spam out of the
        // bench output while leaving every other panic loud.
        static QUIET: std::sync::Once = std::sync::Once::new();
        QUIET.call_once(|| {
            let default = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                let injected = info
                    .payload()
                    .downcast_ref::<&str>()
                    .is_some_and(|m| m.contains("injected"));
                if !injected {
                    default(info);
                }
            }));
        });
        let plan = Arc::new(FaultPlan::new(FaultConfig {
            handler_panic_per_mille: 10,
            ..FaultConfig::default()
        }));
        let chaos_registry = ModelRegistry::new();
        chaos_registry.insert_shared(ds.spec.name, Arc::clone(&engine));
        let chaos_server = Server::bind_with(
            "127.0.0.1:0",
            ServerConfig {
                workers: 2,
                faults: Some(Arc::clone(&plan)),
                ..ServerConfig::default()
            },
            chaos_registry,
        )
        .expect("bind resilience bench server");
        let chaos_addr = chaos_server.local_addr();
        let chaos_state = chaos_server.state();
        let chaos_handle = chaos_server.start();
        let connections = 20usize;
        let slow_every = 10usize;
        let load = l2r_serve::run_load(
            chaos_addr,
            &LoadConfig {
                dataset: ds.spec.name.to_string(),
                protocol: Protocol::Binary,
                connections,
                pipeline: 8,
                requests_per_conn: (queries.len() * rounds).clamp(100, 500),
                seed: 0xC4A0_5EED,
                slow_every,
                ..LoadConfig::default()
            },
        )
        .expect("load generator against resilience bench server");
        chaos_handle
            .shutdown()
            .expect("clean resilience server shutdown");

        let counters = plan.counters();
        let stats = chaos_state.stats();
        let mut violations = Vec::new();
        if stats.panics_caught() != counters.panics_injected {
            violations.push(format!(
                "panics_caught {} != panics_injected {}",
                stats.panics_caught(),
                counters.panics_injected
            ));
        }
        if load.internal_errors != counters.panics_injected {
            violations.push(format!(
                "clients saw {} internal errors for {} injected panics",
                load.internal_errors, counters.panics_injected
            ));
        }
        if stats.workers_respawned() != 0 {
            violations.push(format!(
                "{} worker(s) died under isolated handler panics",
                stats.workers_respawned()
            ));
        }
        if load.errors != 0 {
            violations.push(format!("{} unexplained ERR replies", load.errors));
        }
        if chaos_state.open_connections() != 0 {
            violations.push(format!(
                "{} connection(s) leaked past shutdown",
                chaos_state.open_connections()
            ));
        }
        if load.qps <= 0.0 {
            violations.push("zero throughput under faults".to_string());
        }
        ResilienceReport {
            connections,
            slow_connections: connections / slow_every,
            requests: load.requests,
            answered: load.answered,
            noroutes: load.noroutes,
            internal_errors: load.internal_errors,
            deadline_exceeded: load.deadline_exceeded,
            other_errors: load.errors,
            busy_retries: load.busy_retries,
            qps: load.qps,
            p50_us: load.p50_us,
            p99_us: load.p99_us,
            panics_injected: counters.panics_injected,
            panics_caught: stats.panics_caught(),
            workers_respawned: stats.workers_respawned(),
            idle_reaped: stats.idle_reaped(),
            write_stalls: stats.write_stalls(),
            open_connections_after: chaos_state.open_connections(),
            invariant_violations: violations,
        }
    };

    // --- 5. Model lifecycle ------------------------------------------------
    let lifecycle = lifecycle_bench(ds, &engine, &queries, &expected, worker_threads);

    let mut client = Client::connect(addr).expect("client connect");
    let reload_resp = client
        .request(&format!("reload {} {}", ds.spec.name, swap_path.display()))
        .expect("live reload over TCP");
    assert!(
        reload_resp.starts_with("OK "),
        "TCP reload must succeed: {reload_resp}"
    );
    let reload_generation = reload_resp
        .split_whitespace()
        .find_map(|f| {
            f.strip_prefix("generation=")
                .and_then(|g| g.parse::<u64>().ok())
        })
        .unwrap_or(0);
    let _ = client.request("shutdown");
    handle.shutdown().expect("clean server shutdown");
    if temp_snapshot {
        std::fs::remove_file(&swap_path).ok();
    }
    let tcp = TcpReport {
        connections: 2,
        requests: report.requests,
        errors: report.errors,
        qps: report.qps,
        p50_us: report.p50_us,
        p99_us: report.p99_us,
        reload_generation,
    };

    ServingBenchDataset {
        name: ds.spec.name.to_string(),
        queries: queries.len(),
        engine_build_ms,
        scratches_created: pool.created(),
        sweep,
        single_thread_qps,
        peak_qps,
        scaling: if single_thread_qps > 0.0 {
            peak_qps / single_thread_qps
        } else {
            0.0
        },
        hot_swap,
        tcp,
        concurrency,
        resilience,
        lifecycle,
    }
}

/// The lifecycle phase of the serving bench: store publish latency,
/// store-reloads + rollbacks under live load, a poisoned-canary rejection
/// drill, and a compact crash matrix.  Invariant breaches are *recorded*
/// (not panicked) so the whole checklist lands in `BENCH_online.json` and
/// `reproduce -- serving` can gate on it.
fn lifecycle_bench(
    ds: &Dataset,
    engine: &Arc<Engine>,
    queries: &[TestQuery],
    expected: &[Option<RouteResult>],
    worker_threads: usize,
) -> LifecycleReport {
    let dir = std::env::temp_dir().join(format!(
        "l2r-lifecycle-bench-{}-{}",
        ds.spec.name,
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let mut violations: Vec<String> = Vec::new();

    // Publish latency: every generation is a full durable publish (encode,
    // temp write, fsync, rename, manifest replace, directory fsync).
    let mut store = ModelStore::create(&dir, ds.spec.name, StoreOptions::default())
        .expect("create bench store");
    let mut publish_ms: Vec<f64> = Vec::new();
    for _ in 0..5 {
        let t0 = Instant::now();
        store.publish(&ds.model).expect("durable publish");
        publish_ms.push(t0.elapsed().as_secs_f64() * 1000.0);
    }
    drop(store);
    let store = ModelStore::open(&dir).expect("reopen bench store");
    let publish_mean_ms = publish_ms.iter().sum::<f64>() / publish_ms.len() as f64;
    let publish_max_ms = publish_ms.iter().fold(0.0f64, |a, &b| a.max(b));

    // Store-reloads + rollbacks while workers route: every swap is
    // validated (dataset stamp + canary replay) and every answer before,
    // during and after must stay bit-exact.
    let registry = ModelRegistry::new();
    registry.insert_shared(ds.spec.name, Arc::clone(engine));
    let store_reloads = AtomicU64::new(0);
    let rollbacks = AtomicU64::new(0);
    let (swap_outcome, _) = hammer_registry(
        &registry,
        ds.spec.name,
        queries,
        expected,
        worker_threads,
        |_stop| {
            for _ in 0..3 {
                registry
                    .reload_from_store(ds.spec.name, &store, None)
                    .expect("store reload under load");
                store_reloads.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(Duration::from_millis(2));
                registry
                    .rollback(ds.spec.name)
                    .expect("rollback under load");
                rollbacks.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(Duration::from_millis(2));
            }
            0
        },
    );
    if swap_outcome.failed > 0 {
        violations.push(format!(
            "{} queries diverged during store-reload/rollback hammering",
            swap_outcome.failed
        ));
    }

    // Poisoned-canary drill: recorded digests that cannot reproduce must
    // reject the swap with the old engine still serving bit-identically.
    let mut canary_rejections = 0u64;
    let mut canaries = compute_canaries(&ds.model, 4);
    if canaries.is_empty() {
        violations.push("model yielded no canary probes".to_string());
    } else {
        for c in &mut canaries {
            c.digest ^= 0xDEAD_BEEF;
        }
        let poisoned = dir.join("poisoned.l2r");
        std::fs::write(
            &poisoned,
            encode_snapshot_with(&ds.model, ds.spec.name, &canaries),
        )
        .expect("write poisoned snapshot");
        match registry.reload(ds.spec.name, &poisoned) {
            Err(RegistryError::CanaryMismatch { .. }) => canary_rejections += 1,
            Err(e) => violations.push(format!(
                "poisoned snapshot rejected with the wrong error: {e}"
            )),
            Ok(_) => violations.push("poisoned snapshot was swapped in".to_string()),
        }
        let live = registry.get(ds.spec.name).expect("dataset registered");
        let mut scratch = QueryScratch::new();
        for (q, exp) in queries.iter().zip(expected.iter()).take(50) {
            if live.route(&mut scratch, q.source, q.destination) != *exp {
                violations.push("engine diverged after a rejected swap".to_string());
                break;
            }
        }
    }

    // Compact crash matrix: a simulated crash at every mutating fs op of a
    // publish; recovery must serve the newest durable generation (the
    // manifest rename is the durability boundary).
    let ops = {
        let count_dir = dir.join("crash-opcount");
        let mut s = ModelStore::create(&count_dir, ds.spec.name, StoreOptions { retain: 1 })
            .expect("create op-count store");
        s.publish(&ds.model).expect("seed publish");
        drop(s);
        let fs = Arc::new(FaultFs::new(FsFaultConfig {
            seed: 0xFA17_5EED,
            fault_at: None,
            kind: FsFaultKind::Crash,
        }));
        let mut s = ModelStore::open_with_options(
            Arc::clone(&fs) as Arc<dyn StoreFs>,
            &count_dir,
            StoreOptions { retain: 1 },
        )
        .expect("reopen op-count store");
        s.publish(&ds.model).expect("un-faulted publish");
        fs.ops()
    };
    let mut crash_points = 0u64;
    let mut crash_recoveries = 0u64;
    for op in 0..ops {
        crash_points += 1;
        let d = dir.join(format!("crash-{op}"));
        let mut s = ModelStore::create(&d, ds.spec.name, StoreOptions { retain: 1 })
            .expect("create crash-point store");
        s.publish(&ds.model).expect("seed publish");
        drop(s);
        let fs = Arc::new(FaultFs::new(FsFaultConfig {
            seed: 0xFA17_5EED ^ op,
            fault_at: Some(op),
            kind: FsFaultKind::Crash,
        }));
        let mut s = ModelStore::open_with_options(
            Arc::clone(&fs) as Arc<dyn StoreFs>,
            &d,
            StoreOptions { retain: 1 },
        )
        .expect("reopen crash-point store");
        let published = s.publish(&ds.model).is_ok();
        drop(s);
        let committed = op > PUBLISH_OP_COMMIT;
        if !committed && published {
            violations.push(format!(
                "crash at op {op}: uncommitted publish claimed success"
            ));
        }
        match ModelStore::open(&d) {
            Ok(recovered) => {
                let expect_gen = if committed { 2 } else { 1 };
                if recovered.latest() != Some(expect_gen) {
                    violations.push(format!(
                        "crash at op {op}: recovered generation {:?}, expected {expect_gen}",
                        recovered.latest()
                    ));
                } else if recovered.load(expect_gen).is_err() {
                    violations.push(format!(
                        "crash at op {op}: the recovered generation failed to decode"
                    ));
                } else {
                    crash_recoveries += 1;
                }
            }
            Err(e) => violations.push(format!("crash at op {op}: store failed to open: {e}")),
        }
        let _ = std::fs::remove_dir_all(&d);
    }

    let _ = std::fs::remove_dir_all(&dir);
    LifecycleReport {
        publishes: publish_ms.len() as u64,
        publish_mean_ms,
        publish_max_ms,
        store_reloads: store_reloads.load(Ordering::Relaxed),
        rollbacks: rollbacks.load(Ordering::Relaxed),
        swap_failed: swap_outcome.failed,
        canary_rejections,
        crash_points,
        crash_recoveries,
        invariant_violations: violations,
    }
}

/// Aggregate of one registry-hammering phase.
struct HammerOutcome {
    queries: u64,
    failed: u64,
    reloads: u64,
}

/// Spawns `threads` workers that route the workload through
/// `registry.get(name)` in a loop until the control closure returns (it runs
/// on the calling thread and gets a stop flag it may consult).  Returns the
/// aggregate outcome and the p99 latency (µs) across all workers.
fn hammer_registry(
    registry: &ModelRegistry,
    name: &str,
    queries: &[TestQuery],
    expected: &[Option<RouteResult>],
    threads: usize,
    control: impl FnOnce(&AtomicBool) -> u64,
) -> (HammerOutcome, f64) {
    let stop = AtomicBool::new(false);
    let failed = AtomicU64::new(0);
    let (latencies, reloads): (Vec<Vec<f64>>, u64) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let stop = &stop;
                let failed = &failed;
                scope.spawn(move || {
                    let mut scratch = QueryScratch::new();
                    let mut latencies = Vec::new();
                    'outer: loop {
                        for (i, q) in queries.iter().enumerate() {
                            // ordering: Relaxed — the flag carries no data;
                            // workers only need to stop eventually, and the
                            // scope join is the real synchronisation point.
                            if stop.load(Ordering::Relaxed) {
                                break 'outer;
                            }
                            let q0 = Instant::now();
                            let engine = registry.get(name);
                            let r = engine
                                .as_ref()
                                .and_then(|e| e.route(&mut scratch, q.source, q.destination));
                            latencies.push(q0.elapsed().as_secs_f64() * 1e6);
                            if engine.is_none() || r != expected[i] {
                                failed.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                    latencies
                })
            })
            .collect();
        let reloads = control(&stop);
        // ordering: Relaxed — see the worker-side load; join() synchronises.
        stop.store(true, Ordering::Relaxed);
        (
            handles
                .into_iter()
                .map(|h| h.join().expect("hammer worker"))
                .collect(),
            reloads,
        )
    });
    let mut merged: Vec<f64> = latencies.into_iter().flatten().collect();
    let queries_total = merged.len() as u64;
    merged.sort_by(|a, b| a.total_cmp(b));
    (
        HammerOutcome {
            queries: queries_total,
            failed: failed.load(Ordering::Relaxed),
            reloads,
        },
        percentile(&merged, 99.0),
    )
}
