//! Regenerates every table and figure of the paper's evaluation section.
//!
//! ```sh
//! # quick run (small datasets, seconds):
//! cargo run --release -p l2r-bench --bin reproduce
//! # benchmark-scale run (the numbers recorded in EXPERIMENTS.md):
//! cargo run --release -p l2r-bench --bin reproduce -- --full
//! # a single experiment:
//! cargo run --release -p l2r-bench --bin reproduce -- fig10
//! ```
//!
//! The `offline` experiment additionally writes a machine-readable
//! `BENCH_offline.json` (per-stage wall times, thread count,
//! searches/second, measured around the single `L2r::fit` performed while
//! building each dataset) to `target/BENCH_offline.json` — override the
//! path with `L2R_BENCH_JSON=<path>`.  CI uploads this file as an artifact
//! so the offline-performance trajectory is tracked across commits; the
//! copy checked in at the repo root is refreshed deliberately with
//! `L2R_BENCH_JSON=BENCH_offline.json ... -- --full offline`.
//!
//! The `fit` experiment persists each dataset's fitted model as a versioned
//! binary snapshot (`-- fit --snapshot target/model.l2r` writes
//! `target/model.D1.l2r` / `target/model.D2.l2r`), and `online --snapshot`
//! serves from those files instead of the in-process fit — recording the
//! snapshot size and load time in `BENCH_online.json` and verifying that
//! the loaded model answers bit-identically to the never-serialized one.
//! Run both in one invocation with `-- fit online --snapshot <path>`.
//!
//! The `online` experiment does the same for the serving path: it answers
//! the held-out query workload with both the free `route` function and a
//! compiled `PreparedRouter` (same run, same queries — a built-in
//! comparison mode), then writes `BENCH_online.json` (p50/p95/p99 latency,
//! queries/sec, strategy mix, per-coverage breakdown) to
//! `target/BENCH_online.json` — override with
//! `L2R_BENCH_ONLINE_JSON=<path>`.  The checked-in copy is refreshed with
//! `L2R_BENCH_ONLINE_JSON=BENCH_online.json ... -- --full online`.

use l2r_baselines::{Dom, ExternalRouter, FastestRouter, ShortestRouter, Trip};
use l2r_bench::{
    compile_bench_for, datasets, decode_bench_for, fit_determinism_check, offline_bench_json,
    offline_report_for, online_bench_for, online_bench_json, peak_rss_bytes, serving_bench_for,
    snapshot_path_for, transfer_sim_bench_for, DatasetChoice, OfflineBenchReport,
    OnlineBenchDataset, OnlineBenchReport, ServingBenchDataset,
};
use l2r_eval::{
    build_test_queries, compare_methods, compare_with_external, fig6a, fig6b, fig9a, fig9b,
    offline_times, preference_recovery, report_accuracy, report_fig13, report_fig6a, report_fig6b,
    report_fig9a, report_fig9b, report_offline, report_runtime, report_table2, report_table4,
    table2, table4, Dataset, Method, Scale,
};

/// Every experiment name the CLI accepts; anything else is an error (the
/// historical behaviour of silently ignoring typos meant a misspelled
/// experiment "passed" by doing nothing).
const EXPERIMENTS: &[&str] = &[
    "all", "analyze", "fit", "table2", "table4", "fig6a", "fig6b", "fig9a", "fig9b", "fig10",
    "fig11", "fig12", "fig13", "offline", "online", "serving", "recovery",
];

fn usage(error: &str) -> ! {
    eprintln!(
        "error: {error}

usage: reproduce [--scale S] [--full] [--threads N] [--snapshot <path>] [experiment ...]

flags:
  --scale S          dataset scale: quick, full, xl (~100k vertices) or xxl
                     (~500k vertices); xl/xxl run the D1 axis only (default: quick)
  --full             shorthand for --scale full
  --threads N        pin the worker thread count (overrides L2R_THREADS)
  --snapshot <path>  per-dataset snapshot base path (fit writes, online/serving read)

experiments (default: all):
  {}",
        EXPERIMENTS.join(" ")
    );
    std::process::exit(2);
}

fn main() {
    let mut full = false;
    let mut scale_arg: Option<Scale> = None;
    let mut snapshot_base: Option<String> = None;
    let mut wanted: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--full" => full = true,
            "--scale" => match args.next().as_deref().and_then(Scale::parse) {
                Some(s) => scale_arg = Some(s),
                None => usage("--scale requires one of: quick, full, xl, xxl"),
            },
            "--snapshot" => match args.next() {
                Some(path) => snapshot_base = Some(path),
                None => usage("--snapshot requires a path argument"),
            },
            "--threads" => match args.next().and_then(|v| v.trim().parse::<usize>().ok()) {
                // Feed the CLI value through the same injectable policy the
                // L2R_THREADS variable uses; the pin takes precedence.
                Some(n) if n >= 1 => l2r_par::set_thread_override(Some(n)),
                _ => usage("--threads requires a positive integer"),
            },
            other if other.starts_with("--") => {
                usage(&format!("unknown flag `{other}`"));
            }
            other => {
                if !EXPERIMENTS.contains(&other) {
                    usage(&format!("unknown experiment `{other}`"));
                }
                wanted.push(other.to_string());
            }
        }
    }
    // `--scale` wins over the legacy `--full` shorthand when both appear.
    let scale = scale_arg.unwrap_or(if full { Scale::Full } else { Scale::Quick });
    let full = scale != Scale::Quick;
    let run_all = wanted.is_empty() || wanted.iter().any(|w| w == "all");
    let run = |name: &str| run_all || wanted.iter().any(|w| w == name);
    if wanted.iter().any(|w| w == "fit") && snapshot_base.is_none() {
        eprintln!("note: the `fit` experiment writes snapshots only with --snapshot <path>");
    }

    println!("learn-to-route reproduction — scale: {}\n", scale.label());

    // Dataset-independent, so it runs before the expensive builds: a
    // violation fails fast instead of after minutes of fitting.
    if run("analyze") {
        run_analyze();
    }

    // The country-scale axis is exercised through D1 only: the XL/XXL
    // presets are Denmark-derived, and one dataset keeps the wall time of a
    // run that fits a 100k+-vertex network inside a benchmark budget.
    let choice = if matches!(scale, Scale::Xl | Scale::Xxl) {
        DatasetChoice::D1
    } else {
        DatasetChoice::Both
    };
    let sets = datasets(choice, scale);
    let mut offline_entries = Vec::new();
    let mut online_entries = Vec::new();
    let mut serving_entries: Vec<ServingBenchDataset> = Vec::new();
    for ds in &sets {
        println!(
            "=== dataset {} — {} vertices, {} edges, {} trajectories ({} train / {} test), {} regions ===\n",
            ds.spec.name,
            ds.synthetic.net.num_vertices(),
            ds.synthetic.net.num_edges(),
            ds.workload.trajectories.len(),
            ds.train.len(),
            ds.test.len(),
            ds.model.stats().num_regions
        );
        if run("fit") {
            if let Some(base) = &snapshot_base {
                run_fit_snapshot(ds, base);
            }
        }
        if run("table2") {
            run_table2(ds);
        }
        if run("table4") {
            run_table4(ds);
        }
        if run("fig6a") {
            run_fig6a(ds);
        }
        if run("fig6b") {
            run_fig6b(ds);
        }
        if run("fig9a") {
            run_fig9a(ds);
        }
        if run("fig9b") {
            run_fig9b(ds);
        }
        if run("fig10") || run("fig11") || run("fig12") {
            run_fig10_11_12(ds);
        }
        if run("fig13") {
            run_fig13(ds);
        }
        if run("offline") {
            run_offline(ds);
            offline_entries.push(offline_report_for(ds));
        }
        if run("online") {
            online_entries.push(run_online(
                ds,
                if full { 3 } else { 2 },
                snapshot_base.as_deref(),
            ));
        }
        if run("serving") {
            serving_entries.push(run_serving(
                ds,
                if full { 3 } else { 2 },
                snapshot_base.as_deref(),
                full,
            ));
        }
        if run("recovery") {
            run_recovery(ds);
        }
    }

    if !offline_entries.is_empty() {
        let first = &sets[0];
        // Scale-axis instrumentation, both measured on the first dataset:
        // the naive-vs-bounded similarity comparison is cheap everywhere,
        // but the determinism check refits the dataset, so the full scale —
        // whose determinism the quick and xl axes already cover — skips it
        // rather than double a multi-minute two-dataset run.
        let transfer = transfer_sim_bench_for(first);
        println!(
            "## Transfer similarity ({}) — {} edges, {} pairs: naive {:.1} ms, radius-bounded {:.1} ms ({:.2}x), identical: {}\n",
            first.spec.name,
            transfer.edges,
            transfer.pairs,
            transfer.naive_ms,
            transfer.bounded_ms,
            transfer.speedup,
            transfer.identical
        );
        let fit_determinism = if scale == Scale::Full {
            None
        } else {
            let d = fit_determinism_check(first);
            println!(
                "## Fit determinism ({}) — {} threads vs {} threads: {}\n",
                first.spec.name,
                d.threads_a,
                d.threads_b,
                if d.identical {
                    "bit-identical snapshots"
                } else {
                    "SNAPSHOTS DIVERGED"
                }
            );
            Some(d)
        };
        let report = OfflineBenchReport {
            scale,
            threads: l2r_par::max_threads(),
            peak_rss_bytes: peak_rss_bytes(),
            transfer: Some(transfer),
            fit_determinism,
            datasets: offline_entries,
        };
        // Default under target/ so casual quick-scale runs do not clobber
        // the full-scale report checked in at the repo root.
        let path = std::env::var("L2R_BENCH_JSON")
            .unwrap_or_else(|_| "target/BENCH_offline.json".to_string());
        if let Some(parent) = std::path::Path::new(&path).parent() {
            if !parent.as_os_str().is_empty() {
                let _ = std::fs::create_dir_all(parent);
            }
        }
        match std::fs::write(&path, offline_bench_json(&report)) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => eprintln!("failed to write {path}: {e}"),
        }
        // Correctness gates hold at every scale: the bounded similarity
        // builder and a refit under a different thread count must both be
        // bit-identical, or the whole offline report is untrustworthy.
        if let Some(t) = &report.transfer {
            if !t.identical {
                eprintln!(
                    "ERROR: the radius-bounded similarity builder diverged from \
                     the naive scan — transferred preferences would change"
                );
                std::process::exit(1);
            }
            // The transfer speedup is algorithmic (pairs outside the
            // distance radius skip the Jaccard entirely), so it is gated
            // even on a single-core host — but only at country scale, where
            // the similarity graph is big enough for the asymptotics to
            // dominate the sort overhead.
            if matches!(scale, Scale::Xl | Scale::Xxl) && t.speedup < 2.0 {
                eprintln!(
                    "ERROR: radius-bounded transfer is only {:.2}x faster than \
                     the naive scan at scale {} (required: >= 2x)",
                    t.speedup,
                    scale.label()
                );
                std::process::exit(1);
            }
        }
        if let Some(d) = &report.fit_determinism {
            if !d.identical {
                eprintln!(
                    "ERROR: fitting with {} vs {} worker threads produced \
                     different snapshots — the pipeline lost determinism",
                    d.threads_a, d.threads_b
                );
                std::process::exit(1);
            }
        }
    }

    if !online_entries.is_empty() || !serving_entries.is_empty() {
        let first = &sets[0];
        let compile = compile_bench_for(first);
        println!(
            "## Engine compile ({}) — serial {:.1} ms vs {:.1} ms on {} thread(s) ({:.2}x)\n",
            first.spec.name,
            compile.serial_ms,
            compile.parallel_ms,
            compile.threads,
            compile.speedup
        );
        let decode = decode_bench_for(first);
        println!(
            "## Snapshot decode ({}) — {:.1} KiB: serial {:.1} ms vs {:.1} ms on {} thread(s) ({:.2}x), identical: {}\n",
            first.spec.name,
            decode.bytes as f64 / 1024.0,
            decode.serial_ms,
            decode.parallel_ms,
            decode.threads,
            decode.speedup,
            decode.identical
        );
        let report = OnlineBenchReport {
            scale,
            threads: l2r_par::max_threads(),
            peak_rss_bytes: peak_rss_bytes(),
            compile: Some(compile),
            decode: Some(decode),
            datasets: online_entries,
            serving: serving_entries,
        };
        let path = std::env::var("L2R_BENCH_ONLINE_JSON")
            .unwrap_or_else(|_| "target/BENCH_online.json".to_string());
        if let Some(parent) = std::path::Path::new(&path).parent() {
            if !parent.as_os_str().is_empty() {
                let _ = std::fs::create_dir_all(parent);
            }
        }
        match std::fs::write(&path, online_bench_json(&report)) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => eprintln!("failed to write {path}: {e}"),
        }
        // A speedup comparing non-identical answers is meaningless: fail the
        // run (and thereby CI) instead of silently publishing it.
        let broken: Vec<&str> = report
            .datasets
            .iter()
            .filter(|d| !d.equivalent)
            .map(|d| d.name.as_str())
            .collect();
        if !broken.is_empty() {
            eprintln!(
                "ERROR: prepared/free/pre-PR answers diverged on {} — \
                 the online report is invalid",
                broken.join(", ")
            );
            std::process::exit(1);
        }
        // A parallel decode that does not round-trip to the exact snapshot
        // bytes is corruption, whatever the scale or core count.
        if let Some(d) = &report.decode {
            if !d.identical {
                eprintln!(
                    "ERROR: the parallel snapshot decode did not round-trip to \
                     the original bytes"
                );
                std::process::exit(1);
            }
        }
        // The compile/decode *speedups* only materialise with real cores
        // underneath, so they gate the run at country scale on >= 8 worker
        // threads and are recorded (not enforced) everywhere else.
        if matches!(scale, Scale::Xl | Scale::Xxl) {
            if l2r_par::max_threads() >= 8 {
                if let Some(c) = &report.compile {
                    if c.speedup < 2.0 {
                        eprintln!(
                            "ERROR: parallel engine compile is only {:.2}x faster \
                             than serial on {} threads (required: >= 2x)",
                            c.speedup, c.threads
                        );
                        std::process::exit(1);
                    }
                }
                if let Some(d) = &report.decode {
                    if d.parallel_ms >= d.serial_ms {
                        eprintln!(
                            "ERROR: parallel snapshot decode ({:.1} ms) is not \
                             faster than serial ({:.1} ms) on {} threads",
                            d.parallel_ms, d.serial_ms, d.threads
                        );
                        std::process::exit(1);
                    }
                }
            } else {
                println!(
                    "note: compile/decode parallel speedups recorded but not \
                     gated on {} worker thread(s) (< 8)",
                    l2r_par::max_threads()
                );
            }
        }
        // A hot-swap that failed even one query means the registry exposed a
        // half-swapped or missing model, and TCP `ERR` responses mean the
        // wire path misbehaved: fail the run, not just the number.
        let swap_broken: Vec<&str> = report
            .serving
            .iter()
            .filter(|d| {
                d.hot_swap.failed > 0
                    || d.tcp.errors > 0
                    || d.concurrency.iter().any(|p| p.errors > 0)
            })
            .map(|d| d.name.as_str())
            .collect();
        if !swap_broken.is_empty() {
            eprintln!(
                "ERROR: hot-swap, TCP serving or the concurrency sweep failed \
                 requests on {} — the serving report is invalid",
                swap_broken.join(", ")
            );
            std::process::exit(1);
        }
        // The resilience run is a pass/fail harness: any violated
        // fault-tolerance invariant (panic accounting off, a dead worker,
        // a leaked connection) invalidates the serving report.
        let mut resilience_broken = false;
        for d in &report.serving {
            for violation in &d.resilience.invariant_violations {
                eprintln!(
                    "ERROR: resilience invariant violated on {}: {violation}",
                    d.name
                );
                resilience_broken = true;
            }
        }
        if resilience_broken {
            std::process::exit(1);
        }
        // So is the lifecycle run: a swap that diverged a query, a poisoned
        // snapshot that slipped through, or a crash point the store could
        // not recover from invalidates the serving report.
        let mut lifecycle_broken = false;
        for d in &report.serving {
            for violation in &d.lifecycle.invariant_violations {
                eprintln!(
                    "ERROR: lifecycle invariant violated on {}: {violation}",
                    d.name
                );
                lifecycle_broken = true;
            }
        }
        if lifecycle_broken {
            std::process::exit(1);
        }
    }
}

/// Static-analysis section: runs the `l2r-analyze` engine over the
/// workspace, prints the human report, and writes the machine-readable one
/// next to the other `BENCH_*.json` artifacts (`target/BENCH_analyze.json`,
/// override with `L2R_BENCH_ANALYZE_JSON=<path>`).  Any unallowed violation
/// fails the run — and thereby CI — like every other invariant here.
fn run_analyze() {
    println!("=== static analysis (l2r-analyze) ===\n");
    let config = l2r_analyze::Config::for_root(l2r_analyze::default_root());
    let report = match l2r_analyze::run(&config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ERROR: static-analysis scan failed: {e}");
            std::process::exit(1);
        }
    };
    print!("{}", l2r_analyze::report::human(&report));
    let path = std::env::var("L2R_BENCH_ANALYZE_JSON")
        .unwrap_or_else(|_| "target/BENCH_analyze.json".to_string());
    if let Some(parent) = std::path::Path::new(&path).parent() {
        if !parent.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(parent);
        }
    }
    match std::fs::write(&path, l2r_analyze::report::json(&report)) {
        Ok(()) => println!("wrote {path}\n"),
        Err(e) => eprintln!("failed to write {path}: {e}"),
    }
    if !report.findings.is_empty() {
        eprintln!(
            "ERROR: {} static-analysis violation(s) — see the report above",
            report.findings.len()
        );
        std::process::exit(1);
    }
}

fn run_table2(ds: &Dataset) {
    let dist = table2(
        &ds.synthetic.net,
        &ds.workload.trajectories,
        ds.spec.distance_bounds_km.clone(),
    );
    print!("{}", report_table2(ds.spec.name, &dist));
}

fn run_table4(ds: &Dataset) {
    let buckets = table4(&ds.model, &ds.spec.area_bounds_km2);
    print!("{}", report_table4(ds.spec.name, &buckets));
}

fn run_fig6a(ds: &Dataset) {
    let r = fig6a(&ds.model, &ds.model.config().learn.clone());
    print!("{}", report_fig6a(ds.spec.name, &r));
}

fn run_fig6b(ds: &Dataset) {
    let buckets = fig6b(&ds.model, 50_000);
    print!("{}", report_fig6b(ds.spec.name, &buckets));
}

fn run_fig9a(ds: &Dataset) {
    let points = fig9a(&ds.model, &ds.model.config().transfer);
    print!("{}", report_fig9a(ds.spec.name, &points));
}

fn run_fig9b(ds: &Dataset) {
    let points = fig9b(
        &ds.model,
        &ds.model.config().transfer,
        &[0.5, 0.6, 0.7, 0.8, 0.9],
    );
    print!("{}", report_fig9b(ds.spec.name, &points));
}

fn run_fig10_11_12(ds: &Dataset) {
    let net = &ds.synthetic.net;
    let queries = build_test_queries(net, &ds.model, &ds.test, ds.spec.max_test_queries);
    let dom = Dom::train(net, &ds.train);
    let trip = Trip::train(net, &ds.train);
    let methods = vec![
        Method::L2r(&ds.model),
        Method::Baseline(&ShortestRouter),
        Method::Baseline(&FastestRouter),
        Method::Baseline(&dom),
        Method::Baseline(&trip),
    ];
    let results = compare_methods(net, &methods, &queries, &ds.spec.distance_bounds_km);
    print!(
        "{}",
        report_accuracy(
            &format!(
                "Figure 10 — accuracy (Eq. 1) by distance ({})",
                ds.spec.name
            ),
            &results,
            false,
            false
        )
    );
    print!(
        "{}",
        report_accuracy(
            &format!("Figure 10 — accuracy (Eq. 1) by region ({})", ds.spec.name),
            &results,
            true,
            false
        )
    );
    print!(
        "{}",
        report_accuracy(
            &format!(
                "Figure 11 — accuracy (Eq. 4) by distance ({})",
                ds.spec.name
            ),
            &results,
            false,
            true
        )
    );
    print!(
        "{}",
        report_accuracy(
            &format!("Figure 11 — accuracy (Eq. 4) by region ({})", ds.spec.name),
            &results,
            true,
            true
        )
    );
    print!(
        "{}",
        report_runtime(
            &format!(
                "Figure 12 — mean running time (µs) by distance ({})",
                ds.spec.name
            ),
            &results,
            false
        )
    );
    print!(
        "{}",
        report_runtime(
            &format!(
                "Figure 12 — mean running time (µs) by region ({})",
                ds.spec.name
            ),
            &results,
            true
        )
    );
}

fn run_fig13(ds: &Dataset) {
    let net = &ds.synthetic.net;
    let queries = build_test_queries(net, &ds.model, &ds.test, ds.spec.max_test_queries);
    let ext = ExternalRouter::with_defaults(net);
    let cmp = compare_with_external(net, &ds.model, &ext, &queries, &ds.spec.distance_bounds_km);
    print!("{}", report_fig13(ds.spec.name, &cmp));
}

fn run_offline(ds: &Dataset) {
    let rows = offline_times(&ds.model);
    print!("{}", report_offline(ds.spec.name, &rows));
}

/// Persists the fitted model of `ds` to the per-dataset snapshot path
/// (`fit --snapshot <base>`): the offline cost is paid here once; `online
/// --snapshot` and any future server serve from the file.
fn run_fit_snapshot(ds: &Dataset, base: &str) {
    let path = snapshot_path_for(base, ds.spec.name);
    let t0 = std::time::Instant::now();
    match l2r_core::save_model(&ds.model, &path) {
        Ok(bytes) => println!(
            "## Snapshot ({}) — wrote {} ({:.1} KiB) in {:.1} ms (fit took {:.1} ms)\n",
            ds.spec.name,
            path.display(),
            bytes as f64 / 1024.0,
            t0.elapsed().as_secs_f64() * 1000.0,
            ds.fit_time.as_secs_f64() * 1000.0,
        ),
        Err(e) => {
            eprintln!("failed to write snapshot {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}

/// Resolves the per-dataset snapshot path and validates the file up front
/// (the bench functions panic on a bad snapshot) so a missing, stale or
/// truncated file gets a clean diagnostic, not a backtrace.  The validation
/// load is a few milliseconds.
fn validated_snapshot_path(
    ds: &Dataset,
    snapshot_base: Option<&str>,
) -> Option<std::path::PathBuf> {
    let path = snapshot_path_for(snapshot_base?, ds.spec.name);
    match l2r_core::load_model(&path) {
        Ok(_) => Some(path),
        Err(l2r_core::SnapshotError::Io { ref source, .. })
            if source.kind() == std::io::ErrorKind::NotFound =>
        {
            eprintln!(
                "snapshot {} not found — run `reproduce -- fit --snapshot <path>` first \
                 (or `reproduce -- fit online serving --snapshot <path>` in one go)",
                path.display()
            );
            std::process::exit(2);
        }
        Err(e) => {
            eprintln!(
                "snapshot {} is unusable ({e}) — regenerate it with \
                 `reproduce -- fit --snapshot <path>`",
                path.display()
            );
            std::process::exit(2);
        }
    }
}

fn run_online(ds: &Dataset, rounds: usize, snapshot_base: Option<&str>) -> OnlineBenchDataset {
    let snapshot_path = validated_snapshot_path(ds, snapshot_base);
    let entry = online_bench_for(ds, rounds, snapshot_path.as_deref());
    println!(
        "## Online serving ({}) — {} queries × {} rounds, prepare {:.1} ms",
        entry.name, entry.queries, entry.rounds, entry.prepare_ms
    );
    if let Some(snap) = &entry.snapshot {
        println!(
            "served from snapshot {} — {:.1} KiB, loaded in {:.1} ms",
            snap.path,
            snap.bytes as f64 / 1024.0,
            snap.load_ms
        );
    }
    println!(
        "pre-PR baseline: mean {:8.1} µs  p50 {:8.1}  p95 {:8.1}  p99 {:8.1}  ({:.0} qps)",
        entry.baseline.mean_us,
        entry.baseline.p50_us,
        entry.baseline.p95_us,
        entry.baseline.p99_us,
        entry.baseline.qps
    );
    println!(
        "free route:      mean {:8.1} µs  p50 {:8.1}  p95 {:8.1}  p99 {:8.1}  ({:.0} qps)",
        entry.free.mean_us, entry.free.p50_us, entry.free.p95_us, entry.free.p99_us, entry.free.qps
    );
    println!(
        "prepared router: mean {:8.1} µs  p50 {:8.1}  p95 {:8.1}  p99 {:8.1}  ({:.0} qps)",
        entry.prepared.mean_us,
        entry.prepared.p50_us,
        entry.prepared.p95_us,
        entry.prepared.p99_us,
        entry.prepared.qps
    );
    println!(
        "speedup {:.2}x vs pre-PR baseline, {:.2}x vs current free route (equivalent: {})",
        entry.speedup_mean, entry.speedup_vs_free, entry.equivalent,
    );
    println!(
        "route_many batch: {:.1} ms, {:.0} qps over {} threads",
        entry.batch_ms,
        entry.batch_qps,
        l2r_par::max_threads()
    );
    for row in &entry.coverage {
        if row.count > 0 {
            println!(
                "  {:<12} {:5} queries  baseline {:8.1} µs  free {:8.1} µs  prepared {:8.1} µs  ({:.2}x)",
                row.label,
                row.count,
                row.baseline_mean_us,
                row.free_mean_us,
                row.prepared_mean_us,
                row.speedup
            );
        }
    }
    println!();
    entry
}

/// Runs the multi-threaded serving benchmark of one dataset (shared
/// `Arc<Engine>` thread sweep, hot-swap under load, TCP loopback via
/// `l2r-serve`, resilience under injected faults) and prints the summary;
/// the entry lands in the `serving` section of `BENCH_online.json`.
fn run_serving(
    ds: &Dataset,
    rounds: usize,
    snapshot_base: Option<&str>,
    full: bool,
) -> ServingBenchDataset {
    let snapshot_path = validated_snapshot_path(ds, snapshot_base);
    // The 4096-connection point needs a minute-plus of wall time to be
    // meaningful; quick-scale runs stop at 512.
    let sweep_connections: &[usize] = if full {
        &[1, 64, 512, 4096]
    } else {
        &[1, 64, 512]
    };
    let entry = serving_bench_for(ds, rounds, snapshot_path.as_deref(), sweep_connections);
    println!(
        "## Concurrent serving ({}) — shared engine, {} queries, engine build {:.1} ms",
        entry.name, entry.queries, entry.engine_build_ms
    );
    for p in &entry.sweep {
        println!(
            "  {:2} thread{}  {:>9.0} qps aggregate  mean {:6.2} µs  p50 {:6.2}  p99 {:8.2}",
            p.threads,
            if p.threads == 1 { " " } else { "s" },
            p.qps,
            p.mean_us,
            p.p50_us,
            p.p99_us
        );
    }
    println!(
        "  peak {:.0} qps vs single-thread {:.0} qps ({:.2}x), scratch pool created {}",
        entry.peak_qps, entry.single_thread_qps, entry.scaling, entry.scratches_created
    );
    let hs = &entry.hot_swap;
    println!(
        "  hot-swap: {} reloads under {} threads, {} queries, {} failed, p99 {:.1} µs steady -> {:.1} µs swapping ({:.2}x spike)",
        hs.reloads,
        hs.worker_threads,
        hs.queries,
        hs.failed,
        hs.steady_p99_us,
        hs.swap_p99_us,
        hs.p99_spike_ratio
    );
    println!(
        "  tcp loopback: {} requests over {} connections, {:.0} qps, p50 {:.1} µs p99 {:.1} µs, {} errors, reload generation {}",
        entry.tcp.requests,
        entry.tcp.connections,
        entry.tcp.qps,
        entry.tcp.p50_us,
        entry.tcp.p99_us,
        entry.tcp.errors,
        entry.tcp.reload_generation
    );
    println!("  concurrency sweep (connections x protocol):");
    for p in &entry.concurrency {
        println!(
            "    {:>4} conn {:>6} pipeline {:>2}  {:>9.0} qps  p50 {:8.1} µs  p99 {:8.1} µs  {} requests, {} errors, {} busy retries",
            p.connections,
            p.protocol,
            p.pipeline,
            p.qps,
            p.p50_us,
            p.p99_us,
            p.requests,
            p.errors,
            p.busy_retries
        );
    }
    let rs = &entry.resilience;
    println!(
        "  resilience (1% injected panics, {} slow clients of {}): {:.0} qps, {} requests — {} answered, {} noroute, {} internal, {} deadline, {} other errors, {} busy retries",
        rs.slow_connections,
        rs.connections,
        rs.qps,
        rs.requests,
        rs.answered,
        rs.noroutes,
        rs.internal_errors,
        rs.deadline_exceeded,
        rs.other_errors,
        rs.busy_retries
    );
    println!(
        "    panics {} injected / {} caught, {} workers respawned, {} reaped, {} write stalls, {} conns left open — {}",
        rs.panics_injected,
        rs.panics_caught,
        rs.workers_respawned,
        rs.idle_reaped,
        rs.write_stalls,
        rs.open_connections_after,
        if rs.invariant_violations.is_empty() {
            "all invariants held".to_string()
        } else {
            format!("INVARIANTS VIOLATED: {}", rs.invariant_violations.join("; "))
        }
    );
    let lc = &entry.lifecycle;
    println!(
        "  lifecycle: {} durable publishes (mean {:.2} ms, max {:.2} ms), {} store reloads + {} rollbacks under load ({} diverged), {} poisoned snapshot rejected",
        lc.publishes,
        lc.publish_mean_ms,
        lc.publish_max_ms,
        lc.store_reloads,
        lc.rollbacks,
        lc.swap_failed,
        lc.canary_rejections
    );
    println!(
        "    crash matrix: {} of {} simulated crash points recovered a durable generation — {}",
        lc.crash_recoveries,
        lc.crash_points,
        if lc.invariant_violations.is_empty() {
            "all invariants held".to_string()
        } else {
            format!(
                "INVARIANTS VIOLATED: {}",
                lc.invariant_violations.join("; ")
            )
        }
    );
    println!();
    entry
}

fn run_recovery(ds: &Dataset) {
    let r = preference_recovery(ds);
    println!(
        "## Latent preference recovery ({})\n{} covered district pairs evaluated, mean similarity to latent behaviour {:.1}%, ≥0.9-similar {:.1}%\n",
        ds.spec.name, r.evaluated, r.mean_similarity, r.pct_high_similarity
    );
}
