//! Latent routing preferences and the synthetic driver population.
//!
//! The central premise of the paper is that local drivers choose paths
//! according to *context-dependent* routing preferences (a travel-cost
//! "master" feature plus a road-condition "slave" feature) that depend on the
//! kind of region pair they travel between, not on the individual driver.
//! The workload generator therefore assigns a **latent preference** to every
//! (district-kind, district-kind, distance band) context; trips are routed
//! with that preference plus per-driver noise.  Because the latent preference
//! is known, the reproduction can verify that L2R actually recovers it —
//! something the original evaluation could only measure indirectly.

use l2r_road_network::{CostType, RoadType, RoadTypeSet};
use rand::Rng;

use crate::network::DistrictKind;
use l2r_trajectory::DriverId;

/// A ground-truth routing preference of the synthetic population.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatentPreference {
    /// The travel-cost feature being minimised.
    pub master: CostType,
    /// The preferred road types, if any.
    pub slave: Option<RoadTypeSet>,
}

impl LatentPreference {
    /// A plain "fastest path" preference, used as the noise fallback.
    pub fn fastest() -> Self {
        LatentPreference {
            master: CostType::TravelTime,
            slave: None,
        }
    }
}

/// Distance bands used by the latent preference model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TripLength {
    /// Up to 5 km.
    Short,
    /// 5–15 km.
    Medium,
    /// Longer than 15 km.
    Long,
}

impl TripLength {
    /// Classifies a trip by straight-line distance in metres.
    pub fn classify(distance_m: f64) -> Self {
        if distance_m <= 5_000.0 {
            TripLength::Short
        } else if distance_m <= 15_000.0 {
            TripLength::Medium
        } else {
            TripLength::Long
        }
    }
}

/// The latent routing preference for travelling from a district of kind
/// `from` to a district of kind `to` over a given distance.
///
/// The mapping is deliberately varied: different contexts genuinely prefer
/// different master features and road classes, mirroring Figure 6(a) of the
/// paper (learned preferences are spread over DI/TT/FC, and most T-edges
/// carry a single dominant preference).
pub fn latent_preference(
    from: DistrictKind,
    to: DistrictKind,
    distance_m: f64,
) -> LatentPreference {
    use DistrictKind::*;
    let length = TripLength::classify(distance_m);
    match (length, from, to) {
        // Long-distance trips stay on the motorway/trunk network but take
        // the *most direct* highway route — which is neither the fastest
        // (trunk shortcuts through the centre can be quicker) nor the
        // shortest (surface streets are shorter) path.
        (TripLength::Long, _, _) => LatentPreference {
            master: CostType::Distance,
            slave: Some(RoadTypeSet::from_iter([
                RoadType::Motorway,
                RoadType::Trunk,
            ])),
        },
        // Business-to-business trips stay on primary arterials and minimise
        // travel time within them.
        (_, Business, Business) => LatentPreference {
            master: CostType::TravelTime,
            slave: Some(RoadTypeSet::single(RoadType::Primary)),
        },
        // Commutes between residential areas and the business core favour
        // direct (short) routes along primary/secondary arterials.
        (_, Residential, Business) | (_, Business, Residential) => LatentPreference {
            master: CostType::Distance,
            slave: Some(RoadTypeSet::from_iter([
                RoadType::Primary,
                RoadType::Secondary,
            ])),
        },
        // Freight-style trips to or from industrial areas minimise fuel and
        // use the trunk network.
        (_, Industrial, _) | (_, _, Industrial) => LatentPreference {
            master: CostType::Fuel,
            slave: Some(RoadTypeSet::single(RoadType::Trunk)),
        },
        // Short residential-to-residential hops take the shortest route with
        // no road-class preference.
        (TripLength::Short, Residential, Residential) => LatentPreference {
            master: CostType::Distance,
            slave: None,
        },
        // Medium residential trips avoid both highways and cut-throughs:
        // quickest route over secondary/tertiary streets.
        (TripLength::Medium, Residential, Residential) => LatentPreference {
            master: CostType::TravelTime,
            slave: Some(RoadTypeSet::from_iter([
                RoadType::Secondary,
                RoadType::Tertiary,
            ])),
        },
    }
}

/// A synthetic driver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriverProfile {
    /// The driver id used on generated trajectories.
    pub id: DriverId,
    /// The district index the driver's trips tend to start from.
    pub home_district: usize,
    /// Probability that a trip of this driver ignores the latent preference
    /// and simply takes the fastest path (behavioural noise).
    pub noise_prob: f64,
}

/// The synthetic driver population.
#[derive(Debug, Clone)]
pub struct DriverPopulation {
    /// All driver profiles.
    pub drivers: Vec<DriverProfile>,
}

impl DriverPopulation {
    /// Generates `n` drivers with homes spread over `num_districts`
    /// districts and noise probabilities in `[base_noise, base_noise + 0.1)`.
    pub fn generate<R: Rng>(n: usize, num_districts: usize, base_noise: f64, rng: &mut R) -> Self {
        let drivers = (0..n)
            .map(|i| DriverProfile {
                id: DriverId(i as u32),
                home_district: rng.gen_range(0..num_districts.max(1)),
                noise_prob: (base_noise + rng.gen::<f64>() * 0.1).clamp(0.0, 1.0),
            })
            .collect();
        DriverPopulation { drivers }
    }

    /// Number of drivers.
    pub fn len(&self) -> usize {
        self.drivers.len()
    }

    /// Whether the population is empty.
    pub fn is_empty(&self) -> bool {
        self.drivers.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn trip_length_classification() {
        assert_eq!(TripLength::classify(1000.0), TripLength::Short);
        assert_eq!(TripLength::classify(10_000.0), TripLength::Medium);
        assert_eq!(TripLength::classify(50_000.0), TripLength::Long);
    }

    #[test]
    fn long_trips_always_prefer_highways() {
        for from in [
            DistrictKind::Business,
            DistrictKind::Residential,
            DistrictKind::Industrial,
        ] {
            for to in [
                DistrictKind::Business,
                DistrictKind::Residential,
                DistrictKind::Industrial,
            ] {
                let p = latent_preference(from, to, 40_000.0);
                assert_eq!(p.master, CostType::Distance);
                assert!(p.slave.unwrap().contains(RoadType::Motorway));
                assert!(p.slave.unwrap().contains(RoadType::Trunk));
            }
        }
    }

    #[test]
    fn contexts_produce_distinct_preferences() {
        let bb = latent_preference(DistrictKind::Business, DistrictKind::Business, 4000.0);
        let rb = latent_preference(DistrictKind::Residential, DistrictKind::Business, 4000.0);
        let ii = latent_preference(DistrictKind::Industrial, DistrictKind::Residential, 4000.0);
        let rr = latent_preference(DistrictKind::Residential, DistrictKind::Residential, 2000.0);
        assert_ne!(bb.master, rb.master);
        assert_eq!(ii.master, CostType::Fuel);
        assert_eq!(rr.slave, None);
        // All three master features appear across contexts (Fig. 6(a)).
        let masters: std::collections::HashSet<_> =
            [bb.master, rb.master, ii.master].into_iter().collect();
        assert_eq!(masters.len(), 3);
    }

    #[test]
    fn population_generation_is_bounded_and_deterministic() {
        let mut rng = StdRng::seed_from_u64(1);
        let pop = DriverPopulation::generate(50, 12, 0.05, &mut rng);
        assert_eq!(pop.len(), 50);
        assert!(!pop.is_empty());
        for d in &pop.drivers {
            assert!(d.home_district < 12);
            assert!(d.noise_prob >= 0.05 && d.noise_prob < 0.151);
        }
        let mut rng2 = StdRng::seed_from_u64(1);
        let pop2 = DriverPopulation::generate(50, 12, 0.05, &mut rng2);
        assert_eq!(pop.drivers, pop2.drivers);
    }
}
