//! # l2r-datagen
//!
//! Synthetic data generation for the learn-to-route (L2R) reproduction.
//!
//! The paper evaluates on proprietary GPS data over OpenStreetMap extracts of
//! Denmark (N1/D1) and Chengdu (N2/D2).  This crate substitutes both with
//! deterministic generators (see `DESIGN.md` for the substitution argument):
//!
//! * [`network`] builds hierarchical city-like road networks (motorway ring,
//!   trunk axes, arterials, residential blocks) with functional districts;
//! * [`drivers`] defines the latent, context-dependent routing preferences of
//!   the synthetic driver population — the ground truth that L2R should
//!   recover;
//! * [`workload`] generates sparse, skewed trajectory workloads whose
//!   distance distributions follow Table II of the paper, plus the temporal
//!   train/test split used by the evaluation.

#![warn(missing_docs)]

pub mod drivers;
pub mod network;
pub mod workload;

pub use drivers::{
    latent_preference, DriverPopulation, DriverProfile, LatentPreference, TripLength,
};
pub use network::{
    generate_network, District, DistrictKind, SyntheticNetwork, SyntheticNetworkConfig,
};
pub use workload::{
    generate_workload, route_with_preference, DistanceBand, Workload, WorkloadConfig,
};
