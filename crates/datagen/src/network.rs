//! Synthetic hierarchical road-network generation.
//!
//! The paper evaluates on two OpenStreetMap extracts (Denmark and Chengdu)
//! that we cannot redistribute.  This module generates city-shaped networks
//! with the same *structural* ingredients the L2R pipeline depends on:
//!
//! * a hierarchy of road types (motorway ring, trunk axes, primary/secondary
//!   arterials, tertiary collectors, residential blocks);
//! * districts with different functions (business core, residential suburbs,
//!   industrial fringe) so that region pairs have distinguishable
//!   functionality descriptors;
//! * realistic distance/travel-time/fuel trade-offs (highways are longer but
//!   faster), so learned routing preferences are meaningful.
//!
//! The generator is deterministic given its configuration and seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use l2r_road_network::{Point, RoadNetwork, RoadNetworkBuilder, RoadType, VertexId};

/// The function of a district, used to derive latent routing preferences and
/// to skew the origin-destination distribution of workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DistrictKind {
    /// Central business district: many trips start or end here.
    Business,
    /// Residential neighbourhood.
    Residential,
    /// Industrial / logistics area at the city fringe.
    Industrial,
}

/// A district of the synthetic city.
#[derive(Debug, Clone)]
pub struct District {
    /// Index of the district in [`SyntheticNetwork::districts`].
    pub index: usize,
    /// Grid position of the district (column, row).
    pub grid_pos: (usize, usize),
    /// The vertex at the district centre (connected to the arterial grid).
    pub center: VertexId,
    /// All vertices belonging to the district (centre + local grid).
    pub vertices: Vec<VertexId>,
    /// The district's function.
    pub kind: DistrictKind,
}

impl District {
    /// Geometric centre of the district.
    pub fn center_point(&self, net: &RoadNetwork) -> Point {
        net.vertex(self.center).point
    }
}

/// Configuration of the synthetic network generator.
#[derive(Debug, Clone, Copy)]
pub struct SyntheticNetworkConfig {
    /// Number of districts along the x axis.
    pub districts_x: usize,
    /// Number of districts along the y axis.
    pub districts_y: usize,
    /// Distance between adjacent district centres, in metres.
    pub district_spacing_m: f64,
    /// Side length of the residential block grid inside each district
    /// (`blocks_per_district x blocks_per_district` local vertices).
    pub blocks_per_district: usize,
    /// Spacing of the residential block grid, in metres.
    pub block_spacing_m: f64,
    /// Whether to add a motorway ring connecting the outer districts.
    pub motorway_ring: bool,
    /// Random jitter applied to vertex positions, in metres.
    pub position_jitter_m: f64,
    /// Seed for the jitter.
    pub seed: u64,
}

impl SyntheticNetworkConfig {
    /// A small network for unit tests: 4x3 districts, ~200 vertices.
    pub fn tiny() -> Self {
        SyntheticNetworkConfig {
            districts_x: 4,
            districts_y: 3,
            district_spacing_m: 3000.0,
            blocks_per_district: 3,
            block_spacing_m: 200.0,
            motorway_ring: true,
            position_jitter_m: 20.0,
            seed: 0xC0FFEE,
        }
    }

    /// A Denmark-like (N1) network at laptop scale: a wide area, long
    /// motorway distances, sparse rural districts.
    pub fn denmark_like() -> Self {
        SyntheticNetworkConfig {
            districts_x: 12,
            districts_y: 9,
            district_spacing_m: 9000.0,
            blocks_per_district: 4,
            block_spacing_m: 350.0,
            motorway_ring: true,
            position_jitter_m: 120.0,
            seed: 0xD1,
        }
    }

    /// N1-XL: the Denmark-like network scaled to country size, ~100k
    /// vertices (24×16 districts of 16×16 local blocks → 98,688 vertices,
    /// ~370k directed edges).  This is the `--scale xl` tier: two orders of
    /// magnitude above [`SyntheticNetworkConfig::tiny`] and the scale at
    /// which the transfer, compile and snapshot hot paths start to matter.
    pub fn denmark_xl() -> Self {
        SyntheticNetworkConfig {
            districts_x: 24,
            districts_y: 16,
            district_spacing_m: 9000.0,
            blocks_per_district: 16,
            block_spacing_m: 320.0,
            motorway_ring: true,
            position_jitter_m: 120.0,
            seed: 0xD101,
        }
    }

    /// N1-XXL: ~500k vertices (40×30 districts of 20×20 local blocks →
    /// 481,200 vertices, ~1.9M directed edges).  The `--scale xxl` tier,
    /// only exercised together with `--full`.
    pub fn denmark_xxl() -> Self {
        SyntheticNetworkConfig {
            districts_x: 40,
            districts_y: 30,
            district_spacing_m: 9000.0,
            blocks_per_district: 20,
            block_spacing_m: 300.0,
            motorway_ring: true,
            position_jitter_m: 120.0,
            seed: 0xD102,
        }
    }

    /// A reduced XL network (~28k vertices: 14×10 districts of 14×14 local
    /// blocks) sized so a CI runner can fit and serve it in minutes; used by
    /// the `xl-smoke` job.
    pub fn xl_smoke() -> Self {
        SyntheticNetworkConfig {
            districts_x: 14,
            districts_y: 10,
            district_spacing_m: 9000.0,
            blocks_per_district: 14,
            block_spacing_m: 320.0,
            motorway_ring: true,
            position_jitter_m: 120.0,
            seed: 0xD103,
        }
    }

    /// Number of vertices [`generate_network`] will produce for this
    /// configuration: `districts × (1 + blocks²)`.
    pub fn expected_vertices(&self) -> usize {
        let nx = self.districts_x.max(2);
        let ny = self.districts_y.max(2);
        let blocks = self.blocks_per_district.max(2);
        nx * ny * (1 + blocks * blocks)
    }

    /// A Chengdu-like (N2) network: a compact, dense urban grid.
    pub fn chengdu_like() -> Self {
        SyntheticNetworkConfig {
            districts_x: 9,
            districts_y: 7,
            district_spacing_m: 3200.0,
            blocks_per_district: 5,
            block_spacing_m: 220.0,
            motorway_ring: true,
            position_jitter_m: 60.0,
            seed: 0xD2,
        }
    }
}

/// A generated road network together with its district metadata.
#[derive(Debug, Clone)]
pub struct SyntheticNetwork {
    /// The road network itself.
    pub net: RoadNetwork,
    /// The districts of the city.
    pub districts: Vec<District>,
    /// The configuration used to generate the network.
    pub config: SyntheticNetworkConfig,
}

impl SyntheticNetwork {
    /// The district that contains `v`, if any.
    pub fn district_of(&self, v: VertexId) -> Option<usize> {
        self.districts.iter().position(|d| d.vertices.contains(&v))
    }

    /// Straight-line distance between two district centres, in metres.
    pub fn district_distance_m(&self, a: usize, b: usize) -> f64 {
        self.net
            .vertex(self.districts[a].center)
            .point
            .distance(&self.net.vertex(self.districts[b].center).point)
    }
}

/// Decides the function of the district at grid position `(x, y)`:
/// the city core is business, the fringe corners are industrial, the rest is
/// residential.
fn district_kind(x: usize, y: usize, nx: usize, ny: usize) -> DistrictKind {
    let cx = (nx as f64 - 1.0) / 2.0;
    let cy = (ny as f64 - 1.0) / 2.0;
    let dx = (x as f64 - cx).abs() / nx.max(1) as f64;
    let dy = (y as f64 - cy).abs() / ny.max(1) as f64;
    let r = (dx * dx + dy * dy).sqrt();
    if r < 0.22 {
        DistrictKind::Business
    } else if (x == 0 || x == nx - 1) && (y == 0 || y == ny - 1) {
        DistrictKind::Industrial
    } else {
        DistrictKind::Residential
    }
}

/// Road type of the arterial between two adjacent district centres.
fn arterial_type(a: DistrictKind, b: DistrictKind) -> RoadType {
    match (a, b) {
        (DistrictKind::Business, DistrictKind::Business) => RoadType::Primary,
        (DistrictKind::Business, _) | (_, DistrictKind::Business) => RoadType::Primary,
        (DistrictKind::Industrial, _) | (_, DistrictKind::Industrial) => RoadType::Trunk,
        _ => RoadType::Secondary,
    }
}

/// Generates a synthetic network from a configuration.
pub fn generate_network(config: &SyntheticNetworkConfig) -> SyntheticNetwork {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let nx = config.districts_x.max(2);
    let ny = config.districts_y.max(2);
    let blocks = config.blocks_per_district.max(2);

    let mut builder = RoadNetworkBuilder::with_capacity(
        nx * ny * (blocks * blocks + 1),
        nx * ny * (blocks * blocks * 2 + 8),
    );
    let jitter =
        |rng: &mut StdRng| -> f64 { (rng.gen::<f64>() * 2.0 - 1.0) * config.position_jitter_m };

    // District centres laid out on a grid.
    let mut centers: Vec<Vec<VertexId>> = Vec::with_capacity(ny);
    let mut districts: Vec<District> = Vec::with_capacity(nx * ny);
    for y in 0..ny {
        let mut row = Vec::with_capacity(nx);
        for x in 0..nx {
            let px = x as f64 * config.district_spacing_m + jitter(&mut rng);
            let py = y as f64 * config.district_spacing_m + jitter(&mut rng);
            let center = builder.add_vertex(Point::new(px, py));
            row.push(center);
            districts.push(District {
                index: y * nx + x,
                grid_pos: (x, y),
                center,
                vertices: vec![center],
                kind: district_kind(x, y, nx, ny),
            });
        }
        centers.push(row);
    }

    // Arterial grid between adjacent district centres.
    for y in 0..ny {
        for x in 0..nx {
            let here = centers[y][x];
            let kind_here = districts[y * nx + x].kind;
            if x + 1 < nx {
                let right = centers[y][x + 1];
                let rt = arterial_type(kind_here, districts[y * nx + x + 1].kind);
                builder
                    .add_two_way(here, right, rt)
                    .expect("valid arterial");
            }
            if y + 1 < ny {
                let up = centers[y + 1][x];
                let rt = arterial_type(kind_here, districts[(y + 1) * nx + x].kind);
                builder.add_two_way(here, up, rt).expect("valid arterial");
            }
        }
    }

    // Trunk axes through the middle row and column (faster cross-city travel).
    let mid_y = ny / 2;
    for x in 0..nx - 1 {
        builder
            .add_two_way(centers[mid_y][x], centers[mid_y][x + 1], RoadType::Trunk)
            .expect("valid trunk");
    }
    let mid_x = nx / 2;
    for y in 0..ny - 1 {
        builder
            .add_two_way(centers[y][mid_x], centers[y + 1][mid_x], RoadType::Trunk)
            .expect("valid trunk");
    }

    // Motorway ring around the city (outer district centres), giving a
    // longer-but-faster alternative for cross-city and long-distance trips.
    if config.motorway_ring {
        let mut ring: Vec<VertexId> = Vec::new();
        ring.extend_from_slice(&centers[0][..nx]);
        for row in centers.iter().take(ny).skip(1) {
            ring.push(row[nx - 1]);
        }
        for x in (0..nx - 1).rev() {
            ring.push(centers[ny - 1][x]);
        }
        for y in (1..ny - 1).rev() {
            ring.push(centers[y][0]);
        }
        for i in 0..ring.len() {
            let a = ring[i];
            let b = ring[(i + 1) % ring.len()];
            builder
                .add_two_way(a, b, RoadType::Motorway)
                .expect("valid motorway");
        }
    }

    // Local street grid inside each district.
    let local_offset = -((blocks as f64 - 1.0) / 2.0) * config.block_spacing_m;
    for d in districts.iter_mut() {
        let center_point = {
            // Builder vertices are appended in order; district centres were
            // created first, so their ids are still valid indices.
            let (x, y) = d.grid_pos;
            Point::new(
                x as f64 * config.district_spacing_m,
                y as f64 * config.district_spacing_m,
            )
        };
        let mut grid_ids: Vec<Vec<VertexId>> = Vec::with_capacity(blocks);
        for by in 0..blocks {
            let mut row = Vec::with_capacity(blocks);
            for bx in 0..blocks {
                let px = center_point.x
                    + local_offset
                    + bx as f64 * config.block_spacing_m
                    + jitter(&mut rng) * 0.2;
                let py = center_point.y
                    + local_offset
                    + by as f64 * config.block_spacing_m
                    + jitter(&mut rng) * 0.2;
                let v = builder.add_vertex(Point::new(px, py));
                d.vertices.push(v);
                row.push(v);
            }
            grid_ids.push(row);
        }
        // Residential block edges; business districts use tertiary streets so
        // that their functionality descriptor differs from suburbs.
        let street_type = match d.kind {
            DistrictKind::Business => RoadType::Tertiary,
            DistrictKind::Residential => RoadType::Residential,
            DistrictKind::Industrial => RoadType::Tertiary,
        };
        for by in 0..blocks {
            for bx in 0..blocks {
                if bx + 1 < blocks {
                    builder
                        .add_two_way(grid_ids[by][bx], grid_ids[by][bx + 1], street_type)
                        .expect("valid street");
                }
                if by + 1 < blocks {
                    builder
                        .add_two_way(grid_ids[by][bx], grid_ids[by + 1][bx], street_type)
                        .expect("valid street");
                }
            }
        }
        // Connect the local grid to the district centre with collector roads.
        let mid = blocks / 2;
        builder
            .add_two_way(d.center, grid_ids[mid][mid], RoadType::Tertiary)
            .expect("valid collector");
        builder
            .add_two_way(d.center, grid_ids[0][0], RoadType::Tertiary)
            .expect("valid collector");
        builder
            .add_two_way(
                d.center,
                grid_ids[blocks - 1][blocks - 1],
                RoadType::Tertiary,
            )
            .expect("valid collector");
    }

    SyntheticNetwork {
        net: builder.build(),
        districts,
        config: *config,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use l2r_road_network::{fastest_path, shortest_path, CostType};

    #[test]
    fn tiny_network_has_expected_shape() {
        let syn = generate_network(&SyntheticNetworkConfig::tiny());
        let nx = 4;
        let ny = 3;
        let blocks = 3;
        assert_eq!(syn.districts.len(), nx * ny);
        assert_eq!(syn.net.num_vertices(), nx * ny * (1 + blocks * blocks));
        assert!(syn.net.num_edges() > 0);
        // Every district holds its centre plus the local grid.
        for d in &syn.districts {
            assert_eq!(d.vertices.len(), 1 + blocks * blocks);
        }
    }

    #[test]
    fn network_contains_the_full_road_hierarchy() {
        let syn = generate_network(&SyntheticNetworkConfig::tiny());
        let mut seen = std::collections::HashSet::new();
        for e in syn.net.edges() {
            seen.insert(e.road_type);
        }
        assert!(seen.contains(&RoadType::Motorway));
        assert!(seen.contains(&RoadType::Trunk));
        assert!(seen.contains(&RoadType::Primary));
        assert!(seen.contains(&RoadType::Residential));
        assert!(seen.contains(&RoadType::Tertiary));
    }

    #[test]
    fn network_is_strongly_connected_enough_for_routing() {
        let syn = generate_network(&SyntheticNetworkConfig::tiny());
        // Route between the first vertex of the first district and the last
        // vertex of the last district.
        let s = syn.districts.first().unwrap().vertices[1];
        let d = *syn.districts.last().unwrap().vertices.last().unwrap();
        let p = fastest_path(&syn.net, s, d).expect("city must be connected");
        assert!(p.length_m(&syn.net).unwrap() > 0.0);
        let back = fastest_path(&syn.net, d, s).expect("reverse direction works too");
        assert!(back.length_m(&syn.net).unwrap() > 0.0);
    }

    #[test]
    fn fastest_and_shortest_paths_differ_across_the_city() {
        let syn = generate_network(&SyntheticNetworkConfig::tiny());
        // Opposite corners of the city: the fastest path should use the
        // motorway ring / trunk axes and hence be longer than the shortest.
        let a = syn.districts.first().unwrap().center;
        let b = syn.districts.last().unwrap().center;
        let fast = fastest_path(&syn.net, a, b).unwrap();
        let short = shortest_path(&syn.net, a, b).unwrap();
        let fast_time = fast.cost(&syn.net, CostType::TravelTime).unwrap();
        let short_time = short.cost(&syn.net, CostType::TravelTime).unwrap();
        assert!(fast_time <= short_time + 1e-6);
        assert!(fast.length_m(&syn.net).unwrap() >= short.length_m(&syn.net).unwrap() - 1e-6);
    }

    #[test]
    fn district_kinds_cover_core_and_fringe() {
        let syn = generate_network(&SyntheticNetworkConfig::tiny());
        let kinds: std::collections::HashSet<_> = syn.districts.iter().map(|d| d.kind).collect();
        assert!(kinds.contains(&DistrictKind::Business));
        assert!(kinds.contains(&DistrictKind::Residential));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_network(&SyntheticNetworkConfig::tiny());
        let b = generate_network(&SyntheticNetworkConfig::tiny());
        assert_eq!(a.net.num_vertices(), b.net.num_vertices());
        assert_eq!(a.net.num_edges(), b.net.num_edges());
        for (va, vb) in a.net.vertices().iter().zip(b.net.vertices()) {
            assert_eq!(va.point, vb.point);
        }
    }

    #[test]
    fn district_lookup() {
        let syn = generate_network(&SyntheticNetworkConfig::tiny());
        let d0 = &syn.districts[0];
        assert_eq!(syn.district_of(d0.center), Some(0));
        assert_eq!(syn.district_of(d0.vertices[1]), Some(0));
        assert!(syn.district_distance_m(0, syn.districts.len() - 1) > 0.0);
    }

    #[test]
    fn presets_scale_sensibly() {
        let dk = SyntheticNetworkConfig::denmark_like();
        let cd = SyntheticNetworkConfig::chengdu_like();
        assert!(dk.district_spacing_m > cd.district_spacing_m);
        assert!(dk.districts_x * dk.districts_y > 50);
    }

    #[test]
    fn xl_presets_hit_their_vertex_targets() {
        // Targets from the ISSUE: N1-XL ≈ 100k, N1-XXL ≈ 500k, smoke ≈ 30k.
        // Checked arithmetically — generating the XXL network in a unit test
        // would dominate the suite's runtime.
        let xl = SyntheticNetworkConfig::denmark_xl().expected_vertices();
        assert!((90_000..=110_000).contains(&xl), "XL vertices: {xl}");
        let xxl = SyntheticNetworkConfig::denmark_xxl().expected_vertices();
        assert!((450_000..=550_000).contains(&xxl), "XXL vertices: {xxl}");
        let smoke = SyntheticNetworkConfig::xl_smoke().expected_vertices();
        assert!(
            (20_000..=35_000).contains(&smoke),
            "smoke vertices: {smoke}"
        );
        // Local grids must stay inside the district spacing or districts
        // would overlap geometrically.
        for c in [
            SyntheticNetworkConfig::denmark_xl(),
            SyntheticNetworkConfig::denmark_xxl(),
            SyntheticNetworkConfig::xl_smoke(),
        ] {
            assert!(c.blocks_per_district as f64 * c.block_spacing_m < c.district_spacing_m);
        }
    }

    #[test]
    fn xl_smoke_network_generates_and_routes() {
        let syn = generate_network(&SyntheticNetworkConfig::xl_smoke());
        assert_eq!(
            syn.net.num_vertices(),
            SyntheticNetworkConfig::xl_smoke().expected_vertices()
        );
        // Opposite corners of the country are mutually reachable.
        let a = syn.districts.first().unwrap().center;
        let b = syn.districts.last().unwrap().center;
        assert!(fastest_path(&syn.net, a, b).is_some());
        assert!(fastest_path(&syn.net, b, a).is_some());
    }
}
