//! `l2r-serve` — the standalone route service binary.
//!
//! ```sh
//! # serve one or more snapshots (fit them with `reproduce -- fit --snapshot`):
//! l2r-serve serve --listen 127.0.0.1:7878 --workers 4 \
//!     --model D1=target/model.D1.l2r --model D2=target/model.D2.l2r
//!
//! # hammer a running server and print latency/throughput:
//! l2r-serve load --addr 127.0.0.1:7878 --dataset D1 \
//!     --protocol binary --connections 512 --pipeline 32 --requests 1000
//!
//! # self-contained end-to-end smoke (CI): start, exercise both protocols,
//! # hot-reload, clean shutdown — exits non-zero on any protocol deviation:
//! l2r-serve smoke --model D1=target/model.D1.l2r --sweep 512
//! ```

use std::path::PathBuf;
use std::time::Duration;

use l2r_serve::{registry_from_specs, run_load, run_smoke_with, LoadConfig, Server, ServerConfig};

fn usage() -> ! {
    eprintln!(
        "usage:
  l2r-serve serve --listen <addr> [--workers N] --model NAME=PATH [--model NAME=PATH ...]
                  [--deadline-ms D] [--idle-timeout-ms I] [--max-connections C] [--drain-ms G]
                  [--auto-rollback-window W] [--auto-rollback-per-mille P]
  l2r-serve load  --addr <addr> --dataset NAME [--protocol ascii|binary]
                  [--connections N] [--pipeline W] [--requests M-per-conn] [--seed S]
                  [--slow-every K] [--timeout-ms T]
  l2r-serve smoke --model NAME=PATH [--model NAME=PATH ...] [--sweep N-connections]

Model snapshots are the versioned `.l2r` files written by
`reproduce -- fit --snapshot <path>`; a --model PATH that is a directory is
opened as a crash-safe model store and its newest durable generation is
served.  With --auto-rollback-window W > 0, the W route outcomes after a
hot-swap are watched and the swap is rolled back automatically when the
internal-error rate exceeds P per mille (default 200)."
    );
    std::process::exit(2);
}

fn parse_model_spec(spec: &str) -> (String, PathBuf) {
    match spec.split_once('=') {
        Some((name, path)) if !name.is_empty() && !path.is_empty() => {
            (name.to_string(), PathBuf::from(path))
        }
        _ => {
            eprintln!("bad --model spec `{spec}` (want NAME=PATH)");
            usage();
        }
    }
}

fn parse_or_usage<T: std::str::FromStr>(value: Option<String>, flag: &str) -> T {
    match value.and_then(|v| v.parse::<T>().ok()) {
        Some(v) => v,
        None => {
            eprintln!("{flag} needs a valid value");
            usage();
        }
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(command) = args.next() else {
        usage();
    };
    match command.as_str() {
        "serve" => cmd_serve(args),
        "load" => cmd_load(args),
        "smoke" => cmd_smoke(args),
        "--help" | "-h" | "help" => usage(),
        other => {
            eprintln!("unknown command `{other}`");
            usage();
        }
    }
}

fn cmd_serve(mut args: impl Iterator<Item = String>) {
    let mut listen = "127.0.0.1:7878".to_string();
    let mut cfg = ServerConfig::default();
    let mut specs: Vec<(String, PathBuf)> = Vec::new();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--listen" => listen = parse_or_usage(args.next(), "--listen"),
            "--workers" => cfg.workers = parse_or_usage(args.next(), "--workers"),
            "--deadline-ms" => {
                cfg.default_deadline =
                    Duration::from_millis(parse_or_usage(args.next(), "--deadline-ms"))
            }
            "--idle-timeout-ms" => {
                cfg.idle_timeout =
                    Duration::from_millis(parse_or_usage(args.next(), "--idle-timeout-ms"))
            }
            "--max-connections" => {
                cfg.max_connections = parse_or_usage(args.next(), "--max-connections")
            }
            "--drain-ms" => {
                cfg.drain_deadline =
                    Duration::from_millis(parse_or_usage(args.next(), "--drain-ms"))
            }
            "--auto-rollback-window" => {
                cfg.auto_rollback_window = parse_or_usage(args.next(), "--auto-rollback-window")
            }
            "--auto-rollback-per-mille" => {
                cfg.auto_rollback_per_mille =
                    parse_or_usage(args.next(), "--auto-rollback-per-mille")
            }
            "--model" => {
                let spec: String = parse_or_usage(args.next(), "--model");
                specs.push(parse_model_spec(&spec));
            }
            other => {
                eprintln!("unknown flag `{other}`");
                usage();
            }
        }
    }
    let registry = match registry_from_specs(&specs) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    };
    for (name, path) in &specs {
        println!("loaded {name} from {}", path.display());
    }
    let workers = cfg.workers;
    let server = match Server::bind_with(&listen, cfg, registry) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("failed to bind {listen}: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "l2r-serve listening on {} ({workers} workers) — send `shutdown` to stop",
        server.local_addr()
    );
    if let Err(e) = server.run() {
        eprintln!("server error: {e}");
        std::process::exit(1);
    }
    println!("l2r-serve: clean shutdown");
}

fn cmd_load(mut args: impl Iterator<Item = String>) {
    let mut addr: Option<String> = None;
    let mut cfg = LoadConfig::default();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = Some(parse_or_usage(args.next(), "--addr")),
            "--dataset" => cfg.dataset = parse_or_usage(args.next(), "--dataset"),
            "--protocol" => cfg.protocol = parse_or_usage(args.next(), "--protocol"),
            // `--threads` predates the event loop; it now just sets the
            // connection count.
            "--connections" | "--threads" => {
                cfg.connections = parse_or_usage(args.next(), "--connections")
            }
            "--pipeline" => cfg.pipeline = parse_or_usage(args.next(), "--pipeline"),
            "--requests" => cfg.requests_per_conn = parse_or_usage(args.next(), "--requests"),
            "--seed" => cfg.seed = parse_or_usage(args.next(), "--seed"),
            "--slow-every" => cfg.slow_every = parse_or_usage(args.next(), "--slow-every"),
            "--timeout-ms" => {
                cfg.read_timeout = Some(Duration::from_millis(parse_or_usage(
                    args.next(),
                    "--timeout-ms",
                )))
            }
            other => {
                eprintln!("unknown flag `{other}`");
                usage();
            }
        }
    }
    let Some(addr) = addr else {
        eprintln!("load needs --addr <addr>");
        usage();
    };
    let resolved: std::net::SocketAddr = match addr.parse() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("bad --addr `{addr}`: {e}");
            std::process::exit(2);
        }
    };
    match run_load(resolved, &cfg) {
        Ok(report) => {
            println!(
                "load: {} {} requests over {} connections (pipeline {}) in {:.1} ms",
                report.requests,
                cfg.protocol.label(),
                cfg.connections,
                cfg.pipeline,
                report.wall.as_secs_f64() * 1000.0
            );
            println!(
                "  {:.0} qps aggregate, latency mean {:.1} µs  p50 {:.1}  p99 {:.1}",
                report.qps, report.mean_us, report.p50_us, report.p99_us
            );
            println!(
                "  answered {}, noroute {}, errors {}, deadline {}, internal {}, busy retries {}",
                report.answered,
                report.noroutes,
                report.errors,
                report.deadline_exceeded,
                report.internal_errors,
                report.busy_retries
            );
            if report.errors > 0 || report.internal_errors > 0 {
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("load failed: {e}");
            std::process::exit(1);
        }
    }
}

fn cmd_smoke(mut args: impl Iterator<Item = String>) {
    let mut specs: Vec<(String, PathBuf)> = Vec::new();
    let mut sweep: Option<usize> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--model" => {
                let spec: String = parse_or_usage(args.next(), "--model");
                specs.push(parse_model_spec(&spec));
            }
            "--sweep" => sweep = Some(parse_or_usage(args.next(), "--sweep")),
            other => {
                eprintln!("unknown flag `{other}`");
                usage();
            }
        }
    }
    match run_smoke_with(&specs, sweep) {
        Ok(transcript) => {
            print!("{transcript}");
            println!("l2r-serve smoke: OK");
        }
        Err(e) => {
            eprintln!("l2r-serve smoke FAILED: {e}");
            std::process::exit(1);
        }
    }
}
