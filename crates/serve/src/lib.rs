//! # l2r-serve
//!
//! A dependency-free TCP route service over the L2R serving stack: an
//! [`l2r_core::ModelRegistry`] of named [`l2r_core::Engine`]s (hot-reloadable
//! from `.l2r` snapshot files while queries are in flight), served by a
//! fixed pool of worker threads speaking a plain **line protocol** — one
//! request line in, one response line out, any number of requests per
//! connection.
//!
//! ## Wire protocol
//!
//! Requests are ASCII lines; fields are space-separated.  Every response is
//! a single line starting with `OK`, `NOROUTE` or `ERR`:
//!
//! | request | response |
//! |---|---|
//! | `ping` | `OK pong` |
//! | `route <dataset> <src> <dst>` | `OK <strategy> <n> <v0> … <vn-1>` \| `NOROUTE` \| `ERR …` |
//! | `route_batch <dataset> <s,d> [<s,d> …]` | `OK <total> <answered> <item> …` (item = `<strategy>:<n>` or `-`) |
//! | `info <dataset>` | `OK dataset=… vertices=… edges=… regions=… connectors=… generation=…` |
//! | `stats` | `OK uptime_ms=… connections=… queries=… answered=… errors=… reloads=… datasets=…` |
//! | `reload <dataset> <path>` | `OK dataset=… generation=…` \| `ERR reload failed: …` |
//! | `shutdown` | `OK bye` (server drains and exits) |
//!
//! A failed `reload` **keeps serving the old engine** — the registry swap is
//! atomic and only happens after the snapshot decoded and compiled cleanly.
//!
//! ## Architecture
//!
//! The listener is shared by `workers` accept loops (scoped threads, in the
//! style of `l2r-par`); each worker serves one connection at a time, pulling
//! a reusable [`l2r_core::QueryScratch`] from a shared
//! [`l2r_core::ScratchPool`] per connection so steady-state serving does not
//! allocate search state per query or per batch.  Engines are handed out as
//! `Arc<Engine>` per request — a concurrent hot-swap can never expose a
//! half-swapped model.
//!
//! The crate also ships a **load generator** ([`run_load`]) and a
//! self-contained **smoke check** ([`run_smoke`]) used by CI: start a
//! server, verify every protocol command end-to-end (including route
//! answers being bit-identical to a locally compiled engine), hot-reload
//! under traffic, and shut down cleanly.

#![warn(missing_docs)]

use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use l2r_core::{Engine, ModelRegistry, QueryScratch, RouteResult, ScratchPool};
use l2r_road_network::VertexId;

/// Default worker-thread count of a server.
pub const DEFAULT_WORKERS: usize = 4;

/// Read timeout on accepted connections: a stalled client frees its worker
/// instead of wedging it forever.
const CLIENT_READ_TIMEOUT: Duration = Duration::from_secs(30);

// ---------------------------------------------------------------------------
// Server state
// ---------------------------------------------------------------------------

/// Monotonic serving counters, shared by all workers.
#[derive(Debug)]
pub struct ServerStats {
    started: Instant,
    connections: AtomicU64,
    queries: AtomicU64,
    answered: AtomicU64,
    errors: AtomicU64,
    reloads: AtomicU64,
}

impl ServerStats {
    fn new() -> ServerStats {
        ServerStats {
            started: Instant::now(),
            connections: AtomicU64::new(0),
            queries: AtomicU64::new(0),
            answered: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            reloads: AtomicU64::new(0),
        }
    }

    /// Total route queries served (batch items count individually).
    pub fn queries(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
    }

    /// Queries that produced a route.
    pub fn answered(&self) -> u64 {
        self.answered.load(Ordering::Relaxed)
    }

    /// Requests rejected with `ERR`.
    pub fn errors(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }

    /// Successful hot-reloads performed.
    pub fn reloads(&self) -> u64 {
        self.reloads.load(Ordering::Relaxed)
    }

    /// Connections accepted.
    pub fn connections(&self) -> u64 {
        self.connections.load(Ordering::Relaxed)
    }
}

/// Everything the worker pool shares: the model registry, the scratch pool,
/// counters and the shutdown flag.
#[derive(Debug)]
pub struct ServerState {
    registry: ModelRegistry,
    scratch: ScratchPool,
    stats: ServerStats,
    shutdown: AtomicBool,
}

impl ServerState {
    /// Wraps a registry into shared server state.
    pub fn new(registry: ModelRegistry) -> ServerState {
        ServerState {
            registry,
            scratch: ScratchPool::new(),
            stats: ServerStats::new(),
            shutdown: AtomicBool::new(false),
        }
    }

    /// The model registry this server serves from (e.g. to hot-swap engines
    /// programmatically instead of via the `reload` command).
    pub fn registry(&self) -> &ModelRegistry {
        &self.registry
    }

    /// Serving counters.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// Scratch-pool diagnostics: total scratches ever created (bounds peak
    /// concurrency) — the serving loop must keep this at ≤ worker count no
    /// matter how many connections and batches have been served.
    pub fn scratches_created(&self) -> usize {
        self.scratch.created()
    }

    /// Whether shutdown has been requested.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Requests shutdown (workers exit after their current connection).
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

/// A bound (but not yet serving) route server.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    workers: usize,
    state: Arc<ServerState>,
}

/// A server running on a background thread; shut it down with
/// [`ServerHandle::shutdown`].
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    workers: usize,
    state: Arc<ServerState>,
    join: std::thread::JoinHandle<io::Result<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and prepares
    /// a pool of `workers` accept loops over `registry`.
    pub fn bind(addr: &str, workers: usize, registry: ModelRegistry) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(Server {
            listener,
            addr,
            workers: workers.max(1),
            state: Arc::new(ServerState::new(registry)),
        })
    }

    /// The bound address (resolves the ephemeral port of `:0` binds).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared handle to the server state (registry, stats, shutdown flag).
    pub fn state(&self) -> Arc<ServerState> {
        Arc::clone(&self.state)
    }

    /// Serves until shutdown is requested (by the `shutdown` command or
    /// [`ServerState::request_shutdown`] + a wake-up connection).  Blocks
    /// the calling thread; the worker pool runs on scoped threads.
    pub fn run(self) -> io::Result<()> {
        let mut listeners = Vec::with_capacity(self.workers);
        for _ in 0..self.workers {
            listeners.push(self.listener.try_clone()?);
        }
        let state = &self.state;
        let addr = self.addr;
        let workers = self.workers;
        std::thread::scope(|scope| {
            for listener in listeners {
                scope.spawn(move || accept_loop(listener, state, addr, workers));
            }
        });
        Ok(())
    }

    /// Runs the server on a background thread, returning immediately.
    pub fn start(self) -> ServerHandle {
        let addr = self.addr;
        let workers = self.workers;
        let state = Arc::clone(&self.state);
        let join = std::thread::spawn(move || self.run());
        ServerHandle {
            addr,
            workers,
            state,
            join,
        }
    }
}

impl ServerHandle {
    /// The address the server listens on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared handle to the server state.
    pub fn state(&self) -> Arc<ServerState> {
        Arc::clone(&self.state)
    }

    /// Requests shutdown, wakes every worker and waits for the server thread
    /// to finish.
    pub fn shutdown(self) -> io::Result<()> {
        self.state.request_shutdown();
        wake_workers(self.addr, self.workers);
        match self.join.join() {
            Ok(result) => result,
            Err(_) => Err(io::Error::other("server thread panicked")),
        }
    }
}

/// Unblocks workers parked in `accept` by making `n` empty connections.
fn wake_workers(addr: SocketAddr, n: usize) {
    for _ in 0..n {
        let _ = TcpStream::connect_timeout(&addr, Duration::from_millis(500));
    }
}

fn accept_loop(listener: TcpListener, state: &ServerState, addr: SocketAddr, workers: usize) {
    loop {
        if state.shutdown_requested() {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                if state.shutdown_requested() {
                    break;
                }
                handle_connection(stream, state, addr, workers);
            }
            Err(_) => {
                if state.shutdown_requested() {
                    break;
                }
                // A persistent accept error (e.g. fd exhaustion) must not
                // busy-spin the worker at 100% CPU.
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

/// Longest request line the server accepts; a client streaming bytes with
/// no newline is cut off here instead of growing the buffer unboundedly.
const MAX_REQUEST_LINE: u64 = 64 * 1024;

/// Reads one `\n`-terminated line of at most [`MAX_REQUEST_LINE`] bytes.
/// Returns `Ok(None)` on a clean EOF and `Err` on I/O failure or an
/// over-long line.
fn read_request_line(
    reader: &mut BufReader<TcpStream>,
    buf: &mut Vec<u8>,
) -> io::Result<Option<String>> {
    buf.clear();
    let n = reader
        .by_ref()
        .take(MAX_REQUEST_LINE)
        .read_until(b'\n', buf)?;
    if n == 0 {
        return Ok(None); // client closed the connection
    }
    if !buf.ends_with(b"\n") && n as u64 == MAX_REQUEST_LINE {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "request line exceeds the size limit",
        ));
    }
    Ok(Some(String::from_utf8_lossy(buf).into_owned()))
}

fn handle_connection(stream: TcpStream, state: &ServerState, addr: SocketAddr, workers: usize) {
    state.stats.connections.fetch_add(1, Ordering::Relaxed);
    let _ = stream.set_read_timeout(Some(CLIENT_READ_TIMEOUT));
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    let mut buf = Vec::new();
    // One pooled scratch for the whole connection: steady-state request
    // handling touches no allocator and no pool lock.
    let mut scratch = state.scratch.acquire();
    loop {
        let line = match read_request_line(&mut reader, &mut buf) {
            Ok(Some(line)) => line,
            Ok(None) => break,
            Err(_) => break, // timeout / reset / over-long line
        };
        let request = line.trim();
        if request.is_empty() {
            continue;
        }
        let (response, shutdown) = respond_line(state, &mut scratch, request);
        let ok = writer
            .write_all(response.as_bytes())
            .and_then(|_| writer.write_all(b"\n"))
            .and_then(|_| writer.flush())
            .is_ok();
        if shutdown {
            state.request_shutdown();
            // Unblock the sibling workers parked in `accept`; this worker
            // leaves via the loop check.
            wake_workers(addr, workers);
            break;
        }
        if !ok {
            break;
        }
    }
}

// ---------------------------------------------------------------------------
// Protocol
// ---------------------------------------------------------------------------

/// Formats a route answer exactly as the server sends it (`OK <strategy>
/// <n> <v0> …` / `NOROUTE`).  Public so clients and tests can compare
/// server responses against a locally computed [`Engine::route`] answer for
/// end-to-end bit-equivalence.
pub fn format_route_response(result: &Option<RouteResult>) -> String {
    match result {
        Some(r) => {
            let vertices = r.path.vertices();
            let mut out = String::with_capacity(16 + vertices.len() * 7);
            out.push_str("OK ");
            out.push_str(r.strategy.label());
            out.push(' ');
            out.push_str(&vertices.len().to_string());
            for v in vertices {
                out.push(' ');
                out.push_str(&v.0.to_string());
            }
            out
        }
        None => "NOROUTE".to_string(),
    }
}

/// Answers one protocol line using the caller's reusable scratch (the TCP
/// layer holds one pooled scratch per connection).  Returns the response
/// line (without trailing newline) and whether the server should shut down.
/// Exposed for protocol unit tests; the TCP layer is a thin loop around
/// this.
pub fn respond_line(
    state: &ServerState,
    scratch: &mut QueryScratch,
    request: &str,
) -> (String, bool) {
    let mut parts = request.split_whitespace();
    let command = parts.next().unwrap_or("");
    let response = match command {
        "ping" => "OK pong".to_string(),
        "route" => cmd_route(state, scratch, &mut parts),
        "route_batch" => cmd_route_batch(state, scratch, &mut parts),
        "info" => cmd_info(state, &mut parts),
        "stats" => cmd_stats(state),
        "reload" => cmd_reload(state, &mut parts),
        "shutdown" => return ("OK bye".to_string(), true),
        other => {
            state.stats.errors.fetch_add(1, Ordering::Relaxed);
            format!(
                "ERR unknown command `{other}` \
                 (expected ping|route|route_batch|info|stats|reload|shutdown)"
            )
        }
    };
    (response, false)
}

fn err(state: &ServerState, message: String) -> String {
    state.stats.errors.fetch_add(1, Ordering::Relaxed);
    format!("ERR {message}")
}

fn parse_vertex(field: Option<&str>, what: &str) -> Result<VertexId, String> {
    match field {
        Some(s) => s
            .parse::<u32>()
            .map(VertexId)
            .map_err(|_| format!("{what} `{s}` is not a vertex id")),
        None => Err(format!("missing {what}")),
    }
}

fn cmd_route<'a>(
    state: &ServerState,
    scratch: &mut QueryScratch,
    parts: &mut impl Iterator<Item = &'a str>,
) -> String {
    let Some(dataset) = parts.next() else {
        return err(state, "usage: route <dataset> <src> <dst>".to_string());
    };
    let (s, d) = match (
        parse_vertex(parts.next(), "source"),
        parse_vertex(parts.next(), "destination"),
    ) {
        (Ok(s), Ok(d)) => (s, d),
        (Err(e), _) | (_, Err(e)) => return err(state, e),
    };
    let Some(engine) = state.registry.get(dataset) else {
        return err(state, format!("unknown dataset `{dataset}`"));
    };
    let result = engine.route(scratch, s, d);
    state.stats.queries.fetch_add(1, Ordering::Relaxed);
    if result.is_some() {
        state.stats.answered.fetch_add(1, Ordering::Relaxed);
    }
    format_route_response(&result)
}

fn cmd_route_batch<'a>(
    state: &ServerState,
    scratch: &mut QueryScratch,
    parts: &mut impl Iterator<Item = &'a str>,
) -> String {
    let Some(dataset) = parts.next() else {
        return err(
            state,
            "usage: route_batch <dataset> <src,dst> [<src,dst> ...]".to_string(),
        );
    };
    let Some(engine) = state.registry.get(dataset) else {
        return err(state, format!("unknown dataset `{dataset}`"));
    };
    let mut pairs: Vec<(VertexId, VertexId)> = Vec::new();
    for item in parts {
        let Some((s, d)) = item.split_once(',') else {
            return err(state, format!("malformed pair `{item}` (want src,dst)"));
        };
        match (
            parse_vertex(Some(s), "source"),
            parse_vertex(Some(d), "destination"),
        ) {
            (Ok(s), Ok(d)) => pairs.push((s, d)),
            (Err(e), _) | (_, Err(e)) => return err(state, e),
        }
    }
    if pairs.is_empty() {
        return err(
            state,
            "route_batch needs at least one src,dst pair".to_string(),
        );
    }
    let mut out = String::new();
    let mut answered = 0u64;
    for &(s, d) in &pairs {
        let result = engine.route(scratch, s, d);
        out.push(' ');
        match &result {
            Some(r) => {
                answered += 1;
                out.push_str(r.strategy.label());
                out.push(':');
                out.push_str(&r.path.vertices().len().to_string());
            }
            None => out.push('-'),
        }
    }
    state
        .stats
        .queries
        .fetch_add(pairs.len() as u64, Ordering::Relaxed);
    state.stats.answered.fetch_add(answered, Ordering::Relaxed);
    format!("OK {} {}{}", pairs.len(), answered, out)
}

fn cmd_info<'a>(state: &ServerState, parts: &mut impl Iterator<Item = &'a str>) -> String {
    let Some(dataset) = parts.next() else {
        return err(state, "usage: info <dataset>".to_string());
    };
    let Some(engine) = state.registry.get(dataset) else {
        return err(state, format!("unknown dataset `{dataset}`"));
    };
    let generation = state.registry.generation(dataset).unwrap_or(0);
    format!(
        "OK dataset={dataset} vertices={} edges={} regions={} connectors={} generation={generation}",
        engine.network().num_vertices(),
        engine.network().num_edges(),
        engine.region_graph().num_regions(),
        engine.num_connectors(),
    )
}

fn cmd_stats(state: &ServerState) -> String {
    let names = state.registry.names();
    let datasets = if names.is_empty() {
        "-".to_string()
    } else {
        names.join(",")
    };
    format!(
        "OK uptime_ms={} connections={} queries={} answered={} errors={} reloads={} datasets={datasets}",
        state.stats.started.elapsed().as_millis(),
        state.stats.connections(),
        state.stats.queries(),
        state.stats.answered(),
        state.stats.errors(),
        state.stats.reloads(),
    )
}

fn cmd_reload<'a>(state: &ServerState, parts: &mut impl Iterator<Item = &'a str>) -> String {
    let (Some(dataset), Some(path)) = (parts.next(), parts.next()) else {
        return err(state, "usage: reload <dataset> <path>".to_string());
    };
    match state.registry.reload(dataset, Path::new(path)) {
        Ok(_) => {
            state.stats.reloads.fetch_add(1, Ordering::Relaxed);
            let generation = state.registry.generation(dataset).unwrap_or(0);
            format!("OK dataset={dataset} generation={generation}")
        }
        // The registry kept the previous engine; tell the operator why the
        // swap did not happen.
        Err(e) => err(state, format!("reload failed: {e}")),
    }
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

/// A blocking line-protocol client: one request line out, one response line
/// in.
#[derive(Debug)]
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects to a running server.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let read_half = stream.try_clone()?;
        Ok(Client {
            writer: stream,
            reader: BufReader::new(read_half),
        })
    }

    /// Sends one request line and reads the one-line response (without the
    /// trailing newline).
    pub fn request(&mut self, line: &str) -> io::Result<String> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        while response.ends_with('\n') || response.ends_with('\r') {
            response.pop();
        }
        Ok(response)
    }
}

// ---------------------------------------------------------------------------
// Load generator
// ---------------------------------------------------------------------------

/// Load-generator parameters.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Dataset name to query.
    pub dataset: String,
    /// Concurrent client connections.
    pub threads: usize,
    /// `route` requests each connection issues.
    pub requests_per_thread: usize,
    /// Seed of the per-thread query generator.
    pub seed: u64,
}

impl Default for LoadConfig {
    fn default() -> LoadConfig {
        LoadConfig {
            dataset: "D1".to_string(),
            threads: 2,
            requests_per_thread: 1000,
            seed: 0x51ED_5EED,
        }
    }
}

/// Aggregate result of a load-generator run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Total `route` requests issued.
    pub requests: u64,
    /// Requests answered with a route.
    pub answered: u64,
    /// Requests answered `NOROUTE`.
    pub noroutes: u64,
    /// Requests answered `ERR` (must be 0 on a healthy run).
    pub errors: u64,
    /// Wall time of the whole run.
    pub wall: Duration,
    /// Aggregate requests per second across all connections.
    pub qps: f64,
    /// Mean per-request round-trip latency (µs).
    pub mean_us: f64,
    /// Median round-trip latency (µs).
    pub p50_us: f64,
    /// 99th-percentile round-trip latency (µs).
    pub p99_us: f64,
}

/// Nearest-rank percentile of an ascending-sorted slice.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// A tiny deterministic generator (LCG) for query endpoints — the load tool
/// must stay dependency-free.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

/// Hammers a running server with `route` requests from
/// [`LoadConfig::threads`] concurrent connections and aggregates latency and
/// throughput.  Query endpoints are drawn deterministically (per-thread
/// seeded LCG) over the dataset's vertex range, discovered via `info`.
pub fn run_load(addr: SocketAddr, cfg: &LoadConfig) -> io::Result<LoadReport> {
    let threads = cfg.threads.max(1);
    // Discover the vertex range once.  The probe connection is dropped
    // before the load threads start: workers serve one connection at a
    // time, so an idle probe would occupy one for the whole run.
    let vertices = {
        let mut probe = Client::connect(addr)?;
        let info = probe.request(&format!("info {}", cfg.dataset))?;
        info.split_whitespace()
            .find_map(|f| {
                f.strip_prefix("vertices=")
                    .and_then(|v| v.parse::<u64>().ok())
            })
            .ok_or_else(|| io::Error::other(format!("unusable info response: {info}")))?
    };
    if vertices < 2 {
        return Err(io::Error::other("dataset has fewer than 2 vertices"));
    }

    struct ThreadOutcome {
        latencies_us: Vec<f64>,
        answered: u64,
        noroutes: u64,
        errors: u64,
        error: Option<io::Error>,
    }

    let t0 = Instant::now();
    let outcomes: Vec<ThreadOutcome> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for tid in 0..threads {
            let dataset = cfg.dataset.clone();
            let requests = cfg.requests_per_thread;
            let seed = cfg.seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(tid as u64 + 1));
            handles.push(scope.spawn(move || {
                let mut outcome = ThreadOutcome {
                    latencies_us: Vec::with_capacity(requests),
                    answered: 0,
                    noroutes: 0,
                    errors: 0,
                    error: None,
                };
                let mut client = match Client::connect(addr) {
                    Ok(c) => c,
                    Err(e) => {
                        outcome.error = Some(e);
                        return outcome;
                    }
                };
                let mut rng = Lcg(seed);
                for _ in 0..requests {
                    let s = rng.next() % vertices;
                    let mut d = rng.next() % vertices;
                    if d == s {
                        d = (d + 1) % vertices;
                    }
                    let q0 = Instant::now();
                    match client.request(&format!("route {dataset} {s} {d}")) {
                        Ok(resp) => {
                            outcome.latencies_us.push(q0.elapsed().as_secs_f64() * 1e6);
                            if resp.starts_with("OK") {
                                outcome.answered += 1;
                            } else if resp.starts_with("NOROUTE") {
                                outcome.noroutes += 1;
                            } else {
                                outcome.errors += 1;
                            }
                        }
                        Err(e) => {
                            outcome.error = Some(e);
                            break;
                        }
                    }
                }
                outcome
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("load thread"))
            .collect()
    });
    let wall = t0.elapsed();

    let mut latencies: Vec<f64> = Vec::new();
    let (mut answered, mut noroutes, mut errors) = (0u64, 0u64, 0u64);
    for mut outcome in outcomes {
        if let Some(e) = outcome.error.take() {
            return Err(e);
        }
        latencies.append(&mut outcome.latencies_us);
        answered += outcome.answered;
        noroutes += outcome.noroutes;
        errors += outcome.errors;
    }
    latencies.sort_by(|a, b| a.total_cmp(b));
    let requests = latencies.len() as u64;
    let mean_us = if latencies.is_empty() {
        0.0
    } else {
        latencies.iter().sum::<f64>() / latencies.len() as f64
    };
    Ok(LoadReport {
        requests,
        answered,
        noroutes,
        errors,
        wall,
        qps: if wall.as_secs_f64() > 0.0 {
            requests as f64 / wall.as_secs_f64()
        } else {
            0.0
        },
        mean_us,
        p50_us: percentile(&latencies, 50.0),
        p99_us: percentile(&latencies, 99.0),
    })
}

// ---------------------------------------------------------------------------
// Smoke check
// ---------------------------------------------------------------------------

/// Builds a registry by loading each `name=path` model spec.
pub fn registry_from_specs(specs: &[(String, PathBuf)]) -> Result<ModelRegistry, String> {
    if specs.is_empty() {
        return Err("no --model NAME=PATH specs given".to_string());
    }
    let registry = ModelRegistry::new();
    for (name, path) in specs {
        let engine = Engine::load(path)
            .map_err(|e| format!("failed to load `{name}` from {}: {e}", path.display()))?;
        registry.insert(name, engine);
    }
    Ok(registry)
}

/// End-to-end smoke check (used by CI): starts a server over the given
/// `name=path` models on an ephemeral loopback port, exercises every
/// protocol command through real TCP connections — verifying `route`
/// answers are **bit-identical** to a locally compiled [`Engine`] — performs
/// a hot-reload plus the reload failure path, and shuts the server down
/// cleanly.  Returns a human-readable transcript on success.
pub fn run_smoke(specs: &[(String, PathBuf)]) -> Result<String, String> {
    let mut transcript = String::new();
    let mut note = |line: String| {
        transcript.push_str(&line);
        transcript.push('\n');
    };

    let registry = registry_from_specs(specs)?;
    let (name, path) = &specs[0];
    // An independently compiled engine: the reference for bit-equivalence.
    let reference =
        Engine::load(path).map_err(|e| format!("reference load of {}: {e}", path.display()))?;

    let server =
        Server::bind("127.0.0.1:0", 2, registry).map_err(|e| format!("bind failed: {e}"))?;
    let addr = server.local_addr();
    let state = server.state();
    let handle = server.start();
    note(format!(
        "server listening on {addr} ({} datasets)",
        specs.len()
    ));

    let run = || -> Result<Vec<String>, String> {
        let mut notes = Vec::new();
        let mut client = Client::connect(addr).map_err(|e| format!("connect failed: {e}"))?;
        let mut expect = |request: &str, check: &dyn Fn(&str) -> bool| -> Result<String, String> {
            let response = client
                .request(request)
                .map_err(|e| format!("`{request}` failed: {e}"))?;
            if !check(&response) {
                return Err(format!("`{request}` answered unexpectedly: {response}"));
            }
            Ok(response)
        };

        expect("ping", &|r| r == "OK pong")?;
        let info = expect(&format!("info {name}"), &|r| r.starts_with("OK "))?;
        notes.push(format!("info: {info}"));
        let vertices = info
            .split_whitespace()
            .find_map(|f| {
                f.strip_prefix("vertices=")
                    .and_then(|v| v.parse::<u32>().ok())
            })
            .ok_or_else(|| format!("info response lacks vertices=: {info}"))?;
        if vertices < 2 {
            return Err("dataset has fewer than 2 vertices".to_string());
        }

        // Bit-equivalence: the TCP answer must be byte-for-byte the local
        // engine's answer run through the shared formatter.
        let mut scratch = l2r_core::QueryScratch::new();
        let mut compared = 0usize;
        for i in 0..25u32 {
            let s = (i * 37) % vertices;
            let d = (i * 91 + 1) % vertices;
            if s == d {
                continue;
            }
            let expected =
                format_route_response(&reference.route(&mut scratch, VertexId(s), VertexId(d)));
            expect(&format!("route {name} {s} {d}"), &|r| r == expected)?;
            compared += 1;
        }
        notes.push(format!(
            "route: {compared} queries answered bit-identically to the local engine"
        ));

        let batch = expect(&format!("route_batch {name} 0,1 1,0 0,1"), &|r| {
            r.starts_with("OK 3 ")
        })?;
        notes.push(format!("route_batch: {batch}"));

        // Hot-reload from the same snapshot: generation bumps, serving keeps
        // answering identically.
        expect(&format!("reload {name} {}", path.display()), &|r| {
            r.starts_with("OK ") && r.contains("generation=2")
        })?;
        let expected = format_route_response(&reference.route(
            &mut scratch,
            VertexId(0),
            VertexId(1 % vertices),
        ));
        expect(&format!("route {name} 0 {}", 1 % vertices), &|r| {
            r == expected
        })?;
        notes.push("reload: generation=2, post-reload answer identical".to_string());

        // Failure paths: the old engine must keep serving.
        expect(
            &format!("reload {name} {}.does-not-exist", path.display()),
            &|r| r.starts_with("ERR reload failed"),
        )?;
        expect(&format!("route {name} 0 {}", 1 % vertices), &|r| {
            r == expected
        })?;
        expect("route nosuchdataset 0 1", &|r| {
            r.starts_with("ERR unknown dataset")
        })?;
        expect("frobnicate", &|r| r.starts_with("ERR unknown command"))?;
        notes.push("failure paths: bad reload kept the old engine serving".to_string());

        let stats = expect("stats", &|r| r.starts_with("OK uptime_ms="))?;
        notes.push(format!("stats: {stats}"));

        expect("shutdown", &|r| r == "OK bye")?;
        Ok(notes)
    };

    match run() {
        Ok(notes) => {
            for n in notes {
                note(n);
            }
        }
        Err(e) => {
            // Best-effort teardown so the caller is not left with a stray
            // listener, then report the protocol failure.
            let _ = handle.shutdown();
            return Err(e);
        }
    }

    handle
        .shutdown()
        .map_err(|e| format!("server did not shut down cleanly: {e}"))?;
    if state.scratches_created() > 2 {
        return Err(format!(
            "scratch pool created {} scratches for 2 workers — serving allocates",
            state.scratches_created()
        ));
    }
    note(format!(
        "clean shutdown after {} queries ({} scratches for 2 workers)",
        state.stats().queries(),
        state.scratches_created()
    ));
    Ok(transcript)
}

#[cfg(test)]
mod tests {
    use super::*;
    use l2r_core::{apply_preferences_to_b_edges, save_model, L2r, L2rConfig};
    use l2r_datagen::{
        generate_network, generate_workload, SyntheticNetworkConfig, WorkloadConfig,
    };
    use l2r_region_graph::{bottom_up_clustering, RegionGraph, TrajectoryGraph};

    fn tiny_engine() -> Engine {
        let syn = generate_network(&SyntheticNetworkConfig::tiny());
        let wl = generate_workload(&syn, &WorkloadConfig::tiny(250));
        let tg = TrajectoryGraph::build(&syn.net, &wl.trajectories);
        let clusters = bottom_up_clustering(&tg);
        let mut rg = RegionGraph::build(&syn.net, &clusters, &wl.trajectories, 2);
        apply_preferences_to_b_edges(&syn.net, &mut rg, &std::collections::HashMap::new(), 2);
        Engine::from_graphs(&syn.net, &rg)
    }

    fn state_with(name: &str) -> ServerState {
        let registry = ModelRegistry::new();
        registry.insert(name, tiny_engine());
        ServerState::new(registry)
    }

    #[test]
    fn protocol_answers_ping_stats_info() {
        let state = state_with("D1");
        let mut scratch = QueryScratch::new();
        assert_eq!(respond_line(&state, &mut scratch, "ping").0, "OK pong");
        let (stats, _) = respond_line(&state, &mut scratch, "stats");
        assert!(stats.starts_with("OK uptime_ms="), "{stats}");
        assert!(stats.contains("datasets=D1"), "{stats}");
        let (info, _) = respond_line(&state, &mut scratch, "info D1");
        assert!(
            info.contains("vertices=") && info.contains("generation=1"),
            "{info}"
        );
    }

    #[test]
    fn protocol_routes_bit_identically_to_the_engine() {
        let state = state_with("D1");
        let engine = state.registry().get("D1").unwrap();
        let mut scratch = l2r_core::QueryScratch::new();
        let mut proto_scratch = QueryScratch::new();
        let n = engine.network().num_vertices() as u32;
        let mut compared = 0usize;
        for i in (0..n).step_by(7) {
            let (s, d) = (i, (i * 13 + 5) % n);
            let expected =
                format_route_response(&engine.route(&mut scratch, VertexId(s), VertexId(d)));
            let (got, _) = respond_line(&state, &mut proto_scratch, &format!("route D1 {s} {d}"));
            assert_eq!(got, expected, "query {s} -> {d}");
            compared += 1;
        }
        assert!(compared > 10);
        assert_eq!(state.stats().queries(), compared as u64);
    }

    #[test]
    fn protocol_batch_counts_and_items_line_up() {
        let state = state_with("D1");
        let mut scratch = QueryScratch::new();
        let (resp, _) = respond_line(&state, &mut scratch, "route_batch D1 0,1 1,2 2,3");
        assert!(resp.starts_with("OK 3 "), "{resp}");
        let items: Vec<&str> = resp.split_whitespace().skip(3).collect();
        assert_eq!(items.len(), 3, "{resp}");
        assert_eq!(state.stats().queries(), 3);
    }

    #[test]
    fn protocol_rejects_malformed_requests() {
        let state = state_with("D1");
        let mut scratch = QueryScratch::new();
        for bad in [
            "route",
            "route D1",
            "route D1 0",
            "route D1 zero one",
            "route nosuch 0 1",
            "route_batch D1",
            "route_batch D1 0:1",
            "info nosuch",
            "reload D1",
            "frobnicate",
        ] {
            let (resp, shutdown) = respond_line(&state, &mut scratch, bad);
            assert!(resp.starts_with("ERR"), "`{bad}` -> {resp}");
            assert!(!shutdown);
        }
        assert_eq!(state.stats().errors(), 10);
        assert_eq!(state.stats().queries(), 0);
    }

    #[test]
    fn protocol_shutdown_flags_the_server() {
        let state = state_with("D1");
        let mut scratch = QueryScratch::new();
        let (resp, shutdown) = respond_line(&state, &mut scratch, "shutdown");
        assert_eq!(resp, "OK bye");
        assert!(shutdown);
    }

    #[test]
    fn tcp_server_serves_reloads_and_shuts_down() {
        // One real end-to-end pass over TCP: fit a tiny model, snapshot it,
        // serve it, reload it, load-generate against it, shut down.
        let syn = generate_network(&SyntheticNetworkConfig::tiny());
        let wl = generate_workload(&syn, &WorkloadConfig::tiny(250));
        let (train, _) = wl.temporal_split(0.8);
        let model = L2r::fit(&syn.net, &train, L2rConfig::fast()).unwrap();
        let path = std::env::temp_dir().join(format!("l2r-serve-test-{}.l2r", std::process::id()));
        save_model(&model, &path).unwrap();

        let registry = ModelRegistry::new();
        registry.insert("tiny", model.into_engine());
        let server = Server::bind("127.0.0.1:0", 2, registry).unwrap();
        let addr = server.local_addr();
        let state = server.state();
        let handle = server.start();

        let mut client = Client::connect(addr).unwrap();
        assert_eq!(client.request("ping").unwrap(), "OK pong");
        let resp = client.request("route tiny 0 5").unwrap();
        assert!(resp.starts_with("OK ") || resp == "NOROUTE", "{resp}");
        let resp = client
            .request(&format!("reload tiny {}", path.display()))
            .unwrap();
        assert!(resp.contains("generation=2"), "{resp}");
        // Workers serve one connection at a time: release ours so the load
        // generator's connections are not starved behind an idle client.
        drop(client);

        let report = run_load(
            addr,
            &LoadConfig {
                dataset: "tiny".to_string(),
                threads: 2,
                requests_per_thread: 50,
                seed: 7,
            },
        )
        .unwrap();
        assert_eq!(report.requests, 100);
        assert_eq!(report.errors, 0);
        assert!(report.qps > 0.0);
        assert!(report.p99_us >= report.p50_us);

        let mut client = Client::connect(addr).unwrap();
        assert_eq!(client.request("shutdown").unwrap(), "OK bye");
        handle.shutdown().unwrap();
        std::fs::remove_file(&path).ok();
        assert!(state.stats().queries() >= 101);
        assert!(
            state.scratches_created() <= 2,
            "2 workers must never need more than 2 scratches, created {}",
            state.scratches_created()
        );
    }

    #[test]
    fn smoke_passes_against_a_saved_snapshot() {
        let syn = generate_network(&SyntheticNetworkConfig::tiny());
        let wl = generate_workload(&syn, &WorkloadConfig::tiny(250));
        let (train, _) = wl.temporal_split(0.8);
        let model = L2r::fit(&syn.net, &train, L2rConfig::fast()).unwrap();
        let path = std::env::temp_dir().join(format!("l2r-serve-smoke-{}.l2r", std::process::id()));
        save_model(&model, &path).unwrap();
        let transcript = run_smoke(&[("tiny".to_string(), path.clone())]).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(transcript.contains("clean shutdown"), "{transcript}");
        assert!(transcript.contains("bit-identically"), "{transcript}");
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let sorted: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&sorted, 50.0), 50.0);
        assert_eq!(percentile(&sorted, 99.0), 99.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn lcg_is_deterministic_and_spreads() {
        let mut a = Lcg(42);
        let mut b = Lcg(42);
        let xs: Vec<u64> = (0..8).map(|_| a.next()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next()).collect();
        assert_eq!(xs, ys);
        let distinct: std::collections::HashSet<u64> = xs.iter().copied().collect();
        assert!(distinct.len() >= 7);
    }
}
