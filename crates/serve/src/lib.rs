//! # l2r-serve
//!
//! A dependency-free TCP route service over the L2R serving stack: an
//! [`l2r_core::ModelRegistry`] of named [`l2r_core::Engine`]s
//! (hot-reloadable from `.l2r` snapshot files while queries are in
//! flight), served by a fixed pool of **event-loop threads** — a
//! `poll(2)`-based readiness reactor over non-blocking sockets that
//! multiplexes thousands of connections per thread instead of pinning one
//! thread per connection.
//!
//! ## Wire protocols
//!
//! Each connection speaks one of two protocols, auto-detected from its
//! first byte:
//!
//! * the **binary frame protocol** ([`frame`]) — length-prefixed,
//!   checksummed frames with request pipelining (its magic starts with
//!   `0xB1`, which is not valid ASCII);
//! * the legacy **ASCII line protocol** — one request line in, one
//!   response line out:
//!
//! | request | response |
//! |---|---|
//! | `ping` | `OK pong` |
//! | `route <dataset> <src> <dst> [<deadline_ms>]` | `OK <strategy> <n> <v0> … <vn-1>` \| `NOROUTE` \| `BUSY` \| `ERR deadline …` \| `ERR internal …` \| `ERR …` |
//! | `route_batch <dataset> <s,d> [<s,d> …]` | `OK <total> <answered> <item> …` (item = `<strategy>:<n>` or `-`) |
//! | `info <dataset>` | `OK dataset=… vertices=… edges=… regions=… connectors=… generation=…` |
//! | `stats` | `OK uptime_ms=… connections=… queries=… answered=… errors=… reloads=… shed=… batches=… deadline_exceeded=… panics_caught=… idle_reaped=… write_stalls=… rejected=… respawned=… validation_failures=… rollbacks=… generations=… datasets=…` |
//! | `reload <dataset> <path> [latest\|<gen>]` | `OK dataset=… generation=…` \| `ERR reload failed: …` |
//! | `rollback <dataset>` | `OK dataset=… generation=…` \| `ERR rollback failed: …` |
//! | `shutdown` | `OK bye` (server drains and exits) |
//!
//! `reload`'s `<path>` may be a `.l2r` snapshot file or a **model-store
//! directory** (see `l2r_core::store`): a directory reloads the newest
//! durable generation, and an explicit trailing `latest` or generation
//! number pins the choice.  A failed `reload` — including a snapshot that
//! fails validation (wrong dataset stamp, canary digest mismatch) —
//! **keeps serving the old engine**; validation rejections additionally
//! count in the `validation_failures` stat.  A successful swap retains the
//! outgoing engine, and `rollback` restores it (bumping the generation —
//! a rollback *is* a swap).  With
//! [`ServerConfig::auto_rollback_window`] set, every swap also arms a
//! post-swap probation window ([`health`]): an internal-error rate spike
//! under real traffic rolls the dataset back automatically.  The registry
//! swap is atomic and only happens after the snapshot decoded, compiled
//! and validated cleanly.  `BUSY` means the dataset's bounded admission queue
//! ([`queue`]) was full; the connection stays open and the request should
//! be retried.  Both protocols report the same failure taxonomy: a route
//! whose deadline expired answers `ERR deadline …` on the line protocol
//! and [`frame::Status::DeadlineExceeded`] on the binary protocol; a route
//! whose handler panicked answers `ERR internal …` / a binary
//! [`frame::Status::Err`] whose message starts with `internal` — in every
//! case request-scoped: the connection keeps serving.
//!
//! ## Operational behaviour
//!
//! The server is self-healing by construction (see [`ServerConfig`] for
//! the knobs and the README's "Operational behaviour" section for the
//! operator view):
//!
//! * **deadlines** — every route carries a budget (client-supplied or
//!   [`ServerConfig::default_deadline`]), enforced at admission, at
//!   batch-coalesce time (a batch never waits past its earliest member's
//!   budget) and again before execution;
//! * **panic isolation** — route execution runs under `catch_unwind`; a
//!   panicking handler costs one request, never a worker thread, and a
//!   watchdog respawns any event loop that dies anyway;
//! * **connection hygiene** — idle connections are reaped, write-stalled
//!   (slow-loris) readers are disconnected once their outbound backlog
//!   exceeds a cap for too long, and accepts beyond
//!   [`ServerConfig::max_connections`] are shed at accept time;
//! * **graceful drain** — `shutdown` stops accepting, answers everything
//!   already admitted, flushes outbound buffers, then exits, bounded by
//!   [`ServerConfig::drain_deadline`];
//! * **fault injection** — a deterministic [`faults::FaultPlan`] can be
//!   installed to rehearse all of the above (tests + the `resilience`
//!   bench section).
//!
//! ## Architecture
//!
//! `workers` poll(2) event loops share the non-blocking listener;
//! each owns its accepted connections outright.  Admitted `route` queries
//! from all of a loop's connections coalesce into latency-budget-aware
//! batches executed through one reusable [`l2r_core::QueryScratch`] per
//! loop (from the shared [`l2r_core::ScratchPool`]) or, for large
//! batches, [`l2r_core::Engine::route_many`] — so steady-state serving
//! does not allocate search state per query.  Engines are handed out as
//! `Arc<Engine>` per request: a concurrent hot-swap can never expose a
//! half-swapped model.
//!
//! The crate also ships a dual-protocol pipelining **load generator**
//! ([`run_load`]) and a self-contained **smoke check** ([`run_smoke`])
//! used by CI.

#![warn(missing_docs)]

pub mod faults;
pub mod frame;
pub mod health;
pub mod queue;

mod client;
mod load;
mod reactor;
mod smoke;

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use l2r_core::{ModelRegistry, ModelStore, QueryScratch, RegistryError, RouteResult, ScratchPool};
use l2r_road_network::VertexId;

pub use client::{
    route_reply_to_line, BatchItemReply, BinClient, Client, DatasetInfo, RetryPolicy,
    DEFAULT_CLIENT_READ_TIMEOUT,
};
pub use faults::{FaultConfig, FaultCounters, FaultPlan};
pub use health::{DatasetHealth, HealthMap};
pub use load::{run_load, LoadConfig, LoadReport, Protocol};
pub use queue::{DatasetQueue, DEFAULT_QUEUE_CAPACITY};
pub use reactor::PARALLEL_BATCH_MIN;
pub use smoke::{registry_from_specs, run_smoke, run_smoke_with};

/// Default event-loop thread count of a server.
pub const DEFAULT_WORKERS: usize = 4;

/// Default flush threshold of the per-loop route batch.
pub const DEFAULT_BATCH_MAX: usize = 64;

/// Default per-request deadline granted to routes that carry none.
pub const DEFAULT_DEADLINE: Duration = Duration::from_secs(5);

/// Default idle-connection reaping timeout.
pub const DEFAULT_IDLE_TIMEOUT: Duration = Duration::from_secs(60);

/// Default cap on concurrently open connections per server.
pub const DEFAULT_MAX_CONNECTIONS: usize = 65_536;

/// How often the watchdog thread checks its event loops for panics.
const WATCHDOG_TICK: Duration = Duration::from_millis(10);

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// Tunables of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Event-loop threads (each multiplexes its own connections).
    pub workers: usize,
    /// Bound on admitted-but-unanswered `route` queries per dataset;
    /// overflow is answered `BUSY` (see [`queue`]).
    pub queue_capacity: usize,
    /// Route batches flush at this size even mid-read, so admission depth
    /// stays bounded by it under pipelined floods.
    pub batch_max: usize,
    /// How long a loop may hold a non-full batch hoping to coalesce more
    /// queries.  Zero (the default) flushes every poll iteration: batches
    /// then form naturally from whatever arrived while the previous batch
    /// executed, adding no latency.
    pub batch_budget: Duration,
    /// Deadline granted to route requests that do not carry their own.
    /// Enforced at admission, at batch-coalesce time and before execution;
    /// an expired request answers `DeadlineExceeded` / `ERR deadline`.
    pub default_deadline: Duration,
    /// Connections idle (no admitted work, nothing buffered in or out)
    /// longer than this are reaped.  `Duration::ZERO` disables reaping.
    pub idle_timeout: Duration,
    /// A connection whose outbound buffer has exceeded
    /// [`ServerConfig::write_stall_cap`] for longer than this is treated
    /// as a slow-loris reader and disconnected.
    pub write_stall_timeout: Duration,
    /// Outbound-backlog size that arms write-stall detection.
    pub write_stall_cap: usize,
    /// Cap on concurrently open connections across all event loops;
    /// accepts beyond it are shed (connection closed immediately).
    pub max_connections: usize,
    /// Hard bound on graceful drain: after `shutdown`, event loops finish
    /// admitted requests and flush replies for at most this long.
    pub drain_deadline: Duration,
    /// Post-swap probation window (see [`health`]): after a successful
    /// reload, this many route outcomes on the dataset are watched for an
    /// internal-error spike before the swap is trusted.  `0` (the default)
    /// disables automatic rollback entirely.
    pub auto_rollback_window: u64,
    /// Internal-error rate (per thousand outcomes of the probation window)
    /// above which the server rolls the dataset back automatically.
    pub auto_rollback_per_mille: u32,
    /// Deterministic fault-injection plan (tests and chaos benches only;
    /// `None` in production — every hook is then a cheap branch).
    pub faults: Option<Arc<FaultPlan>>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: DEFAULT_WORKERS,
            queue_capacity: DEFAULT_QUEUE_CAPACITY,
            batch_max: DEFAULT_BATCH_MAX,
            batch_budget: Duration::ZERO,
            default_deadline: DEFAULT_DEADLINE,
            idle_timeout: DEFAULT_IDLE_TIMEOUT,
            write_stall_timeout: Duration::from_secs(5),
            write_stall_cap: 256 * 1024,
            max_connections: DEFAULT_MAX_CONNECTIONS,
            drain_deadline: Duration::from_secs(1),
            auto_rollback_window: 0,
            auto_rollback_per_mille: 200,
            faults: None,
        }
    }
}

// ---------------------------------------------------------------------------
// Server state
// ---------------------------------------------------------------------------

/// Monotonic serving counters, shared by all event loops (all atomics —
/// they are hammered concurrently from every loop thread).
#[derive(Debug)]
pub struct ServerStats {
    pub(crate) started: Instant,
    pub(crate) connections: AtomicU64,
    pub(crate) queries: AtomicU64,
    pub(crate) answered: AtomicU64,
    pub(crate) errors: AtomicU64,
    pub(crate) reloads: AtomicU64,
    pub(crate) shed: AtomicU64,
    pub(crate) batches: AtomicU64,
    pub(crate) deadline_exceeded: AtomicU64,
    pub(crate) panics_caught: AtomicU64,
    pub(crate) idle_reaped: AtomicU64,
    pub(crate) write_stalls: AtomicU64,
    pub(crate) conns_rejected: AtomicU64,
    pub(crate) workers_respawned: AtomicU64,
    pub(crate) validation_failures: AtomicU64,
    pub(crate) rollbacks: AtomicU64,
}

impl ServerStats {
    fn new() -> ServerStats {
        ServerStats {
            started: Instant::now(),
            connections: AtomicU64::new(0),
            queries: AtomicU64::new(0),
            answered: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            reloads: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            deadline_exceeded: AtomicU64::new(0),
            panics_caught: AtomicU64::new(0),
            idle_reaped: AtomicU64::new(0),
            write_stalls: AtomicU64::new(0),
            conns_rejected: AtomicU64::new(0),
            workers_respawned: AtomicU64::new(0),
            validation_failures: AtomicU64::new(0),
            rollbacks: AtomicU64::new(0),
        }
    }

    /// Total route queries served (batch items count individually).
    pub fn queries(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
    }

    /// Queries that produced a route.
    pub fn answered(&self) -> u64 {
        self.answered.load(Ordering::Relaxed)
    }

    /// Requests rejected with `ERR`.
    pub fn errors(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }

    /// Successful hot-reloads performed.
    pub fn reloads(&self) -> u64 {
        self.reloads.load(Ordering::Relaxed)
    }

    /// Connections accepted.
    pub fn connections(&self) -> u64 {
        self.connections.load(Ordering::Relaxed)
    }

    /// Route queries answered `BUSY` by load-shedding.
    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Route batches executed by the event loops.
    pub fn batches(&self) -> u64 {
        self.batches.load(Ordering::Relaxed)
    }

    /// Route requests that expired before they could be answered
    /// (`DeadlineExceeded` / `ERR deadline`).
    pub fn deadline_exceeded(&self) -> u64 {
        self.deadline_exceeded.load(Ordering::Relaxed)
    }

    /// Handler panics converted into request-scoped `ERR internal`
    /// replies by panic isolation.
    pub fn panics_caught(&self) -> u64 {
        self.panics_caught.load(Ordering::Relaxed)
    }

    /// Connections reaped for exceeding the idle timeout.
    pub fn idle_reaped(&self) -> u64 {
        self.idle_reaped.load(Ordering::Relaxed)
    }

    /// Connections disconnected by write-stall (slow-loris) detection.
    pub fn write_stalls(&self) -> u64 {
        self.write_stalls.load(Ordering::Relaxed)
    }

    /// Connections shed at accept time by the connection cap.
    pub fn conns_rejected(&self) -> u64 {
        self.conns_rejected.load(Ordering::Relaxed)
    }

    /// Event-loop threads respawned by the watchdog after dying to a
    /// panic that escaped request-scoped isolation.
    pub fn workers_respawned(&self) -> u64 {
        self.workers_respawned.load(Ordering::Relaxed)
    }

    /// Reload attempts rejected by snapshot validation (wrong dataset
    /// stamp or canary digest mismatch) — each one kept the old engine
    /// serving.
    pub fn validation_failures(&self) -> u64 {
        self.validation_failures.load(Ordering::Relaxed)
    }

    /// Rollbacks performed — explicit `rollback` commands plus automatic
    /// post-swap probation triggers.
    pub fn rollbacks(&self) -> u64 {
        self.rollbacks.load(Ordering::Relaxed)
    }
}

/// Everything the event loops share: the model registry, the scratch pool,
/// per-dataset admission queues, counters and the shutdown flag.
#[derive(Debug)]
pub struct ServerState {
    pub(crate) registry: ModelRegistry,
    pub(crate) scratch: ScratchPool,
    pub(crate) stats: ServerStats,
    pub(crate) queues: queue::DatasetQueues,
    pub(crate) health: HealthMap,
    pub(crate) shutdown: AtomicBool,
    /// Gauge of currently open connections across all event loops (the
    /// accept-time connection cap works against this; it must return to
    /// zero after every drain — tests assert no connection leaks).
    pub(crate) open_conns: AtomicUsize,
}

impl ServerState {
    /// Wraps a registry into shared server state with default tunables.
    pub fn new(registry: ModelRegistry) -> ServerState {
        ServerState::with_config(registry, &ServerConfig::default())
    }

    /// Wraps a registry into shared server state with explicit tunables.
    pub fn with_config(registry: ModelRegistry, cfg: &ServerConfig) -> ServerState {
        ServerState {
            registry,
            scratch: ScratchPool::new(),
            stats: ServerStats::new(),
            queues: queue::DatasetQueues::new(cfg.queue_capacity),
            health: HealthMap::new(cfg.auto_rollback_window, cfg.auto_rollback_per_mille),
            shutdown: AtomicBool::new(false),
            open_conns: AtomicUsize::new(0),
        }
    }

    /// The model registry this server serves from (e.g. to hot-swap engines
    /// programmatically instead of via the `reload` command).
    pub fn registry(&self) -> &ModelRegistry {
        &self.registry
    }

    /// Serving counters.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// The bounded admission queue of `dataset`, if any route request has
    /// touched it yet (depth/shed/served counters for tests and
    /// observability).
    pub fn dataset_queue(&self, dataset: &str) -> Option<Arc<DatasetQueue>> {
        self.queues.peek(dataset)
    }

    /// Scratch-pool diagnostics: total scratches ever created (bounds peak
    /// concurrency) — the serving loop must keep this at ≤ worker count no
    /// matter how many connections and batches have been served.
    pub fn scratches_created(&self) -> usize {
        self.scratch.created()
    }

    /// Currently open connections across all event loops.  Returns to
    /// exactly zero after a drain — a non-zero value with no clients
    /// attached is a connection leak.
    pub fn open_connections(&self) -> usize {
        // ordering: SeqCst — pairs with the OpenConns gauge updates in the
        // event loops; drains spin on this reaching zero, so reads must be
        // in the same total order as claims and releases.
        self.open_conns.load(Ordering::SeqCst)
    }

    /// Whether shutdown has been requested.
    pub fn shutdown_requested(&self) -> bool {
        // ordering: SeqCst — the shutdown flag is the cross-loop stop
        // signal; the rare read per loop iteration is worth the strongest
        // ordering so no loop can keep accepting after the store.
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Requests shutdown (event loops drain pending responses and exit).
    pub fn request_shutdown(&self) {
        // ordering: SeqCst — pairs with shutdown_requested's loads.
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// The `stats` body shared by both protocols (everything after the
    /// ASCII response's `OK ` prefix).
    pub fn stats_line(&self) -> String {
        let names = self.registry.names();
        let datasets = if names.is_empty() {
            "-".to_string()
        } else {
            names.join(",")
        };
        let generations = self.generations_field();
        format!(
            "uptime_ms={} connections={} queries={} answered={} errors={} reloads={} shed={} \
             batches={} deadline_exceeded={} panics_caught={} idle_reaped={} write_stalls={} \
             rejected={} respawned={} validation_failures={} rollbacks={} \
             generations={generations} datasets={datasets}",
            self.stats.started.elapsed().as_millis(),
            self.stats.connections(),
            self.stats.queries(),
            self.stats.answered(),
            self.stats.errors(),
            self.stats.reloads(),
            self.stats.shed(),
            self.stats.batches(),
            self.stats.deadline_exceeded(),
            self.stats.panics_caught(),
            self.stats.idle_reaped(),
            self.stats.write_stalls(),
            self.stats.conns_rejected(),
            self.stats.workers_respawned(),
            self.stats.validation_failures(),
            self.stats.rollbacks(),
        )
    }

    /// The `generations=` field of the stats line: `name:gen` per dataset,
    /// comma-joined in sorted name order, or `-` with no datasets.
    fn generations_field(&self) -> String {
        let generations = self.registry.generations();
        if generations.is_empty() {
            return "-".to_string();
        }
        generations
            .iter()
            .map(|(name, generation)| format!("{name}:{generation}"))
            .collect::<Vec<_>>()
            .join(",")
    }

    /// Every server counter as machine-readable `(key, value)` pairs — the
    /// structured half of the binary `stats` response, and the source the
    /// ASCII line must agree with field-for-field (`uptime_ms` excepted:
    /// the two are read at different instants).  Active registry
    /// generations ride along as `generation.<dataset>` keys.
    pub fn stats_fields(&self) -> Vec<(String, u64)> {
        let mut fields: Vec<(String, u64)> = vec![
            (
                "uptime_ms".into(),
                self.stats.started.elapsed().as_millis() as u64,
            ),
            ("connections".into(), self.stats.connections()),
            ("queries".into(), self.stats.queries()),
            ("answered".into(), self.stats.answered()),
            ("errors".into(), self.stats.errors()),
            ("reloads".into(), self.stats.reloads()),
            ("shed".into(), self.stats.shed()),
            ("batches".into(), self.stats.batches()),
            ("deadline_exceeded".into(), self.stats.deadline_exceeded()),
            ("panics_caught".into(), self.stats.panics_caught()),
            ("idle_reaped".into(), self.stats.idle_reaped()),
            ("write_stalls".into(), self.stats.write_stalls()),
            ("rejected".into(), self.stats.conns_rejected()),
            ("respawned".into(), self.stats.workers_respawned()),
            (
                "validation_failures".into(),
                self.stats.validation_failures(),
            ),
            ("rollbacks".into(), self.stats.rollbacks()),
        ];
        for (name, generation) in self.registry.generations() {
            fields.push((format!("generation.{name}"), generation));
        }
        fields
    }

    /// Rolls `dataset` back to its retained previous engine, counting the
    /// event and disarming any pending probation (a manual rollback
    /// supersedes the automatic one).  Returns the new registry generation.
    pub fn rollback(&self, dataset: &str) -> Result<u64, String> {
        match self.registry.rollback(dataset) {
            Ok((_, generation)) => {
                self.stats.rollbacks.fetch_add(1, Ordering::Relaxed);
                self.health.disarm(dataset);
                Ok(generation)
            }
            Err(e) => Err(format!("rollback failed: {e}")),
        }
    }

    /// Fires a probation-triggered rollback.  Losing the race to a manual
    /// `rollback` (the retained engine already consumed) is not an error —
    /// the dataset is already back on the old engine.
    pub(crate) fn trigger_auto_rollback(&self, health: &DatasetHealth) {
        if self.registry.rollback(health.name()).is_ok() {
            self.stats.rollbacks.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Performs one reload for either protocol and keeps the stats honest:
/// `path` may be a `.l2r` snapshot file or a model-store directory, and
/// `spec` (store reloads only) pins `latest` or an explicit generation
/// number.  A successful swap counts `reloads` and arms post-swap
/// probation; a validation rejection (dataset stamp or canary mismatch)
/// counts `validation_failures`.  Returns the registry generation now
/// serving, or the operator-facing error message.
pub(crate) fn do_reload(
    state: &ServerState,
    dataset: &str,
    path: &str,
    spec: Option<&str>,
) -> Result<u64, String> {
    let target = Path::new(path);
    let outcome = if spec.is_some() || target.is_dir() {
        let generation = match spec {
            None | Some("latest") => None,
            Some(raw) => match raw.parse::<u64>() {
                Ok(g) => Some(g),
                Err(_) => {
                    return Err(format!(
                        "reload generation `{raw}` is neither `latest` nor a number"
                    ))
                }
            },
        };
        ModelStore::open(target)
            .map_err(RegistryError::from)
            .and_then(|store| {
                state
                    .registry
                    .reload_from_store(dataset, &store, generation)
            })
            .map(|_| ())
    } else {
        state.registry.reload(dataset, target).map(|_| ())
    };
    match outcome {
        Ok(()) => {
            state.stats.reloads.fetch_add(1, Ordering::Relaxed);
            if state.registry.has_previous(dataset) {
                state.health.arm(dataset);
            }
            Ok(state.registry.generation(dataset).unwrap_or(0))
        }
        Err(e) => {
            if matches!(
                e,
                RegistryError::DatasetMismatch { .. } | RegistryError::CanaryMismatch { .. }
            ) {
                state
                    .stats
                    .validation_failures
                    .fetch_add(1, Ordering::Relaxed);
            }
            Err(format!("reload failed: {e}"))
        }
    }
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

/// A bound (but not yet serving) route server.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    cfg: ServerConfig,
    state: Arc<ServerState>,
}

/// A server running on a background thread; shut it down with
/// [`ServerHandle::shutdown`].
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServerState>,
    join: std::thread::JoinHandle<io::Result<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and prepares
    /// a pool of `workers` event loops over `registry` with default
    /// tunables.
    pub fn bind(addr: &str, workers: usize, registry: ModelRegistry) -> io::Result<Server> {
        Server::bind_with(
            addr,
            ServerConfig {
                workers,
                ..ServerConfig::default()
            },
            registry,
        )
    }

    /// Binds `addr` with explicit [`ServerConfig`] tunables.
    pub fn bind_with(addr: &str, cfg: ServerConfig, registry: ModelRegistry) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let cfg = ServerConfig {
            workers: cfg.workers.max(1),
            batch_max: cfg.batch_max.max(1),
            ..cfg
        };
        let state = Arc::new(ServerState::with_config(registry, &cfg));
        Ok(Server {
            listener,
            addr,
            cfg,
            state,
        })
    }

    /// The bound address (resolves the ephemeral port of `:0` binds).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared handle to the server state (registry, stats, shutdown flag).
    pub fn state(&self) -> Arc<ServerState> {
        Arc::clone(&self.state)
    }

    /// Serves until shutdown is requested (by the `shutdown` command or
    /// [`ServerState::request_shutdown`] + a wake-up connection).  Blocks
    /// the calling thread; the event loops run on scoped threads, watched
    /// by this thread: an event loop that dies to a panic (request-scoped
    /// isolation should make that impossible, but belt *and* braces) is
    /// respawned with a fresh listener clone, and the `workers_respawned`
    /// counter records every such resurrection.
    pub fn run(self) -> io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let state = &self.state;
        let cfg = &self.cfg;
        let listener = &self.listener;
        std::thread::scope(|scope| -> io::Result<()> {
            let mut workers = Vec::with_capacity(cfg.workers);
            for _ in 0..cfg.workers {
                let clone = listener.try_clone()?;
                workers.push(scope.spawn(move || reactor::event_loop(clone, state, cfg)));
            }
            while !workers.is_empty() {
                std::thread::sleep(WATCHDOG_TICK);
                let mut alive = Vec::with_capacity(workers.len());
                for worker in workers.drain(..) {
                    if !worker.is_finished() {
                        alive.push(worker);
                        continue;
                    }
                    // A clean return means the loop saw the shutdown flag
                    // and drained; a join error means it panicked.
                    if worker.join().is_err() && !state.shutdown_requested() {
                        state
                            .stats
                            .workers_respawned
                            .fetch_add(1, Ordering::Relaxed);
                        let clone = listener.try_clone()?;
                        alive.push(scope.spawn(move || reactor::event_loop(clone, state, cfg)));
                    }
                }
                workers = alive;
            }
            Ok(())
        })
    }

    /// Runs the server on a background thread, returning immediately.
    pub fn start(self) -> ServerHandle {
        let addr = self.addr;
        let state = Arc::clone(&self.state);
        let join = std::thread::spawn(move || self.run());
        ServerHandle { addr, state, join }
    }
}

impl ServerHandle {
    /// The address the server listens on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared handle to the server state.
    pub fn state(&self) -> Arc<ServerState> {
        Arc::clone(&self.state)
    }

    /// Requests shutdown, wakes the event loops and waits for the server
    /// thread to finish.
    pub fn shutdown(self) -> io::Result<()> {
        self.state.request_shutdown();
        wake_workers(self.addr, 1);
        match self.join.join() {
            Ok(result) => result,
            Err(payload) => Err(io::Error::other(format!(
                "server thread panicked: {}",
                panic_message(&payload)
            ))),
        }
    }
}

/// Best-effort extraction of a panic payload's message (panics carry
/// `&str` or `String` in practice; anything else gets a placeholder).
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "<non-string panic payload>"
    }
}

/// Wakes event loops parked in `poll` by making `n` throwaway connections
/// (the shared listener becoming readable wakes every loop).
fn wake_workers(addr: SocketAddr, n: usize) {
    for _ in 0..n {
        let _ = TcpStream::connect_timeout(&addr, Duration::from_millis(500));
    }
}

// ---------------------------------------------------------------------------
// ASCII protocol handlers
// ---------------------------------------------------------------------------

/// Formats a route answer exactly as the ASCII server sends it (`OK
/// <strategy> <n> <v0> …` / `NOROUTE`).  Public so clients and tests can
/// compare server responses against a locally computed
/// [`l2r_core::Engine::route`] answer for end-to-end bit-equivalence.
pub fn format_route_response(result: &Option<RouteResult>) -> String {
    match result {
        Some(r) => {
            let vertices = r.path.vertices();
            let mut out = String::with_capacity(16 + vertices.len() * 7);
            out.push_str("OK ");
            out.push_str(r.strategy.label());
            out.push(' ');
            out.push_str(&vertices.len().to_string());
            for v in vertices {
                out.push(' ');
                out.push_str(&v.0.to_string());
            }
            out
        }
        None => "NOROUTE".to_string(),
    }
}

/// Answers one protocol line using the caller's reusable scratch.  Returns
/// the response line (without trailing newline) and whether the server
/// should shut down.  Exposed for protocol unit tests; the event loop
/// routes well-formed `route` requests through admission + batching
/// instead, and everything else through this.
pub fn respond_line(
    state: &ServerState,
    scratch: &mut QueryScratch,
    request: &str,
) -> (String, bool) {
    let mut parts = request.split_whitespace();
    let command = parts.next().unwrap_or("");
    let response = match command {
        "ping" => "OK pong".to_string(),
        "route" => cmd_route(state, scratch, &mut parts),
        "route_batch" => cmd_route_batch(state, scratch, &mut parts),
        "info" => cmd_info(state, &mut parts),
        "stats" => format!("OK {}", state.stats_line()),
        "reload" => cmd_reload(state, &mut parts),
        "rollback" => cmd_rollback(state, &mut parts),
        "shutdown" => return ("OK bye".to_string(), true),
        other => {
            state.stats.errors.fetch_add(1, Ordering::Relaxed);
            format!(
                "ERR unknown command `{other}` \
                 (expected ping|route|route_batch|info|stats|reload|rollback|shutdown)"
            )
        }
    };
    (response, false)
}

fn err(state: &ServerState, message: String) -> String {
    state.stats.errors.fetch_add(1, Ordering::Relaxed);
    format!("ERR {message}")
}

fn parse_vertex(field: Option<&str>, what: &str) -> Result<VertexId, String> {
    match field {
        Some(s) => s
            .parse::<u32>()
            .map(VertexId)
            .map_err(|_| format!("{what} `{s}` is not a vertex id")),
        None => Err(format!("missing {what}")),
    }
}

fn cmd_route<'a>(
    state: &ServerState,
    scratch: &mut QueryScratch,
    parts: &mut impl Iterator<Item = &'a str>,
) -> String {
    let Some(dataset) = parts.next() else {
        return err(
            state,
            "usage: route <dataset> <src> <dst> [<deadline_ms>]".to_string(),
        );
    };
    let (s, d) = match (
        parse_vertex(parts.next(), "source"),
        parse_vertex(parts.next(), "destination"),
    ) {
        (Ok(s), Ok(d)) => (s, d),
        (Err(e), _) | (_, Err(e)) => return err(state, e),
    };
    let deadline_ms = match parts.next() {
        None => None,
        Some(raw) => match raw.parse::<u32>() {
            Ok(ms) => Some(ms),
            Err(_) => {
                return err(
                    state,
                    format!("deadline `{raw}` is not a millisecond count"),
                )
            }
        },
    };
    let Some(engine) = state.registry.get(dataset) else {
        return err(state, format!("unknown dataset `{dataset}`"));
    };
    // The inline path executes immediately, so only an already-spent
    // budget can expire here; the reactor's admission/batch path does the
    // full three-point enforcement.
    if deadline_ms == Some(0) {
        state
            .stats
            .deadline_exceeded
            .fetch_add(1, Ordering::Relaxed);
        return "ERR deadline exceeded".to_string();
    }
    let result = engine.route(scratch, s, d);
    state.stats.queries.fetch_add(1, Ordering::Relaxed);
    if result.is_some() {
        state.stats.answered.fetch_add(1, Ordering::Relaxed);
    }
    format_route_response(&result)
}

fn cmd_route_batch<'a>(
    state: &ServerState,
    scratch: &mut QueryScratch,
    parts: &mut impl Iterator<Item = &'a str>,
) -> String {
    let Some(dataset) = parts.next() else {
        return err(
            state,
            "usage: route_batch <dataset> <src,dst> [<src,dst> ...]".to_string(),
        );
    };
    let Some(engine) = state.registry.get(dataset) else {
        return err(state, format!("unknown dataset `{dataset}`"));
    };
    let mut pairs: Vec<(VertexId, VertexId)> = Vec::new();
    for item in parts {
        let Some((s, d)) = item.split_once(',') else {
            return err(state, format!("malformed pair `{item}` (want src,dst)"));
        };
        match (
            parse_vertex(Some(s), "source"),
            parse_vertex(Some(d), "destination"),
        ) {
            (Ok(s), Ok(d)) => pairs.push((s, d)),
            (Err(e), _) | (_, Err(e)) => return err(state, e),
        }
    }
    if pairs.is_empty() {
        return err(
            state,
            "route_batch needs at least one src,dst pair".to_string(),
        );
    }
    let mut out = String::new();
    let mut answered = 0u64;
    for &(s, d) in &pairs {
        let result = engine.route(scratch, s, d);
        out.push(' ');
        match &result {
            Some(r) => {
                answered += 1;
                out.push_str(r.strategy.label());
                out.push(':');
                out.push_str(&r.path.vertices().len().to_string());
            }
            None => out.push('-'),
        }
    }
    state
        .stats
        .queries
        .fetch_add(pairs.len() as u64, Ordering::Relaxed);
    state.stats.answered.fetch_add(answered, Ordering::Relaxed);
    format!("OK {} {}{}", pairs.len(), answered, out)
}

fn cmd_info<'a>(state: &ServerState, parts: &mut impl Iterator<Item = &'a str>) -> String {
    let Some(dataset) = parts.next() else {
        return err(state, "usage: info <dataset>".to_string());
    };
    let Some(engine) = state.registry.get(dataset) else {
        return err(state, format!("unknown dataset `{dataset}`"));
    };
    let generation = state.registry.generation(dataset).unwrap_or(0);
    format!(
        "OK dataset={dataset} vertices={} edges={} regions={} connectors={} generation={generation}",
        engine.network().num_vertices(),
        engine.network().num_edges(),
        engine.region_graph().num_regions(),
        engine.num_connectors(),
    )
}

fn cmd_reload<'a>(state: &ServerState, parts: &mut impl Iterator<Item = &'a str>) -> String {
    let (Some(dataset), Some(path)) = (parts.next(), parts.next()) else {
        return err(
            state,
            "usage: reload <dataset> <path> [latest|<generation>]".to_string(),
        );
    };
    let spec = parts.next();
    match do_reload(state, dataset, path, spec) {
        Ok(generation) => format!("OK dataset={dataset} generation={generation}"),
        // The registry kept the previous engine; tell the operator why the
        // swap did not happen.
        Err(message) => err(state, message),
    }
}

fn cmd_rollback<'a>(state: &ServerState, parts: &mut impl Iterator<Item = &'a str>) -> String {
    let Some(dataset) = parts.next() else {
        return err(state, "usage: rollback <dataset>".to_string());
    };
    match state.rollback(dataset) {
        Ok(generation) => format!("OK dataset={dataset} generation={generation}"),
        Err(message) => err(state, message),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use l2r_core::{apply_preferences_to_b_edges, save_model, Engine, L2r, L2rConfig};
    use l2r_datagen::{
        generate_network, generate_workload, SyntheticNetworkConfig, WorkloadConfig,
    };
    use l2r_region_graph::{bottom_up_clustering, RegionGraph, TrajectoryGraph};

    fn tiny_engine() -> Engine {
        let syn = generate_network(&SyntheticNetworkConfig::tiny());
        let wl = generate_workload(&syn, &WorkloadConfig::tiny(250));
        let tg = TrajectoryGraph::build(&syn.net, &wl.trajectories);
        let clusters = bottom_up_clustering(&tg);
        let mut rg = RegionGraph::build(&syn.net, &clusters, &wl.trajectories, 2);
        apply_preferences_to_b_edges(&syn.net, &mut rg, &std::collections::HashMap::new(), 2);
        Engine::from_graphs(&syn.net, &rg)
    }

    fn state_with(name: &str) -> ServerState {
        let registry = ModelRegistry::new();
        registry.insert(name, tiny_engine());
        ServerState::new(registry)
    }

    #[test]
    fn protocol_answers_ping_stats_info() {
        let state = state_with("D1");
        let mut scratch = QueryScratch::new();
        assert_eq!(respond_line(&state, &mut scratch, "ping").0, "OK pong");
        let (stats, _) = respond_line(&state, &mut scratch, "stats");
        assert!(stats.starts_with("OK uptime_ms="), "{stats}");
        assert!(stats.contains("shed=0"), "{stats}");
        assert!(stats.contains("batches=0"), "{stats}");
        assert!(stats.contains("datasets=D1"), "{stats}");
        let (info, _) = respond_line(&state, &mut scratch, "info D1");
        assert!(
            info.contains("vertices=") && info.contains("generation=1"),
            "{info}"
        );
    }

    #[test]
    fn protocol_routes_bit_identically_to_the_engine() {
        let state = state_with("D1");
        let engine = state.registry().get("D1").unwrap();
        let mut scratch = l2r_core::QueryScratch::new();
        let mut proto_scratch = QueryScratch::new();
        let n = engine.network().num_vertices() as u32;
        let mut compared = 0usize;
        for i in (0..n).step_by(7) {
            let (s, d) = (i, (i * 13 + 5) % n);
            let expected =
                format_route_response(&engine.route(&mut scratch, VertexId(s), VertexId(d)));
            let (got, _) = respond_line(&state, &mut proto_scratch, &format!("route D1 {s} {d}"));
            assert_eq!(got, expected, "query {s} -> {d}");
            compared += 1;
        }
        assert!(compared > 10);
        assert_eq!(state.stats().queries(), compared as u64);
    }

    #[test]
    fn protocol_batch_counts_and_items_line_up() {
        let state = state_with("D1");
        let mut scratch = QueryScratch::new();
        let (resp, _) = respond_line(&state, &mut scratch, "route_batch D1 0,1 1,2 2,3");
        assert!(resp.starts_with("OK 3 "), "{resp}");
        let items: Vec<&str> = resp.split_whitespace().skip(3).collect();
        assert_eq!(items.len(), 3, "{resp}");
        assert_eq!(state.stats().queries(), 3);
    }

    #[test]
    fn protocol_rejects_malformed_requests() {
        let state = state_with("D1");
        let mut scratch = QueryScratch::new();
        for bad in [
            "route",
            "route D1",
            "route D1 0",
            "route D1 zero one",
            "route nosuch 0 1",
            "route_batch D1",
            "route_batch D1 0:1",
            "info nosuch",
            "reload D1",
            "rollback",
            "rollback nosuch",
            "frobnicate",
        ] {
            let (resp, shutdown) = respond_line(&state, &mut scratch, bad);
            assert!(resp.starts_with("ERR"), "`{bad}` -> {resp}");
            assert!(!shutdown);
        }
        assert_eq!(state.stats().errors(), 12);
        assert_eq!(state.stats().queries(), 0);
    }

    #[test]
    fn protocol_shutdown_flags_the_server() {
        let state = state_with("D1");
        let mut scratch = QueryScratch::new();
        let (resp, shutdown) = respond_line(&state, &mut scratch, "shutdown");
        assert_eq!(resp, "OK bye");
        assert!(shutdown);
    }

    #[test]
    fn stats_counters_are_safe_under_concurrent_hammering() {
        // The shared counters are updated from every event-loop thread;
        // hammer them through the protocol layer from many threads and
        // assert nothing is lost.
        let state = state_with("D1");
        let threads = 8;
        let per_thread = 200;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let state = &state;
                scope.spawn(move || {
                    let mut scratch = QueryScratch::new();
                    for i in 0..per_thread {
                        let q = (t * per_thread + i) as u32;
                        respond_line(state, &mut scratch, &format!("route D1 {q} {}", q + 1));
                        respond_line(state, &mut scratch, "frobnicate");
                    }
                });
            }
        });
        let total = (threads * per_thread) as u64;
        assert_eq!(state.stats().queries(), total);
        assert_eq!(state.stats().errors(), total);
    }

    #[test]
    fn tcp_server_serves_reloads_and_shuts_down() {
        // One real end-to-end pass over TCP: fit a tiny model, snapshot it,
        // serve it, reload it, load-generate against it, shut down.
        let syn = generate_network(&SyntheticNetworkConfig::tiny());
        let wl = generate_workload(&syn, &WorkloadConfig::tiny(250));
        let (train, _) = wl.temporal_split(0.8);
        let model = L2r::fit(&syn.net, &train, L2rConfig::fast()).unwrap();
        let path = std::env::temp_dir().join(format!("l2r-serve-test-{}.l2r", std::process::id()));
        save_model(&model, &path).unwrap();

        let registry = ModelRegistry::new();
        registry.insert("tiny", model.into_engine());
        let server = Server::bind("127.0.0.1:0", 2, registry).unwrap();
        let addr = server.local_addr();
        let state = server.state();
        let handle = server.start();

        let mut client = Client::connect(addr).unwrap();
        assert_eq!(client.request("ping").unwrap(), "OK pong");
        let resp = client.request("route tiny 0 5").unwrap();
        assert!(resp.starts_with("OK ") || resp == "NOROUTE", "{resp}");
        let resp = client
            .request(&format!("reload tiny {}", path.display()))
            .unwrap();
        assert!(resp.contains("generation=2"), "{resp}");
        // The event loops multiplex: our idle keep-alive connection must
        // not cost the load generator anything.

        let report = run_load(
            addr,
            &LoadConfig {
                dataset: "tiny".to_string(),
                protocol: Protocol::Ascii,
                connections: 2,
                pipeline: 1,
                requests_per_conn: 50,
                seed: 7,
                ..LoadConfig::default()
            },
        )
        .unwrap();
        assert_eq!(report.requests, 100);
        assert_eq!(report.errors, 0);
        assert!(report.qps > 0.0);
        assert!(report.p99_us >= report.p50_us);

        // The original connection is still serving after the load run.
        assert_eq!(client.request("ping").unwrap(), "OK pong");
        assert_eq!(client.request("shutdown").unwrap(), "OK bye");
        handle.shutdown().unwrap();
        std::fs::remove_file(&path).ok();
        assert!(state.stats().queries() >= 101);
        assert!(
            state.scratches_created() <= 2,
            "2 workers must never need more than 2 scratches, created {}",
            state.scratches_created()
        );
    }

    #[test]
    fn smoke_passes_against_a_saved_snapshot() {
        let syn = generate_network(&SyntheticNetworkConfig::tiny());
        let wl = generate_workload(&syn, &WorkloadConfig::tiny(250));
        let (train, _) = wl.temporal_split(0.8);
        let model = L2r::fit(&syn.net, &train, L2rConfig::fast()).unwrap();
        let path = std::env::temp_dir().join(format!("l2r-serve-smoke-{}.l2r", std::process::id()));
        save_model(&model, &path).unwrap();
        let transcript = run_smoke(&[("tiny".to_string(), path.clone())]).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(transcript.contains("clean shutdown"), "{transcript}");
        assert!(transcript.contains("bit-identically"), "{transcript}");
        assert!(transcript.contains("binary:"), "{transcript}");
    }
}
