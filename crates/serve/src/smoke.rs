//! The self-contained end-to-end smoke check used by CI.
//!
//! Starts a real server on an ephemeral loopback port, exercises **both**
//! wire protocols through real TCP connections — verifying `route` answers
//! are bit-identical to a locally compiled [`Engine`] and that pipelined
//! binary responses come back in request order — performs hot-reloads over
//! each protocol (plus the failure path), optionally runs a short
//! many-connection load sweep, and shuts the server down cleanly.

use std::path::PathBuf;

use l2r_core::{Engine, ModelRegistry, ModelStore};
use l2r_road_network::VertexId;

use crate::client::{route_reply_to_line, BinClient, Client};
use crate::load::{run_load, LoadConfig, Protocol};
use crate::{format_route_response, Server};

/// Builds a registry by loading each `name=path` model spec.  A path that
/// is a directory is opened as a model store and its newest durable
/// generation is served; a file is loaded as a plain snapshot.
pub fn registry_from_specs(specs: &[(String, PathBuf)]) -> Result<ModelRegistry, String> {
    if specs.is_empty() {
        return Err("no --model NAME=PATH specs given".to_string());
    }
    let registry = ModelRegistry::new();
    for (name, path) in specs {
        let engine = if path.is_dir() {
            let store = ModelStore::open(path)
                .map_err(|e| format!("failed to open store `{name}` at {}: {e}", path.display()))?;
            let (_, snapshot) = store.load_latest().map_err(|e| {
                format!("failed to load `{name}` from store {}: {e}", path.display())
            })?;
            snapshot.model.into_engine()
        } else {
            Engine::load(path)
                .map_err(|e| format!("failed to load `{name}` from {}: {e}", path.display()))?
        };
        registry.insert(name, engine);
    }
    Ok(registry)
}

/// [`run_smoke_with`] without the load sweep.
pub fn run_smoke(specs: &[(String, PathBuf)]) -> Result<String, String> {
    run_smoke_with(specs, None)
}

/// End-to-end smoke check (used by CI): starts a server over the given
/// `name=path` models, exercises every command of both the ASCII and the
/// binary protocol — verifying `route` answers are **bit-identical** to a
/// locally compiled [`Engine`] and that pipelined responses preserve
/// request order — performs hot-reloads (including the failure path,
/// which must keep the old engine serving), optionally hammers the server
/// with a short binary load sweep over `sweep_connections` connections,
/// and shuts down cleanly.  Returns a human-readable transcript on
/// success.
pub fn run_smoke_with(
    specs: &[(String, PathBuf)],
    sweep_connections: Option<usize>,
) -> Result<String, String> {
    let mut transcript = String::new();
    let mut note = |line: String| {
        transcript.push_str(&line);
        transcript.push('\n');
    };

    let registry = registry_from_specs(specs)?;
    let (name, path) = &specs[0];
    // An independently compiled engine: the reference for bit-equivalence.
    let reference =
        Engine::load(path).map_err(|e| format!("reference load of {}: {e}", path.display()))?;

    let server =
        Server::bind("127.0.0.1:0", 2, registry).map_err(|e| format!("bind failed: {e}"))?;
    let addr = server.local_addr();
    let state = server.state();
    let handle = server.start();
    note(format!(
        "server listening on {addr} ({} datasets)",
        specs.len()
    ));

    let run = || -> Result<Vec<String>, String> {
        let mut notes = Vec::new();
        let mut client = Client::connect(addr).map_err(|e| format!("connect failed: {e}"))?;
        let mut expect = |request: &str, check: &dyn Fn(&str) -> bool| -> Result<String, String> {
            let response = client
                .request(request)
                .map_err(|e| format!("`{request}` failed: {e}"))?;
            if !check(&response) {
                return Err(format!("`{request}` answered unexpectedly: {response}"));
            }
            Ok(response)
        };

        expect("ping", &|r| r == "OK pong")?;
        let info = expect(&format!("info {name}"), &|r| r.starts_with("OK "))?;
        notes.push(format!("info: {info}"));
        let vertices = info
            .split_whitespace()
            .find_map(|f| {
                f.strip_prefix("vertices=")
                    .and_then(|v| v.parse::<u32>().ok())
            })
            .ok_or_else(|| format!("info response lacks vertices=: {info}"))?;
        if vertices < 2 {
            return Err("dataset has fewer than 2 vertices".to_string());
        }

        // Bit-equivalence: the TCP answer must be byte-for-byte the local
        // engine's answer run through the shared formatter.
        let mut scratch = l2r_core::QueryScratch::new();
        let mut compared = 0usize;
        for i in 0..25u32 {
            let s = (i * 37) % vertices;
            let d = (i * 91 + 1) % vertices;
            if s == d {
                continue;
            }
            let expected =
                format_route_response(&reference.route(&mut scratch, VertexId(s), VertexId(d)));
            expect(&format!("route {name} {s} {d}"), &|r| r == expected)?;
            compared += 1;
        }
        notes.push(format!(
            "route: {compared} queries answered bit-identically to the local engine"
        ));

        let batch = expect(&format!("route_batch {name} 0,1 1,0 0,1"), &|r| {
            r.starts_with("OK 3 ")
        })?;
        notes.push(format!("route_batch: {batch}"));

        // Hot-reload from the same snapshot: generation bumps, serving keeps
        // answering identically.
        expect(&format!("reload {name} {}", path.display()), &|r| {
            r.starts_with("OK ") && r.contains("generation=2")
        })?;
        let expected = format_route_response(&reference.route(
            &mut scratch,
            VertexId(0),
            VertexId(1 % vertices),
        ));
        expect(&format!("route {name} 0 {}", 1 % vertices), &|r| {
            r == expected
        })?;
        notes.push("reload: generation=2, post-reload answer identical".to_string());

        // Failure paths: the old engine must keep serving.
        expect(
            &format!("reload {name} {}.does-not-exist", path.display()),
            &|r| r.starts_with("ERR reload failed"),
        )?;
        expect(&format!("route {name} 0 {}", 1 % vertices), &|r| {
            r == expected
        })?;
        expect("route nosuchdataset 0 1", &|r| {
            r.starts_with("ERR unknown dataset")
        })?;
        expect("frobnicate", &|r| r.starts_with("ERR unknown command"))?;
        notes.push("failure paths: bad reload kept the old engine serving".to_string());

        // --- Binary protocol, over its own connection -------------------
        let mut bin =
            BinClient::connect(addr).map_err(|e| format!("binary connect failed: {e}"))?;
        bin.ping().map_err(|e| format!("binary ping failed: {e}"))?;
        let binfo = bin
            .info(name)
            .map_err(|e| format!("binary info failed: {e}"))?;
        if binfo.vertices != vertices as u64 || binfo.generation != 2 {
            return Err(format!("binary info disagrees with ASCII info: {binfo:?}"));
        }

        // Pipelined routes: answers must be bit-identical to the local
        // engine AND come back in request order.
        let mut pairs = Vec::new();
        for i in 0..16u32 {
            let s = (i * 53 + 2) % vertices;
            let d = (i * 29 + 7) % vertices;
            if s != d {
                pairs.push((s, d));
            }
        }
        let replies = bin
            .route_pipelined(name, &pairs, 8)
            .map_err(|e| format!("binary pipelined route failed: {e}"))?;
        for (&(s, d), reply) in pairs.iter().zip(replies.iter()) {
            let expected =
                format_route_response(&reference.route(&mut scratch, VertexId(s), VertexId(d)));
            let got = route_reply_to_line(reply);
            if got != expected {
                return Err(format!(
                    "binary route {s}->{d} answered `{got}`, expected `{expected}` \
                     (out-of-order or non-identical pipelined response)"
                ));
            }
        }
        notes.push(format!(
            "binary: {} pipelined routes in order, bit-identical across protocols",
            pairs.len()
        ));

        let items = bin
            .route_batch(name, &[(0, 1), (1, 0), (0, 1)])
            .map_err(|e| format!("binary route_batch failed: {e}"))?;
        if items.len() != 3 {
            return Err(format!("binary route_batch returned {} items", items.len()));
        }
        let stats_line = bin
            .stats()
            .map_err(|e| format!("binary stats failed: {e}"))?;
        if !stats_line.starts_with("uptime_ms=") {
            return Err(format!("unexpected binary stats line: {stats_line}"));
        }
        if bin
            .reload(name, &format!("{}.does-not-exist", path.display()))
            .is_ok()
        {
            return Err("binary reload of a missing snapshot succeeded".to_string());
        }
        let generation = bin
            .reload(name, &path.display().to_string())
            .map_err(|e| format!("binary reload failed: {e}"))?;
        if generation != 3 {
            return Err(format!("binary reload produced generation {generation}"));
        }
        notes.push("binary: route_batch, stats, reload + failure path OK".to_string());
        drop(bin);

        // --- Optional short concurrency sweep ---------------------------
        if let Some(connections) = sweep_connections {
            let connections = connections.max(1);
            let report = run_load(
                addr,
                &LoadConfig {
                    dataset: name.clone(),
                    protocol: Protocol::Binary,
                    connections,
                    pipeline: 16,
                    requests_per_conn: (8192 / connections).max(4),
                    seed: 0x5E17_1E55,
                    ..LoadConfig::default()
                },
            )
            .map_err(|e| format!("{connections}-connection sweep failed: {e}"))?;
            if report.errors > 0 {
                return Err(format!(
                    "{connections}-connection sweep saw {} errors",
                    report.errors
                ));
            }
            notes.push(format!(
                "sweep: {} binary requests over {connections} connections, \
                 {:.0} qps, p99 {:.0} µs, {} busy retries, 0 errors",
                report.requests, report.qps, report.p99_us, report.busy_retries
            ));
        }

        let stats = expect("stats", &|r| r.starts_with("OK uptime_ms="))?;
        notes.push(format!("stats: {stats}"));

        expect("shutdown", &|r| r == "OK bye")?;
        Ok(notes)
    };

    match run() {
        Ok(notes) => {
            for n in notes {
                note(n);
            }
        }
        Err(e) => {
            // Best-effort teardown so the caller is not left with a stray
            // listener, then report the protocol failure.
            let _ = handle.shutdown();
            return Err(e);
        }
    }

    handle
        .shutdown()
        .map_err(|e| format!("server did not shut down cleanly: {e}"))?;
    if state.scratches_created() > 2 {
        return Err(format!(
            "scratch pool created {} scratches for 2 workers — serving allocates",
            state.scratches_created()
        ));
    }
    note(format!(
        "clean shutdown after {} queries ({} scratches for 2 workers)",
        state.stats().queries(),
        state.scratches_created()
    ));
    Ok(transcript)
}
