//! The load generator: many concurrent connections, either protocol,
//! windowed pipelining, `BUSY`-aware retries.
//!
//! Connections are distributed over a small pool of driver threads.  Each
//! thread runs its connections **bulk-synchronously**: a write phase puts a
//! window of requests in flight on *every* connection, then a read phase
//! drains the responses — so all of the run's connections genuinely have
//! requests outstanding at the same time even though each driver uses
//! plain blocking sockets.  A `BUSY` reply re-queues its request (counted
//! in [`LoadReport::busy_retries`]) until it is served: a run never loses
//! a request to load-shedding.

use std::collections::VecDeque;
use std::io;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

use crate::client::{BinClient, Client, RetryPolicy};
use crate::frame::RouteReply;

/// Driver threads the load generator multiplexes its connections over.
const LOAD_DRIVER_THREADS: usize = 8;

/// How long the load generator keeps retrying `connect` while the server's
/// accept backlog is saturated (thousands of connections arrive faster than
/// one accept pass).
const CONNECT_RETRY: Duration = Duration::from_secs(10);

/// Which wire protocol a load run speaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protocol {
    /// The legacy ASCII line protocol.
    Ascii,
    /// The length-prefixed binary frame protocol.
    Binary,
}

impl Protocol {
    /// Stable lowercase name (used in reports and CLI flags).
    pub fn label(self) -> &'static str {
        match self {
            Protocol::Ascii => "ascii",
            Protocol::Binary => "binary",
        }
    }
}

impl std::str::FromStr for Protocol {
    type Err = String;

    fn from_str(s: &str) -> Result<Protocol, String> {
        match s {
            "ascii" => Ok(Protocol::Ascii),
            "binary" => Ok(Protocol::Binary),
            other => Err(format!("unknown protocol `{other}` (want ascii|binary)")),
        }
    }
}

/// Load-generator parameters.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Dataset name to query.
    pub dataset: String,
    /// Wire protocol to speak.
    pub protocol: Protocol,
    /// Concurrent client connections.
    pub connections: usize,
    /// Requests kept in flight per connection (1 = strict request/response).
    pub pipeline: usize,
    /// `route` requests each connection completes.
    pub requests_per_conn: usize,
    /// Seed of the per-connection query generator.
    pub seed: u64,
    /// Make every `slow_every`-th connection a *slow client*: strict
    /// request/response (no pipelining), each request written in two
    /// fragments with a short stall between them.  `0` disables.
    pub slow_every: usize,
    /// Socket read timeout of every connection (`None` blocks forever).
    pub read_timeout: Option<Duration>,
}

impl Default for LoadConfig {
    fn default() -> LoadConfig {
        LoadConfig {
            dataset: "D1".to_string(),
            protocol: Protocol::Ascii,
            connections: 2,
            pipeline: 1,
            requests_per_conn: 1000,
            seed: 0x51ED_5EED,
            slow_every: 0,
            read_timeout: Some(crate::client::DEFAULT_CLIENT_READ_TIMEOUT),
        }
    }
}

/// Aggregate result of a load-generator run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Total `route` requests completed (excluding `BUSY` retries).
    pub requests: u64,
    /// Requests answered with a route.
    pub answered: u64,
    /// Requests answered `NOROUTE`.
    pub noroutes: u64,
    /// Requests answered `ERR` (must be 0 on a healthy run), excluding the
    /// deadline and internal-error taxa counted separately below.
    pub errors: u64,
    /// Requests answered "deadline exceeded" (`ERR deadline …` on the
    /// ASCII protocol, the dedicated status on the binary protocol).
    pub deadline_exceeded: u64,
    /// Requests answered with an internal server error — an isolated
    /// handler panic surfaced as `ERR internal …`.
    pub internal_errors: u64,
    /// `BUSY` replies received; each one was retried until served.
    pub busy_retries: u64,
    /// Wall time of the whole run (excluding the connect phase).
    pub wall: Duration,
    /// Aggregate completed requests per second across all connections.
    pub qps: f64,
    /// Mean per-request latency, µs (send to response, under pipelining).
    pub mean_us: f64,
    /// Median latency (µs).
    pub p50_us: f64,
    /// 99th-percentile latency (µs).
    pub p99_us: f64,
}

/// Nearest-rank percentile of an ascending-sorted slice.
pub(crate) fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// A tiny deterministic generator (LCG) for query endpoints — the load tool
/// must stay dependency-free.
pub(crate) struct Lcg(pub u64);

impl Lcg {
    pub(crate) fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

/// A connection's pre-drawn query list plus its slow-client flag.
type ConnPlan = (VecDeque<(u32, u32)>, bool);

/// One driven connection: either protocol behind a common send/receive
/// surface.
enum Wire {
    Ascii(Client),
    Binary(BinClient),
}

struct DrivenConn {
    wire: Wire,
    dataset: String,
    /// A slow client: strict request/response, fragmented stalling writes.
    slow: bool,
    /// Queries not yet (re)issued.
    to_send: VecDeque<(u32, u32)>,
    /// Issued queries awaiting their in-order response, with send times.
    inflight: VecDeque<((u32, u32), Instant)>,
}

impl DrivenConn {
    fn connect(
        addr: SocketAddr,
        protocol: Protocol,
        dataset: &str,
        queries: VecDeque<(u32, u32)>,
        read_timeout: Option<Duration>,
        slow: bool,
    ) -> io::Result<DrivenConn> {
        // The server accepts in event-loop-sized gulps: a burst of
        // thousands of connects can transiently overflow the listener
        // backlog, so refused connections retry instead of failing the run.
        let deadline = Instant::now() + CONNECT_RETRY;
        let wire = loop {
            let attempt = match protocol {
                Protocol::Ascii => Client::connect_with(addr, read_timeout).map(Wire::Ascii),
                Protocol::Binary => BinClient::connect_with(addr, read_timeout).map(Wire::Binary),
            };
            match attempt {
                Ok(wire) => break wire,
                Err(e) => {
                    if Instant::now() >= deadline {
                        return Err(e);
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
            }
        };
        Ok(DrivenConn {
            wire,
            dataset: dataset.to_string(),
            slow,
            to_send: queries,
            inflight: VecDeque::new(),
        })
    }

    fn done(&self) -> bool {
        self.to_send.is_empty() && self.inflight.is_empty()
    }

    /// Puts up to `pipeline` requests in flight (one buffered write).  A
    /// slow connection ignores the window (strict request/response) and
    /// writes each request in two fragments with a stall between them —
    /// the slow-loris shape the server's hygiene pass must tolerate for
    /// well-behaved-but-slow peers.
    fn write_burst(&mut self, pipeline: usize, scratch: &mut Vec<u8>) -> io::Result<()> {
        scratch.clear();
        let pipeline = if self.slow { 1 } else { pipeline };
        let now = Instant::now();
        while self.inflight.len() < pipeline {
            let Some((s, d)) = self.to_send.pop_front() else {
                break;
            };
            match &self.wire {
                Wire::Ascii(_) => {
                    scratch
                        .extend_from_slice(format!("route {} {s} {d}\n", self.dataset).as_bytes());
                }
                Wire::Binary(_) => {
                    crate::frame::encode_route(scratch, &self.dataset, s, d);
                }
            }
            self.inflight.push_back(((s, d), now));
        }
        if scratch.is_empty() {
            return Ok(());
        }
        if self.slow && scratch.len() >= 2 {
            let split = scratch.len() / 2;
            let (head, tail) = (scratch[..split].to_vec(), scratch[split..].to_vec());
            match &mut self.wire {
                Wire::Ascii(c) => {
                    c.send_bytes(&head)?;
                    std::thread::sleep(Duration::from_millis(1));
                    c.send_bytes(&tail)?;
                }
                Wire::Binary(c) => {
                    c.send_raw(&head)?;
                    std::thread::sleep(Duration::from_millis(1));
                    c.send_raw(&tail)?;
                }
            }
            return Ok(());
        }
        match &mut self.wire {
            Wire::Ascii(c) => {
                c.send_bytes(scratch)?;
            }
            Wire::Binary(c) => c.send_raw(scratch)?,
        }
        Ok(())
    }

    /// Reads every in-flight response, classifying each; `BUSY` replies
    /// re-queue their request.
    fn read_all(&mut self, out: &mut DriverOutcome) -> io::Result<()> {
        while let Some((pair, sent_at)) = self.inflight.pop_front() {
            enum Kind {
                Answered,
                NoRoute,
                Busy,
                Deadline,
                Internal,
                Error,
            }
            let kind = match &mut self.wire {
                Wire::Ascii(c) => {
                    let line = c.read_line()?;
                    if line.starts_with("OK") {
                        Kind::Answered
                    } else if line.starts_with("NOROUTE") {
                        Kind::NoRoute
                    } else if line.starts_with("BUSY") {
                        Kind::Busy
                    } else if line.starts_with("ERR deadline") {
                        Kind::Deadline
                    } else if line.starts_with("ERR internal") {
                        Kind::Internal
                    } else {
                        Kind::Error
                    }
                }
                Wire::Binary(c) => {
                    let (status, payload) = c.read_frame()?;
                    match crate::frame::decode_route_reply(status, &payload) {
                        Ok(RouteReply::Route { .. }) => Kind::Answered,
                        Ok(RouteReply::NoRoute) => Kind::NoRoute,
                        Ok(RouteReply::Busy) => Kind::Busy,
                        Ok(RouteReply::DeadlineExceeded) => Kind::Deadline,
                        Ok(RouteReply::Err(message)) if message.starts_with("internal") => {
                            Kind::Internal
                        }
                        Ok(RouteReply::Err(_)) | Err(_) => Kind::Error,
                    }
                }
            };
            match kind {
                Kind::Busy => {
                    out.busy_retries += 1;
                    self.to_send.push_back(pair);
                }
                kind => {
                    out.latencies_us.push(sent_at.elapsed().as_secs_f64() * 1e6);
                    match kind {
                        Kind::Answered => out.answered += 1,
                        Kind::NoRoute => out.noroutes += 1,
                        Kind::Deadline => out.deadline_exceeded += 1,
                        Kind::Internal => out.internal_errors += 1,
                        _ => out.errors += 1,
                    }
                }
            }
        }
        Ok(())
    }
}

#[derive(Default)]
struct DriverOutcome {
    latencies_us: Vec<f64>,
    answered: u64,
    noroutes: u64,
    errors: u64,
    deadline_exceeded: u64,
    internal_errors: u64,
    busy_retries: u64,
    error: Option<io::Error>,
}

/// Hammers a running server with `route` requests from
/// [`LoadConfig::connections`] concurrent connections speaking
/// [`LoadConfig::protocol`], keeping up to [`LoadConfig::pipeline`]
/// requests in flight per connection, and aggregates latency and
/// throughput.  Query endpoints are drawn deterministically (per-connection
/// seeded LCG) over the dataset's vertex range, discovered via `info`.
pub fn run_load(addr: SocketAddr, cfg: &LoadConfig) -> io::Result<LoadReport> {
    let connections = cfg.connections.max(1);
    let pipeline = cfg.pipeline.max(1);
    // Discover the vertex range once over a short-lived ASCII probe (the
    // server auto-detects protocols per connection, so this works no matter
    // what the measured connections will speak).
    let vertices = {
        let mut probe = Client::connect(addr)?;
        let info = probe.request(&format!("info {}", cfg.dataset))?;
        info.split_whitespace()
            .find_map(|f| {
                f.strip_prefix("vertices=")
                    .and_then(|v| v.parse::<u64>().ok())
            })
            .ok_or_else(|| io::Error::other(format!("unusable info response: {info}")))?
    };
    if vertices < 2 {
        return Err(io::Error::other("dataset has fewer than 2 vertices"));
    }

    // Pre-draw every connection's query list so the run is deterministic
    // regardless of how connections land on driver threads.  Every
    // `slow_every`-th connection is marked slow.
    let mut plans: Vec<ConnPlan> = Vec::with_capacity(connections);
    for conn in 0..connections {
        let seed = cfg.seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(conn as u64 + 1));
        let mut rng = Lcg(seed);
        let mut queries = VecDeque::with_capacity(cfg.requests_per_conn);
        for _ in 0..cfg.requests_per_conn {
            let s = rng.next() % vertices;
            let mut d = rng.next() % vertices;
            if d == s {
                d = (d + 1) % vertices;
            }
            queries.push_back((s as u32, d as u32));
        }
        let slow = cfg.slow_every > 0 && (conn + 1) % cfg.slow_every == 0;
        plans.push((queries, slow));
    }

    // Deal connections round-robin over the driver threads.
    let threads = connections.clamp(1, LOAD_DRIVER_THREADS);
    let mut per_thread: Vec<Vec<ConnPlan>> = (0..threads).map(|_| Vec::new()).collect();
    for (conn, plan) in plans.into_iter().enumerate() {
        per_thread[conn % threads].push(plan);
    }

    // The connect burst is *setup*, not load: a kernel SYN retransmit
    // (backlog overflow under thousands of racing connects) costs a full
    // second, which would otherwise swamp the measured window.  Every
    // driver connects first, then all are released through a barrier and
    // the clock starts.
    let start_gate = std::sync::Barrier::new(threads + 1);
    let (outcomes, wall) = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for (driver, plans) in per_thread.into_iter().enumerate() {
            let dataset = cfg.dataset.clone();
            let protocol = cfg.protocol;
            let read_timeout = cfg.read_timeout;
            let mut backoff = RetryPolicy {
                seed: cfg.seed ^ (driver as u64).wrapping_mul(0xD1B5_4A32_D192_ED03),
                ..RetryPolicy::default()
            };
            let start_gate = &start_gate;
            handles.push(scope.spawn(move || {
                let mut out = DriverOutcome::default();
                let mut conns = Vec::with_capacity(plans.len());
                for (plan, slow) in plans {
                    match DrivenConn::connect(addr, protocol, &dataset, plan, read_timeout, slow) {
                        Ok(c) => conns.push(c),
                        Err(e) => {
                            out.error = Some(e);
                            start_gate.wait();
                            return out;
                        }
                    }
                }
                start_gate.wait();
                let mut scratch = Vec::new();
                // Bulk-synchronous driving: first arm *every* connection
                // with a window of requests, then drain them — so the
                // server faces all of this thread's connections at once.
                // Rounds that only collect `BUSY` push-back sleep a
                // jittered, growing backoff instead of hammering the
                // admission queue.
                let mut busy_rounds = 0u32;
                while conns.iter().any(|c| !c.done()) {
                    for conn in conns.iter_mut() {
                        if let Err(e) = conn.write_burst(pipeline, &mut scratch) {
                            out.error = Some(e);
                            return out;
                        }
                    }
                    let done_before = out.latencies_us.len();
                    for conn in conns.iter_mut() {
                        if let Err(e) = conn.read_all(&mut out) {
                            out.error = Some(e);
                            return out;
                        }
                    }
                    if out.latencies_us.len() == done_before {
                        std::thread::sleep(backoff.backoff(busy_rounds.min(4)));
                        busy_rounds += 1;
                    } else {
                        busy_rounds = 0;
                    }
                }
                out
            }));
        }
        start_gate.wait();
        let t0 = Instant::now();
        let outcomes: Vec<DriverOutcome> = handles
            .into_iter()
            .map(|h| h.join().expect("load driver thread"))
            .collect();
        (outcomes, t0.elapsed())
    });

    let mut latencies: Vec<f64> = Vec::new();
    let (mut answered, mut noroutes, mut errors, mut busy_retries) = (0u64, 0u64, 0u64, 0u64);
    let (mut deadline_exceeded, mut internal_errors) = (0u64, 0u64);
    for mut outcome in outcomes {
        if let Some(e) = outcome.error.take() {
            return Err(e);
        }
        latencies.append(&mut outcome.latencies_us);
        answered += outcome.answered;
        noroutes += outcome.noroutes;
        errors += outcome.errors;
        deadline_exceeded += outcome.deadline_exceeded;
        internal_errors += outcome.internal_errors;
        busy_retries += outcome.busy_retries;
    }
    latencies.sort_by(|a, b| a.total_cmp(b));
    let requests = latencies.len() as u64;
    let mean_us = if latencies.is_empty() {
        0.0
    } else {
        latencies.iter().sum::<f64>() / latencies.len() as f64
    };
    Ok(LoadReport {
        requests,
        answered,
        noroutes,
        errors,
        deadline_exceeded,
        internal_errors,
        busy_retries,
        wall,
        qps: if wall.as_secs_f64() > 0.0 {
            requests as f64 / wall.as_secs_f64()
        } else {
            0.0
        },
        mean_us,
        p50_us: percentile(&latencies, 50.0),
        p99_us: percentile(&latencies, 99.0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank() {
        let sorted: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&sorted, 50.0), 50.0);
        assert_eq!(percentile(&sorted, 99.0), 99.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn lcg_is_deterministic_and_spreads() {
        let mut a = Lcg(42);
        let mut b = Lcg(42);
        let xs: Vec<u64> = (0..8).map(|_| a.next()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next()).collect();
        assert_eq!(xs, ys);
        let distinct: std::collections::HashSet<u64> = xs.iter().copied().collect();
        assert!(distinct.len() >= 7);
    }

    #[test]
    fn protocol_labels_parse_back() {
        for p in [Protocol::Ascii, Protocol::Binary] {
            assert_eq!(p.label().parse::<Protocol>().unwrap(), p);
        }
        assert!("carrier-pigeon".parse::<Protocol>().is_err());
    }
}
