//! The length-prefixed binary frame protocol of `l2r-serve`.
//!
//! Every frame — request or response — has the same envelope:
//!
//! ```text
//! offset  size  field
//!      0     4  magic  `B1 4C 32 52` (0xB1 'L' '2' 'R'; 0xB1 is not ASCII,
//!               so the first byte of a connection selects the protocol)
//!      4     1  kind   request opcode or response status
//!      5     4  payload length (u32, little-endian, ≤ 1 MiB)
//!      9     n  payload (little-endian fields via `l2r_road_network::codec`)
//!    9+n     4  CRC-32 (IEEE) of kind + length + payload (u32, LE)
//! ```
//!
//! Any violation — bad magic, oversized length, checksum mismatch — is
//! *connection-fatal*: the server answers with one final [`Status::Err`]
//! frame and closes, because a framing error means the byte stream can no
//! longer be resynchronised.  Malformed *payloads* inside a well-framed
//! request (unknown opcode, truncated fields, non-UTF-8 names) only fail
//! that request: the connection keeps serving.
//!
//! Responses are delivered **in request order** (pipelining): clients may
//! write any number of request frames before reading responses.

// A request-path file: panics here are outages, not control flow (see the
// `no-panic-hot-path` rule of l2r-analyze).  The clippy pair of that gate:
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

use l2r_road_network::codec::{CodecError, Reader, Writer};

/// Frame magic; the first byte (0xB1) is what protocol auto-detection keys
/// on, so it must never be valid ASCII.
pub const FRAME_MAGIC: [u8; 4] = [0xB1, b'L', b'2', b'R'];

/// Hard cap on a frame payload; a length above this is connection-fatal
/// (the stream cannot be resynchronised after a corrupt length).
pub const MAX_FRAME_PAYLOAD: usize = 1 << 20;

/// Envelope bytes before the payload: magic + kind + length.
pub const FRAME_HEADER: usize = 9;

/// Envelope bytes after the payload: the CRC-32.
pub const FRAME_TRAILER: usize = 4;

/// Longest dataset name accepted on the wire.
pub const MAX_NAME: usize = 256;

/// Longest snapshot path accepted in a `reload` request.
pub const MAX_PATH: usize = 4096;

/// Most `src,dst` pairs accepted in one `route_batch` request.
pub const MAX_BATCH_PAIRS: usize = 65_536;

/// Request opcodes (the `kind` byte of a request frame).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Opcode {
    /// Liveness probe; empty payload.
    Ping = 0x01,
    /// One route query: `str dataset, u32 src, u32 dst` plus an optional
    /// trailing `u32 deadline_ms` (milliseconds of budget granted to the
    /// request; omitted ⇒ the server's default deadline applies).
    Route = 0x02,
    /// Batched route queries: `str dataset, u32 n, n × (u32 src, u32 dst)`
    /// plus an optional trailing `u32 deadline_ms` shared by every pair.
    RouteBatch = 0x03,
    /// Dataset metadata: `str dataset`.
    Info = 0x04,
    /// Server counters; empty payload.
    Stats = 0x05,
    /// Hot-reload: `str dataset, str path` plus an optional trailing
    /// `str spec` — `latest` or a decimal generation number — when `path`
    /// is a model-store directory (omitted ⇒ file snapshot or newest
    /// durable store generation).
    Reload = 0x06,
    /// Drain and stop the server; empty payload.
    Shutdown = 0x07,
    /// Roll a dataset back to its retained previous engine: `str dataset`.
    Rollback = 0x08,
}

impl Opcode {
    /// Decodes a request opcode byte.
    pub fn from_u8(v: u8) -> Option<Opcode> {
        Some(match v {
            0x01 => Opcode::Ping,
            0x02 => Opcode::Route,
            0x03 => Opcode::RouteBatch,
            0x04 => Opcode::Info,
            0x05 => Opcode::Stats,
            0x06 => Opcode::Reload,
            0x07 => Opcode::Shutdown,
            0x08 => Opcode::Rollback,
            _ => return None,
        })
    }
}

/// Response statuses (the `kind` byte of a response frame).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Status {
    /// Success; payload depends on the request opcode.
    Ok = 0x00,
    /// A route query with no answer; empty payload.
    NoRoute = 0x01,
    /// Request failed; payload is a `str` message.
    Err = 0x02,
    /// The dataset's request queue is full; empty payload.  **Retriable**:
    /// the connection stays open, resend the request after backing off.
    Busy = 0x03,
    /// The request's deadline expired before a reply could be produced;
    /// empty payload.  The route was not (fully) computed — retry with a
    /// larger budget if the answer still matters.
    DeadlineExceeded = 0x04,
}

impl Status {
    /// Decodes a response status byte.
    pub fn from_u8(v: u8) -> Option<Status> {
        Some(match v {
            0x00 => Status::Ok,
            0x01 => Status::NoRoute,
            0x02 => Status::Err,
            0x03 => Status::Busy,
            0x04 => Status::DeadlineExceeded,
            _ => return None,
        })
    }
}

// ---------------------------------------------------------------------------
// CRC-32
// ---------------------------------------------------------------------------

/// CRC-32 (IEEE 802.3, reflected) lookup table, built once per process.
fn crc_table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
            }
            *slot = crc;
        }
        table
    })
}

/// Streaming CRC-32 (IEEE) over the frame's kind + length + payload.
#[derive(Debug, Clone)]
pub struct Crc32(u32);

impl Crc32 {
    /// Starts a fresh checksum.
    pub fn new() -> Crc32 {
        Crc32(0xFFFF_FFFF)
    }

    /// Feeds bytes into the checksum.
    pub fn update(&mut self, data: &[u8]) {
        let table = crc_table();
        for &b in data {
            self.0 = (self.0 >> 8) ^ table[((self.0 ^ b as u32) & 0xFF) as usize];
        }
    }

    /// Finalises the checksum.
    pub fn finish(self) -> u32 {
        self.0 ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Crc32 {
        Crc32::new()
    }
}

/// Checksum of one frame's protected region (kind byte, length field,
/// payload).
fn frame_crc(kind: u8, payload: &[u8]) -> u32 {
    let mut crc = Crc32::new();
    crc.update(&[kind]);
    crc.update(&(payload.len() as u32).to_le_bytes());
    crc.update(payload);
    crc.finish()
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// Appends one complete frame (envelope + payload + CRC) to `out`.
pub fn write_frame(out: &mut Vec<u8>, kind: u8, payload: &[u8]) {
    debug_assert!(payload.len() <= MAX_FRAME_PAYLOAD);
    out.reserve(FRAME_HEADER + payload.len() + FRAME_TRAILER);
    out.extend_from_slice(&FRAME_MAGIC);
    out.push(kind);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&frame_crc(kind, payload).to_le_bytes());
}

/// A connection-fatal framing violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The first four bytes are not [`FRAME_MAGIC`].
    BadMagic([u8; 4]),
    /// The length field exceeds [`MAX_FRAME_PAYLOAD`].
    Oversized(u32),
    /// The trailing CRC does not match the frame contents.
    BadCrc {
        /// Checksum carried by the frame.
        wire: u32,
        /// Checksum computed over the received bytes.
        computed: u32,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadMagic(m) => write!(
                f,
                "bad frame magic {:02x}{:02x}{:02x}{:02x}",
                m[0], m[1], m[2], m[3]
            ),
            FrameError::Oversized(len) => write!(
                f,
                "frame payload length {len} exceeds the {MAX_FRAME_PAYLOAD}-byte limit"
            ),
            FrameError::BadCrc { wire, computed } => write!(
                f,
                "frame checksum mismatch: wire {wire:#010x}, computed {computed:#010x}"
            ),
        }
    }
}

impl std::error::Error for FrameError {}

/// Result of scanning a receive buffer for one frame.
#[derive(Debug)]
pub enum FrameParse<'a> {
    /// Not enough bytes yet; keep reading.
    Incomplete,
    /// One well-formed frame.
    Frame {
        /// The `kind` byte (request opcode or response status).
        kind: u8,
        /// Borrowed payload bytes.
        payload: &'a [u8],
        /// Total envelope bytes consumed from the buffer.
        consumed: usize,
    },
    /// A connection-fatal violation; the stream cannot be resynchronised.
    Bad(FrameError),
}

/// Reads the little-endian `u32` starting at byte `at`, or `None` if `buf`
/// ends first — the parser's one primitive, so the request path has no
/// panicking slice conversions.
fn read_u32_le(buf: &[u8], at: usize) -> Option<u32> {
    let bytes: [u8; 4] = buf.get(at..at.checked_add(4)?)?.try_into().ok()?;
    Some(u32::from_le_bytes(bytes))
}

/// Scans the front of `buf` for one complete frame.
pub fn parse_frame(buf: &[u8]) -> FrameParse<'_> {
    if buf.len() < FRAME_HEADER {
        // Reject a wrong magic as soon as the bytes are there — a client
        // speaking a different protocol should not hang on "incomplete".
        if !FRAME_MAGIC.starts_with(&buf[..buf.len().min(4)]) {
            let mut m = [0u8; 4];
            m[..buf.len().min(4)].copy_from_slice(&buf[..buf.len().min(4)]);
            return FrameParse::Bad(FrameError::BadMagic(m));
        }
        return FrameParse::Incomplete;
    }
    if buf[..4] != FRAME_MAGIC {
        let mut m = [0u8; 4];
        m.copy_from_slice(&buf[..4]);
        return FrameParse::Bad(FrameError::BadMagic(m));
    }
    let kind = buf[4];
    // `buf.len() >= FRAME_HEADER` was checked above, so these reads only
    // miss when the frame is still arriving.
    let Some(len) = read_u32_le(buf, 5) else {
        return FrameParse::Incomplete;
    };
    let len = len as usize;
    if len > MAX_FRAME_PAYLOAD {
        return FrameParse::Bad(FrameError::Oversized(len as u32));
    }
    let total = FRAME_HEADER + len + FRAME_TRAILER;
    if buf.len() < total {
        return FrameParse::Incomplete;
    }
    let payload = &buf[FRAME_HEADER..FRAME_HEADER + len];
    let Some(wire) = read_u32_le(buf, FRAME_HEADER + len) else {
        return FrameParse::Incomplete;
    };
    let computed = frame_crc(kind, payload);
    if wire != computed {
        return FrameParse::Bad(FrameError::BadCrc { wire, computed });
    }
    FrameParse::Frame {
        kind,
        payload,
        consumed: total,
    }
}

// ---------------------------------------------------------------------------
// Request payload encoders (used by clients; the server decodes with Reader)
// ---------------------------------------------------------------------------

/// Appends a `ping` request frame.
pub fn encode_ping(out: &mut Vec<u8>) {
    write_frame(out, Opcode::Ping as u8, &[]);
}

/// Appends a `route` request frame carrying the server's default deadline.
pub fn encode_route(out: &mut Vec<u8>, dataset: &str, src: u32, dst: u32) {
    encode_route_deadline(out, dataset, src, dst, None);
}

/// Appends a `route` request frame with an explicit deadline budget in
/// milliseconds (`None` ⇒ the field is omitted and the server default
/// applies; `Some(0)` ⇒ already expired, useful for testing accounting).
pub fn encode_route_deadline(
    out: &mut Vec<u8>,
    dataset: &str,
    src: u32,
    dst: u32,
    deadline_ms: Option<u32>,
) {
    let mut w = Writer::new();
    w.str(dataset);
    w.u32(src);
    w.u32(dst);
    if let Some(ms) = deadline_ms {
        w.u32(ms);
    }
    write_frame(out, Opcode::Route as u8, w.as_slice());
}

/// Appends a `route_batch` request frame carrying the server's default
/// deadline.
pub fn encode_route_batch(out: &mut Vec<u8>, dataset: &str, pairs: &[(u32, u32)]) {
    encode_route_batch_deadline(out, dataset, pairs, None);
}

/// Appends a `route_batch` request frame with an explicit deadline budget
/// (in milliseconds) shared by every pair.
pub fn encode_route_batch_deadline(
    out: &mut Vec<u8>,
    dataset: &str,
    pairs: &[(u32, u32)],
    deadline_ms: Option<u32>,
) {
    let mut w = Writer::new();
    w.str(dataset);
    w.u32(pairs.len() as u32);
    for &(s, d) in pairs {
        w.u32(s);
        w.u32(d);
    }
    if let Some(ms) = deadline_ms {
        w.u32(ms);
    }
    write_frame(out, Opcode::RouteBatch as u8, w.as_slice());
}

/// Appends an `info` request frame.
pub fn encode_info(out: &mut Vec<u8>, dataset: &str) {
    let mut w = Writer::new();
    w.str(dataset);
    write_frame(out, Opcode::Info as u8, w.as_slice());
}

/// Appends a `stats` request frame.
pub fn encode_stats(out: &mut Vec<u8>) {
    write_frame(out, Opcode::Stats as u8, &[]);
}

/// Appends a `reload` request frame.
pub fn encode_reload(out: &mut Vec<u8>, dataset: &str, path: &str) {
    encode_reload_spec(out, dataset, path, None);
}

/// Appends a `reload` request frame with an explicit store-generation spec
/// (`latest` or a decimal generation number; `None` ⇒ the field is omitted
/// and stays byte-compatible with pre-store clients).
pub fn encode_reload_spec(out: &mut Vec<u8>, dataset: &str, path: &str, spec: Option<&str>) {
    let mut w = Writer::new();
    w.str(dataset);
    w.str(path);
    if let Some(spec) = spec {
        w.str(spec);
    }
    write_frame(out, Opcode::Reload as u8, w.as_slice());
}

/// Appends a `rollback` request frame.
pub fn encode_rollback(out: &mut Vec<u8>, dataset: &str) {
    let mut w = Writer::new();
    w.str(dataset);
    write_frame(out, Opcode::Rollback as u8, w.as_slice());
}

/// Appends a `shutdown` request frame.
pub fn encode_shutdown(out: &mut Vec<u8>) {
    write_frame(out, Opcode::Shutdown as u8, &[]);
}

// ---------------------------------------------------------------------------
// Response decoding (client side)
// ---------------------------------------------------------------------------

/// A decoded reply to a `route` request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteReply {
    /// A route was found.
    Route {
        /// Index into [`l2r_core::RouteStrategy::ALL`].
        strategy: u8,
        /// Path vertex ids, source first.
        vertices: Vec<u32>,
    },
    /// No route exists.
    NoRoute,
    /// The request was shed; retry after backing off.
    Busy,
    /// The request's deadline expired before it could be answered.
    DeadlineExceeded,
    /// The request failed.
    Err(String),
}

/// Decodes a `route` response frame's status + payload.
pub fn decode_route_reply(status: Status, payload: &[u8]) -> Result<RouteReply, CodecError> {
    match status {
        Status::NoRoute => Ok(RouteReply::NoRoute),
        Status::Busy => Ok(RouteReply::Busy),
        Status::DeadlineExceeded => Ok(RouteReply::DeadlineExceeded),
        Status::Err => {
            let mut r = Reader::new(payload);
            Ok(RouteReply::Err(
                r.str("error message", MAX_FRAME_PAYLOAD)?.to_string(),
            ))
        }
        Status::Ok => {
            let mut r = Reader::new(payload);
            let strategy = r.u8("route strategy")?;
            let n = r.length("route path length", 4)?;
            let mut vertices = Vec::with_capacity(n);
            for _ in 0..n {
                vertices.push(r.u32("route path vertex")?);
            }
            Ok(RouteReply::Route { strategy, vertices })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vector() {
        // The classic IEEE check value: crc32("123456789") = 0xCBF43926.
        let mut crc = Crc32::new();
        crc.update(b"123456789");
        assert_eq!(crc.finish(), 0xCBF4_3926);
    }

    #[test]
    fn frames_roundtrip() {
        let mut out = Vec::new();
        encode_route(&mut out, "D1", 7, 42);
        match parse_frame(&out) {
            FrameParse::Frame {
                kind,
                payload,
                consumed,
            } => {
                assert_eq!(kind, Opcode::Route as u8);
                assert_eq!(consumed, out.len());
                let mut r = Reader::new(payload);
                assert_eq!(r.str("dataset", MAX_NAME).unwrap(), "D1");
                assert_eq!(r.u32("src").unwrap(), 7);
                assert_eq!(r.u32("dst").unwrap(), 42);
                assert!(r.is_exhausted());
            }
            other => panic!("expected a frame, got {other:?}"),
        }
    }

    #[test]
    fn deadline_field_is_optional_and_trailing() {
        let mut out = Vec::new();
        encode_route_deadline(&mut out, "D1", 7, 42, Some(250));
        match parse_frame(&out) {
            FrameParse::Frame { kind, payload, .. } => {
                assert_eq!(kind, Opcode::Route as u8);
                let mut r = Reader::new(payload);
                r.str("dataset", MAX_NAME).unwrap();
                r.u32("src").unwrap();
                r.u32("dst").unwrap();
                assert!(!r.is_exhausted());
                assert_eq!(r.u32("deadline_ms").unwrap(), 250);
                assert!(r.is_exhausted());
            }
            other => panic!("expected a frame, got {other:?}"),
        }
        // The no-deadline encoder stays byte-compatible with PR 6 clients.
        let mut bare = Vec::new();
        encode_route(&mut bare, "D1", 7, 42);
        let mut explicit_none = Vec::new();
        encode_route_deadline(&mut explicit_none, "D1", 7, 42, None);
        assert_eq!(bare, explicit_none);

        let mut out = Vec::new();
        encode_route_batch_deadline(&mut out, "D1", &[(1, 2), (3, 4)], Some(9));
        match parse_frame(&out) {
            FrameParse::Frame { payload, .. } => {
                let mut r = Reader::new(payload);
                r.str("dataset", MAX_NAME).unwrap();
                let n = r.u32("n").unwrap();
                for _ in 0..2 * n {
                    r.u32("pair half").unwrap();
                }
                assert_eq!(r.u32("deadline_ms").unwrap(), 9);
                assert!(r.is_exhausted());
            }
            other => panic!("expected a frame, got {other:?}"),
        }
    }

    #[test]
    fn reload_spec_is_optional_and_rollback_roundtrips() {
        // The spec-less encoder stays byte-compatible with pre-store clients.
        let mut bare = Vec::new();
        encode_reload(&mut bare, "D1", "/models/d1");
        let mut explicit_none = Vec::new();
        encode_reload_spec(&mut explicit_none, "D1", "/models/d1", None);
        assert_eq!(bare, explicit_none);

        let mut out = Vec::new();
        encode_reload_spec(&mut out, "D1", "/models/d1", Some("7"));
        match parse_frame(&out) {
            FrameParse::Frame { kind, payload, .. } => {
                assert_eq!(kind, Opcode::Reload as u8);
                let mut r = Reader::new(payload);
                assert_eq!(r.str("dataset", MAX_NAME).unwrap(), "D1");
                assert_eq!(r.str("path", MAX_PATH).unwrap(), "/models/d1");
                assert!(!r.is_exhausted());
                assert_eq!(r.str("spec", MAX_NAME).unwrap(), "7");
                assert!(r.is_exhausted());
            }
            other => panic!("expected a frame, got {other:?}"),
        }

        let mut out = Vec::new();
        encode_rollback(&mut out, "D1");
        match parse_frame(&out) {
            FrameParse::Frame { kind, payload, .. } => {
                assert_eq!(kind, Opcode::Rollback as u8);
                assert_eq!(Opcode::from_u8(kind), Some(Opcode::Rollback));
                let mut r = Reader::new(payload);
                assert_eq!(r.str("dataset", MAX_NAME).unwrap(), "D1");
                assert!(r.is_exhausted());
            }
            other => panic!("expected a frame, got {other:?}"),
        }
    }

    #[test]
    fn deadline_status_roundtrips() {
        assert_eq!(Status::from_u8(0x04), Some(Status::DeadlineExceeded));
        assert_eq!(
            decode_route_reply(Status::DeadlineExceeded, &[]).unwrap(),
            RouteReply::DeadlineExceeded
        );
    }

    #[test]
    fn partial_frames_are_incomplete_not_errors() {
        let mut out = Vec::new();
        encode_ping(&mut out);
        for cut in 0..out.len() {
            match parse_frame(&out[..cut]) {
                FrameParse::Incomplete => {}
                other => panic!("prefix of {cut} bytes parsed as {other:?}"),
            }
        }
    }

    #[test]
    fn bad_magic_is_rejected_even_on_short_input() {
        assert!(matches!(
            parse_frame(b"pi"),
            FrameParse::Bad(FrameError::BadMagic(_))
        ));
        assert!(matches!(
            parse_frame(b"ping D1\n"),
            FrameParse::Bad(FrameError::BadMagic(_))
        ));
    }

    #[test]
    fn oversized_length_and_bad_crc_are_fatal() {
        let mut out = Vec::new();
        out.extend_from_slice(&FRAME_MAGIC);
        out.push(Opcode::Ping as u8);
        out.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            parse_frame(&out),
            FrameParse::Bad(FrameError::Oversized(_))
        ));

        let mut out = Vec::new();
        encode_ping(&mut out);
        let last = out.len() - 1;
        out[last] ^= 0xFF;
        assert!(matches!(
            parse_frame(&out),
            FrameParse::Bad(FrameError::BadCrc { .. })
        ));
    }

    #[test]
    fn route_replies_decode() {
        let mut w = Writer::new();
        w.u8(3);
        w.length(2);
        w.u32(5);
        w.u32(9);
        let reply = decode_route_reply(Status::Ok, w.as_slice()).unwrap();
        assert_eq!(
            reply,
            RouteReply::Route {
                strategy: 3,
                vertices: vec![5, 9]
            }
        );
        assert_eq!(
            decode_route_reply(Status::NoRoute, &[]).unwrap(),
            RouteReply::NoRoute
        );
        assert_eq!(
            decode_route_reply(Status::Busy, &[]).unwrap(),
            RouteReply::Busy
        );
        let mut w = Writer::new();
        w.str("nope");
        assert_eq!(
            decode_route_reply(Status::Err, w.as_slice()).unwrap(),
            RouteReply::Err("nope".to_string())
        );
        // Truncated payload errors instead of panicking.
        assert!(decode_route_reply(Status::Ok, &[1]).is_err());
    }
}
