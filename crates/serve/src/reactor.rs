//! The poll(2)-based readiness event loop behind [`crate::Server`].
//!
//! A fixed pool of event-loop threads (one per `worker`) multiplexes all
//! connections over non-blocking sockets: each loop polls its connections
//! plus the shared listener, reads whatever is ready, parses complete
//! requests out of per-connection buffers, and writes responses back as
//! sockets accept them.  No thread ever blocks on one client, so thousands
//! of idle keep-alive connections cost one `pollfd` each instead of a
//! pinned thread.
//!
//! ## Protocol auto-detection
//!
//! The first byte of a connection selects its protocol for life: the
//! binary frame magic starts with `0xB1` (not valid ASCII), anything else
//! is the legacy line protocol.
//!
//! ## Pipelining and response ordering
//!
//! Clients may pipeline: each parsed request claims the next *slot* in the
//! connection's pending queue, and slots drain to the socket strictly in
//! claim order.  Inline commands (`ping`, `info`, …) fill their slot
//! immediately; `route` queries fill theirs when their batch executes —
//! later inline responses wait behind them, so responses always come back
//! in request order.
//!
//! ## Batching and load-shedding
//!
//! Admitted `route` queries from *all* connections of a loop coalesce into
//! one batch, flushed when it reaches [`crate::ServerConfig::batch_max`],
//! when the oldest entry has waited [`crate::ServerConfig::batch_budget`],
//! or at the end of a poll iteration (whichever is first) — the natural
//! batch is therefore "whatever arrived while the previous batch was
//! executing", which adapts to load with zero added latency when the
//! budget is zero.  Batches at or above [`PARALLEL_BATCH_MIN`] execute via
//! [`Engine::route_many`]; smaller ones run serially on the loop's single
//! pooled scratch, so a server never creates more scratches than workers.
//! Queries that cannot win a slot in their dataset's bounded admission
//! queue are answered `BUSY` immediately (see [`crate::queue`]).

use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use l2r_core::{Engine, QueryScratch, RouteResult, RouteStrategy};
use l2r_road_network::codec::Reader;
use l2r_road_network::codec::Writer;
use l2r_road_network::VertexId;

use crate::frame::{self, FrameParse, Opcode, Status, MAX_BATCH_PAIRS, MAX_NAME, MAX_PATH};
use crate::queue::DatasetQueue;
use crate::{format_route_response, respond_line, ServerConfig, ServerState};

/// Batches at or above this size execute through [`Engine::route_many`]
/// (parallel fan-out); smaller ones run serially on the loop's pooled
/// scratch, which is faster below the fan-out overhead.
pub const PARALLEL_BATCH_MIN: usize = 256;

/// Per-connection cap on unanswered pipelined requests; beyond it the loop
/// stops reading from the connection until responses drain (backpressure).
const MAX_PIPELINE_DEPTH: usize = 1024;

/// Stop reading a connection whose unparsed input exceeds this (resumes as
/// soon as the parser catches up).
const RBUF_SOFT_MAX: usize = 2 * (1 << 20);

/// Longest ASCII request line accepted, as in the PR 5 server.
const MAX_REQUEST_LINE: usize = 64 * 1024;

/// How long a shutting-down loop keeps flushing pending responses before
/// dropping the remaining connections.
const SHUTDOWN_GRACE: Duration = Duration::from_secs(1);

/// Poll timeout while idle; bounds how stale the shutdown-flag check and
/// the batch-budget clock can get.
const IDLE_POLL_MS: i32 = 50;

// ---------------------------------------------------------------------------
// poll(2) FFI (the workspace is dependency-free, so no libc crate)
// ---------------------------------------------------------------------------

const POLLIN: i16 = 0x001;
const POLLOUT: i16 = 0x004;
const POLLERR: i16 = 0x008;
const POLLHUP: i16 = 0x010;
const POLLNVAL: i16 = 0x020;

#[repr(C)]
#[derive(Clone, Copy)]
struct PollFd {
    fd: i32,
    events: i16,
    revents: i16,
}

extern "C" {
    fn poll(fds: *mut PollFd, nfds: std::ffi::c_ulong, timeout: std::ffi::c_int) -> i32;
}

/// `poll(2)` with EINTR retry; a genuine failure is returned to the caller
/// (the loop treats it as "nothing ready").
fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    loop {
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as std::ffi::c_ulong, timeout_ms) };
        if rc >= 0 {
            return Ok(rc as usize);
        }
        let e = io::Error::last_os_error();
        if e.kind() != io::ErrorKind::Interrupted {
            return Err(e);
        }
    }
}

// ---------------------------------------------------------------------------
// Connections
// ---------------------------------------------------------------------------

/// What a connection speaks; fixed by its first byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Protocol {
    /// No byte received yet.
    Detecting,
    /// Legacy `\n`-terminated line protocol.
    Ascii,
    /// Length-prefixed binary frames ([`crate::frame`]).
    Binary,
}

/// One multiplexed connection.
struct Conn {
    stream: TcpStream,
    /// Generation tag: batch items verify it before filling a slot, so a
    /// reused connection index can never receive a dead client's response.
    id: u64,
    protocol: Protocol,
    /// Received-but-unparsed bytes; `rpos` is the consumed prefix.
    rbuf: Vec<u8>,
    rpos: usize,
    /// Encoded-but-unsent response bytes; `wpos` is the sent prefix.
    wbuf: Vec<u8>,
    wpos: usize,
    /// One slot per parsed request, drained to `wbuf` strictly in order.
    /// `None` = response not ready yet (a route waiting in a batch).
    pending: VecDeque<Option<Vec<u8>>>,
    /// Slot sequence number of `pending.front()`.
    base_seq: u64,
    /// Stop reading, flush what is pending, then close.
    closing: bool,
}

impl Conn {
    fn new(stream: TcpStream, id: u64) -> Conn {
        Conn {
            stream,
            id,
            protocol: Protocol::Detecting,
            rbuf: Vec::new(),
            rpos: 0,
            wbuf: Vec::new(),
            wpos: 0,
            pending: VecDeque::new(),
            base_seq: 0,
            closing: false,
        }
    }

    fn unparsed(&self) -> usize {
        self.rbuf.len() - self.rpos
    }

    /// Claims the next response slot, returning its sequence number.
    fn claim_slot(&mut self) -> u64 {
        self.pending.push_back(None);
        self.base_seq + self.pending.len() as u64 - 1
    }

    /// Claims a slot and fills it immediately (inline commands).
    fn push_response(&mut self, bytes: Vec<u8>) {
        self.pending.push_back(Some(bytes));
    }

    /// Fills a previously claimed slot.
    fn fill_slot(&mut self, seq: u64, bytes: Vec<u8>) {
        let idx = (seq - self.base_seq) as usize;
        debug_assert!(idx < self.pending.len());
        if let Some(slot) = self.pending.get_mut(idx) {
            debug_assert!(slot.is_none(), "slot {seq} filled twice");
            *slot = Some(bytes);
        }
    }

    /// Moves ready responses (in order) into the write buffer.
    fn drain_ready(&mut self) {
        while matches!(self.pending.front(), Some(Some(_))) {
            let bytes = self.pending.pop_front().flatten().expect("checked Some");
            self.base_seq += 1;
            self.wbuf.extend_from_slice(&bytes);
        }
    }

    /// Reads until `WouldBlock`, EOF, or the soft input cap.  Returns
    /// `Ok(true)` on EOF.
    fn try_read(&mut self, chunk: &mut [u8]) -> io::Result<bool> {
        loop {
            if self.unparsed() >= RBUF_SOFT_MAX {
                return Ok(false);
            }
            match self.stream.read(chunk) {
                Ok(0) => return Ok(true),
                Ok(n) => self.rbuf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// Writes as much of `wbuf` as the socket accepts right now.
    fn try_write(&mut self) -> io::Result<()> {
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => self.wpos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        if self.wpos == self.wbuf.len() {
            self.wbuf.clear();
            self.wpos = 0;
        }
        Ok(())
    }

    /// Reclaims consumed input-buffer space once the parser has caught up
    /// (or the consumed prefix got large).
    fn compact(&mut self) {
        if self.rpos == self.rbuf.len() {
            self.rbuf.clear();
            self.rpos = 0;
        } else if self.rpos >= 64 * 1024 {
            self.rbuf.drain(..self.rpos);
            self.rpos = 0;
        }
    }
}

// ---------------------------------------------------------------------------
// The shared route batch
// ---------------------------------------------------------------------------

/// One admitted `route` query waiting for its batch to execute.
struct BatchItem {
    conn: usize,
    conn_id: u64,
    seq: u64,
    engine: Arc<Engine>,
    queue: Arc<DatasetQueue>,
    src: VertexId,
    dst: VertexId,
}

/// The loop-wide batch of admitted route queries.
struct Batch {
    items: Vec<BatchItem>,
    /// When the oldest item was enqueued (drives the latency budget).
    since: Option<Instant>,
}

impl Batch {
    fn push(&mut self, item: BatchItem) {
        if self.items.is_empty() {
            self.since = Some(Instant::now());
        }
        self.items.push(item);
    }
}

/// Encodes a route answer for the connection's protocol.
fn encode_route_result(protocol: Protocol, result: &Option<RouteResult>) -> Vec<u8> {
    match protocol {
        Protocol::Binary => {
            let mut out = Vec::new();
            match result {
                Some(r) => {
                    let strategy = RouteStrategy::ALL
                        .iter()
                        .position(|s| *s == r.strategy)
                        .expect("every strategy is in ALL")
                        as u8;
                    let mut w = Writer::new();
                    w.u8(strategy);
                    let vertices = r.path.vertices();
                    w.length(vertices.len());
                    for v in vertices {
                        w.u32(v.0);
                    }
                    frame::write_frame(&mut out, Status::Ok as u8, w.as_slice());
                }
                None => frame::write_frame(&mut out, Status::NoRoute as u8, &[]),
            }
            out
        }
        _ => {
            let mut line = format_route_response(result).into_bytes();
            line.push(b'\n');
            line
        }
    }
}

/// The retriable overload reply for the connection's protocol.
fn encode_busy(protocol: Protocol) -> Vec<u8> {
    match protocol {
        Protocol::Binary => {
            let mut out = Vec::new();
            frame::write_frame(&mut out, Status::Busy as u8, &[]);
            out
        }
        _ => b"BUSY\n".to_vec(),
    }
}

/// A binary response frame carrying just a status and a payload.
fn binary_frame(status: Status, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    frame::write_frame(&mut out, status as u8, payload);
    out
}

/// A binary `ERR` frame with a message payload.
fn binary_err(message: &str) -> Vec<u8> {
    let mut w = Writer::new();
    w.str(message);
    binary_frame(Status::Err, w.as_slice())
}

/// Executes and answers every queued route query, releasing admissions.
fn flush_batch(
    state: &ServerState,
    batch: &mut Batch,
    conns: &mut [Option<Conn>],
    scratch: &mut QueryScratch,
) {
    if batch.items.is_empty() {
        batch.since = None;
        return;
    }
    let items = std::mem::take(&mut batch.items);
    batch.since = None;
    state.stats.batches.fetch_add(1, Ordering::Relaxed);

    let mut executed = 0u64;
    let mut answered = 0u64;
    let fill = |conns: &mut [Option<Conn>], item: &BatchItem, result: &Option<RouteResult>| {
        let live = conns
            .get_mut(item.conn)
            .and_then(|slot| slot.as_mut())
            .filter(|c| c.id == item.conn_id);
        if let Some(conn) = live {
            let bytes = encode_route_result(conn.protocol, result);
            conn.fill_slot(item.seq, bytes);
        }
    };

    if items.len() < PARALLEL_BATCH_MIN {
        // Small batch: serial on the loop's pooled scratch — no per-batch
        // allocation, no fan-out overhead.
        for item in &items {
            let alive = conns
                .get(item.conn)
                .and_then(|slot| slot.as_ref())
                .is_some_and(|c| c.id == item.conn_id);
            if alive {
                let result = item.engine.route(scratch, item.src, item.dst);
                executed += 1;
                if result.is_some() {
                    answered += 1;
                }
                fill(conns, item, &result);
            }
            item.queue.release(1);
        }
    } else {
        // Large batch: group by engine and fan out through `route_many`.
        let mut groups: HashMap<usize, Vec<usize>> = HashMap::new();
        for (i, item) in items.iter().enumerate() {
            groups
                .entry(Arc::as_ptr(&item.engine) as usize)
                .or_default()
                .push(i);
        }
        for indices in groups.values() {
            let engine = &items[indices[0]].engine;
            let pairs: Vec<(VertexId, VertexId)> = indices
                .iter()
                .map(|&i| (items[i].src, items[i].dst))
                .collect();
            let results = engine.route_many(&pairs);
            executed += pairs.len() as u64;
            for (&i, result) in indices.iter().zip(results.iter()) {
                if result.is_some() {
                    answered += 1;
                }
                fill(conns, &items[i], result);
            }
        }
        for item in &items {
            item.queue.release(1);
        }
    }
    state.stats.queries.fetch_add(executed, Ordering::Relaxed);
    state.stats.answered.fetch_add(answered, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Request handling
// ---------------------------------------------------------------------------

/// Outcome of one `process_conn` pass.
#[derive(PartialEq, Eq)]
enum Progress {
    /// Parsed everything currently parseable.
    Done,
    /// Stopped because the batch hit `batch_max`; flush and call again.
    BatchFull,
}

/// Admits one route query into the batch (or answers `BUSY`).
#[allow(clippy::too_many_arguments)]
fn enqueue_route(
    state: &ServerState,
    batch: &mut Batch,
    conn: &mut Conn,
    ci: usize,
    dataset: &str,
    engine: Arc<Engine>,
    src: VertexId,
    dst: VertexId,
) {
    let queue = state.queues.get(dataset);
    if !queue.try_admit(1) {
        state.stats.shed.fetch_add(1, Ordering::Relaxed);
        let busy = encode_busy(conn.protocol);
        conn.push_response(busy);
        return;
    }
    let seq = conn.claim_slot();
    batch.push(BatchItem {
        conn: ci,
        conn_id: conn.id,
        seq,
        engine,
        queue,
        src,
        dst,
    });
}

/// Handles one ASCII request line.  Returns `true` if it was `shutdown`.
fn handle_ascii_line(
    state: &ServerState,
    batch: &mut Batch,
    conn: &mut Conn,
    ci: usize,
    scratch: &mut QueryScratch,
    line: &str,
) -> bool {
    let request = line.trim();
    if request.is_empty() {
        return false;
    }
    // Fast path: a well-formed `route` on a known dataset goes through
    // admission + batching; everything else (including malformed routes,
    // which need the protocol's exact ERR lines) runs inline.
    let mut parts = request.split_whitespace();
    if parts.next() == Some("route") {
        if let (Some(dataset), Some(s), Some(d), None) =
            (parts.next(), parts.next(), parts.next(), parts.next())
        {
            if let (Ok(s), Ok(d)) = (s.parse::<u32>(), d.parse::<u32>()) {
                if let Some(engine) = state.registry.get(dataset) {
                    enqueue_route(
                        state,
                        batch,
                        conn,
                        ci,
                        dataset,
                        engine,
                        VertexId(s),
                        VertexId(d),
                    );
                    return false;
                }
            }
        }
    }
    let (response, shutdown) = respond_line(state, scratch, request);
    let mut bytes = response.into_bytes();
    bytes.push(b'\n');
    conn.push_response(bytes);
    shutdown
}

/// Handles one well-framed binary request.  Returns `true` on `shutdown`.
fn handle_frame(
    state: &ServerState,
    batch: &mut Batch,
    conn: &mut Conn,
    ci: usize,
    scratch: &mut QueryScratch,
    kind: u8,
    payload: &[u8],
) -> bool {
    // A malformed *payload* inside a well-formed frame only fails this
    // request; the stream stays synchronised and the connection serves on.
    let fail = |conn: &mut Conn, message: String| {
        state.stats.errors.fetch_add(1, Ordering::Relaxed);
        conn.push_response(binary_err(&message));
    };
    let Some(opcode) = Opcode::from_u8(kind) else {
        fail(conn, format!("unknown opcode {kind:#04x}"));
        return false;
    };
    let mut r = Reader::new(payload);
    match opcode {
        Opcode::Ping => conn.push_response(binary_frame(Status::Ok, &[])),
        Opcode::Route => {
            let decoded = (|| {
                let dataset = r.str("route dataset", MAX_NAME)?;
                let src = r.u32("route source")?;
                let dst = r.u32("route destination")?;
                Ok::<_, l2r_road_network::codec::CodecError>((dataset, src, dst))
            })();
            match decoded {
                Ok((dataset, src, dst)) => match state.registry.get(dataset) {
                    Some(engine) => enqueue_route(
                        state,
                        batch,
                        conn,
                        ci,
                        dataset,
                        engine,
                        VertexId(src),
                        VertexId(dst),
                    ),
                    None => fail(conn, format!("unknown dataset `{dataset}`")),
                },
                Err(e) => fail(conn, format!("bad route payload: {e}")),
            }
        }
        Opcode::RouteBatch => {
            let decoded = (|| {
                let dataset = r.str("batch dataset", MAX_NAME)?.to_string();
                let n = r.u32("batch size")? as usize;
                if n == 0 || n > MAX_BATCH_PAIRS || n > r.remaining() / 8 {
                    return Err(l2r_road_network::codec::CodecError::ImplausibleLength {
                        what: "batch size",
                        len: n as u64,
                    });
                }
                let mut pairs = Vec::with_capacity(n);
                for _ in 0..n {
                    pairs.push((r.u32("batch source")?, r.u32("batch destination")?));
                }
                Ok((dataset, pairs))
            })();
            let (dataset, pairs) = match decoded {
                Ok(v) => v,
                Err(e) => {
                    fail(conn, format!("bad route_batch payload: {e}"));
                    return false;
                }
            };
            let Some(engine) = state.registry.get(&dataset) else {
                fail(conn, format!("unknown dataset `{dataset}`"));
                return false;
            };
            // A client-side batch executes inline as one unit: it must win
            // admission for all its queries or be shed as a whole.
            let queue = state.queues.get(&dataset);
            if !queue.try_admit(pairs.len()) {
                state
                    .stats
                    .shed
                    .fetch_add(pairs.len() as u64, Ordering::Relaxed);
                conn.push_response(encode_busy(conn.protocol));
                return false;
            }
            let mut w = Writer::new();
            w.u32(pairs.len() as u32);
            let mut answered = 0u32;
            let mut body = Writer::new();
            for &(s, d) in &pairs {
                match engine.route(scratch, VertexId(s), VertexId(d)) {
                    Some(result) => {
                        answered += 1;
                        let strategy = RouteStrategy::ALL
                            .iter()
                            .position(|st| *st == result.strategy)
                            .expect("every strategy is in ALL")
                            as u8;
                        body.u8(strategy);
                        body.u32(result.path.vertices().len() as u32);
                    }
                    None => {
                        body.u8(u8::MAX);
                        body.u32(0);
                    }
                }
            }
            queue.release(pairs.len());
            state
                .stats
                .queries
                .fetch_add(pairs.len() as u64, Ordering::Relaxed);
            state
                .stats
                .answered
                .fetch_add(answered as u64, Ordering::Relaxed);
            w.u32(answered);
            let mut payload = w.into_vec();
            payload.extend_from_slice(body.as_slice());
            conn.push_response(binary_frame(Status::Ok, &payload));
        }
        Opcode::Info => match r.str("info dataset", MAX_NAME) {
            Ok(dataset) => match state.registry.get(dataset) {
                Some(engine) => {
                    let mut w = Writer::new();
                    w.u64(engine.network().num_vertices() as u64);
                    w.u64(engine.network().num_edges() as u64);
                    w.u64(engine.region_graph().num_regions() as u64);
                    w.u64(engine.num_connectors() as u64);
                    w.u64(state.registry.generation(dataset).unwrap_or(0));
                    w.str(dataset);
                    conn.push_response(binary_frame(Status::Ok, w.as_slice()));
                }
                None => fail(conn, format!("unknown dataset `{dataset}`")),
            },
            Err(e) => fail(conn, format!("bad info payload: {e}")),
        },
        Opcode::Stats => {
            let mut w = Writer::new();
            w.str(&state.stats_line());
            conn.push_response(binary_frame(Status::Ok, w.as_slice()));
        }
        Opcode::Reload => {
            let decoded = (|| {
                let dataset = r.str("reload dataset", MAX_NAME)?.to_string();
                let path = r.str("reload path", MAX_PATH)?.to_string();
                Ok::<_, l2r_road_network::codec::CodecError>((dataset, path))
            })();
            match decoded {
                Ok((dataset, path)) => {
                    match state.registry.reload(&dataset, std::path::Path::new(&path)) {
                        Ok(_) => {
                            state.stats.reloads.fetch_add(1, Ordering::Relaxed);
                            let mut w = Writer::new();
                            w.u64(state.registry.generation(&dataset).unwrap_or(0));
                            conn.push_response(binary_frame(Status::Ok, w.as_slice()));
                        }
                        Err(e) => fail(conn, format!("reload failed: {e}")),
                    }
                }
                Err(e) => fail(conn, format!("bad reload payload: {e}")),
            }
        }
        Opcode::Shutdown => {
            conn.push_response(binary_frame(Status::Ok, &[]));
            return true;
        }
    }
    false
}

/// Parses and handles every complete request in `conn`'s input buffer,
/// stopping early (with [`Progress::BatchFull`]) when the shared batch
/// needs flushing.
fn process_conn(
    state: &ServerState,
    cfg: &ServerConfig,
    batch: &mut Batch,
    conn: &mut Conn,
    ci: usize,
    scratch: &mut QueryScratch,
) -> Progress {
    while !conn.closing && conn.unparsed() > 0 {
        if batch.items.len() >= cfg.batch_max {
            return Progress::BatchFull;
        }
        if conn.protocol == Protocol::Detecting {
            conn.protocol = if conn.rbuf[conn.rpos] == frame::FRAME_MAGIC[0] {
                Protocol::Binary
            } else {
                Protocol::Ascii
            };
        }
        match conn.protocol {
            Protocol::Ascii => {
                let buf = &conn.rbuf[conn.rpos..];
                let Some(nl) = buf.iter().position(|&b| b == b'\n') else {
                    if buf.len() > MAX_REQUEST_LINE {
                        state.stats.errors.fetch_add(1, Ordering::Relaxed);
                        conn.push_response(b"ERR request line exceeds the size limit\n".to_vec());
                        conn.closing = true;
                    }
                    break;
                };
                let line = String::from_utf8_lossy(&buf[..nl]).into_owned();
                conn.rpos += nl + 1;
                if handle_ascii_line(state, batch, conn, ci, scratch, &line) {
                    conn.closing = true;
                    state.request_shutdown();
                }
            }
            Protocol::Binary => match frame::parse_frame(&conn.rbuf[conn.rpos..]) {
                FrameParse::Incomplete => break,
                FrameParse::Frame {
                    kind,
                    payload,
                    consumed,
                } => {
                    // The payload borrows the input buffer while the
                    // handler needs `&mut Conn`: copy it out (requests are
                    // small; responses dominate traffic).
                    let payload = payload.to_vec();
                    conn.rpos += consumed;
                    if handle_frame(state, batch, conn, ci, scratch, kind, &payload) {
                        conn.closing = true;
                        state.request_shutdown();
                    }
                }
                FrameParse::Bad(e) => {
                    // Framing violations are connection-fatal: one final
                    // ERR frame, then close (the stream cannot resync).
                    state.stats.errors.fetch_add(1, Ordering::Relaxed);
                    conn.push_response(binary_err(&e.to_string()));
                    conn.closing = true;
                    break;
                }
            },
            Protocol::Detecting => unreachable!("protocol detected above"),
        }
    }
    conn.compact();
    Progress::Done
}

// ---------------------------------------------------------------------------
// The event loop
// ---------------------------------------------------------------------------

/// Runs one event loop until shutdown completes.  `workers` of these share
/// the (non-blocking) listener.
pub(crate) fn event_loop(listener: TcpListener, state: &ServerState, cfg: &ServerConfig) {
    let _ = listener.set_nonblocking(true);
    // Exactly one pooled scratch per event loop, for the life of the loop:
    // peak pool size can never exceed the worker count.
    let mut scratch = state.scratch.acquire();
    let mut conns: Vec<Option<Conn>> = Vec::new();
    let mut free: Vec<usize> = Vec::new();
    let mut batch = Batch {
        items: Vec::new(),
        since: None,
    };
    let mut pollfds: Vec<PollFd> = Vec::new();
    let mut poll_conns: Vec<usize> = Vec::new();
    let mut chunk = vec![0u8; 64 * 1024];
    let mut next_id: u64 = 1;
    let mut drain_deadline: Option<Instant> = None;

    loop {
        let shutting_down = state.shutdown_requested();
        if shutting_down {
            let deadline = *drain_deadline.get_or_insert_with(|| Instant::now() + SHUTDOWN_GRACE);
            let all_idle = conns.iter().flatten().all(|c| c.wbuf.is_empty())
                && batch.items.is_empty()
                && conns.iter().flatten().all(|c| c.pending.is_empty());
            if all_idle || Instant::now() >= deadline {
                break;
            }
        }

        // 1. Poll the listener plus every live connection.
        pollfds.clear();
        poll_conns.clear();
        pollfds.push(PollFd {
            fd: listener.as_raw_fd(),
            events: POLLIN,
            revents: 0,
        });
        for (ci, slot) in conns.iter().enumerate() {
            let Some(conn) = slot else { continue };
            let mut events = 0i16;
            let throttled =
                conn.pending.len() >= MAX_PIPELINE_DEPTH || conn.unparsed() >= RBUF_SOFT_MAX;
            if !conn.closing && !shutting_down && !throttled {
                events |= POLLIN;
            }
            if conn.wpos < conn.wbuf.len() {
                events |= POLLOUT;
            }
            pollfds.push(PollFd {
                fd: conn.stream.as_raw_fd(),
                events,
                revents: 0,
            });
            poll_conns.push(ci);
        }
        let timeout_ms = if shutting_down {
            5
        } else if !batch.items.is_empty() {
            // A held batch caps the wait at its remaining latency budget.
            let elapsed = batch.since.map(|t| t.elapsed()).unwrap_or_default();
            let left = cfg.batch_budget.saturating_sub(elapsed);
            (left.as_millis() as i32).clamp(1, IDLE_POLL_MS)
        } else {
            IDLE_POLL_MS
        };
        if poll_fds(&mut pollfds, timeout_ms).is_err() {
            std::thread::sleep(Duration::from_millis(1));
        }

        // 2. Accept whatever is queued (connections stick to this loop).
        if pollfds[0].revents & (POLLIN | POLLERR) != 0 {
            loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        if shutting_down {
                            // Keep draining the backlog so the listener
                            // does not stay readable all through shutdown.
                            drop(stream);
                            continue;
                        }
                        let _ = stream.set_nonblocking(true);
                        let _ = stream.set_nodelay(true);
                        state.stats.connections.fetch_add(1, Ordering::Relaxed);
                        let conn = Conn::new(stream, next_id);
                        next_id += 1;
                        match free.pop() {
                            Some(ci) => conns[ci] = Some(conn),
                            None => conns.push(Some(conn)),
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(_) => break,
                }
            }
        }

        // 3. Read + parse connections with fresh bytes *or* a backlog of
        //    unparsed input (a previously throttled pipeline must resume
        //    without waiting for new bytes); flush the batch whenever it
        //    fills so queue depth stays bounded by `batch_max`.
        for (pi, &ci) in poll_conns.iter().enumerate() {
            let revents = pollfds[pi + 1].revents;
            let readable = revents & (POLLIN | POLLHUP | POLLERR | POLLNVAL) != 0;
            let backlog = conns[ci]
                .as_ref()
                .is_some_and(|c| c.unparsed() > 0 && !c.closing);
            if !readable && !backlog {
                continue;
            }
            let mut eof = false;
            if readable {
                let Some(conn) = conns[ci].as_mut() else {
                    continue;
                };
                match conn.try_read(&mut chunk) {
                    Ok(e) => eof = e,
                    Err(_) => {
                        // Hard read error (reset): nothing more to deliver.
                        conns[ci] = None;
                        free.push(ci);
                        continue;
                    }
                }
            }
            while let Some(conn) = conns[ci].as_mut() {
                match process_conn(state, cfg, &mut batch, conn, ci, &mut scratch) {
                    Progress::Done => break,
                    Progress::BatchFull => flush_batch(state, &mut batch, &mut conns, &mut scratch),
                }
            }
            if eof {
                if let Some(conn) = conns[ci].as_mut() {
                    conn.closing = true;
                }
            }
        }

        // 4. Flush the batch: immediately with a zero budget, otherwise
        //    when the oldest entry has waited out the budget (or we are
        //    shutting down and must answer everything now).
        let budget_spent = batch
            .since
            .map(|t| t.elapsed() >= cfg.batch_budget)
            .unwrap_or(false);
        if !batch.items.is_empty() && (cfg.batch_budget.is_zero() || budget_spent || shutting_down)
        {
            flush_batch(state, &mut batch, &mut conns, &mut scratch);
        }

        // 5. Drain in-order responses into write buffers and push bytes.
        for (ci, slot) in conns.iter_mut().enumerate() {
            let Some(conn) = slot.as_mut() else {
                continue;
            };
            conn.drain_ready();
            let write_failed = conn.wpos < conn.wbuf.len() && conn.try_write().is_err();
            let fully_drained = conn.closing && conn.wbuf.is_empty() && conn.pending.is_empty();
            if write_failed || fully_drained {
                *slot = None;
                free.push(ci);
            }
        }
    }
}
