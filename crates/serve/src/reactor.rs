//! The poll(2)-based readiness event loop behind [`crate::Server`].
//!
//! A fixed pool of event-loop threads (one per `worker`) multiplexes all
//! connections over non-blocking sockets: each loop polls its connections
//! plus the shared listener, reads whatever is ready, parses complete
//! requests out of per-connection buffers, and writes responses back as
//! sockets accept them.  No thread ever blocks on one client, so thousands
//! of idle keep-alive connections cost one `pollfd` each instead of a
//! pinned thread.
//!
//! ## Protocol auto-detection
//!
//! The first byte of a connection selects its protocol for life: the
//! binary frame magic starts with `0xB1` (not valid ASCII), anything else
//! is the legacy line protocol.
//!
//! ## Pipelining and response ordering
//!
//! Clients may pipeline: each parsed request claims the next *slot* in the
//! connection's pending queue, and slots drain to the socket strictly in
//! claim order.  Inline commands (`ping`, `info`, …) fill their slot
//! immediately; `route` queries fill theirs when their batch executes —
//! later inline responses wait behind them, so responses always come back
//! in request order.
//!
//! ## Batching and load-shedding
//!
//! Admitted `route` queries from *all* connections of a loop coalesce into
//! one batch, flushed when it reaches [`crate::ServerConfig::batch_max`],
//! when the oldest entry has waited [`crate::ServerConfig::batch_budget`],
//! or at the end of a poll iteration (whichever is first) — the natural
//! batch is therefore "whatever arrived while the previous batch was
//! executing", which adapts to load with zero added latency when the
//! budget is zero.  Batches at or above [`PARALLEL_BATCH_MIN`] execute via
//! [`Engine::route_many`]; smaller ones run serially on the loop's single
//! pooled scratch, so a server never creates more scratches than workers.
//! Queries that cannot win a slot in their dataset's bounded admission
//! queue are answered `BUSY` immediately (see [`crate::queue`]).

// A request-path file: panics here are outages, not control flow (see the
// `no-panic-hot-path` rule of l2r-analyze).  The clippy pair of that gate:
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use l2r_core::{Engine, QueryScratch, RouteResult, RouteStrategy};
use l2r_road_network::codec::Reader;
use l2r_road_network::codec::Writer;
use l2r_road_network::VertexId;

use crate::faults::FaultPlan;
use crate::frame::{self, FrameParse, Opcode, Status, MAX_BATCH_PAIRS, MAX_NAME, MAX_PATH};
use crate::health::DatasetHealth;
use crate::queue::DatasetQueue;
use crate::{
    do_reload, format_route_response, panic_message, respond_line, ServerConfig, ServerState,
};

/// Batches at or above this size execute through [`Engine::route_many`]
/// (parallel fan-out); smaller ones run serially on the loop's pooled
/// scratch, which is faster below the fan-out overhead.
pub const PARALLEL_BATCH_MIN: usize = 256;

/// Per-connection cap on unanswered pipelined requests; beyond it the loop
/// stops reading from the connection until responses drain (backpressure).
const MAX_PIPELINE_DEPTH: usize = 1024;

/// Stop reading a connection whose unparsed input exceeds this (resumes as
/// soon as the parser catches up).
const RBUF_SOFT_MAX: usize = 2 * (1 << 20);

/// Longest ASCII request line accepted, as in the PR 5 server.
const MAX_REQUEST_LINE: usize = 64 * 1024;

/// Poll timeout while idle; bounds how stale the shutdown-flag check and
/// the batch-budget clock can get.
const IDLE_POLL_MS: i32 = 50;

/// A coalescing batch flushes once its earliest member's deadline is this
/// close, so batching never pushes a request past its budget.
const DEADLINE_FLUSH_SLACK: Duration = Duration::from_millis(5);

// ---------------------------------------------------------------------------
// poll(2) FFI (the workspace is dependency-free, so no libc crate)
//
// l2r: ffi-region begin — the only place in the workspace allowed to
// declare foreign functions (enforced by the `ffi-containment` rule of
// l2r-analyze); everything below is audited against the platform ABI.
// ---------------------------------------------------------------------------

const POLLIN: i16 = 0x001;
const POLLOUT: i16 = 0x004;
const POLLERR: i16 = 0x008;
const POLLHUP: i16 = 0x010;
const POLLNVAL: i16 = 0x020;

/// Mirror of glibc's `struct pollfd` (`<bits/poll.h>`): three naturally
/// aligned fields, no padding, so `#[repr(C)]` on exactly `i32`/`i16`/`i16`
/// reproduces the kernel's layout bit for bit.
#[repr(C)]
#[derive(Clone, Copy)]
struct PollFd {
    fd: i32,
    events: i16,
    revents: i16,
}

// SAFETY: signatures transcribed from the platform ABI.  `poll(2)` is
// `int poll(struct pollfd *fds, nfds_t nfds, int timeout)` where glibc
// defines `typedef unsigned long int nfds_t;` (<sys/poll.h>) — 8 bytes on
// LP64 Linux, exactly `std::ffi::c_ulong`, so passing `fds.len()` as
// `c_ulong` cannot truncate.  `setsockopt(2)` is
// `int setsockopt(int, int, int, const void *, socklen_t)` with
// `socklen_t` = `u32`.  Both are async-signal-safe libc symbols with no
// Rust-visible preconditions beyond pointer validity, which each call
// site justifies.
extern "C" {
    fn poll(fds: *mut PollFd, nfds: std::ffi::c_ulong, timeout: std::ffi::c_int) -> i32;
    fn setsockopt(
        fd: std::ffi::c_int,
        level: std::ffi::c_int,
        optname: std::ffi::c_int,
        optval: *const std::ffi::c_void,
        optlen: u32,
    ) -> std::ffi::c_int;
}

// Linux values (the poll constants above are equally platform-specific).
const SOL_SOCKET: i32 = 1;
const SO_SNDBUF: i32 = 7;
// l2r: ffi-region end

/// Shrinks a socket's kernel send buffer (best effort) — fault plans use
/// this to make write-stall detection testable with kilobytes of backlog
/// instead of the default multi-megabyte buffers.
fn set_sndbuf(stream: &TcpStream, bytes: u32) {
    let v = bytes as i32;
    // SAFETY: `stream` is a live socket owned by the caller, so its raw fd
    // is valid for the duration of the call; `&v` points at a stack `i32`
    // that outlives the call and `optlen` is exactly `size_of::<i32>()`,
    // matching what SO_SNDBUF expects.  The kernel only reads through the
    // pointer.  Failure is deliberately ignored (best effort).
    unsafe {
        setsockopt(
            stream.as_raw_fd(),
            SOL_SOCKET,
            SO_SNDBUF,
            &v as *const i32 as *const std::ffi::c_void,
            std::mem::size_of::<i32>() as u32,
        );
    }
}

/// `poll(2)` with EINTR retry; a genuine failure is returned to the caller
/// (the loop treats it as "nothing ready").
fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    loop {
        // SAFETY: `fds` is a live, exclusively borrowed slice, so the
        // pointer is valid for `fds.len()` `PollFd`s (layout-verified
        // `#[repr(C)]` above) for the whole call, and the kernel writes
        // only `revents` within those bounds.  `len as c_ulong` is the
        // exact `nfds_t` width (see the extern block's SAFETY note).
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as std::ffi::c_ulong, timeout_ms) };
        if rc >= 0 {
            return Ok(rc as usize);
        }
        let e = io::Error::last_os_error();
        if e.kind() != io::ErrorKind::Interrupted {
            return Err(e);
        }
    }
}

// ---------------------------------------------------------------------------
// Connections
// ---------------------------------------------------------------------------

/// What a connection speaks; fixed by its first byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Protocol {
    /// No byte received yet.
    Detecting,
    /// Legacy `\n`-terminated line protocol.
    Ascii,
    /// Length-prefixed binary frames ([`crate::frame`]).
    Binary,
}

/// One multiplexed connection.
struct Conn {
    stream: TcpStream,
    /// Generation tag: batch items verify it before filling a slot, so a
    /// reused connection index can never receive a dead client's response.
    id: u64,
    protocol: Protocol,
    /// Received-but-unparsed bytes; `rpos` is the consumed prefix.
    rbuf: Vec<u8>,
    rpos: usize,
    /// Encoded-but-unsent response bytes; `wpos` is the sent prefix.
    wbuf: Vec<u8>,
    wpos: usize,
    /// One slot per parsed request, drained to `wbuf` strictly in order.
    /// `None` = response not ready yet (a route waiting in a batch).
    pending: VecDeque<Option<Vec<u8>>>,
    /// Slot sequence number of `pending.front()`.
    base_seq: u64,
    /// Stop reading, flush what is pending, then close.
    closing: bool,
    /// When the connection last delivered bytes (drives idle reaping).
    last_activity: Instant,
    /// When the outbound backlog first exceeded the write-stall cap
    /// (`None` while below it); drives slow-loris disconnection.
    wstall_since: Option<Instant>,
}

impl Conn {
    fn new(stream: TcpStream, id: u64) -> Conn {
        Conn {
            stream,
            id,
            protocol: Protocol::Detecting,
            rbuf: Vec::new(),
            rpos: 0,
            wbuf: Vec::new(),
            wpos: 0,
            pending: VecDeque::new(),
            base_seq: 0,
            closing: false,
            last_activity: Instant::now(),
            wstall_since: None,
        }
    }

    fn unparsed(&self) -> usize {
        self.rbuf.len() - self.rpos
    }

    /// Claims the next response slot, returning its sequence number.
    fn claim_slot(&mut self) -> u64 {
        self.pending.push_back(None);
        self.base_seq + self.pending.len() as u64 - 1
    }

    /// Claims a slot and fills it immediately (inline commands).
    fn push_response(&mut self, bytes: Vec<u8>) {
        self.pending.push_back(Some(bytes));
    }

    /// Fills a previously claimed slot.
    fn fill_slot(&mut self, seq: u64, bytes: Vec<u8>) {
        let idx = (seq - self.base_seq) as usize;
        debug_assert!(idx < self.pending.len());
        if let Some(slot) = self.pending.get_mut(idx) {
            debug_assert!(slot.is_none(), "slot {seq} filled twice");
            *slot = Some(bytes);
        }
    }

    /// Moves ready responses (in order) into the write buffer.
    fn drain_ready(&mut self) {
        while let Some(slot) = self.pending.front_mut() {
            // A `None` front is a response still being computed: stop —
            // later ready slots must wait behind it for ordering.
            let Some(bytes) = slot.take() else { break };
            self.pending.pop_front();
            self.base_seq += 1;
            self.wbuf.extend_from_slice(&bytes);
        }
    }

    /// Reads until `WouldBlock`, EOF, or the soft input cap.  Returns
    /// `Ok(true)` on EOF.  An injected short read delivers only a few
    /// bytes and returns early, so the parser sees a genuine fragment.
    fn try_read(&mut self, chunk: &mut [u8], faults: Option<&FaultPlan>) -> io::Result<bool> {
        loop {
            if self.unparsed() >= RBUF_SOFT_MAX {
                return Ok(false);
            }
            let cap = faults.and_then(|f| f.short_read_cap());
            let window = cap.unwrap_or(chunk.len()).min(chunk.len());
            match self.stream.read(&mut chunk[..window]) {
                Ok(0) => return Ok(true),
                Ok(n) => {
                    self.rbuf.extend_from_slice(&chunk[..n]);
                    self.last_activity = Instant::now();
                    if cap.is_some() {
                        return Ok(false);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// Writes as much of `wbuf` as the socket accepts right now.  An
    /// injected short write flushes only a few bytes and stops, leaving
    /// the rest buffered for the next readiness round.
    fn try_write(&mut self, faults: Option<&FaultPlan>) -> io::Result<()> {
        while self.wpos < self.wbuf.len() {
            let cap = faults.and_then(|f| f.short_write_cap());
            let end = match cap {
                Some(c) => (self.wpos + c).min(self.wbuf.len()),
                None => self.wbuf.len(),
            };
            match self.stream.write(&self.wbuf[self.wpos..end]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => {
                    self.wpos += n;
                    if cap.is_some() {
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        if self.wpos == self.wbuf.len() {
            self.wbuf.clear();
            self.wpos = 0;
        }
        Ok(())
    }

    /// Reclaims consumed input-buffer space once the parser has caught up
    /// (or the consumed prefix got large).
    fn compact(&mut self) {
        if self.rpos == self.rbuf.len() {
            self.rbuf.clear();
            self.rpos = 0;
        } else if self.rpos >= 64 * 1024 {
            self.rbuf.drain(..self.rpos);
            self.rpos = 0;
        }
    }
}

// ---------------------------------------------------------------------------
// The shared route batch
// ---------------------------------------------------------------------------

/// One admitted `route` query waiting for its batch to execute.
struct BatchItem {
    conn: usize,
    conn_id: u64,
    seq: u64,
    engine: Arc<Engine>,
    queue: Arc<DatasetQueue>,
    src: VertexId,
    dst: VertexId,
    /// When this request's budget runs out; checked again at execution and
    /// before the reply is filled.
    deadline: Instant,
    /// The dataset's armed post-swap probation, if any: route outcomes are
    /// recorded against it, and spending its error budget triggers an
    /// automatic rollback (see [`crate::health`]).
    health: Option<Arc<DatasetHealth>>,
}

/// The loop-wide batch of admitted route queries.
struct Batch {
    items: Vec<BatchItem>,
    /// When the oldest item was enqueued (drives the latency budget).
    since: Option<Instant>,
    /// The earliest member deadline: coalescing never waits past it.
    earliest_deadline: Option<Instant>,
}

impl Batch {
    fn push(&mut self, item: BatchItem) {
        if self.items.is_empty() {
            self.since = Some(Instant::now());
        }
        self.earliest_deadline = Some(match self.earliest_deadline {
            Some(d) => d.min(item.deadline),
            None => item.deadline,
        });
        self.items.push(item);
    }
}

/// The absolute deadline of a request given its optional wire budget.
fn request_deadline(cfg: &ServerConfig, deadline_ms: Option<u32>) -> Instant {
    let budget = deadline_ms
        .map(|ms| Duration::from_millis(ms as u64))
        .unwrap_or(cfg.default_deadline);
    Instant::now() + budget
}

/// Encodes a route answer for the connection's protocol.
fn encode_route_result(protocol: Protocol, result: &Option<RouteResult>) -> Vec<u8> {
    match protocol {
        Protocol::Binary => {
            let mut out = Vec::new();
            match result {
                Some(r) => {
                    #[allow(clippy::expect_used)]
                    let strategy = RouteStrategy::ALL
                        .iter()
                        .position(|s| *s == r.strategy)
                        // l2r: allow(no-panic-hot-path) — `ALL` enumerates
                        // every RouteStrategy variant, so the position
                        // lookup cannot fail.
                        .expect("every strategy is in ALL")
                        as u8;
                    let mut w = Writer::new();
                    w.u8(strategy);
                    let vertices = r.path.vertices();
                    w.length(vertices.len());
                    for v in vertices {
                        w.u32(v.0);
                    }
                    frame::write_frame(&mut out, Status::Ok as u8, w.as_slice());
                }
                None => frame::write_frame(&mut out, Status::NoRoute as u8, &[]),
            }
            out
        }
        _ => {
            let mut line = format_route_response(result).into_bytes();
            line.push(b'\n');
            line
        }
    }
}

/// The retriable overload reply for the connection's protocol.
fn encode_busy(protocol: Protocol) -> Vec<u8> {
    match protocol {
        Protocol::Binary => {
            let mut out = Vec::new();
            frame::write_frame(&mut out, Status::Busy as u8, &[]);
            out
        }
        _ => b"BUSY\n".to_vec(),
    }
}

/// The expired-budget reply for the connection's protocol (both sides of
/// the taxonomy table: `DeadlineExceeded` frame / `ERR deadline` line).
fn encode_deadline_exceeded(protocol: Protocol) -> Vec<u8> {
    match protocol {
        Protocol::Binary => binary_frame(Status::DeadlineExceeded, &[]),
        _ => b"ERR deadline exceeded\n".to_vec(),
    }
}

/// The request-scoped internal-failure reply (`Err` frame whose message
/// starts with `internal` / `ERR internal …` line).
fn encode_route_error(protocol: Protocol, message: &str) -> Vec<u8> {
    match protocol {
        Protocol::Binary => binary_err(message),
        _ => format!("ERR {message}\n").into_bytes(),
    }
}

/// A binary response frame carrying just a status and a payload.
fn binary_frame(status: Status, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    frame::write_frame(&mut out, status as u8, payload);
    out
}

/// A binary `ERR` frame with a message payload.
fn binary_err(message: &str) -> Vec<u8> {
    let mut w = Writer::new();
    w.str(message);
    binary_frame(Status::Err, w.as_slice())
}

/// Fills a batch item's response slot if its connection is still the one
/// that issued the request (the generation tag defeats index reuse).
fn fill_outcome(
    conns: &mut [Option<Conn>],
    item: &BatchItem,
    encode: impl FnOnce(Protocol) -> Vec<u8>,
) {
    let live = conns
        .get_mut(item.conn)
        .and_then(|slot| slot.as_mut())
        .filter(|c| c.id == item.conn_id);
    if let Some(conn) = live {
        let bytes = encode(conn.protocol);
        conn.fill_slot(item.seq, bytes);
    }
}

/// Records one route outcome against a dataset's armed probation (if any)
/// and fires the automatic rollback the moment the error budget is spent.
/// Only internal errors (handler panics) count against the model —
/// deadline expiries and shedding never reach this.
fn record_health(state: &ServerState, health: &Option<Arc<DatasetHealth>>, internal_error: bool) {
    if let Some(h) = health {
        if h.record(internal_error) {
            state.trigger_auto_rollback(h);
        }
    }
}

/// Runs one route under panic isolation, with fault hooks.  A handler
/// panic costs exactly this request: the (possibly poisoned) scratch is
/// discarded, `panics_caught` counts the catch, and the caller gets a
/// request-scoped `internal` error message.
fn isolated_route(
    state: &ServerState,
    faults: Option<&FaultPlan>,
    engine: &Engine,
    scratch: &mut QueryScratch,
    src: VertexId,
    dst: VertexId,
) -> Result<Option<RouteResult>, String> {
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        if let Some(f) = faults {
            if let Some(latency) = f.inject_handler_latency() {
                std::thread::sleep(latency);
            }
            if f.inject_handler_panic() {
                // l2r: allow(no-panic-hot-path) — fault injection: this
                // panic exists to prove the catch_unwind isolation works.
                panic!("injected handler fault");
            }
        }
        engine.route(scratch, src, dst)
    }));
    match outcome {
        Ok(result) => Ok(result),
        Err(payload) => {
            // Mid-search state is unusable after an unwind; start fresh
            // (a plain swap, so the pool's created count stays put).
            *scratch = QueryScratch::new();
            state.stats.panics_caught.fetch_add(1, Ordering::Relaxed);
            Err(format!(
                "internal: handler panicked: {}",
                panic_message(&payload)
            ))
        }
    }
}

/// Executes and answers every queued route query, releasing admissions.
/// Deadlines are enforced per item before *and* after execution; handler
/// panics are confined to the item (serial path) or the engine group
/// (parallel path) that raised them.
fn flush_batch(
    state: &ServerState,
    faults: Option<&FaultPlan>,
    batch: &mut Batch,
    conns: &mut [Option<Conn>],
    scratch: &mut QueryScratch,
) {
    if batch.items.is_empty() {
        batch.since = None;
        batch.earliest_deadline = None;
        return;
    }
    let items = std::mem::take(&mut batch.items);
    batch.since = None;
    batch.earliest_deadline = None;
    state.stats.batches.fetch_add(1, Ordering::Relaxed);

    let mut executed = 0u64;
    let mut answered = 0u64;
    let mut expired = 0u64;

    if items.len() < PARALLEL_BATCH_MIN {
        // Small batch: serial on the loop's pooled scratch — no per-batch
        // allocation, no fan-out overhead.
        for item in &items {
            let alive = conns
                .get(item.conn)
                .and_then(|slot| slot.as_ref())
                .is_some_and(|c| c.id == item.conn_id);
            if alive {
                if Instant::now() >= item.deadline {
                    expired += 1;
                    fill_outcome(conns, item, encode_deadline_exceeded);
                } else {
                    match isolated_route(state, faults, &item.engine, scratch, item.src, item.dst) {
                        Ok(result) => {
                            executed += 1;
                            record_health(state, &item.health, false);
                            if Instant::now() >= item.deadline {
                                expired += 1;
                                fill_outcome(conns, item, encode_deadline_exceeded);
                            } else {
                                if result.is_some() {
                                    answered += 1;
                                }
                                fill_outcome(conns, item, |p| encode_route_result(p, &result));
                            }
                        }
                        Err(message) => {
                            record_health(state, &item.health, true);
                            fill_outcome(conns, item, |p| encode_route_error(p, &message));
                        }
                    }
                }
            }
            item.queue.release(1);
        }
    } else {
        // Large batch: resolve expiry and injected faults per item first,
        // then group the survivors by engine and fan out through
        // `route_many`.  (Injected faults are drawn per query here too, so
        // `panics_caught` accounting matches the serial path exactly; a
        // *real* panic inside the fan-out fails its whole engine group —
        // the price of sharing one parallel execution.)
        let now = Instant::now();
        let mut runnable = vec![true; items.len()];
        for (i, item) in items.iter().enumerate() {
            let alive = conns
                .get(item.conn)
                .and_then(|slot| slot.as_ref())
                .is_some_and(|c| c.id == item.conn_id);
            if !alive {
                runnable[i] = false;
            } else if now >= item.deadline {
                runnable[i] = false;
                expired += 1;
                fill_outcome(conns, item, encode_deadline_exceeded);
            } else if let Some(f) = faults {
                if let Some(latency) = f.inject_handler_latency() {
                    std::thread::sleep(latency);
                }
                if f.inject_handler_panic() {
                    runnable[i] = false;
                    state.stats.panics_caught.fetch_add(1, Ordering::Relaxed);
                    record_health(state, &item.health, true);
                    fill_outcome(conns, item, |p| {
                        encode_route_error(p, "internal: handler panicked: injected handler fault")
                    });
                }
            }
        }
        let mut groups: HashMap<usize, Vec<usize>> = HashMap::new();
        for (i, item) in items.iter().enumerate() {
            if runnable[i] {
                groups
                    .entry(Arc::as_ptr(&item.engine) as usize)
                    .or_default()
                    .push(i);
            }
        }
        for indices in groups.values() {
            let engine = &items[indices[0]].engine;
            let pairs: Vec<(VertexId, VertexId)> = indices
                .iter()
                .map(|&i| (items[i].src, items[i].dst))
                .collect();
            match catch_unwind(AssertUnwindSafe(|| engine.route_many(&pairs))) {
                Ok(results) => {
                    executed += pairs.len() as u64;
                    for (&i, result) in indices.iter().zip(results.iter()) {
                        record_health(state, &items[i].health, false);
                        if Instant::now() >= items[i].deadline {
                            expired += 1;
                            fill_outcome(conns, &items[i], encode_deadline_exceeded);
                        } else {
                            if result.is_some() {
                                answered += 1;
                            }
                            fill_outcome(conns, &items[i], |p| encode_route_result(p, result));
                        }
                    }
                }
                Err(payload) => {
                    state.stats.panics_caught.fetch_add(1, Ordering::Relaxed);
                    let message =
                        format!("internal: handler panicked: {}", panic_message(&payload));
                    for &i in indices {
                        record_health(state, &items[i].health, true);
                        fill_outcome(conns, &items[i], |p| encode_route_error(p, &message));
                    }
                }
            }
        }
        for item in &items {
            item.queue.release(1);
        }
    }
    state.stats.queries.fetch_add(executed, Ordering::Relaxed);
    state.stats.answered.fetch_add(answered, Ordering::Relaxed);
    state
        .stats
        .deadline_exceeded
        .fetch_add(expired, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Request handling
// ---------------------------------------------------------------------------

/// Outcome of one `process_conn` pass.
#[derive(PartialEq, Eq)]
enum Progress {
    /// Parsed everything currently parseable.
    Done,
    /// Stopped because the batch hit `batch_max`; flush and call again.
    BatchFull,
}

/// Admits one route query into the batch (or answers `BUSY`; an already
/// expired deadline answers `DeadlineExceeded` without costing a queue
/// slot — admission-time enforcement).
#[allow(clippy::too_many_arguments)]
fn enqueue_route(
    state: &ServerState,
    batch: &mut Batch,
    conn: &mut Conn,
    ci: usize,
    dataset: &str,
    engine: Arc<Engine>,
    src: VertexId,
    dst: VertexId,
    deadline: Instant,
) {
    if Instant::now() >= deadline {
        state
            .stats
            .deadline_exceeded
            .fetch_add(1, Ordering::Relaxed);
        let reply = encode_deadline_exceeded(conn.protocol);
        conn.push_response(reply);
        return;
    }
    let queue = state.queues.get(dataset);
    if !queue.try_admit(1) {
        state.stats.shed.fetch_add(1, Ordering::Relaxed);
        let busy = encode_busy(conn.protocol);
        conn.push_response(busy);
        return;
    }
    let seq = conn.claim_slot();
    let health = state.health.watch(dataset);
    batch.push(BatchItem {
        conn: ci,
        conn_id: conn.id,
        seq,
        engine,
        queue,
        src,
        dst,
        deadline,
        health,
    });
}

/// Handles one ASCII request line.  Returns `true` if it was `shutdown`.
#[allow(clippy::too_many_arguments)]
fn handle_ascii_line(
    state: &ServerState,
    cfg: &ServerConfig,
    batch: &mut Batch,
    conn: &mut Conn,
    ci: usize,
    scratch: &mut QueryScratch,
    line: &str,
) -> bool {
    let request = line.trim();
    if request.is_empty() {
        return false;
    }
    // Fast path: a well-formed `route` on a known dataset goes through
    // admission + batching; everything else (including malformed routes,
    // which need the protocol's exact ERR lines) runs inline.
    'fast: {
        let mut parts = request.split_whitespace();
        if parts.next() != Some("route") {
            break 'fast;
        }
        let (Some(dataset), Some(s), Some(d)) = (parts.next(), parts.next(), parts.next()) else {
            break 'fast;
        };
        let deadline_tok = parts.next();
        if parts.next().is_some() {
            break 'fast;
        }
        let (Ok(s), Ok(d)) = (s.parse::<u32>(), d.parse::<u32>()) else {
            break 'fast;
        };
        let deadline_ms = match deadline_tok {
            None => None,
            Some(raw) => match raw.parse::<u32>() {
                Ok(ms) => Some(ms),
                Err(_) => break 'fast,
            },
        };
        let Some(engine) = state.registry.get(dataset) else {
            break 'fast;
        };
        let deadline = request_deadline(cfg, deadline_ms);
        enqueue_route(
            state,
            batch,
            conn,
            ci,
            dataset,
            engine,
            VertexId(s),
            VertexId(d),
            deadline,
        );
        return false;
    }
    // Inline commands run under the same panic isolation as batched
    // routes: a panicking handler answers `ERR internal …` and the
    // connection (and loop) live on.
    let outcome = catch_unwind(AssertUnwindSafe(|| respond_line(state, scratch, request)));
    let (response, shutdown) = match outcome {
        Ok(pair) => pair,
        Err(payload) => {
            *scratch = QueryScratch::new();
            state.stats.panics_caught.fetch_add(1, Ordering::Relaxed);
            (
                format!(
                    "ERR internal: handler panicked: {}",
                    panic_message(&payload)
                ),
                false,
            )
        }
    };
    let mut bytes = response.into_bytes();
    bytes.push(b'\n');
    conn.push_response(bytes);
    shutdown
}

/// Handles one well-framed binary request.  Returns `true` on `shutdown`.
#[allow(clippy::too_many_arguments)]
fn handle_frame(
    state: &ServerState,
    cfg: &ServerConfig,
    faults: Option<&FaultPlan>,
    batch: &mut Batch,
    conn: &mut Conn,
    ci: usize,
    scratch: &mut QueryScratch,
    kind: u8,
    payload: &[u8],
) -> bool {
    // A malformed *payload* inside a well-formed frame only fails this
    // request; the stream stays synchronised and the connection serves on.
    let fail = |conn: &mut Conn, message: String| {
        state.stats.errors.fetch_add(1, Ordering::Relaxed);
        conn.push_response(binary_err(&message));
    };
    let Some(opcode) = Opcode::from_u8(kind) else {
        fail(conn, format!("unknown opcode {kind:#04x}"));
        return false;
    };
    let mut r = Reader::new(payload);
    match opcode {
        Opcode::Ping => conn.push_response(binary_frame(Status::Ok, &[])),
        Opcode::Route => {
            let decoded = (|| {
                let dataset = r.str("route dataset", MAX_NAME)?;
                let src = r.u32("route source")?;
                let dst = r.u32("route destination")?;
                let deadline_ms = if r.is_exhausted() {
                    None
                } else {
                    Some(r.u32("route deadline")?)
                };
                Ok::<_, l2r_road_network::codec::CodecError>((dataset, src, dst, deadline_ms))
            })();
            match decoded {
                Ok((dataset, src, dst, deadline_ms)) => match state.registry.get(dataset) {
                    Some(engine) => {
                        let deadline = request_deadline(cfg, deadline_ms);
                        enqueue_route(
                            state,
                            batch,
                            conn,
                            ci,
                            dataset,
                            engine,
                            VertexId(src),
                            VertexId(dst),
                            deadline,
                        );
                    }
                    None => fail(conn, format!("unknown dataset `{dataset}`")),
                },
                Err(e) => fail(conn, format!("bad route payload: {e}")),
            }
        }
        Opcode::RouteBatch => {
            let decoded = (|| {
                let dataset = r.str("batch dataset", MAX_NAME)?.to_string();
                let n = r.u32("batch size")? as usize;
                if n == 0 || n > MAX_BATCH_PAIRS || n > r.remaining() / 8 {
                    return Err(l2r_road_network::codec::CodecError::ImplausibleLength {
                        what: "batch size",
                        len: n as u64,
                    });
                }
                let mut pairs = Vec::with_capacity(n);
                for _ in 0..n {
                    pairs.push((r.u32("batch source")?, r.u32("batch destination")?));
                }
                let deadline_ms = if r.is_exhausted() {
                    None
                } else {
                    Some(r.u32("batch deadline")?)
                };
                Ok((dataset, pairs, deadline_ms))
            })();
            let (dataset, pairs, deadline_ms) = match decoded {
                Ok(v) => v,
                Err(e) => {
                    fail(conn, format!("bad route_batch payload: {e}"));
                    return false;
                }
            };
            let Some(engine) = state.registry.get(&dataset) else {
                fail(conn, format!("unknown dataset `{dataset}`"));
                return false;
            };
            // The shared budget is enforced for the batch as a whole: if
            // it is already spent, every pair is expired (no queue slots).
            let deadline = request_deadline(cfg, deadline_ms);
            if Instant::now() >= deadline {
                state
                    .stats
                    .deadline_exceeded
                    .fetch_add(pairs.len() as u64, Ordering::Relaxed);
                conn.push_response(encode_deadline_exceeded(conn.protocol));
                return false;
            }
            // A client-side batch executes inline as one unit: it must win
            // admission for all its queries or be shed as a whole.
            let queue = state.queues.get(&dataset);
            if !queue.try_admit(pairs.len()) {
                state
                    .stats
                    .shed
                    .fetch_add(pairs.len() as u64, Ordering::Relaxed);
                conn.push_response(encode_busy(conn.protocol));
                return false;
            }
            let mut w = Writer::new();
            w.u32(pairs.len() as u32);
            let mut answered = 0u32;
            let mut executed = 0u64;
            let mut body = Writer::new();
            let mut internal: Option<String> = None;
            let health = state.health.watch(&dataset);
            for &(s, d) in &pairs {
                let outcome =
                    isolated_route(state, faults, &engine, scratch, VertexId(s), VertexId(d));
                record_health(state, &health, outcome.is_err());
                match outcome {
                    Ok(Some(result)) => {
                        executed += 1;
                        answered += 1;
                        #[allow(clippy::expect_used)]
                        let strategy = RouteStrategy::ALL
                            .iter()
                            .position(|st| *st == result.strategy)
                            // l2r: allow(no-panic-hot-path) — `ALL`
                            // enumerates every RouteStrategy variant, so
                            // the position lookup cannot fail.
                            .expect("every strategy is in ALL")
                            as u8;
                        body.u8(strategy);
                        body.u32(result.path.vertices().len() as u32);
                    }
                    Ok(None) => {
                        executed += 1;
                        body.u8(u8::MAX);
                        body.u32(0);
                    }
                    // The batch reply format has no per-item error slot, so
                    // the first panic fails the whole batch request-scoped.
                    Err(message) => {
                        internal = Some(message);
                        break;
                    }
                }
            }
            queue.release(pairs.len());
            state.stats.queries.fetch_add(executed, Ordering::Relaxed);
            state
                .stats
                .answered
                .fetch_add(answered as u64, Ordering::Relaxed);
            match internal {
                Some(message) => conn.push_response(binary_err(&message)),
                None => {
                    w.u32(answered);
                    let mut payload = w.into_vec();
                    payload.extend_from_slice(body.as_slice());
                    conn.push_response(binary_frame(Status::Ok, &payload));
                }
            }
        }
        Opcode::Info => match r.str("info dataset", MAX_NAME) {
            Ok(dataset) => match state.registry.get(dataset) {
                Some(engine) => {
                    let mut w = Writer::new();
                    w.u64(engine.network().num_vertices() as u64);
                    w.u64(engine.network().num_edges() as u64);
                    w.u64(engine.region_graph().num_regions() as u64);
                    w.u64(engine.num_connectors() as u64);
                    w.u64(state.registry.generation(dataset).unwrap_or(0));
                    w.str(dataset);
                    conn.push_response(binary_frame(Status::Ok, w.as_slice()));
                }
                None => fail(conn, format!("unknown dataset `{dataset}`")),
            },
            Err(e) => fail(conn, format!("bad info payload: {e}")),
        },
        Opcode::Stats => {
            // The human-readable line first (back-compat), then the same
            // counters as machine-readable pairs appended after it — old
            // clients stop at the string, new ones read the pairs.
            let mut w = Writer::new();
            w.str(&state.stats_line());
            let fields = state.stats_fields();
            w.u32(fields.len() as u32);
            for (key, value) in &fields {
                w.str(key);
                w.u64(*value);
            }
            conn.push_response(binary_frame(Status::Ok, w.as_slice()));
        }
        Opcode::Reload => {
            let decoded = (|| {
                let dataset = r.str("reload dataset", MAX_NAME)?.to_string();
                let path = r.str("reload path", MAX_PATH)?.to_string();
                let spec = if r.is_exhausted() {
                    None
                } else {
                    Some(r.str("reload spec", MAX_NAME)?.to_string())
                };
                Ok::<_, l2r_road_network::codec::CodecError>((dataset, path, spec))
            })();
            match decoded {
                Ok((dataset, path, spec)) => {
                    match do_reload(state, &dataset, &path, spec.as_deref()) {
                        Ok(generation) => {
                            let mut w = Writer::new();
                            w.u64(generation);
                            conn.push_response(binary_frame(Status::Ok, w.as_slice()));
                        }
                        Err(message) => fail(conn, message),
                    }
                }
                Err(e) => fail(conn, format!("bad reload payload: {e}")),
            }
        }
        Opcode::Rollback => match r.str("rollback dataset", MAX_NAME) {
            Ok(dataset) => match state.rollback(dataset) {
                Ok(generation) => {
                    let mut w = Writer::new();
                    w.u64(generation);
                    conn.push_response(binary_frame(Status::Ok, w.as_slice()));
                }
                Err(message) => fail(conn, message),
            },
            Err(e) => fail(conn, format!("bad rollback payload: {e}")),
        },
        Opcode::Shutdown => {
            conn.push_response(binary_frame(Status::Ok, &[]));
            return true;
        }
    }
    false
}

/// Parses and handles every complete request in `conn`'s input buffer,
/// stopping early (with [`Progress::BatchFull`]) when the shared batch
/// needs flushing.
fn process_conn(
    state: &ServerState,
    cfg: &ServerConfig,
    faults: Option<&FaultPlan>,
    batch: &mut Batch,
    conn: &mut Conn,
    ci: usize,
    scratch: &mut QueryScratch,
) -> Progress {
    while !conn.closing && conn.unparsed() > 0 {
        if batch.items.len() >= cfg.batch_max {
            return Progress::BatchFull;
        }
        if conn.protocol == Protocol::Detecting {
            conn.protocol = if conn.rbuf[conn.rpos] == frame::FRAME_MAGIC[0] {
                Protocol::Binary
            } else {
                Protocol::Ascii
            };
        }
        match conn.protocol {
            Protocol::Ascii => {
                let buf = &conn.rbuf[conn.rpos..];
                let Some(nl) = buf.iter().position(|&b| b == b'\n') else {
                    if buf.len() > MAX_REQUEST_LINE {
                        state.stats.errors.fetch_add(1, Ordering::Relaxed);
                        conn.push_response(b"ERR request line exceeds the size limit\n".to_vec());
                        conn.closing = true;
                    }
                    break;
                };
                let line = String::from_utf8_lossy(&buf[..nl]).into_owned();
                conn.rpos += nl + 1;
                if handle_ascii_line(state, cfg, batch, conn, ci, scratch, &line) {
                    conn.closing = true;
                    state.request_shutdown();
                }
            }
            Protocol::Binary => match frame::parse_frame(&conn.rbuf[conn.rpos..]) {
                FrameParse::Incomplete => break,
                FrameParse::Frame {
                    kind,
                    payload,
                    consumed,
                } => {
                    // The payload borrows the input buffer while the
                    // handler needs `&mut Conn`: copy it out (requests are
                    // small; responses dominate traffic).
                    let payload = payload.to_vec();
                    conn.rpos += consumed;
                    if handle_frame(state, cfg, faults, batch, conn, ci, scratch, kind, &payload) {
                        conn.closing = true;
                        state.request_shutdown();
                    }
                }
                FrameParse::Bad(e) => {
                    // Framing violations are connection-fatal: one final
                    // ERR frame, then close (the stream cannot resync).
                    state.stats.errors.fetch_add(1, Ordering::Relaxed);
                    conn.push_response(binary_err(&e.to_string()));
                    conn.closing = true;
                    break;
                }
            },
            // l2r: allow(no-panic-hot-path) — `detect_protocol` ran before
            // this match and never leaves `Detecting` when bytes exist;
            // even if violated, the per-request catch_unwind contains it.
            Protocol::Detecting => unreachable!("protocol detected above"),
        }
    }
    conn.compact();
    Progress::Done
}

// ---------------------------------------------------------------------------
// The event loop
// ---------------------------------------------------------------------------

/// Keeps the server-wide open-connection gauge honest for one event loop:
/// every accept adds, every drop subtracts, and — critically — an unwinding
/// loop (injected worker kill, or a bug that escapes request isolation)
/// subtracts everything it still owned on `Drop`, so a respawned worker
/// starts from a truthful gauge and drains leave it at exactly zero.
struct OpenConns<'a> {
    gauge: &'a AtomicUsize,
    owned: usize,
}

impl<'a> OpenConns<'a> {
    fn new(gauge: &'a AtomicUsize) -> OpenConns<'a> {
        OpenConns { gauge, owned: 0 }
    }

    /// Claims a connection slot unless the server-wide cap is reached.
    fn try_add(&mut self, cap: usize) -> bool {
        let won = self
            .gauge
            // ordering: SeqCst — the gauge is a cross-loop admission
            // control read by drains and the connection cap; the cheap
            // accept path keeps the strongest ordering so cap enforcement
            // can never observe a stale count.
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
                (n < cap).then_some(n + 1)
            })
            .is_ok();
        if won {
            self.owned += 1;
        }
        won
    }

    fn remove(&mut self) {
        debug_assert!(self.owned > 0);
        self.owned -= 1;
        // ordering: SeqCst — pairs with try_add; drains poll this gauge
        // for zero, so releases must be globally ordered with claims.
        self.gauge.fetch_sub(1, Ordering::SeqCst);
    }
}

impl Drop for OpenConns<'_> {
    fn drop(&mut self) {
        // ordering: SeqCst — pairs with try_add/remove; an unwinding loop
        // must publish its released slots before the watchdog respawns it.
        self.gauge.fetch_sub(self.owned, Ordering::SeqCst);
    }
}

/// Runs one event loop until shutdown completes.  `workers` of these share
/// the (non-blocking) listener.
pub(crate) fn event_loop(listener: TcpListener, state: &ServerState, cfg: &ServerConfig) {
    let _ = listener.set_nonblocking(true);
    let faults = cfg.faults.as_deref();
    // Exactly one pooled scratch per event loop, for the life of the loop:
    // peak pool size can never exceed the worker count.
    let mut scratch = state.scratch.acquire();
    let mut conns: Vec<Option<Conn>> = Vec::new();
    let mut free: Vec<usize> = Vec::new();
    let mut open = OpenConns::new(&state.open_conns);
    let mut batch = Batch {
        items: Vec::new(),
        since: None,
        earliest_deadline: None,
    };
    let mut pollfds: Vec<PollFd> = Vec::new();
    let mut poll_conns: Vec<usize> = Vec::new();
    let mut chunk = vec![0u8; 64 * 1024];
    let mut next_id: u64 = 1;
    let mut drain_deadline: Option<Instant> = None;

    loop {
        let shutting_down = state.shutdown_requested();
        if shutting_down {
            let deadline =
                *drain_deadline.get_or_insert_with(|| Instant::now() + cfg.drain_deadline);
            let all_idle = conns.iter().flatten().all(|c| c.wbuf.is_empty())
                && batch.items.is_empty()
                && conns.iter().flatten().all(|c| c.pending.is_empty());
            if all_idle || Instant::now() >= deadline {
                break;
            }
        }

        // 1. Poll the listener plus every live connection.
        pollfds.clear();
        poll_conns.clear();
        pollfds.push(PollFd {
            fd: listener.as_raw_fd(),
            events: POLLIN,
            revents: 0,
        });
        for (ci, slot) in conns.iter().enumerate() {
            let Some(conn) = slot else { continue };
            let mut events = 0i16;
            let throttled =
                conn.pending.len() >= MAX_PIPELINE_DEPTH || conn.unparsed() >= RBUF_SOFT_MAX;
            if !conn.closing && !shutting_down && !throttled {
                events |= POLLIN;
            }
            if conn.wpos < conn.wbuf.len() {
                events |= POLLOUT;
            }
            pollfds.push(PollFd {
                fd: conn.stream.as_raw_fd(),
                events,
                revents: 0,
            });
            poll_conns.push(ci);
        }
        let timeout_ms = if shutting_down {
            5
        } else if !batch.items.is_empty() {
            // A held batch caps the wait at its remaining latency budget —
            // and never waits past its earliest member's deadline.
            let elapsed = batch.since.map(|t| t.elapsed()).unwrap_or_default();
            let budget_left = cfg.batch_budget.saturating_sub(elapsed);
            let deadline_left = batch
                .earliest_deadline
                .map(|d| {
                    d.saturating_duration_since(Instant::now())
                        .saturating_sub(DEADLINE_FLUSH_SLACK)
                })
                .unwrap_or(budget_left);
            let left = budget_left.min(deadline_left);
            (left.as_millis() as i32).clamp(1, IDLE_POLL_MS)
        } else {
            IDLE_POLL_MS
        };
        if poll_fds(&mut pollfds, timeout_ms).is_err() {
            std::thread::sleep(Duration::from_millis(1));
        }

        // 2. Accept whatever is queued (connections stick to this loop).
        if pollfds[0].revents & (POLLIN | POLLERR) != 0 {
            loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        // Re-check the flag per accept: a drain that began
                        // mid-burst must refuse the rest of the burst.
                        if state.shutdown_requested() {
                            // Keep draining the backlog so the listener
                            // does not stay readable all through shutdown.
                            drop(stream);
                            continue;
                        }
                        if let Some(f) = faults {
                            if f.inject_worker_kill() {
                                // l2r: allow(no-panic-hot-path) — fault
                                // injection: proves watchdog respawn works.
                                panic!("injected worker kill");
                            }
                            if f.inject_conn_drop() {
                                drop(stream);
                                continue;
                            }
                            if let Some(bytes) = f.config().sndbuf {
                                set_sndbuf(&stream, bytes);
                            }
                        }
                        if !open.try_add(cfg.max_connections) {
                            // Accept-time shedding: over the cap, close
                            // immediately rather than queue unbounded fds.
                            state.stats.conns_rejected.fetch_add(1, Ordering::Relaxed);
                            drop(stream);
                            continue;
                        }
                        let _ = stream.set_nonblocking(true);
                        let _ = stream.set_nodelay(true);
                        state.stats.connections.fetch_add(1, Ordering::Relaxed);
                        let conn = Conn::new(stream, next_id);
                        next_id += 1;
                        match free.pop() {
                            Some(ci) => conns[ci] = Some(conn),
                            None => conns.push(Some(conn)),
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(_) => break,
                }
            }
        }

        // 3. Read + parse connections with fresh bytes *or* a backlog of
        //    unparsed input (a previously throttled pipeline must resume
        //    without waiting for new bytes); flush the batch whenever it
        //    fills so queue depth stays bounded by `batch_max`.
        for (pi, &ci) in poll_conns.iter().enumerate() {
            let revents = pollfds[pi + 1].revents;
            let readable = revents & (POLLIN | POLLHUP | POLLERR | POLLNVAL) != 0;
            let backlog = conns[ci]
                .as_ref()
                .is_some_and(|c| c.unparsed() > 0 && !c.closing);
            if !readable && !backlog {
                continue;
            }
            let mut eof = false;
            if readable {
                let Some(conn) = conns[ci].as_mut() else {
                    continue;
                };
                match conn.try_read(&mut chunk, faults) {
                    Ok(e) => eof = e,
                    Err(_) => {
                        // Hard read error (reset): nothing more to deliver.
                        conns[ci] = None;
                        open.remove();
                        free.push(ci);
                        continue;
                    }
                }
            }
            while let Some(conn) = conns[ci].as_mut() {
                match process_conn(state, cfg, faults, &mut batch, conn, ci, &mut scratch) {
                    Progress::Done => break,
                    Progress::BatchFull => {
                        flush_batch(state, faults, &mut batch, &mut conns, &mut scratch)
                    }
                }
            }
            if eof {
                if let Some(conn) = conns[ci].as_mut() {
                    conn.closing = true;
                }
            }
        }

        // 4. Flush the batch: immediately with a zero budget, otherwise
        //    when the oldest entry has waited out the budget, when the
        //    earliest member deadline is about to land (coalescing never
        //    pushes a request past its budget), or when we are shutting
        //    down and must answer everything now.
        let budget_spent = batch
            .since
            .map(|t| t.elapsed() >= cfg.batch_budget)
            .unwrap_or(false);
        let deadline_pressure = batch
            .earliest_deadline
            .is_some_and(|d| Instant::now() + DEADLINE_FLUSH_SLACK >= d);
        if !batch.items.is_empty()
            && (cfg.batch_budget.is_zero() || budget_spent || deadline_pressure || shutting_down)
        {
            flush_batch(state, faults, &mut batch, &mut conns, &mut scratch);
        }

        // 5. Connection hygiene: disconnect write-stalled (slow-loris)
        //    peers whose outbound backlog has sat above the cap for too
        //    long, and reap connections idle past the timeout.
        let now = Instant::now();
        for (ci, slot) in conns.iter_mut().enumerate() {
            let Some(conn) = slot.as_mut() else {
                continue;
            };
            let outstanding = conn.wbuf.len() - conn.wpos;
            if outstanding > cfg.write_stall_cap {
                let stalled_since = *conn.wstall_since.get_or_insert(now);
                if now.duration_since(stalled_since) >= cfg.write_stall_timeout {
                    state.stats.write_stalls.fetch_add(1, Ordering::Relaxed);
                    *slot = None;
                    open.remove();
                    free.push(ci);
                    continue;
                }
            } else {
                conn.wstall_since = None;
            }
            if !shutting_down
                && !conn.closing
                && !cfg.idle_timeout.is_zero()
                && conn.pending.is_empty()
                && conn.wbuf.is_empty()
                && conn.unparsed() == 0
                && now.duration_since(conn.last_activity) >= cfg.idle_timeout
            {
                state.stats.idle_reaped.fetch_add(1, Ordering::Relaxed);
                *slot = None;
                open.remove();
                free.push(ci);
            }
        }

        // 6. Drain in-order responses into write buffers and push bytes.
        for (ci, slot) in conns.iter_mut().enumerate() {
            let Some(conn) = slot.as_mut() else {
                continue;
            };
            conn.drain_ready();
            let write_failed = conn.wpos < conn.wbuf.len() && conn.try_write(faults).is_err();
            let fully_drained = conn.closing && conn.wbuf.is_empty() && conn.pending.is_empty();
            if write_failed || fully_drained {
                *slot = None;
                open.remove();
                free.push(ci);
            }
        }
    }
}
