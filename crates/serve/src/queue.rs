//! Bounded per-dataset admission queues with explicit load-shedding.
//!
//! Every `route` request must win a slot in its dataset's [`DatasetQueue`]
//! before it may wait in a batch; when the queue is full the server answers
//! with a retriable `BUSY` immediately instead of letting backlog grow
//! without bound (an ever-deeper queue only converts overload into timeouts).
//! Slots are released when the batch holding the request executes, so queue
//! *depth* is the number of admitted-but-unanswered route queries across all
//! connections — the quantity an operator actually wants bounded.
//!
//! All counters are atomics: the event-loop threads update them
//! concurrently with no other synchronisation.

// A request-path file: panics here are outages, not control flow (see the
// `no-panic-hot-path` rule of l2r-analyze).  The clippy pair of that gate:
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, PoisonError, RwLock};

/// Default bound on admitted-but-unanswered route queries per dataset.
pub const DEFAULT_QUEUE_CAPACITY: usize = 4096;

/// Admission state and load-shedding counters of one dataset.
#[derive(Debug)]
pub struct DatasetQueue {
    capacity: usize,
    depth: AtomicUsize,
    shed: AtomicU64,
    served: AtomicU64,
}

impl DatasetQueue {
    fn new(capacity: usize) -> DatasetQueue {
        DatasetQueue {
            capacity: capacity.max(1),
            depth: AtomicUsize::new(0),
            shed: AtomicU64::new(0),
            served: AtomicU64::new(0),
        }
    }

    /// Tries to admit `n` route queries; on overflow admits none, counts
    /// them as shed, and returns `false` (the caller answers `BUSY`).
    pub fn try_admit(&self, n: usize) -> bool {
        let admitted = self
            .depth
            // ordering: AcqRel/Acquire — depth is the admission bound, not a
            // statistic; a winning CAS must be visible to every other loop's
            // next attempt or concurrent admits could overshoot capacity.
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |depth| {
                if depth + n <= self.capacity {
                    Some(depth + n)
                } else {
                    None
                }
            })
            .is_ok();
        if !admitted {
            self.shed.fetch_add(n as u64, Ordering::Relaxed);
        }
        admitted
    }

    /// Releases `n` previously admitted queries after their batch executed.
    pub fn release(&self, n: usize) {
        // ordering: AcqRel — pairs with try_admit's CAS so a freed slot is
        // immediately claimable and never double-counted against the cap.
        self.depth.fetch_sub(n, Ordering::AcqRel);
        self.served.fetch_add(n as u64, Ordering::Relaxed);
    }

    /// Admitted-but-unanswered route queries right now.
    pub fn depth(&self) -> usize {
        // ordering: Acquire — pairs with the AcqRel updates above so stats
        // readers observe a depth no staler than the last release.
        self.depth.load(Ordering::Acquire)
    }

    /// The admission bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Route queries rejected with `BUSY` so far.
    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Route queries admitted and executed so far.
    pub fn served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }
}

/// The per-dataset queues of one server, created on first use.
#[derive(Debug)]
pub struct DatasetQueues {
    capacity: usize,
    map: RwLock<HashMap<String, Arc<DatasetQueue>>>,
}

impl DatasetQueues {
    /// Creates an empty queue set whose queues bound `capacity` queries.
    pub fn new(capacity: usize) -> DatasetQueues {
        DatasetQueues {
            capacity,
            map: RwLock::new(HashMap::new()),
        }
    }

    /// The queue of `dataset`, created on first use.
    ///
    /// Lock poisoning is recovered, not propagated: the map's only writes
    /// insert fully constructed `Arc<DatasetQueue>` values, so a panic in
    /// some other loop can never leave it half-updated, and the self-healing
    /// server (PR 7) must keep serving after a worker dies mid-request.
    pub fn get(&self, dataset: &str) -> Arc<DatasetQueue> {
        if let Some(q) = self
            .map
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(dataset)
        {
            return Arc::clone(q);
        }
        let mut map = self.map.write().unwrap_or_else(PoisonError::into_inner);
        Arc::clone(
            map.entry(dataset.to_string())
                .or_insert_with(|| Arc::new(DatasetQueue::new(self.capacity))),
        )
    }

    /// The queue of `dataset`, if any request has touched it yet.
    pub fn peek(&self, dataset: &str) -> Option<Arc<DatasetQueue>> {
        self.map
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(dataset)
            .cloned()
    }

    /// Total queries shed across all datasets.
    pub fn total_shed(&self) -> u64 {
        self.map
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .values()
            .map(|q| q.shed())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admission_is_bounded_and_counts_shed_and_served() {
        let q = DatasetQueue::new(3);
        assert!(q.try_admit(2));
        assert!(q.try_admit(1));
        assert_eq!(q.depth(), 3);
        // Full: nothing is admitted, not even partially.
        assert!(!q.try_admit(1));
        assert!(!q.try_admit(2));
        assert_eq!(q.depth(), 3);
        assert_eq!(q.shed(), 3);
        q.release(3);
        assert_eq!(q.depth(), 0);
        assert_eq!(q.served(), 3);
        assert!(q.try_admit(3));
        q.release(3);
        assert_eq!(q.served(), 6);
    }

    #[test]
    fn queues_are_created_once_per_dataset() {
        let qs = DatasetQueues::new(8);
        assert!(qs.peek("D1").is_none());
        let a = qs.get("D1");
        let b = qs.get("D1");
        assert!(Arc::ptr_eq(&a, &b));
        assert!(Arc::ptr_eq(&a, &qs.peek("D1").expect("created")));
        assert_eq!(a.capacity(), 8);
    }

    #[test]
    fn concurrent_admission_never_exceeds_capacity() {
        // The atomics satellite: hammer one queue from many threads and
        // assert the capacity invariant held throughout and the counters
        // balance exactly at the end.
        let q = Arc::new(DatasetQueue::new(16));
        let threads = 8;
        let rounds = 2_000;
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let q = Arc::clone(&q);
                scope.spawn(move || {
                    for _ in 0..rounds {
                        if q.try_admit(3) {
                            let depth = q.depth();
                            assert!(depth <= 16, "depth {depth} exceeded capacity");
                            q.release(3);
                        }
                    }
                });
            }
        });
        assert_eq!(q.depth(), 0);
        assert_eq!(q.served() + q.shed(), (threads * rounds * 3) as u64);
    }
}
