//! Post-swap probation and automatic rollback.
//!
//! A hot-swap is validated *before* it happens (dataset stamp + canary
//! replay, see `l2r_core::registry`), but canaries are a finite probe set:
//! a model that passes them can still misbehave under real traffic.  This
//! module adds the serving-side safety net — after every successful reload
//! that retained a previous engine, the dataset enters a **probation
//! window**: the next [`crate::ServerConfig::auto_rollback_window`] route
//! outcomes are watched, and if the *internal-error* rate (handler panics)
//! exceeds [`crate::ServerConfig::auto_rollback_per_mille`], the server
//! rolls the dataset back to the retained engine on its own and counts the
//! event in the `rollbacks` stat.
//!
//! Probation is **one-shot**: it disarms after the first window, whether it
//! passed or triggered, so a long-lived deployment is not re-judged forever
//! on its first few minutes.  Only internal errors count against the model
//! — deadline expiries and load-shedding are the server's weather, not the
//! model's fault.  All state is atomics: the event loops record outcomes
//! with no lock on the hot path, and exactly one recorder wins the trigger.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, PoisonError, RwLock};

/// Probation state of one dataset.
#[derive(Debug)]
pub struct DatasetHealth {
    name: String,
    window: u64,
    per_mille: u32,
    armed: AtomicBool,
    requests: AtomicU64,
    internal: AtomicU64,
}

impl DatasetHealth {
    fn new(name: &str, window: u64, per_mille: u32) -> DatasetHealth {
        DatasetHealth {
            name: name.to_string(),
            window: window.max(1),
            per_mille,
            armed: AtomicBool::new(false),
            requests: AtomicU64::new(0),
            internal: AtomicU64::new(0),
        }
    }

    /// The dataset this probation watches.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// (Re)arms probation: counters reset, the next window of outcomes is
    /// judged.
    pub fn arm(&self) {
        // ordering: Release ×3 — the counter resets must be visible before
        // any recorder observes `armed == true`, or a stale count from the
        // previous window could judge the new model.  The `armed` store is
        // last: it publishes the reset counters.
        self.requests.store(0, Ordering::Release);
        self.internal.store(0, Ordering::Release); // ordering: see above
        self.armed.store(true, Ordering::Release); // ordering: publishes the resets
    }

    /// Disarms probation without judging (a manual rollback supersedes the
    /// automatic one).
    pub fn disarm(&self) {
        // ordering: Release — pairs with the Acquire loads in record/armed;
        // the one-shot contract needs the flag change globally published.
        self.armed.store(false, Ordering::Release);
    }

    /// Whether a probation window is currently being judged.
    pub fn armed(&self) -> bool {
        // ordering: Acquire — pairs with arm's Release so a `true` here
        // guarantees the reset counters are also visible.
        self.armed.load(Ordering::Acquire)
    }

    /// Records one route outcome.  Returns `true` **exactly once** per
    /// armed window, the moment the internal-error count alone exceeds the
    /// configured rate over the window — the caller must then roll the
    /// dataset back.  A window that completes below the threshold disarms
    /// quietly (probation passed).
    pub fn record(&self, internal_error: bool) -> bool {
        // ordering: Acquire — pairs with arm's Release: seeing `true` means
        // the counter resets below are visible too.
        if !self.armed.load(Ordering::Acquire) {
            return false;
        }
        // ordering: AcqRel on both counters — the window judgement reads
        // `bad` against `seen`, so each recorder's increments must be
        // ordered with every other's, not free-floating like a stats counter.
        let seen = self.requests.fetch_add(1, Ordering::AcqRel) + 1;
        let bad = if internal_error {
            self.internal.fetch_add(1, Ordering::AcqRel) + 1 // ordering: see above
        } else {
            // ordering: Acquire — observe at least every increment that
            // happened-before this outcome was recorded.
            self.internal.load(Ordering::Acquire)
        };
        // Trigger as soon as the window's error budget is spent — waiting
        // for the window to complete would only serve more bad answers.
        if bad.saturating_mul(1000) > self.window.saturating_mul(self.per_mille as u64) {
            // ordering: AcqRel — the swap makes the trigger one-shot under
            // concurrency: exactly one recorder reads `true` back.
            return self.armed.swap(false, Ordering::AcqRel);
        }
        if seen >= self.window {
            // ordering: Release — quiet completion; pairs with the Acquire
            // loads so no recorder keeps judging a finished window.
            self.armed.store(false, Ordering::Release);
        }
        false
    }
}

/// The per-dataset probation states of one server, created on first arm
/// (mirrors [`crate::queue::DatasetQueues`]).  With a zero window the whole
/// feature is off: every call is a cheap early return and the hot path
/// never takes the map lock.
#[derive(Debug)]
pub struct HealthMap {
    window: u64,
    per_mille: u32,
    map: RwLock<HashMap<String, Arc<DatasetHealth>>>,
}

impl HealthMap {
    /// Creates an empty probation set; `window == 0` disables auto-rollback.
    pub fn new(window: u64, per_mille: u32) -> HealthMap {
        HealthMap {
            window,
            per_mille,
            map: RwLock::new(HashMap::new()),
        }
    }

    /// Whether automatic rollback is configured at all.
    pub fn enabled(&self) -> bool {
        self.window > 0
    }

    /// Arms probation for `dataset` (no-op when the feature is off).
    ///
    /// Lock poisoning is recovered, not propagated (see
    /// [`crate::queue::DatasetQueues::get`]): the map's only writes insert
    /// fully constructed values, so it is never half-updated, and the
    /// self-healing server must outlive a panicking worker.
    pub fn arm(&self, dataset: &str) {
        if !self.enabled() {
            return;
        }
        if let Some(h) = self
            .map
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(dataset)
        {
            h.arm();
            return;
        }
        let mut map = self.map.write().unwrap_or_else(PoisonError::into_inner);
        map.entry(dataset.to_string())
            .or_insert_with(|| Arc::new(DatasetHealth::new(dataset, self.window, self.per_mille)))
            .arm();
    }

    /// Disarms `dataset`'s probation, if it has one.
    pub fn disarm(&self, dataset: &str) {
        if let Some(h) = self
            .map
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(dataset)
        {
            h.disarm();
        }
    }

    /// The armed probation of `dataset`, if any — the handle route
    /// executions record their outcomes against.  `None` (the common case)
    /// costs one branch plus, when the feature is on, one read-locked map
    /// probe.
    pub fn watch(&self, dataset: &str) -> Option<Arc<DatasetHealth>> {
        if !self.enabled() {
            return None;
        }
        self.map
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(dataset)
            .filter(|h| h.armed())
            .cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probation_triggers_once_when_the_error_budget_is_spent() {
        let h = DatasetHealth::new("D1", 10, 200); // > 2 internal errors trip
        h.arm();
        assert!(!h.record(true));
        assert!(!h.record(true));
        assert!(h.record(true), "third error of ten must trigger");
        assert!(!h.armed());
        // One-shot: further errors never re-trigger.
        assert!(!h.record(true));
    }

    #[test]
    fn probation_passes_quietly_below_the_threshold() {
        let h = DatasetHealth::new("D1", 8, 500);
        h.arm();
        for _ in 0..7 {
            assert!(!h.record(false));
        }
        assert!(h.armed());
        assert!(!h.record(false), "clean window completion must not trigger");
        assert!(!h.armed(), "completed probation disarms");
    }

    #[test]
    fn rearming_resets_the_counters() {
        let h = DatasetHealth::new("D1", 4, 250);
        h.arm();
        assert!(!h.record(true));
        h.arm();
        // The earlier error was wiped; one more alone is ≤ 25% of 4.
        assert!(!h.record(true));
        assert!(h.record(true));
    }

    #[test]
    fn disabled_map_never_creates_state() {
        let map = HealthMap::new(0, 500);
        map.arm("D1");
        assert!(map.watch("D1").is_none());
        assert!(!map.enabled());
    }

    #[test]
    fn watch_only_returns_armed_probations() {
        let map = HealthMap::new(4, 500);
        assert!(map.watch("D1").is_none());
        map.arm("D1");
        let h = map.watch("D1").expect("armed");
        assert_eq!(h.name(), "D1");
        map.disarm("D1");
        assert!(map.watch("D1").is_none());
    }

    #[test]
    fn concurrent_recorders_trigger_exactly_once() {
        let h = Arc::new(DatasetHealth::new("D1", 64, 0)); // any error trips
        h.arm();
        let triggers: u64 = std::thread::scope(|scope| {
            (0..8)
                .map(|_| {
                    let h = Arc::clone(&h);
                    scope.spawn(move || (0..32).filter(|_| h.record(true)).count() as u64)
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|j| j.join().expect("recorder"))
                .sum()
        });
        assert_eq!(triggers, 1, "exactly one recorder wins the trigger");
    }
}
