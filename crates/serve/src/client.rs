//! Blocking clients for both wire protocols.
//!
//! [`Client`] speaks the legacy ASCII line protocol (one request line out,
//! one response line in).  [`BinClient`] speaks the binary frame protocol
//! of [`crate::frame`], including windowed pipelining: it keeps up to a
//! window of `route` requests in flight and reads responses back **in
//! request order**, which is what the protocol guarantees.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use l2r_core::RouteStrategy;
use l2r_road_network::codec::Reader;

use crate::frame::{
    self, decode_route_reply, FrameParse, RouteReply, Status, MAX_FRAME_PAYLOAD, MAX_NAME,
};

/// Default socket read timeout of both clients: a dead server fails the
/// call instead of hanging it forever.  Override per-client with
/// [`Client::connect_with`] / [`BinClient::connect_with`].
pub const DEFAULT_CLIENT_READ_TIMEOUT: Duration = Duration::from_secs(30);

// ---------------------------------------------------------------------------
// Retry policy
// ---------------------------------------------------------------------------

/// Bounded retry with jittered exponential backoff, for `BUSY` responses.
///
/// A shedding server answers `BUSY` when its admission queue is full; the
/// right client reaction is to back off and retry a bounded number of
/// times rather than hammer the queue or give up on the first push-back.
/// Jitter is drawn from a small seeded LCG so retry storms decorrelate
/// across clients while each client stays reproducible.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts (first try included).  `1` disables retrying.
    pub attempts: u32,
    /// Backoff before the first retry; doubles each retry.
    pub base: Duration,
    /// Upper bound on any single backoff sleep.
    pub cap: Duration,
    /// Jitter seed; each sleep is scaled by a factor in `[0.5, 1.5)`.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            attempts: 4,
            base: Duration::from_millis(2),
            cap: Duration::from_millis(50),
            seed: 0x5EED_CAFE,
        }
    }
}

impl RetryPolicy {
    /// The jittered backoff to sleep before retry number `retry` (0-based),
    /// advancing the internal jitter stream.
    pub(crate) fn backoff(&mut self, retry: u32) -> Duration {
        self.seed = self
            .seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        // Map the top bits onto [0.5, 1.5): half-to-one-and-a-half of the
        // nominal exponential step, capped.
        let jitter = 0.5 + (self.seed >> 33) as f64 / (1u64 << 31) as f64;
        let nominal = self.base.saturating_mul(1u32 << retry.min(16));
        nominal.min(self.cap).mul_f64(jitter).min(self.cap)
    }
}

// ---------------------------------------------------------------------------
// ASCII client
// ---------------------------------------------------------------------------

/// A blocking line-protocol client: one request line out, one response line
/// in.
#[derive(Debug)]
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects to a running server with the default read timeout.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        Client::from_stream(TcpStream::connect(addr)?)
    }

    /// Connects with an explicit read timeout (`None` blocks forever).
    pub fn connect_with<A: ToSocketAddrs>(
        addr: A,
        timeout: Option<Duration>,
    ) -> io::Result<Client> {
        Client::from_stream_with(TcpStream::connect(addr)?, timeout)
    }

    /// Wraps an already-connected stream (e.g. one that sat idle for a
    /// while) into a client with the default read timeout.
    pub fn from_stream(stream: TcpStream) -> io::Result<Client> {
        Client::from_stream_with(stream, Some(DEFAULT_CLIENT_READ_TIMEOUT))
    }

    /// Wraps an already-connected stream into a client with an explicit
    /// read timeout (`None` blocks forever).
    pub fn from_stream_with(stream: TcpStream, timeout: Option<Duration>) -> io::Result<Client> {
        stream.set_nodelay(true)?;
        stream.set_read_timeout(timeout)?;
        let read_half = stream.try_clone()?;
        Ok(Client {
            writer: stream,
            reader: BufReader::new(read_half),
        })
    }

    /// Sends one request line and reads the one-line response (without the
    /// trailing newline).
    pub fn request(&mut self, line: &str) -> io::Result<String> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        self.read_line()
    }

    /// Sends one request line without waiting for the response (pipelining;
    /// pair with [`Client::read_line`]).
    pub fn send(&mut self, line: &str) -> io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        Ok(())
    }

    /// Flushes buffered requests (no-op today; kept for symmetry).
    pub fn flush(&mut self) -> io::Result<()> {
        self.writer.flush()
    }

    /// Sends pre-formatted request bytes (newline-terminated lines) without
    /// reading anything back — the pipelined write path of the loadgen.
    pub fn send_bytes(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.writer.write_all(bytes)
    }

    /// Reads one response line (without the trailing newline).
    pub fn read_line(&mut self) -> io::Result<String> {
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        while response.ends_with('\n') || response.ends_with('\r') {
            response.pop();
        }
        Ok(response)
    }
}

// ---------------------------------------------------------------------------
// Binary client
// ---------------------------------------------------------------------------

/// Metadata of one served dataset, decoded from a binary `info` response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatasetInfo {
    /// Dataset name, echoed back by the server.
    pub name: String,
    /// Vertices in the served road network.
    pub vertices: u64,
    /// Edges in the served road network.
    pub edges: u64,
    /// Regions in the served region graph.
    pub regions: u64,
    /// Connector vertices of the served model.
    pub connectors: u64,
    /// Model generation (bumps on every successful hot-reload).
    pub generation: u64,
}

/// Outcome of one item in a binary `route_batch` response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchItemReply {
    /// Index into [`RouteStrategy::ALL`], or `u8::MAX` for no route.
    pub strategy: u8,
    /// Path length in vertices (0 for no route).
    pub path_len: u32,
}

/// A blocking binary-frame client with windowed pipelining.
#[derive(Debug)]
pub struct BinClient {
    stream: TcpStream,
    rbuf: Vec<u8>,
    rpos: usize,
}

fn bad_data(message: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message)
}

impl BinClient {
    /// Connects to a running server with the default read timeout.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<BinClient> {
        BinClient::from_stream(TcpStream::connect(addr)?)
    }

    /// Connects with an explicit read timeout (`None` blocks forever).
    pub fn connect_with<A: ToSocketAddrs>(
        addr: A,
        timeout: Option<Duration>,
    ) -> io::Result<BinClient> {
        BinClient::from_stream_with(TcpStream::connect(addr)?, timeout)
    }

    /// Wraps an already-connected stream into a binary client with the
    /// default read timeout.
    pub fn from_stream(stream: TcpStream) -> io::Result<BinClient> {
        BinClient::from_stream_with(stream, Some(DEFAULT_CLIENT_READ_TIMEOUT))
    }

    /// Wraps an already-connected stream into a binary client with an
    /// explicit read timeout (`None` blocks forever).
    pub fn from_stream_with(stream: TcpStream, timeout: Option<Duration>) -> io::Result<BinClient> {
        stream.set_nodelay(true)?;
        stream.set_read_timeout(timeout)?;
        Ok(BinClient {
            stream,
            rbuf: Vec::new(),
            rpos: 0,
        })
    }

    /// Sends pre-encoded frame bytes (see the `encode_*` helpers in
    /// [`crate::frame`]) without reading anything back.
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.stream.write_all(bytes)
    }

    /// Reads one response frame (status + payload), blocking until it is
    /// complete.  A framing violation from the server is an error.
    pub fn read_frame(&mut self) -> io::Result<(Status, Vec<u8>)> {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match frame::parse_frame(&self.rbuf[self.rpos..]) {
                FrameParse::Frame {
                    kind,
                    payload,
                    consumed,
                } => {
                    let status = Status::from_u8(kind)
                        .ok_or_else(|| bad_data(format!("unknown response status {kind:#04x}")))?;
                    let payload = payload.to_vec();
                    self.rpos += consumed;
                    if self.rpos == self.rbuf.len() {
                        self.rbuf.clear();
                        self.rpos = 0;
                    } else if self.rpos >= 64 * 1024 {
                        self.rbuf.drain(..self.rpos);
                        self.rpos = 0;
                    }
                    return Ok((status, payload));
                }
                FrameParse::Bad(e) => return Err(bad_data(e.to_string())),
                FrameParse::Incomplete => {
                    let n = self.stream.read(&mut chunk)?;
                    if n == 0 {
                        return Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "server closed the connection mid-frame",
                        ));
                    }
                    self.rbuf.extend_from_slice(&chunk[..n]);
                }
            }
        }
    }

    fn expect_ok(&mut self, what: &str) -> io::Result<Vec<u8>> {
        let (status, payload) = self.read_frame()?;
        match status {
            Status::Ok => Ok(payload),
            Status::Err => {
                let mut r = Reader::new(&payload);
                let message = r
                    .str("error message", MAX_FRAME_PAYLOAD)
                    .unwrap_or("unreadable error payload");
                Err(io::Error::other(format!("{what}: {message}")))
            }
            Status::Busy => Err(io::Error::other(format!("{what}: server is busy"))),
            Status::DeadlineExceeded => Err(io::Error::new(
                io::ErrorKind::TimedOut,
                format!("{what}: deadline exceeded"),
            )),
            Status::NoRoute => Err(bad_data(format!("{what}: unexpected NOROUTE"))),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> io::Result<()> {
        let mut out = Vec::new();
        frame::encode_ping(&mut out);
        self.send_raw(&out)?;
        self.expect_ok("ping").map(|_| ())
    }

    /// One route query.
    pub fn route(&mut self, dataset: &str, src: u32, dst: u32) -> io::Result<RouteReply> {
        let mut out = Vec::new();
        frame::encode_route(&mut out, dataset, src, dst);
        self.send_raw(&out)?;
        let (status, payload) = self.read_frame()?;
        decode_route_reply(status, &payload).map_err(|e| bad_data(e.to_string()))
    }

    /// One route query, retrying `BUSY` responses under `policy` with
    /// jittered exponential backoff.  Returns the last `BUSY` reply if the
    /// attempt budget runs out; every other reply returns immediately.
    pub fn route_with_retry(
        &mut self,
        dataset: &str,
        src: u32,
        dst: u32,
        policy: &mut RetryPolicy,
    ) -> io::Result<RouteReply> {
        let attempts = policy.attempts.max(1);
        for retry in 0..attempts {
            let reply = self.route(dataset, src, dst)?;
            if !matches!(reply, RouteReply::Busy) || retry + 1 == attempts {
                return Ok(reply);
            }
            std::thread::sleep(policy.backoff(retry));
        }
        unreachable!("retry loop always returns on its last attempt")
    }

    /// Pipelines `route` queries with at most `window` in flight, returning
    /// the replies in request order.
    pub fn route_pipelined(
        &mut self,
        dataset: &str,
        pairs: &[(u32, u32)],
        window: usize,
    ) -> io::Result<Vec<RouteReply>> {
        let window = window.clamp(1, 512);
        let mut replies = Vec::with_capacity(pairs.len());
        let mut out = Vec::new();
        let mut sent = 0usize;
        while replies.len() < pairs.len() {
            out.clear();
            while sent < pairs.len() && sent - replies.len() < window {
                let (s, d) = pairs[sent];
                frame::encode_route(&mut out, dataset, s, d);
                sent += 1;
            }
            if !out.is_empty() {
                self.send_raw(&out)?;
            }
            let (status, payload) = self.read_frame()?;
            replies
                .push(decode_route_reply(status, &payload).map_err(|e| bad_data(e.to_string()))?);
        }
        Ok(replies)
    }

    /// A server-side `route_batch`: one frame in, one summary frame out.
    pub fn route_batch(
        &mut self,
        dataset: &str,
        pairs: &[(u32, u32)],
    ) -> io::Result<Vec<BatchItemReply>> {
        let mut out = Vec::new();
        frame::encode_route_batch(&mut out, dataset, pairs);
        self.send_raw(&out)?;
        let payload = self.expect_ok("route_batch")?;
        let mut r = Reader::new(&payload);
        let n = r.u32("batch total").map_err(|e| bad_data(e.to_string()))? as usize;
        let _answered = r
            .u32("batch answered")
            .map_err(|e| bad_data(e.to_string()))?;
        let mut items = Vec::with_capacity(n);
        for _ in 0..n {
            let strategy = r.u8("item strategy").map_err(|e| bad_data(e.to_string()))?;
            let path_len = r
                .u32("item path length")
                .map_err(|e| bad_data(e.to_string()))?;
            items.push(BatchItemReply { strategy, path_len });
        }
        Ok(items)
    }

    /// Dataset metadata.
    pub fn info(&mut self, dataset: &str) -> io::Result<DatasetInfo> {
        let mut out = Vec::new();
        frame::encode_info(&mut out, dataset);
        self.send_raw(&out)?;
        let payload = self.expect_ok("info")?;
        let mut r = Reader::new(&payload);
        let decode = |e: l2r_road_network::codec::CodecError| bad_data(e.to_string());
        Ok(DatasetInfo {
            vertices: r.u64("info vertices").map_err(decode)?,
            edges: r.u64("info edges").map_err(decode)?,
            regions: r.u64("info regions").map_err(decode)?,
            connectors: r.u64("info connectors").map_err(decode)?,
            generation: r.u64("info generation").map_err(decode)?,
            name: r.str("info name", MAX_NAME).map_err(decode)?.to_string(),
        })
    }

    /// The server's stats line (same text as the ASCII `stats` response
    /// without the `OK ` prefix).
    pub fn stats(&mut self) -> io::Result<String> {
        let mut out = Vec::new();
        frame::encode_stats(&mut out);
        self.send_raw(&out)?;
        let payload = self.expect_ok("stats")?;
        let mut r = Reader::new(&payload);
        Ok(r.str("stats line", MAX_FRAME_PAYLOAD)
            .map_err(|e| bad_data(e.to_string()))?
            .to_string())
    }

    /// The server's counters as machine-readable `(key, value)` pairs —
    /// the structured half of the binary `stats` response, appended after
    /// the human-readable line (absent on pre-store servers ⇒ empty vec).
    pub fn stats_fields(&mut self) -> io::Result<Vec<(String, u64)>> {
        let mut out = Vec::new();
        frame::encode_stats(&mut out);
        self.send_raw(&out)?;
        let payload = self.expect_ok("stats")?;
        let mut r = Reader::new(&payload);
        let decode = |e: l2r_road_network::codec::CodecError| bad_data(e.to_string());
        r.str("stats line", MAX_FRAME_PAYLOAD).map_err(decode)?;
        if r.is_exhausted() {
            return Ok(Vec::new());
        }
        let n = r.u32("stats field count").map_err(decode)? as usize;
        let mut fields = Vec::with_capacity(n);
        for _ in 0..n {
            let key = r.str("stats key", MAX_NAME).map_err(decode)?.to_string();
            let value = r.u64("stats value").map_err(decode)?;
            fields.push((key, value));
        }
        Ok(fields)
    }

    /// Hot-reloads a dataset from a snapshot path; returns the new model
    /// generation.
    pub fn reload(&mut self, dataset: &str, path: &str) -> io::Result<u64> {
        self.reload_spec(dataset, path, None)
    }

    /// Hot-reloads a dataset from a snapshot file or model-store directory
    /// with an explicit store-generation spec (`"latest"` or a decimal
    /// generation number); returns the new model generation.
    pub fn reload_spec(
        &mut self,
        dataset: &str,
        path: &str,
        spec: Option<&str>,
    ) -> io::Result<u64> {
        let mut out = Vec::new();
        frame::encode_reload_spec(&mut out, dataset, path, spec);
        self.send_raw(&out)?;
        let payload = self.expect_ok("reload")?;
        let mut r = Reader::new(&payload);
        r.u64("reload generation")
            .map_err(|e| bad_data(e.to_string()))
    }

    /// Rolls a dataset back to its retained previous engine; returns the
    /// new model generation.
    pub fn rollback(&mut self, dataset: &str) -> io::Result<u64> {
        let mut out = Vec::new();
        frame::encode_rollback(&mut out, dataset);
        self.send_raw(&out)?;
        let payload = self.expect_ok("rollback")?;
        let mut r = Reader::new(&payload);
        r.u64("rollback generation")
            .map_err(|e| bad_data(e.to_string()))
    }

    /// Asks the server to drain and stop.
    pub fn shutdown_server(&mut self) -> io::Result<()> {
        let mut out = Vec::new();
        frame::encode_shutdown(&mut out);
        self.send_raw(&out)?;
        self.expect_ok("shutdown").map(|_| ())
    }
}

/// Renders a binary route reply in the ASCII protocol's exact response
/// format (`OK <strategy> <n> <v0> …` / `NOROUTE` / `BUSY` / `ERR …`), so
/// tests can compare the two protocols byte-for-byte.
pub fn route_reply_to_line(reply: &RouteReply) -> String {
    match reply {
        RouteReply::Route { strategy, vertices } => {
            let label = RouteStrategy::ALL
                .get(*strategy as usize)
                .map(|s| s.label())
                .unwrap_or("?");
            let mut out = String::with_capacity(16 + vertices.len() * 7);
            out.push_str("OK ");
            out.push_str(label);
            out.push(' ');
            out.push_str(&vertices.len().to_string());
            for v in vertices {
                out.push(' ');
                out.push_str(&v.to_string());
            }
            out
        }
        RouteReply::NoRoute => "NOROUTE".to_string(),
        RouteReply::Busy => "BUSY".to_string(),
        RouteReply::DeadlineExceeded => "ERR deadline exceeded".to_string(),
        RouteReply::Err(message) => format!("ERR {message}"),
    }
}
