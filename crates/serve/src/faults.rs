//! Deterministic fault injection for the serving stack.
//!
//! A [`FaultPlan`] is a seeded schedule of internal faults — handler
//! panics, artificial handler latency, forced short reads/writes, dropped
//! or throttled connections, and reactor-level worker kills — threaded
//! through the event loops via [`crate::ServerConfig::faults`].  Production
//! servers run without a plan (every hook is a cheap `Option` check);
//! integration tests and the `resilience` section of `reproduce -- serving`
//! install one to prove the fault-tolerance invariants: no worker death
//! from a handler panic, exact `panics_caught`/`deadline_exceeded`/`shed`
//! accounting, and bit-exact responses for every non-faulted request.
//!
//! ## Determinism
//!
//! Every injection site draws from its own counter-indexed hash stream
//! (`splitmix64(seed ^ site ^ sequence)`), so the decision for the *n*-th
//! event at a site depends only on the seed — not on thread interleaving,
//! wall time, or what other sites drew.  A single-connection test therefore
//! sees a fully reproducible fault schedule, and a concurrent run sees the
//! same *number* of faults for the same event count.  The plan counts every
//! fault it injects ([`FaultPlan::counters`]); tests assert the server's
//! stats match those counts exactly.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Which injection site a decision belongs to; each site has an independent
/// deterministic draw stream.
#[derive(Debug, Clone, Copy)]
#[repr(usize)]
enum Site {
    HandlerPanic = 0,
    HandlerLatency = 1,
    ShortRead = 2,
    ShortWrite = 3,
    DropConn = 4,
}

const NUM_SITES: usize = 5;

/// Tunables of a [`FaultPlan`].  All rates are per-mille (‰): out of 1000
/// events at the site, roughly that many are faulted, deterministically
/// chosen by the seed.  The default injects nothing.
#[derive(Debug, Clone)]
pub struct FaultConfig {
    /// Seed of every decision stream.
    pub seed: u64,
    /// Rate of injected handler panics per route execution (caught by the
    /// reactor's panic isolation and answered as request-scoped errors).
    pub handler_panic_per_mille: u32,
    /// Rate of artificial handler latency per route execution.
    pub handler_latency_per_mille: u32,
    /// How long an injected latency stalls the handler.
    pub handler_latency: Duration,
    /// Rate of forced short reads (a read delivers only a few bytes, so
    /// frames and lines arrive in fragments).
    pub short_read_per_mille: u32,
    /// Rate of forced short writes (a write flushes only a few bytes).
    pub short_write_per_mille: u32,
    /// Rate of connections dropped right after accept.
    pub drop_conn_per_mille: u32,
    /// Total reactor-level panics to inject (outside the handler's panic
    /// isolation — each one kills an event-loop thread, which the watchdog
    /// must respawn).  Triggered at accept time, one per connection, until
    /// the budget is spent.
    pub worker_kills: u32,
    /// Shrink each accepted connection's kernel send buffer to this many
    /// bytes (via `SO_SNDBUF`), so write-stall detection is testable
    /// without megabytes of traffic.
    pub sndbuf: Option<u32>,
}

impl Default for FaultConfig {
    fn default() -> FaultConfig {
        FaultConfig {
            seed: 0xFA17_5EED,
            handler_panic_per_mille: 0,
            handler_latency_per_mille: 0,
            handler_latency: Duration::from_millis(2),
            short_read_per_mille: 0,
            short_write_per_mille: 0,
            drop_conn_per_mille: 0,
            worker_kills: 0,
            sndbuf: None,
        }
    }
}

/// Counts of every fault a plan has injected so far (all monotonic).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultCounters {
    /// Handler panics injected (each must surface as exactly one caught
    /// panic in the server's `panics_caught` stat).
    pub panics_injected: u64,
    /// Artificial handler latencies injected.
    pub latencies_injected: u64,
    /// Reads forced short.
    pub short_reads: u64,
    /// Writes forced short.
    pub short_writes: u64,
    /// Connections dropped right after accept.
    pub conns_dropped: u64,
    /// Reactor-level worker kills injected (each must surface as exactly
    /// one `workers_respawned` in the server's stats).
    pub worker_kills_injected: u64,
}

/// A seeded, deterministic fault-injection schedule (see the module docs).
/// Shared by all event loops of a server via `Arc`.
#[derive(Debug, Default)]
pub struct FaultPlan {
    cfg: FaultConfig,
    draws: [AtomicU64; NUM_SITES],
    panics_injected: AtomicU64,
    latencies_injected: AtomicU64,
    short_reads: AtomicU64,
    short_writes: AtomicU64,
    conns_dropped: AtomicU64,
    worker_kills_injected: AtomicU64,
}

/// The finalization step of splitmix64 — a cheap, well-mixed hash.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl FaultPlan {
    /// Wraps a [`FaultConfig`] into an injectable plan.
    pub fn new(cfg: FaultConfig) -> FaultPlan {
        FaultPlan {
            cfg,
            ..FaultPlan::default()
        }
    }

    /// The configuration this plan injects from.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Draws the next decision of `site`: the `seq`-th event at a site is
    /// faulted iff `splitmix64(seed ^ site ^ seq)` lands under the rate.
    fn decide(&self, site: Site, per_mille: u32) -> Option<u64> {
        if per_mille == 0 {
            return None;
        }
        let seq = self.draws[site as usize].fetch_add(1, Ordering::Relaxed);
        let h = splitmix64(self.cfg.seed ^ ((site as u64) << 56) ^ seq);
        (h % 1000 < per_mille as u64).then_some(h)
    }

    /// Should this route execution panic?  Counts the injection.
    pub(crate) fn inject_handler_panic(&self) -> bool {
        let hit = self
            .decide(Site::HandlerPanic, self.cfg.handler_panic_per_mille)
            .is_some();
        if hit {
            self.panics_injected.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Artificial latency to stall this route execution with, if any.
    pub(crate) fn inject_handler_latency(&self) -> Option<Duration> {
        self.decide(Site::HandlerLatency, self.cfg.handler_latency_per_mille)
            .map(|_| {
                self.latencies_injected.fetch_add(1, Ordering::Relaxed);
                self.cfg.handler_latency
            })
    }

    /// Byte cap to force on this read, if it should come up short.
    pub(crate) fn short_read_cap(&self) -> Option<usize> {
        self.decide(Site::ShortRead, self.cfg.short_read_per_mille)
            .map(|h| {
                self.short_reads.fetch_add(1, Ordering::Relaxed);
                1 + (h >> 10) as usize % 7
            })
    }

    /// Byte cap to force on this write, if it should come up short.
    pub(crate) fn short_write_cap(&self) -> Option<usize> {
        self.decide(Site::ShortWrite, self.cfg.short_write_per_mille)
            .map(|h| {
                self.short_writes.fetch_add(1, Ordering::Relaxed);
                1 + (h >> 10) as usize % 7
            })
    }

    /// Should this freshly accepted connection be dropped on the floor?
    pub(crate) fn inject_conn_drop(&self) -> bool {
        let hit = self
            .decide(Site::DropConn, self.cfg.drop_conn_per_mille)
            .is_some();
        if hit {
            self.conns_dropped.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Should this accept kill the whole event loop?  One-shot budget:
    /// returns `true` exactly [`FaultConfig::worker_kills`] times.
    pub(crate) fn inject_worker_kill(&self) -> bool {
        if self.cfg.worker_kills == 0 {
            return false;
        }
        self.worker_kills_injected
            // ordering: AcqRel/Acquire — a budget, not a statistic: each
            // claim must see every earlier claim or more loops could die
            // than the configured kill count.
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| {
                (n < self.cfg.worker_kills as u64).then_some(n + 1)
            })
            .is_ok()
    }

    /// Everything injected so far.
    pub fn counters(&self) -> FaultCounters {
        FaultCounters {
            panics_injected: self.panics_injected.load(Ordering::Relaxed),
            latencies_injected: self.latencies_injected.load(Ordering::Relaxed),
            short_reads: self.short_reads.load(Ordering::Relaxed),
            short_writes: self.short_writes.load(Ordering::Relaxed),
            conns_dropped: self.conns_dropped.load(Ordering::Relaxed),
            worker_kills_injected: self.worker_kills_injected.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decision_streams_are_deterministic_per_seed() {
        let cfg = FaultConfig {
            seed: 42,
            handler_panic_per_mille: 100,
            ..FaultConfig::default()
        };
        let a = FaultPlan::new(cfg.clone());
        let b = FaultPlan::new(cfg);
        let xs: Vec<bool> = (0..2000).map(|_| a.inject_handler_panic()).collect();
        let ys: Vec<bool> = (0..2000).map(|_| b.inject_handler_panic()).collect();
        assert_eq!(xs, ys);
        let hits = xs.iter().filter(|&&h| h).count();
        // 10% nominal rate over 2000 draws: the deterministic stream must
        // land in a sane band (it is a fixed sequence, not a real RNG).
        assert!((100..=300).contains(&hits), "{hits} hits");
        assert_eq!(a.counters().panics_injected, hits as u64);
    }

    #[test]
    fn sites_draw_independently() {
        let cfg = FaultConfig {
            seed: 7,
            handler_panic_per_mille: 500,
            short_read_per_mille: 500,
            ..FaultConfig::default()
        };
        let plan = FaultPlan::new(cfg);
        let panics: Vec<bool> = (0..64).map(|_| plan.inject_handler_panic()).collect();
        let reads: Vec<bool> = (0..64).map(|_| plan.short_read_cap().is_some()).collect();
        // Same rate, same seed, but different sites: the streams differ.
        assert_ne!(panics, reads);
        let c = plan.counters();
        assert_eq!(
            c.panics_injected,
            panics.iter().filter(|&&h| h).count() as u64
        );
        assert_eq!(c.short_reads, reads.iter().filter(|&&h| h).count() as u64);
    }

    #[test]
    fn worker_kills_respect_their_budget() {
        let plan = FaultPlan::new(FaultConfig {
            worker_kills: 2,
            ..FaultConfig::default()
        });
        let kills = (0..100).filter(|_| plan.inject_worker_kill()).count();
        assert_eq!(kills, 2);
        assert_eq!(plan.counters().worker_kills_injected, 2);
    }

    #[test]
    fn zero_rates_inject_nothing() {
        let plan = FaultPlan::new(FaultConfig::default());
        for _ in 0..100 {
            assert!(!plan.inject_handler_panic());
            assert!(plan.inject_handler_latency().is_none());
            assert!(plan.short_read_cap().is_none());
            assert!(plan.short_write_cap().is_none());
            assert!(!plan.inject_conn_drop());
            assert!(!plan.inject_worker_kill());
        }
        assert_eq!(
            plan.counters(),
            FaultCounters {
                panics_injected: 0,
                latencies_injected: 0,
                short_reads: 0,
                short_writes: 0,
                conns_dropped: 0,
                worker_kills_injected: 0,
            }
        );
    }
}
