//! Graceful-drain behaviour: a `shutdown` received behind a pipeline of
//! admitted requests answers every one of them (in order, bit-exact)
//! before the server exits, and connections arriving after the drain
//! starts are never served.

mod common;

use std::sync::Arc;
use std::time::{Duration, Instant};

use l2r_serve::frame::{self, RouteReply};
use l2r_serve::{route_reply_to_line, BinClient, FaultConfig, FaultPlan, ServerConfig};

/// Deterministic queries shared by the drained server and the reference.
fn query_plan(n: usize) -> Vec<(u32, u32)> {
    let mut seed = 0xD2A1_4EEDu64;
    (0..n)
        .map(|_| {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let s = (seed >> 33) % 40;
            let d = ((seed >> 13) % 40 + 1 + s) % 41;
            (s as u32, d as u32)
        })
        .collect()
}

#[test]
fn drain_answers_the_admitted_pipeline_then_exits() {
    // Artificial handler latency keeps the server draining long enough to
    // probe it from a second connection.
    let plan = Arc::new(FaultPlan::new(FaultConfig {
        handler_latency_per_mille: 1000,
        handler_latency: Duration::from_millis(3),
        ..FaultConfig::default()
    }));
    let (handle, addr, state) = common::start_server(ServerConfig {
        workers: 1,
        queue_capacity: 128,
        drain_deadline: Duration::from_secs(5),
        faults: Some(plan),
        ..ServerConfig::default()
    });
    let (ref_handle, ref_addr, ref_state) = common::start_server(ServerConfig {
        workers: 1,
        queue_capacity: 128,
        ..ServerConfig::default()
    });

    let queries = query_plan(64);
    let mut reference = BinClient::connect(ref_addr).unwrap();
    let expected: Vec<String> = queries
        .iter()
        .map(|&(s, d)| route_reply_to_line(&reference.route(common::DATASET, s, d).unwrap()))
        .collect();
    drop(reference);

    // One write: 64 routes immediately followed by `shutdown`.  All 64
    // are admitted before the drain begins, so all 64 must be answered.
    let mut out = Vec::new();
    for &(s, d) in &queries {
        frame::encode_route(&mut out, common::DATASET, s, d);
    }
    frame::encode_shutdown(&mut out);
    let mut c = BinClient::connect_with(addr, Some(Duration::from_secs(30))).unwrap();
    c.send_raw(&out).unwrap();

    // First reply in hand means the pipeline is being served — and the
    // shutdown behind it has long been parsed: the server is draining.
    let (status, payload) = c.read_frame().unwrap();
    let first = frame::decode_route_reply(status, &payload).unwrap();
    assert_eq!(route_reply_to_line(&first), expected[0]);

    // A connection arriving mid-drain must never be served: either the
    // connect is refused outright or the socket is closed unanswered.
    if let Ok(mut late) = BinClient::connect_with(addr, Some(Duration::from_millis(500))) {
        assert!(
            late.ping().is_err(),
            "a connection opened after drain start was served"
        );
    }

    // The remaining 63 admitted replies arrive in order and bit-exact,
    // then the shutdown acknowledgement, then EOF.
    for expected_line in &expected[1..] {
        let (status, payload) = c.read_frame().unwrap();
        let reply = frame::decode_route_reply(status, &payload).unwrap();
        assert_eq!(&route_reply_to_line(&reply), expected_line);
        assert!(
            !matches!(reply, RouteReply::Busy),
            "admitted requests cannot be shed during drain"
        );
    }
    let (status, _) = c.read_frame().unwrap();
    assert_eq!(status, frame::Status::Ok, "shutdown is acknowledged last");
    let eof = c.read_frame();
    assert!(eof.is_err(), "the drained connection must be closed");
    drop(c);

    assert!(handle.shutdown().is_ok());
    assert_eq!(state.open_connections(), 0);
    assert_eq!(state.stats().shed(), 0);

    ref_handle.shutdown().unwrap();
    assert_eq!(ref_state.open_connections(), 0);
}

#[test]
fn connects_after_exit_are_refused() {
    let (handle, addr, state) = common::start_server(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    });
    let mut c = BinClient::connect(addr).unwrap();
    c.ping().unwrap();
    c.shutdown_server().unwrap();
    drop(c);
    handle.shutdown().unwrap();
    assert_eq!(state.open_connections(), 0);

    // The listener is gone with the server: nothing accepts this port.
    let refused = Instant::now() + Duration::from_secs(5);
    loop {
        match std::net::TcpStream::connect_timeout(&addr, Duration::from_millis(250)) {
            Err(_) => break,
            Ok(_) if Instant::now() >= refused => {
                panic!("port still accepting after shutdown")
            }
            Ok(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}
