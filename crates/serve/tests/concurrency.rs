//! Concurrency regressions for the event-driven core: hundreds of idle
//! keep-alive connections must not starve active ones, and pipelined
//! requests must be answered strictly in request order.

mod common;

use std::io::Read;
use std::net::TcpStream;
use std::time::{Duration, Instant};

use l2r_core::QueryScratch;
use l2r_road_network::VertexId;
use l2r_serve::frame::{self, parse_frame, FrameParse, Status};
use l2r_serve::{format_route_response, route_reply_to_line, BinClient, Client, ServerConfig};

const DEADLINE: Duration = Duration::from_secs(30);

#[test]
fn idle_connections_do_not_starve_active_ones() {
    let (handle, addr, state) = common::start_server(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    });

    // A wall of idle keep-alive connections, parked on the event loops.
    let idle: Vec<TcpStream> = (0..256)
        .map(|i| {
            TcpStream::connect(addr).unwrap_or_else(|e| panic!("idle connect {i} failed: {e}"))
        })
        .collect();

    // Active pipelined clients must all finish well within the deadline
    // even though the loops are also polling 256 dead-weight sockets.
    let started = Instant::now();
    let vertices = state
        .registry()
        .get(common::DATASET)
        .unwrap()
        .network()
        .num_vertices() as u32;
    let answered: usize = std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for t in 0..8u32 {
            joins.push(scope.spawn(move || {
                let mut bin = BinClient::connect(addr).expect("active connect");
                let pairs: Vec<(u32, u32)> = (0..100u32)
                    .map(|i| {
                        let s = (t * 1_000 + i * 37) % vertices;
                        let d = (t * 2_003 + i * 91 + 1) % vertices;
                        (s, d)
                    })
                    .filter(|(s, d)| s != d)
                    .collect();
                let replies = bin
                    .route_pipelined(common::DATASET, &pairs, 16)
                    .expect("pipelined routes");
                assert_eq!(replies.len(), pairs.len());
                replies.len()
            }));
        }
        joins.into_iter().map(|j| j.join().unwrap()).sum()
    });
    assert!(answered >= 700, "only {answered} replies");
    assert!(
        started.elapsed() < DEADLINE,
        "active clients took {:?} with idle connections parked",
        started.elapsed()
    );

    // The idle connections survived all of it: a late request on one of
    // them is still answered.
    let mut late = Client::from_stream(idle.into_iter().next().unwrap()).unwrap();
    assert_eq!(late.request("ping").unwrap(), "OK pong");

    handle.shutdown().unwrap();
    assert!(state.stats().queries() >= answered as u64);
}

#[test]
fn pipelined_responses_preserve_request_order() {
    let (handle, addr, state) = common::start_server(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    });
    let engine = state.registry().get(common::DATASET).unwrap();
    let vertices = engine.network().num_vertices() as u32;
    let mut scratch = QueryScratch::new();

    // Distinct pipelined route queries: each reply must match the locally
    // computed answer for *its* request, in order.
    let mut bin = BinClient::connect(addr).unwrap();
    let pairs: Vec<(u32, u32)> = (0..64u32)
        .map(|i| ((i * 53 + 2) % vertices, (i * 29 + 7) % vertices))
        .filter(|(s, d)| s != d)
        .collect();
    let replies = bin
        .route_pipelined(common::DATASET, &pairs, 64)
        .expect("pipelined");
    for (&(s, d), reply) in pairs.iter().zip(replies.iter()) {
        let expected = format_route_response(&engine.route(&mut scratch, VertexId(s), VertexId(d)));
        assert_eq!(
            route_reply_to_line(reply),
            expected,
            "reply for {s}->{d} out of order or wrong"
        );
    }

    // Inline commands interleaved with batched routes share the same
    // ordered response stream: route, ping, route, stats must come back
    // exactly in that order even though pings are answered inline and
    // routes go through the batch.
    let mut buf = Vec::new();
    frame::encode_route(&mut buf, common::DATASET, pairs[0].0, pairs[0].1);
    frame::encode_ping(&mut buf);
    frame::encode_route(&mut buf, common::DATASET, pairs[1].0, pairs[1].1);
    frame::encode_stats(&mut buf);
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(DEADLINE)).unwrap();
    std::io::Write::write_all(&mut s, &buf).unwrap();
    let mut acc = Vec::new();
    let mut frames = Vec::new();
    let mut chunk = [0u8; 4096];
    while frames.len() < 4 {
        let n = s.read(&mut chunk).expect("interleaved replies");
        assert!(n > 0, "connection closed early");
        acc.extend_from_slice(&chunk[..n]);
        let mut pos = 0;
        while let FrameParse::Frame {
            kind,
            payload,
            consumed,
        } = parse_frame(&acc[pos..])
        {
            frames.push((kind, payload.to_vec()));
            pos += consumed;
        }
        acc.drain(..pos);
    }
    let route_kind = |k: u8| k == Status::Ok as u8 || k == Status::NoRoute as u8;
    assert!(route_kind(frames[0].0), "first reply must be the route");
    assert_eq!(frames[1].0, Status::Ok as u8);
    assert!(frames[1].1.is_empty(), "second reply must be the ping");
    assert!(route_kind(frames[2].0), "third reply must be the route");
    assert_eq!(frames[3].0, Status::Ok as u8);
    assert!(
        String::from_utf8_lossy(&frames[3].1).contains("uptime_ms="),
        "fourth reply must be the stats line"
    );

    handle.shutdown().unwrap();
}
