//! Shared scaffolding for the serve integration tests: builds a tiny
//! engine from synthetic data and starts a real server on an ephemeral
//! loopback port.

#![allow(dead_code)]

use std::net::SocketAddr;
use std::sync::Arc;

use l2r_core::{apply_preferences_to_b_edges, Engine, ModelRegistry};
use l2r_datagen::{generate_network, generate_workload, SyntheticNetworkConfig, WorkloadConfig};
use l2r_region_graph::{bottom_up_clustering, RegionGraph, TrajectoryGraph};
use l2r_serve::{Server, ServerConfig, ServerHandle, ServerState};

/// The dataset name every test server registers its tiny engine under.
pub const DATASET: &str = "D1";

pub fn tiny_engine() -> Engine {
    let syn = generate_network(&SyntheticNetworkConfig::tiny());
    let wl = generate_workload(&syn, &WorkloadConfig::tiny(250));
    let tg = TrajectoryGraph::build(&syn.net, &wl.trajectories);
    let clusters = bottom_up_clustering(&tg);
    let mut rg = RegionGraph::build(&syn.net, &clusters, &wl.trajectories, 2);
    apply_preferences_to_b_edges(&syn.net, &mut rg, &std::collections::HashMap::new(), 2);
    Engine::from_graphs(&syn.net, &rg)
}

/// Starts a server over one tiny dataset with the given tunables.
pub fn start_server(cfg: ServerConfig) -> (ServerHandle, SocketAddr, Arc<ServerState>) {
    let registry = ModelRegistry::new();
    registry.insert(DATASET, tiny_engine());
    let server = Server::bind_with("127.0.0.1:0", cfg, registry).expect("bind");
    let addr = server.local_addr();
    let state = server.state();
    (server.start(), addr, state)
}
