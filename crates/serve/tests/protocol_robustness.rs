//! Protocol conformance under malformed input: truncated frames,
//! oversized lengths, bad checksums, bad magic, partial interleaved
//! writes and garbage ASCII lines must all produce clean error replies or
//! clean disconnects — never a panic, a hang, or a corrupted neighbour
//! connection.

mod common;

use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::time::Duration;

use l2r_serve::frame::{
    self, parse_frame, write_frame, FrameParse, Opcode, Status, FRAME_MAGIC, MAX_FRAME_PAYLOAD,
};
use l2r_serve::{BinClient, Client, ServerConfig};

const READ_TIMEOUT: Duration = Duration::from_secs(10);

fn raw_connect(addr: std::net::SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(READ_TIMEOUT)).unwrap();
    stream.set_nodelay(true).unwrap();
    stream
}

/// Reads until EOF (clean disconnect) or timeout, returning everything the
/// server sent. A timeout fails the test: the server must never leave a
/// poisoned connection silently open.
fn read_until_eof(stream: &mut TcpStream) -> Vec<u8> {
    let mut out = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => return out,
            Ok(n) => out.extend_from_slice(&chunk[..n]),
            Err(e) => panic!("server hung instead of disconnecting: {e}"),
        }
    }
}

/// Parses every complete frame out of `bytes`, failing on trailing junk.
fn parse_all_frames(bytes: &[u8]) -> Vec<(u8, Vec<u8>)> {
    let mut frames = Vec::new();
    let mut pos = 0;
    while pos < bytes.len() {
        match parse_frame(&bytes[pos..]) {
            FrameParse::Frame {
                kind,
                payload,
                consumed,
            } => {
                frames.push((kind, payload.to_vec()));
                pos += consumed;
            }
            other => panic!("unparseable server output at {pos}: {other:?}"),
        }
    }
    frames
}

#[test]
fn malformed_binary_frames_get_clean_errors_or_disconnects() {
    let (handle, addr, state) = common::start_server(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    });

    // Truncated length prefix, then EOF: no reply owed, just a clean close.
    let mut s = raw_connect(addr);
    let mut partial = FRAME_MAGIC.to_vec();
    partial.push(Opcode::Route as u8);
    partial.extend_from_slice(&[0x10, 0x00]); // 2 of 4 length bytes
    s.write_all(&partial).unwrap();
    s.shutdown(Shutdown::Write).unwrap();
    assert!(
        read_until_eof(&mut s).is_empty(),
        "half a header deserves no reply"
    );

    // Oversized length: one final Err frame, then disconnect.
    let mut s = raw_connect(addr);
    let mut bad = FRAME_MAGIC.to_vec();
    bad.push(Opcode::Route as u8);
    bad.extend_from_slice(&((MAX_FRAME_PAYLOAD as u32 + 1).to_le_bytes()));
    s.write_all(&bad).unwrap();
    let frames = parse_all_frames(&read_until_eof(&mut s));
    assert_eq!(frames.len(), 1);
    assert_eq!(frames[0].0, Status::Err as u8, "expected an Err frame");

    // Bad checksum: corrupt the last CRC byte of an otherwise valid frame.
    let mut s = raw_connect(addr);
    let mut buf = Vec::new();
    frame::encode_ping(&mut buf);
    *buf.last_mut().unwrap() ^= 0xFF;
    s.write_all(&buf).unwrap();
    let frames = parse_all_frames(&read_until_eof(&mut s));
    assert_eq!(frames.len(), 1);
    assert_eq!(frames[0].0, Status::Err as u8);

    // Bad magic that still starts with the binary tag byte.
    let mut s = raw_connect(addr);
    s.write_all(&[FRAME_MAGIC[0], b'X', b'X', b'X', 0, 0, 0, 0, 0])
        .unwrap();
    let frames = parse_all_frames(&read_until_eof(&mut s));
    assert_eq!(frames.len(), 1);
    assert_eq!(frames[0].0, Status::Err as u8);

    // The server is still healthy for everyone else.
    let mut bin = BinClient::connect(addr).unwrap();
    bin.ping().expect("server must survive malformed peers");
    bin.shutdown_server().unwrap();
    handle.shutdown().unwrap();
    assert!(state.stats().errors() >= 3);
}

#[test]
fn malformed_payloads_in_valid_frames_are_request_scoped() {
    let (handle, addr, _state) = common::start_server(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    });

    let mut s = raw_connect(addr);

    // A well-formed envelope whose payload is garbage for its opcode, an
    // unknown opcode, and then a valid ping — all pipelined in one write.
    let mut buf = Vec::new();
    write_frame(&mut buf, Opcode::Route as u8, &[0xDE, 0xAD]);
    write_frame(&mut buf, 0x7F, &[]);
    frame::encode_ping(&mut buf);
    s.write_all(&buf).unwrap();

    // Replies must arrive in request order: Err, Err, Ok — and the
    // connection must survive the two bad requests.
    let mut bin_replies = Vec::new();
    let mut acc = Vec::new();
    let mut chunk = [0u8; 4096];
    while bin_replies.len() < 3 {
        let n = s.read(&mut chunk).expect("reply");
        assert!(n > 0, "server closed a connection it should keep");
        acc.extend_from_slice(&chunk[..n]);
        let mut pos = 0;
        while let FrameParse::Frame {
            kind,
            payload,
            consumed,
        } = parse_frame(&acc[pos..])
        {
            bin_replies.push((kind, payload.to_vec()));
            pos += consumed;
        }
        acc.drain(..pos);
    }
    assert_eq!(bin_replies[0].0, Status::Err as u8);
    assert_eq!(bin_replies[1].0, Status::Err as u8);
    assert_eq!(bin_replies[2].0, Status::Ok as u8);
    assert!(bin_replies[2].1.is_empty(), "ping answers an empty payload");

    handle.shutdown().unwrap();
}

#[test]
fn interleaved_partial_writes_still_parse() {
    let (handle, addr, _state) = common::start_server(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    });

    // Dribble a valid route request one byte at a time; the incremental
    // parser must wait for the full frame and then answer normally.
    let mut s = raw_connect(addr);
    let mut buf = Vec::new();
    frame::encode_route(&mut buf, common::DATASET, 0, 1);
    for byte in &buf {
        s.write_all(std::slice::from_ref(byte)).unwrap();
        s.flush().unwrap();
    }
    let mut acc = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        if let FrameParse::Frame { kind, .. } = parse_frame(&acc) {
            assert!(
                kind == Status::Ok as u8 || kind == Status::NoRoute as u8,
                "dribbled route answered kind {kind}"
            );
            break;
        }
        let n = s.read(&mut chunk).expect("reply");
        assert!(n > 0, "server closed a slow-but-valid connection");
        acc.extend_from_slice(&chunk[..n]);
    }

    handle.shutdown().unwrap();
}

#[test]
fn garbage_ascii_lines_get_err_replies_not_disconnects() {
    let (handle, addr, state) = common::start_server(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    });

    let mut client = Client::connect(addr).unwrap();
    for bad in [
        "frobnicate",
        "route",
        "route D1 zero one",
        "route nosuch 0 1",
        "route_batch D1 0:1",
        "reload D1",
    ] {
        let resp = client.request(bad).expect("reply");
        assert!(resp.starts_with("ERR"), "`{bad}` -> {resp}");
    }
    // The same connection still routes fine afterwards.
    let resp = client.request("route D1 0 1").unwrap();
    assert!(resp.starts_with("OK ") || resp == "NOROUTE", "{resp}");

    // An over-long request line is answered with ERR and then closed.
    let mut s = raw_connect(addr);
    let huge = vec![b'x'; 80 * 1024];
    s.write_all(&huge).unwrap();
    let out = read_until_eof(&mut s);
    let text = String::from_utf8_lossy(&out);
    assert!(text.starts_with("ERR"), "over-long line got: {text}");

    handle.shutdown().unwrap();
    assert!(state.stats().errors() >= 7);
}
