//! Load-shedding behaviour of the bounded per-dataset admission queues:
//! overflow is answered with retriable `BUSY`, the connection survives,
//! the queue drains back to zero and the shed/served counters add up.

mod common;

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use l2r_serve::frame::{self, parse_frame, FrameParse, Status};
use l2r_serve::{BinClient, Client, ServerConfig};

/// A server whose admission queue overflows after 2 in-flight routes and
/// whose batches are held for a while, so pipelined floods reliably find
/// the queue full.
fn shedding_config() -> ServerConfig {
    ServerConfig {
        workers: 1,
        queue_capacity: 2,
        batch_max: 1024,
        batch_budget: Duration::from_millis(150),
        ..ServerConfig::default()
    }
}

#[test]
fn binary_overflow_gets_busy_and_connection_survives() {
    let (handle, addr, state) = common::start_server(shedding_config());

    // 8 pipelined routes against capacity 2: exactly 2 admitted, 6 shed.
    let mut buf = Vec::new();
    for i in 0..8u32 {
        frame::encode_route(&mut buf, common::DATASET, i, i + 1);
    }
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.write_all(&buf).unwrap();

    let mut frames = Vec::new();
    let mut acc = Vec::new();
    let mut chunk = [0u8; 8192];
    while frames.len() < 8 {
        let n = s.read(&mut chunk).expect("replies");
        assert!(n > 0, "connection closed after BUSY");
        acc.extend_from_slice(&chunk[..n]);
        let mut pos = 0;
        while let FrameParse::Frame { kind, consumed, .. } = parse_frame(&acc[pos..]) {
            frames.push(kind);
            pos += consumed;
        }
        acc.drain(..pos);
    }
    let busy = frames.iter().filter(|&&k| k == Status::Busy as u8).count();
    let routed = frames
        .iter()
        .filter(|&&k| k == Status::Ok as u8 || k == Status::NoRoute as u8)
        .count();
    assert_eq!(busy, 6, "kinds: {frames:?}");
    assert_eq!(routed, 2, "kinds: {frames:?}");
    // In-order delivery: the two admitted requests were the first two, so
    // the first two replies are route answers and the rest are BUSY.
    assert!(frames[0] != Status::Busy as u8 && frames[1] != Status::Busy as u8);

    // The queue drained back to zero and the counters account for every
    // request: 2 served, 6 shed.
    let queue = state.dataset_queue(common::DATASET).expect("queue exists");
    assert_eq!(queue.depth(), 0, "queue must drain after the flush");
    assert_eq!(queue.served(), 2);
    assert_eq!(queue.shed(), 6);
    assert_eq!(state.stats().shed(), 6);

    // BUSY is retriable: the same connection keeps working, and with the
    // flood gone a retried request is admitted and answered.
    let mut bin = BinClient::from_stream(s).unwrap();
    let reply = bin.route(common::DATASET, 2, 3).expect("retry after BUSY");
    assert!(
        !matches!(reply, frame::RouteReply::Busy),
        "an uncontended retry must be admitted"
    );
    assert_eq!(queue.depth(), 0);
    assert_eq!(queue.served(), 3);

    handle.shutdown().unwrap();
}

#[test]
fn ascii_overflow_gets_busy_lines() {
    let (handle, addr, state) = common::start_server(shedding_config());

    let mut client = Client::connect(addr).unwrap();
    let mut burst = String::new();
    for i in 0..8u32 {
        burst.push_str(&format!("route {} {} {}\n", common::DATASET, i, i + 1));
    }
    client.send_bytes(burst.as_bytes()).unwrap();
    let mut busy = 0;
    let mut routed = 0;
    for _ in 0..8 {
        let line = client.read_line().expect("reply line");
        if line == "BUSY" {
            busy += 1;
        } else {
            assert!(line.starts_with("OK ") || line == "NOROUTE", "{line}");
            routed += 1;
        }
    }
    assert_eq!(busy, 6);
    assert_eq!(routed, 2);

    // Still serving on the same line-protocol connection.
    assert_eq!(client.request("ping").unwrap(), "OK pong");
    let queue = state.dataset_queue(common::DATASET).unwrap();
    assert_eq!(queue.depth(), 0);
    assert_eq!(state.stats().shed(), 6);

    handle.shutdown().unwrap();
}
