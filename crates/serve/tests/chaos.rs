//! Fault-injection (chaos) tests: a deterministic [`FaultPlan`] is wired
//! into a real server and the fault-tolerance invariants are asserted
//! exactly — a handler panic costs one request and never a worker, every
//! injected fault is accounted for in the server's stats, surviving
//! requests stay bit-exact, and no test leaves a connection behind.
//!
//! The fault schedule is seeded; override with `L2R_CHAOS_SEED=<u64>` to
//! rehearse a different schedule (CI runs two fixed seeds).

mod common;

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use l2r_serve::frame::{self, RouteReply};
use l2r_serve::{route_reply_to_line, BinClient, Client, FaultConfig, FaultPlan, ServerConfig};

/// The fault-schedule seed of this run (`L2R_CHAOS_SEED` overrides).
fn chaos_seed() -> u64 {
    std::env::var("L2R_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xFA17_5EED)
}

/// Injected faults panic on purpose; keep their backtrace spam out of the
/// test output while leaving every other panic loud.
fn quiet_injected_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let message = info
                .payload()
                .downcast_ref::<&str>()
                .copied()
                .map(str::to_string)
                .or_else(|| info.payload().downcast_ref::<String>().cloned())
                .unwrap_or_default();
            if !message.contains("injected") {
                default(info);
            }
        }));
    });
}

/// The deterministic query list both the chaos server and the fault-free
/// reference server are asked, so replies can be compared bit-for-bit.
fn query_plan(n: usize) -> Vec<(u32, u32)> {
    let mut seed = 0x5EED_1234u64;
    (0..n)
        .map(|_| {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let s = (seed >> 33) % 40;
            let d = ((seed >> 13) % 40 + 1 + s) % 41;
            (s as u32, d as u32)
        })
        .collect()
}

#[test]
fn injected_handler_panics_cost_one_request_never_a_worker() {
    quiet_injected_panics();
    let plan = Arc::new(FaultPlan::new(FaultConfig {
        seed: chaos_seed(),
        handler_panic_per_mille: 100,
        ..FaultConfig::default()
    }));
    let (handle, addr, state) = common::start_server(ServerConfig {
        workers: 1,
        faults: Some(plan.clone()),
        ..ServerConfig::default()
    });
    let (ref_handle, ref_addr, ref_state) = common::start_server(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    });

    let queries = query_plan(400);
    let mut chaos = BinClient::connect(addr).unwrap();
    let mut reference = BinClient::connect(ref_addr).unwrap();
    let mut internal_errors = 0u64;
    for &(s, d) in &queries {
        let reply = chaos.route(common::DATASET, s, d).unwrap();
        let expected = reference.route(common::DATASET, s, d).unwrap();
        match &reply {
            RouteReply::Err(message) if message.starts_with("internal") => internal_errors += 1,
            got => assert_eq!(
                route_reply_to_line(got),
                route_reply_to_line(&expected),
                "non-faulted reply for ({s},{d}) must be bit-exact"
            ),
        }
    }
    drop(chaos);
    drop(reference);

    // Exact accounting: every injected panic surfaced as exactly one
    // internal error and one caught panic — and killed no worker.
    let injected = plan.counters().panics_injected;
    assert!(injected > 0, "400 draws at 10% must inject something");
    assert_eq!(internal_errors, injected);
    assert_eq!(state.stats().panics_caught(), injected);
    assert_eq!(state.stats().workers_respawned(), 0);
    assert_eq!(state.stats().errors(), 0, "panics are not protocol errors");

    handle.shutdown().unwrap();
    ref_handle.shutdown().unwrap();
    assert_eq!(state.open_connections(), 0);
    assert_eq!(ref_state.open_connections(), 0);
}

#[test]
fn short_reads_and_writes_keep_replies_bit_exact() {
    quiet_injected_panics();
    let plan = Arc::new(FaultPlan::new(FaultConfig {
        seed: chaos_seed(),
        short_read_per_mille: 300,
        short_write_per_mille: 300,
        ..FaultConfig::default()
    }));
    let (handle, addr, state) = common::start_server(ServerConfig {
        workers: 1,
        queue_capacity: 512,
        faults: Some(plan.clone()),
        ..ServerConfig::default()
    });
    let (ref_handle, ref_addr, ref_state) = common::start_server(ServerConfig {
        workers: 1,
        queue_capacity: 512,
        ..ServerConfig::default()
    });

    let queries = query_plan(300);
    let mut chaos = BinClient::connect(addr).unwrap();
    let mut reference = BinClient::connect(ref_addr).unwrap();
    let got = chaos
        .route_pipelined(common::DATASET, &queries, 32)
        .unwrap();
    let expected = reference
        .route_pipelined(common::DATASET, &queries, 32)
        .unwrap();
    assert_eq!(got.len(), expected.len());
    for (g, e) in got.iter().zip(&expected) {
        assert_eq!(route_reply_to_line(g), route_reply_to_line(e));
    }
    drop(chaos);
    drop(reference);

    let counters = plan.counters();
    assert!(
        counters.short_reads > 0 && counters.short_writes > 0,
        "the schedule must actually have fragmented some IO: {counters:?}"
    );
    assert_eq!(state.stats().errors(), 0);
    assert_eq!(state.stats().panics_caught(), 0);

    handle.shutdown().unwrap();
    ref_handle.shutdown().unwrap();
    assert_eq!(state.open_connections(), 0);
    assert_eq!(ref_state.open_connections(), 0);
}

#[test]
fn killed_workers_are_respawned_and_service_continues() {
    quiet_injected_panics();
    let plan = Arc::new(FaultPlan::new(FaultConfig {
        seed: chaos_seed(),
        worker_kills: 2,
        ..FaultConfig::default()
    }));
    let (handle, addr, state) = common::start_server(ServerConfig {
        workers: 2,
        faults: Some(plan.clone()),
        ..ServerConfig::default()
    });

    // Each kill fires at accept time and takes the accepting event loop
    // down with it; the watchdog must bring a replacement up.  Keep
    // connecting until both kills have fired and been repaired.
    let deadline = Instant::now() + Duration::from_secs(10);
    while state.stats().workers_respawned() < 2 {
        assert!(
            Instant::now() < deadline,
            "watchdog did not respawn 2 workers in time: respawned={} killed={}",
            state.stats().workers_respawned(),
            plan.counters().worker_kills_injected,
        );
        // The sacrificial connection may die at any point; ignore how.
        if let Ok(mut c) = BinClient::connect_with(addr, Some(Duration::from_millis(200))) {
            let _ = c.ping();
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(plan.counters().worker_kills_injected, 2);

    // The repaired pool must still serve correctly.
    let mut c = BinClient::connect(addr).unwrap();
    for &(s, d) in query_plan(32).iter() {
        assert!(matches!(
            c.route(common::DATASET, s, d).unwrap(),
            RouteReply::Route { .. } | RouteReply::NoRoute
        ));
    }
    drop(c);

    handle.shutdown().unwrap();
    assert_eq!(state.stats().workers_respawned(), 2);
    assert_eq!(state.open_connections(), 0);
}

#[test]
fn zero_deadline_requests_are_answered_deadline_exceeded_exactly() {
    let (handle, addr, state) = common::start_server(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    });

    // Binary: an already-expired budget must be rejected at admission
    // without executing anything.
    let mut c = BinClient::connect(addr).unwrap();
    let mut out = Vec::new();
    for &(s, d) in query_plan(20).iter() {
        out.clear();
        frame::encode_route_deadline(&mut out, common::DATASET, s, d, Some(0));
        c.send_raw(&out).unwrap();
        let (status, payload) = c.read_frame().unwrap();
        assert_eq!(
            frame::decode_route_reply(status, &payload).unwrap(),
            RouteReply::DeadlineExceeded
        );
    }
    drop(c);

    // ASCII parity: the optional trailing token spells the same budget.
    let mut a = Client::connect(addr).unwrap();
    let line = a
        .request(&format!("route {} 0 1 0", common::DATASET))
        .unwrap();
    assert_eq!(line, "ERR deadline exceeded");
    drop(a);

    assert_eq!(state.stats().deadline_exceeded(), 21);
    assert_eq!(state.stats().queries(), 0, "expired requests never execute");
    assert_eq!(state.stats().errors(), 0);

    handle.shutdown().unwrap();
    assert_eq!(state.open_connections(), 0);
}

#[test]
fn write_stalled_connections_are_disconnected() {
    quiet_injected_panics();
    // Shrink the server-side kernel send buffer so a reader that never
    // drains backs the reactor's outbound buffer up within a few KiB.
    let plan = Arc::new(FaultPlan::new(FaultConfig {
        seed: chaos_seed(),
        sndbuf: Some(4096),
        ..FaultConfig::default()
    }));
    let (handle, addr, state) = common::start_server(ServerConfig {
        workers: 1,
        queue_capacity: 64,
        write_stall_cap: 1024,
        write_stall_timeout: Duration::from_millis(150),
        faults: Some(plan),
        ..ServerConfig::default()
    });

    // Flood routes and never read a byte: replies (routes + BUSY) pile up
    // in the reactor once the kernel buffers are full.
    let mut s = TcpStream::connect(addr).unwrap();
    let mut out = Vec::new();
    for &(src, dst) in query_plan(20_000).iter() {
        frame::encode_route(&mut out, common::DATASET, src, dst);
    }
    // The server disconnects us mid-write once the stall trips; both a
    // short write count and an error are acceptable ends.
    let _ = s.write_all(&out);

    let deadline = Instant::now() + Duration::from_secs(10);
    while state.stats().write_stalls() == 0 {
        assert!(
            Instant::now() < deadline,
            "write-stall detection did not trip"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(state.stats().write_stalls(), 1);

    // The dropped connection is observable client-side as EOF/reset.
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut sink = [0u8; 4096];
    loop {
        match s.read(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
    drop(s);

    handle.shutdown().unwrap();
    assert_eq!(state.open_connections(), 0);
}

#[test]
fn idle_connections_are_reaped() {
    let (handle, addr, state) = common::start_server(ServerConfig {
        workers: 1,
        idle_timeout: Duration::from_millis(100),
        ..ServerConfig::default()
    });

    let mut c = BinClient::connect_with(addr, Some(Duration::from_secs(10))).unwrap();
    c.ping().unwrap();
    // Go quiet past the idle budget: the server must reap us (EOF), not
    // hold the socket forever.
    let reaped_by = Instant::now() + Duration::from_secs(10);
    while state.stats().idle_reaped() == 0 {
        assert!(Instant::now() < reaped_by, "idle connection was not reaped");
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(state.stats().idle_reaped(), 1);
    assert!(
        c.ping().is_err(),
        "a reaped connection cannot serve further requests"
    );
    drop(c);

    handle.shutdown().unwrap();
    assert_eq!(state.open_connections(), 0);
}

#[test]
fn connection_cap_sheds_excess_accepts() {
    let (handle, addr, state) = common::start_server(ServerConfig {
        workers: 1,
        max_connections: 2,
        ..ServerConfig::default()
    });

    let mut a = BinClient::connect(addr).unwrap();
    let mut b = BinClient::connect(addr).unwrap();
    a.ping().unwrap();
    b.ping().unwrap();
    assert_eq!(state.open_connections(), 2);

    // The third connection is accepted then immediately shed.
    let deadline = Instant::now() + Duration::from_secs(10);
    while state.stats().conns_rejected() == 0 {
        assert!(Instant::now() < deadline, "over-cap accept was not shed");
        let mut c = BinClient::connect_with(addr, Some(Duration::from_millis(250))).unwrap();
        let _ = c.ping();
        std::thread::sleep(Duration::from_millis(10));
    }
    // The admitted pair is unaffected.
    a.ping().unwrap();
    b.ping().unwrap();
    drop(a);
    drop(b);

    handle.shutdown().unwrap();
    assert_eq!(state.open_connections(), 0);
}
