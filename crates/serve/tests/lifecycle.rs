//! Model-lifecycle integration tests: the crash-safe store, validated
//! hot-swap, explicit rollback, and automatic post-swap rollback — all
//! exercised over real TCP through **both** wire protocols.
//!
//! Ties the `l2r_core::store` durability layer to the serving stack: a
//! server reloads straight out of a model-store directory (newest durable
//! generation or a pinned one), a poisoned snapshot is rejected with the
//! old engine still serving and the `validation_failures` counter honest,
//! and an error spike inside the probation window rolls the swap back
//! without an operator in the loop.

mod common;

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use common::{start_server, tiny_engine, DATASET};
use l2r_core::{
    compute_canaries, encode_snapshot_with, L2r, L2rConfig, ModelStore, QueryScratch, StoreOptions,
};
use l2r_datagen::{generate_network, generate_workload, SyntheticNetworkConfig, WorkloadConfig};
use l2r_serve::{BinClient, Client, FaultConfig, FaultPlan, ServerConfig};

fn fitted() -> L2r {
    let syn = generate_network(&SyntheticNetworkConfig::tiny());
    let wl = generate_workload(&syn, &WorkloadConfig::tiny(250));
    let (train, _) = wl.temporal_split(0.8);
    L2r::fit(&syn.net, &train, L2rConfig::fast()).unwrap()
}

fn temp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("l2r-lifecycle-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A store holding `generations` durable generations of a freshly fitted
/// model, stamped with the test dataset name.
fn seeded_store(dir: &std::path::Path, generations: u64) -> L2r {
    let model = fitted();
    let mut store = ModelStore::create(dir, DATASET, StoreOptions::default()).unwrap();
    for _ in 0..generations {
        store.publish(&model).unwrap();
    }
    model
}

/// Parses the numeric `key=value` fields of an ASCII stats line (the text
/// after `OK `), expanding `generations=name:gen,…` into `generation.name`
/// keys so it is directly comparable to the binary field list.
fn parse_stats_line(line: &str) -> HashMap<String, u64> {
    let mut fields = HashMap::new();
    for token in line.split_whitespace() {
        let Some((key, value)) = token.split_once('=') else {
            continue;
        };
        if key == "datasets" {
            continue;
        }
        if key == "generations" {
            if value == "-" {
                continue;
            }
            for pair in value.split(',') {
                let (name, generation) = pair.split_once(':').expect("name:gen pair");
                fields.insert(
                    format!("generation.{name}"),
                    generation.parse().expect("generation number"),
                );
            }
            continue;
        }
        fields.insert(key.to_string(), value.parse().expect("numeric stat"));
    }
    fields
}

/// Every counter the ASCII `stats` line carries must agree field-for-field
/// with the structured pairs of the binary `stats` response (`uptime_ms`
/// excepted: the two are read at different instants).
#[test]
fn stats_agree_field_for_field_across_protocols() {
    let (handle, addr, _state) = start_server(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    });
    let mut ascii = Client::connect(addr).unwrap();
    // Connect the binary client *before* either read, so the connection
    // counter cannot move between the two snapshots.
    let mut bin = BinClient::connect(addr).unwrap();

    // Put traffic on the counters so parity is not trivially zero==zero.
    for i in 0..5u32 {
        ascii
            .request(&format!("route {DATASET} {i} {}", i + 1))
            .unwrap();
    }
    ascii.request("route nosuch 0 1").unwrap();

    let line = ascii.request("stats").unwrap();
    let line = line.strip_prefix("OK ").expect("stats answers OK");
    let from_ascii = parse_stats_line(line);
    let from_binary: HashMap<String, u64> = bin.stats_fields().unwrap().into_iter().collect();

    assert!(
        from_binary.len() >= from_ascii.len(),
        "binary stats must expose every ASCII field: {from_binary:?}"
    );
    for (key, value) in &from_ascii {
        if key == "uptime_ms" {
            continue;
        }
        assert_eq!(
            from_binary.get(key),
            Some(value),
            "field `{key}` disagrees between protocols\n ascii: {from_ascii:?}\nbinary: {from_binary:?}"
        );
    }
    for key in [
        "queries",
        "errors",
        "validation_failures",
        "rollbacks",
        &format!("generation.{DATASET}"),
    ] {
        assert!(
            from_ascii.contains_key(key),
            "ASCII line lacks `{key}`: {line}"
        );
    }
    assert_eq!(from_ascii["queries"], 5);
    assert_eq!(from_ascii["errors"], 1);

    drop(bin);
    ascii.request("shutdown").unwrap();
    handle.shutdown().unwrap();
}

/// Store-directory reloads (newest + pinned generation) and explicit
/// rollbacks over both protocols, with honest generation numbers and
/// counters end to end.
#[test]
fn store_reload_and_rollback_over_tcp() {
    let dir = temp_dir("store-reload");
    seeded_store(&dir, 2);
    let (handle, addr, state) = start_server(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    });
    let mut ascii = Client::connect(addr).unwrap();
    let dirs = dir.display();

    // ASCII: reload the newest durable generation, then pin store gen 1.
    assert_eq!(
        ascii.request(&format!("reload {DATASET} {dirs}")).unwrap(),
        format!("OK dataset={DATASET} generation=2")
    );
    assert_eq!(
        ascii
            .request(&format!("reload {DATASET} {dirs} 1"))
            .unwrap(),
        format!("OK dataset={DATASET} generation=3")
    );
    let bad_spec = ascii
        .request(&format!("reload {DATASET} {dirs} nonsense"))
        .unwrap();
    assert!(
        bad_spec.starts_with("ERR") && bad_spec.contains("latest"),
        "{bad_spec}"
    );

    // ASCII rollback is a swap: the generation bumps.
    assert_eq!(
        ascii.request(&format!("rollback {DATASET}")).unwrap(),
        format!("OK dataset={DATASET} generation=4")
    );
    // Routes still answered after the rollback.
    let route = ascii.request(&format!("route {DATASET} 0 1")).unwrap();
    assert!(route.starts_with("OK") || route == "NOROUTE", "{route}");

    // Binary: reload `latest` from the store, then roll it back too.
    let mut bin = BinClient::connect(addr).unwrap();
    assert_eq!(
        bin.reload_spec(DATASET, &dirs.to_string(), Some("latest"))
            .unwrap(),
        5
    );
    assert_eq!(bin.rollback(DATASET).unwrap(), 6);
    // The retained engine was consumed: no flip-flop.
    let err = bin.rollback(DATASET).unwrap_err();
    assert!(err.to_string().contains("rollback failed"), "{err}");

    assert_eq!(state.stats().reloads(), 3);
    assert_eq!(state.stats().rollbacks(), 2);
    assert_eq!(state.stats().validation_failures(), 0);
    assert_eq!(state.registry().generation(DATASET), Some(6));

    drop(bin);
    ascii.request("shutdown").unwrap();
    handle.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A snapshot whose canaries do not reproduce — or whose dataset stamp
/// does not match — is rejected with the old engine still serving and
/// exactly accounted in `validation_failures`.
#[test]
fn poisoned_snapshots_are_rejected_and_counted() {
    let dir = temp_dir("poisoned");
    std::fs::create_dir_all(&dir).unwrap();
    let model = fitted();

    // Canaries recorded from the real model, then poisoned: the digests
    // can no longer reproduce on the compiled engine.
    let mut canaries = compute_canaries(&model, 4);
    assert!(!canaries.is_empty());
    for c in &mut canaries {
        c.digest ^= 0xDEAD_BEEF;
    }
    let poisoned = dir.join("poisoned.l2r");
    std::fs::write(&poisoned, encode_snapshot_with(&model, DATASET, &canaries)).unwrap();

    // A healthy snapshot stamped with the wrong dataset.
    let foreign = dir.join("foreign.l2r");
    let good_canaries = compute_canaries(&model, 4);
    std::fs::write(
        &foreign,
        encode_snapshot_with(&model, "somewhere-else", &good_canaries),
    )
    .unwrap();

    let (handle, addr, state) = start_server(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    });
    let mut ascii = Client::connect(addr).unwrap();

    // Pin the pre-reload answer so "old engine keeps serving" is a
    // byte-for-byte claim, not a liveness one.
    let before = ascii.request(&format!("route {DATASET} 0 1")).unwrap();

    let rejected = ascii
        .request(&format!("reload {DATASET} {}", poisoned.display()))
        .unwrap();
    assert!(
        rejected.starts_with("ERR reload failed") && rejected.contains("canary"),
        "{rejected}"
    );
    assert_eq!(state.stats().validation_failures(), 1);

    let mismatched = ascii
        .request(&format!("reload {DATASET} {}", foreign.display()))
        .unwrap();
    assert!(
        mismatched.starts_with("ERR reload failed") && mismatched.contains("somewhere-else"),
        "{mismatched}"
    );
    assert_eq!(state.stats().validation_failures(), 2);

    // Neither rejection swapped anything.
    assert_eq!(state.stats().reloads(), 0);
    assert_eq!(state.registry().generation(DATASET), Some(1));
    assert_eq!(
        ascii.request(&format!("route {DATASET} 0 1")).unwrap(),
        before
    );

    ascii.request("shutdown").unwrap();
    handle.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// After a hot-swap, an internal-error spike inside the probation window
/// rolls the dataset back automatically — exactly once — and the counters
/// record it.
#[test]
fn error_spike_in_probation_triggers_automatic_rollback() {
    let dir = temp_dir("auto-rollback");
    seeded_store(&dir, 1);
    // Every route handler panics; with a window of 8 at 250‰ the budget is
    // 2 internal errors, so the third route after the swap must trigger.
    let plan = Arc::new(FaultPlan::new(FaultConfig {
        seed: 7,
        handler_panic_per_mille: 1000,
        ..FaultConfig::default()
    }));
    let (handle, addr, state) = start_server(ServerConfig {
        workers: 2,
        auto_rollback_window: 8,
        auto_rollback_per_mille: 250,
        faults: Some(plan),
        ..ServerConfig::default()
    });
    let mut ascii = Client::connect(addr).unwrap();

    assert_eq!(
        ascii
            .request(&format!("reload {DATASET} {}", dir.display()))
            .unwrap(),
        format!("OK dataset={DATASET} generation=2")
    );

    for i in 0..6u32 {
        let response = ascii
            .request(&format!("route {DATASET} {i} {}", i + 1))
            .unwrap();
        assert!(response.starts_with("ERR internal"), "{response}");
    }
    // The trigger runs on the event-loop thread right after the deciding
    // response is filled; give it a moment under load.
    let deadline = Instant::now() + Duration::from_secs(5);
    while state.stats().rollbacks() == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(
        state.stats().rollbacks(),
        1,
        "probation must roll back once"
    );
    // A rollback is a swap: generation 2 (the bad reload) became 3.
    assert_eq!(state.registry().generation(DATASET), Some(3));
    assert!(!state.registry().has_previous(DATASET));

    ascii.request("shutdown").unwrap();
    handle.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A clean probation window passes quietly: no rollback, probation
/// disarmed, the new engine keeps serving.
#[test]
fn clean_probation_window_passes_without_rollback() {
    let dir = temp_dir("clean-probation");
    seeded_store(&dir, 1);
    let (handle, addr, state) = start_server(ServerConfig {
        workers: 2,
        auto_rollback_window: 4,
        auto_rollback_per_mille: 250,
        ..ServerConfig::default()
    });
    let mut ascii = Client::connect(addr).unwrap();

    assert_eq!(
        ascii
            .request(&format!("reload {DATASET} {}", dir.display()))
            .unwrap(),
        format!("OK dataset={DATASET} generation=2")
    );
    for i in 0..8u32 {
        let response = ascii
            .request(&format!("route {DATASET} {i} {}", i + 1))
            .unwrap();
        assert!(!response.starts_with("ERR"), "{response}");
    }
    assert_eq!(state.stats().rollbacks(), 0);
    assert_eq!(state.registry().generation(DATASET), Some(2));
    // The retained engine is still there for a *manual* rollback.
    assert!(state.registry().has_previous(DATASET));

    ascii.request("shutdown").unwrap();
    handle.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// `--model NAME=<dir>` serves a store directory: `registry_from_specs`
/// opens it and installs the newest durable generation.
#[test]
fn registry_from_specs_accepts_a_store_directory() {
    let dir = temp_dir("specs-dir");
    let model = seeded_store(&dir, 2);
    let registry = l2r_serve::registry_from_specs(&[(DATASET.to_string(), dir.clone())]).unwrap();
    let engine = registry.get(DATASET).expect("store-backed dataset");

    let reference = model.into_engine();
    let (mut a, mut b) = (QueryScratch::new(), QueryScratch::new());
    let n = reference.network().num_vertices() as u32;
    for i in (0..n).step_by(7) {
        let (s, d) = (
            l2r_road_network::VertexId(i),
            l2r_road_network::VertexId((i * 13 + 1) % n),
        );
        assert_eq!(engine.route(&mut a, s, d), reference.route(&mut b, s, d));
    }

    // A directory that is not a store is a clean error, not a panic.
    let empty = temp_dir("specs-dir-empty");
    std::fs::create_dir_all(&empty).unwrap();
    let err = l2r_serve::registry_from_specs(&[(DATASET.to_string(), empty.clone())])
        .expect_err("an empty directory is not a store");
    assert!(err.contains("failed to open store"), "{err}");

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&empty);
}

/// The serving answers produced by a store-reloaded engine are
/// bit-identical to a locally compiled engine from the same snapshot.
#[test]
fn store_reload_serves_bit_identically() {
    let dir = temp_dir("bit-identical");
    seeded_store(&dir, 1);
    let (handle, addr, _state) = start_server(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    });
    let mut ascii = Client::connect(addr).unwrap();
    ascii
        .request(&format!("reload {DATASET} {}", dir.display()))
        .unwrap();

    // The reference: compile the same durable snapshot locally.
    let store = ModelStore::open(&dir).unwrap();
    let (_, snapshot) = store.load_latest().unwrap();
    let reference = snapshot.model.into_engine();
    let mut scratch = QueryScratch::new();
    let n = reference.network().num_vertices() as u32;
    let mut compared = 0usize;
    for i in (0..n).step_by(5) {
        let (s, d) = (i, (i * 17 + 3) % n);
        let expected = l2r_serve::format_route_response(&reference.route(
            &mut scratch,
            l2r_road_network::VertexId(s),
            l2r_road_network::VertexId(d),
        ));
        let got = ascii.request(&format!("route {DATASET} {s} {d}")).unwrap();
        assert_eq!(got, expected, "query {s} -> {d}");
        compared += 1;
    }
    assert!(compared > 3);
    // The common helper's engine and the fitted snapshot share a network,
    // so this also proves the reload actually swapped engines: answers
    // come from the *snapshot's* model graphs.
    let _ = tiny_engine();

    ascii.request("shutdown").unwrap();
    handle.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}
