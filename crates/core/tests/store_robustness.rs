//! Malformed-`MANIFEST` surface of the model store, mirroring
//! `snapshot_robustness.rs`: every truncation cut, checksum flip and stale
//! version must decode to a precise [`ManifestError`] — and at the store
//! level, a damaged manifest must *recover* (falling back to the newest
//! durable generation) rather than error, as long as generation files
//! survive.  Also pins store-level retention and the generation-number
//! monotonicity contract.

use l2r_core::{
    decode_manifest, encode_manifest, L2r, L2rConfig, Manifest, ManifestEntry, ManifestError,
    ModelStore, StoreError, StoreOptions,
};
use l2r_datagen::{generate_network, generate_workload, SyntheticNetworkConfig, WorkloadConfig};

fn fitted() -> L2r {
    let syn = generate_network(&SyntheticNetworkConfig::tiny());
    let wl = generate_workload(&syn, &WorkloadConfig::tiny(250));
    let (train, _) = wl.temporal_split(0.8);
    L2r::fit(&syn.net, &train, L2rConfig::fast()).unwrap()
}

fn temp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("l2r-store-test-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn manifest() -> Manifest {
    Manifest {
        dataset: "city".to_string(),
        active: 7,
        entries: vec![
            ManifestEntry {
                generation: 5,
                len: 4096,
                crc: 0x1234_5678,
            },
            ManifestEntry {
                generation: 7,
                len: 4100,
                crc: 0x9ABC_DEF0,
            },
        ],
    }
}

#[test]
fn manifest_decodes_what_it_encodes() {
    let m = manifest();
    let bytes = encode_manifest(&m);
    assert_eq!(decode_manifest(&bytes).unwrap(), m);
}

#[test]
fn manifest_rejects_wrong_magic() {
    let mut bytes = encode_manifest(&manifest());
    bytes[0] ^= 0xFF;
    assert!(matches!(
        decode_manifest(&bytes),
        Err(ManifestError::BadMagic)
    ));
}

#[test]
fn manifest_rejects_stale_version() {
    let mut bytes = encode_manifest(&manifest());
    bytes[8] = l2r_core::store::MANIFEST_VERSION + 1;
    assert!(matches!(
        decode_manifest(&bytes),
        Err(ManifestError::UnsupportedVersion(v)) if v == l2r_core::store::MANIFEST_VERSION + 1
    ));
}

#[test]
fn manifest_rejects_every_truncation_cut() {
    let bytes = encode_manifest(&manifest());
    for cut in [4usize, 12, 20, bytes.len() / 2, bytes.len() - 1] {
        let err = decode_manifest(&bytes[..cut]).unwrap_err();
        assert!(
            matches!(
                err,
                ManifestError::BadMagic
                    | ManifestError::TruncatedHeader { .. }
                    | ManifestError::Truncated { .. }
            ),
            "cut at {cut}: {err}"
        );
    }
}

#[test]
fn manifest_rejects_trailing_bytes() {
    let mut bytes = encode_manifest(&manifest());
    bytes.push(0xAA);
    assert!(matches!(
        decode_manifest(&bytes),
        Err(ManifestError::TrailingBytes(1))
    ));
}

#[test]
fn manifest_rejects_payload_flips_at_every_offset() {
    let bytes = encode_manifest(&manifest());
    let payload_start = 21;
    for offset in payload_start..bytes.len() {
        let mut corrupt = bytes.clone();
        corrupt[offset] ^= 0x40;
        let err = decode_manifest(&corrupt).unwrap_err();
        assert!(
            matches!(err, ManifestError::ChecksumMismatch { .. }),
            "flip at {offset}: {err}"
        );
    }
}

#[test]
fn store_roundtrips_publish_and_load() {
    let dir = temp_dir("roundtrip");
    let model = fitted();
    let mut store = ModelStore::create(&dir, "city", StoreOptions::default()).unwrap();
    assert_eq!(store.latest(), None);
    assert!(matches!(
        store.load_latest(),
        Err(StoreError::NoDurableGeneration)
    ));

    let g1 = store.publish(&model).unwrap();
    assert_eq!(g1, 1);
    assert_eq!(store.latest(), Some(1));
    let (g, snap) = store.load_latest().unwrap();
    assert_eq!(g, 1);
    assert_eq!(snap.dataset, "city");
    assert!(!snap.canaries.is_empty());

    // Reopen from disk: same state.
    let reopened = ModelStore::open(&dir).unwrap();
    assert_eq!(reopened.dataset(), "city");
    assert_eq!(reopened.latest(), Some(1));
    assert_eq!(
        reopened.load_bytes(1).unwrap(),
        store.load_bytes(1).unwrap()
    );

    assert!(matches!(
        store.load(9),
        Err(StoreError::UnknownGeneration(9))
    ));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn store_retention_is_bounded_and_never_drops_the_active_generation() {
    let dir = temp_dir("retention");
    let model = fitted();
    let mut store = ModelStore::create(&dir, "city", StoreOptions { retain: 2 }).unwrap();
    for expect in 1..=5u64 {
        assert_eq!(store.publish(&model).unwrap(), expect);
    }
    assert_eq!(store.generations(), vec![4, 5]);
    assert_eq!(store.latest(), Some(5));
    // Dropped generation files are unlinked, retained ones load.
    assert!(matches!(
        store.load(3),
        Err(StoreError::UnknownGeneration(3))
    ));
    store.load(4).unwrap();
    store.load(5).unwrap();
    let names: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    assert!(
        !names.iter().any(|n| n.contains("gen-00000003")),
        "{names:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn store_recovers_from_a_torn_manifest_by_scanning_generations() {
    let dir = temp_dir("torn-manifest");
    let model = fitted();
    let mut store = ModelStore::create(&dir, "city", StoreOptions::default()).unwrap();
    store.publish(&model).unwrap();
    store.publish(&model).unwrap();
    let good = store.load_bytes(2).unwrap();

    // Tear the manifest mid-file (as a crash during a non-atomic write
    // would) and reopen: recovery adopts the newest verifying generation
    // and rewrites the manifest durably.
    let manifest_path = dir.join(l2r_core::store::MANIFEST_FILE);
    let bytes = std::fs::read(&manifest_path).unwrap();
    std::fs::write(&manifest_path, &bytes[..bytes.len() / 2]).unwrap();

    let recovered = ModelStore::open(&dir).unwrap();
    assert_eq!(recovered.dataset(), "city");
    assert_eq!(recovered.latest(), Some(2));
    assert_eq!(recovered.load_bytes(2).unwrap(), good);
    // The rewritten manifest is durable: a second open needs no recovery.
    decode_manifest(&std::fs::read(&manifest_path).unwrap()).unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn store_recovers_from_a_deleted_manifest() {
    let dir = temp_dir("missing-manifest");
    let model = fitted();
    let mut store = ModelStore::create(&dir, "city", StoreOptions::default()).unwrap();
    store.publish(&model).unwrap();
    let good = store.load_bytes(1).unwrap();
    std::fs::remove_file(dir.join(l2r_core::store::MANIFEST_FILE)).unwrap();
    let recovered = ModelStore::open(&dir).unwrap();
    assert_eq!(recovered.latest(), Some(1));
    assert_eq!(recovered.load_bytes(1).unwrap(), good);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn store_generation_numbers_are_never_reused() {
    let dir = temp_dir("monotonic");
    let model = fitted();
    let mut store = ModelStore::create(&dir, "city", StoreOptions::default()).unwrap();
    store.publish(&model).unwrap();
    store.publish(&model).unwrap();

    // Simulate a crash that left gen 3 renamed into place but never
    // manifest-committed: the file exists, the manifest says active = 2.
    let uncommitted = dir.join("gen-00000003.l2r");
    std::fs::write(&uncommitted, store.load_bytes(2).unwrap()).unwrap();

    let mut reopened = ModelStore::open(&dir).unwrap();
    assert_eq!(reopened.latest(), Some(2));
    // The next publish must skip over the orphaned number: generation ids
    // are write-once even across crashes.
    let next = reopened.publish(&model).unwrap();
    assert_eq!(next, 4);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn opening_a_non_store_directory_errors() {
    let dir = temp_dir("not-a-store");
    std::fs::create_dir_all(&dir).unwrap();
    assert!(matches!(
        ModelStore::open(&dir),
        Err(StoreError::NotAStore(_))
    ));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn create_refuses_a_store_holding_another_dataset() {
    let dir = temp_dir("wrong-dataset");
    ModelStore::create(&dir, "city", StoreOptions::default()).unwrap();
    let err = ModelStore::create(&dir, "suburbs", StoreOptions::default()).unwrap_err();
    assert!(
        matches!(
            &err,
            StoreError::DatasetMismatch { store, requested }
                if store == "city" && requested == "suburbs"
        ),
        "{err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
