//! Proves the engine serving path reuses its scratch search state instead
//! of allocating hidden search spaces: over a Case-1 query workload, the
//! process-wide Dijkstra search counter advances by *exactly* the scratch
//! space's generation delta — any thread-local fallback or freshly allocated
//! `SearchSpace` on the query path would break the equality.
//!
//! This file intentionally holds a single `#[test]`: the search counter is
//! process-global, and a sibling test running concurrently in the same test
//! binary would perturb it.  (`engine_concurrency.rs` extends the same
//! counting argument across threads.)

use std::collections::HashMap;

use l2r_core::{apply_preferences_to_b_edges, Engine, QueryScratch, RegionCoverage};
use l2r_datagen::{generate_network, generate_workload, SyntheticNetworkConfig, WorkloadConfig};
use l2r_region_graph::{bottom_up_clustering, RegionGraph, TrajectoryGraph};
use l2r_road_network::{searches_performed, VertexId};

#[test]
fn case1_queries_route_all_searches_through_the_reused_scratch() {
    let syn = generate_network(&SyntheticNetworkConfig::tiny());
    let wl = generate_workload(&syn, &WorkloadConfig::tiny(250));
    let tg = TrajectoryGraph::build(&syn.net, &wl.trajectories);
    let clusters = bottom_up_clustering(&tg);
    let mut rg = RegionGraph::build(&syn.net, &clusters, &wl.trajectories, 2);
    apply_preferences_to_b_edges(&syn.net, &mut rg, &HashMap::new(), 2);

    let engine = Engine::from_graphs(&syn.net, &rg);
    // Collect Case-1 queries: both endpoints covered by regions.
    let n = syn.net.num_vertices() as u32;
    let queries: Vec<(VertexId, VertexId)> = (0..n)
        .flat_map(|i| (1..n).step_by(7).map(move |j| (VertexId(i), VertexId(j))))
        .filter(|(s, d)| {
            s != d && l2r_core::region_coverage(&rg, *s, *d) == RegionCoverage::InRegion
        })
        .take(200)
        .collect();
    assert!(
        queries.len() >= 50,
        "need a meaningful Case-1 workload, got {}",
        queries.len()
    );

    let mut scratch = QueryScratch::new();
    // Warm up buffers (first queries grow the stamped arrays).
    for (s, d) in queries.iter().take(10) {
        let _ = engine.route(&mut scratch, *s, *d);
    }

    let searches_before = searches_performed();
    let road_gen_before = scratch.search_generation();
    let region_gen_before = scratch.region_generation();
    let mut answered = 0usize;
    for (s, d) in &queries {
        if engine.route(&mut scratch, *s, *d).is_some() {
            answered += 1;
        }
    }
    let searches = searches_performed() - searches_before;
    let road_gens = u64::from(scratch.search_generation() - road_gen_before);
    let region_gens = scratch.region_generation() - region_gen_before;

    assert!(answered > 0, "the workload should be answerable");
    // Every road-network search of the workload went through the one scratch
    // space: nothing allocated a fresh or thread-local space behind our back.
    assert_eq!(
        searches, road_gens,
        "global search count must equal the scratch generation delta"
    );
    // Case-1 queries never run more searches than queries issued per
    // region-graph leg; sanity-bound the region-level scratch too.
    assert!(
        (region_gens as usize) <= queries.len(),
        "at most one region search per query"
    );
}
