//! Concurrent serving must be bit-identical to serial serving: N threads
//! hammering one shared `Arc<Engine>` (each with its own `QueryScratch`)
//! must produce exactly the answers a single-threaded pass produces, and —
//! extending the generation-counting argument of `engine_scratch.rs` across
//! threads — the process-wide Dijkstra search counter must advance by
//! exactly the *sum* of every thread's scratch generation delta: no hidden
//! search state is allocated no matter how many threads serve.
//!
//! This file intentionally holds a single `#[test]`: the search counter is
//! process-global, and a sibling test running concurrently in the same test
//! binary would perturb it.

use std::collections::HashMap;
use std::sync::Arc;

use l2r_core::{apply_preferences_to_b_edges, Engine, QueryScratch};
use l2r_datagen::{generate_network, generate_workload, SyntheticNetworkConfig, WorkloadConfig};
use l2r_region_graph::{bottom_up_clustering, RegionGraph, TrajectoryGraph};
use l2r_road_network::{searches_performed, VertexId};

#[test]
fn threads_sharing_one_engine_serve_bit_identically_with_no_hidden_searches() {
    let syn = generate_network(&SyntheticNetworkConfig::tiny());
    let wl = generate_workload(&syn, &WorkloadConfig::tiny(250));
    let tg = TrajectoryGraph::build(&syn.net, &wl.trajectories);
    let clusters = bottom_up_clustering(&tg);
    let mut rg = RegionGraph::build(&syn.net, &clusters, &wl.trajectories, 2);
    apply_preferences_to_b_edges(&syn.net, &mut rg, &HashMap::new(), 2);

    // The thin borrowed-graphs constructor: tests need no fitted model.
    let engine = Arc::new(Engine::from_graphs(&syn.net, &rg));

    // A mixed workload: Case-1, Case-2 and unanswerable queries alike.
    let n = syn.net.num_vertices() as u32;
    let queries: Vec<(VertexId, VertexId)> = (0..n)
        .flat_map(|i| {
            (1..n)
                .step_by(5)
                .map(move |j| (VertexId(i), VertexId((j * 13 + i) % n)))
        })
        .filter(|(s, d)| s != d)
        .take(300)
        .collect();
    assert!(queries.len() >= 100, "need a meaningful workload");

    // Serial reference: one scratch, one pass — also warms nothing shared,
    // since each thread below brings a fresh scratch of its own.
    let mut serial_scratch = QueryScratch::new();
    let serial: Vec<_> = queries
        .iter()
        .map(|(s, d)| engine.route(&mut serial_scratch, *s, *d))
        .collect();
    assert!(
        serial.iter().any(|r| r.is_some()),
        "the workload should be answerable"
    );

    const THREADS: usize = 4;
    let searches_before = searches_performed();
    let outcomes: Vec<(Vec<Option<l2r_core::RouteResult>>, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let engine = Arc::clone(&engine);
                let queries = &queries;
                scope.spawn(move || {
                    let mut scratch = QueryScratch::new();
                    let gen_before = scratch.search_generation();
                    let results: Vec<_> = queries
                        .iter()
                        .map(|(s, d)| engine.route(&mut scratch, *s, *d))
                        .collect();
                    (results, u64::from(scratch.search_generation() - gen_before))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("serving thread"))
            .collect()
    });
    let searches = searches_performed() - searches_before;

    // 1. Bit-identical answers on every thread.
    let mut generation_sum = 0u64;
    for (tid, (results, generations)) in outcomes.iter().enumerate() {
        assert_eq!(
            results, &serial,
            "thread {tid} must answer exactly like the serial pass"
        );
        generation_sum += generations;
    }

    // 2. Every search of every thread ran through that thread's scratch:
    // the global counter advanced by exactly the summed generation deltas.
    assert_eq!(
        searches, generation_sum,
        "global search count must equal the sum of all threads' scratch generations"
    );
    assert!(generation_sum > 0, "the workload must exercise searches");
}
