//! Robustness tests for the snapshot file format: every malformed input —
//! truncation, wrong magic, unknown version, corrupted checksum or payload —
//! must surface as a [`SnapshotError`], never a panic, and the save → load
//! file round-trip must reproduce the model bit-exactly.

use l2r_core::{decode_model, encode_model, load_model, save_model, L2r, L2rConfig, SnapshotError};
use l2r_datagen::{generate_network, generate_workload, SyntheticNetworkConfig, WorkloadConfig};
use l2r_road_network::CodecError;

fn fitted() -> L2r {
    let syn = generate_network(&SyntheticNetworkConfig::tiny());
    let wl = generate_workload(&syn, &WorkloadConfig::tiny(250));
    let (train, _) = wl.temporal_split(0.8);
    L2r::fit(&syn.net, &train, L2rConfig::fast()).unwrap()
}

fn temp_path(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("l2r-snapshot-test-{}-{name}", std::process::id()))
}

#[test]
fn save_load_file_roundtrip_is_bit_exact() {
    let model = fitted();
    let path = temp_path("roundtrip.l2r");
    let bytes_written = save_model(&model, &path).unwrap();
    assert_eq!(
        bytes_written,
        std::fs::metadata(&path).unwrap().len(),
        "reported size must match the file"
    );
    let loaded = load_model(&path).unwrap();
    std::fs::remove_file(&path).ok();
    // Deterministic encoding makes re-encoding a whole-model equality check.
    assert_eq!(encode_model(&loaded), encode_model(&model));
}

#[test]
fn truncated_files_error_at_every_cut() {
    let bytes = encode_model(&fitted());
    // Sweep header cuts exhaustively and payload cuts sparsely.
    let mut cuts: Vec<usize> = (0..25.min(bytes.len())).collect();
    cuts.extend([bytes.len() / 2, bytes.len() - 1]);
    for cut in cuts {
        let err = decode_model(&bytes[..cut]);
        assert!(err.is_err(), "truncation at {cut} bytes must error");
    }
    // A file with the right magic that ends inside the fixed header gets the
    // dedicated variant (the generic Truncated fields would be misleading).
    assert!(matches!(
        decode_model(&bytes[..12]),
        Err(SnapshotError::TruncatedHeader { len: 12 })
    ));
}

#[test]
fn wrong_magic_is_rejected() {
    let mut bytes = encode_model(&fitted());
    bytes[0] ^= 0xFF;
    assert!(matches!(decode_model(&bytes), Err(SnapshotError::BadMagic)));
    assert!(matches!(
        decode_model(b"not a snapshot at all"),
        Err(SnapshotError::BadMagic)
    ));
}

#[test]
fn future_format_versions_are_rejected() {
    let mut bytes = encode_model(&fitted());
    bytes[8] = l2r_core::SNAPSHOT_VERSION + 1;
    assert!(matches!(
        decode_model(&bytes),
        Err(SnapshotError::UnsupportedVersion(v)) if v == l2r_core::SNAPSHOT_VERSION + 1
    ));
}

#[test]
fn flipped_checksum_byte_is_detected() {
    let mut bytes = encode_model(&fitted());
    bytes[17] ^= 0x01; // first checksum byte
    assert!(matches!(
        decode_model(&bytes),
        Err(SnapshotError::ChecksumMismatch { .. })
    ));
}

#[test]
fn payload_corruption_is_caught_by_the_checksum() {
    let original = encode_model(&fitted());
    // Flip one byte at several payload offsets; the checksum must catch all.
    let payload_start = 21;
    let step = ((original.len() - payload_start) / 16).max(1);
    for offset in (payload_start..original.len()).step_by(step) {
        let mut bytes = original.clone();
        bytes[offset] ^= 0x40;
        assert!(
            matches!(
                decode_model(&bytes),
                Err(SnapshotError::ChecksumMismatch { .. })
            ),
            "flip at {offset} must be detected"
        );
    }
}

#[test]
fn trailing_bytes_are_rejected() {
    let mut bytes = encode_model(&fitted());
    bytes.push(0);
    assert!(matches!(
        decode_model(&bytes),
        Err(SnapshotError::TrailingBytes(1))
    ));
}

#[test]
fn missing_file_is_an_io_error() {
    let path = temp_path("does-not-exist.l2r");
    assert!(matches!(load_model(&path), Err(SnapshotError::Io { .. })));
}

#[test]
fn errors_display_useful_messages() {
    let mut bytes = encode_model(&fitted());
    bytes[8] = 250;
    let msg = decode_model(&bytes).unwrap_err().to_string();
    assert!(
        msg.contains("250"),
        "version error should name the version: {msg}"
    );

    let codec: SnapshotError = CodecError::Invalid("test marker").into();
    assert!(codec.to_string().contains("test marker"));
}
