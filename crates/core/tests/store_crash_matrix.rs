//! The crash matrix: for **every** mutating filesystem operation of a
//! publish, inject a fault at that operation (crash, short write, bit
//! flip, `ENOSPC`) and prove the invariant — *after a crash at any
//! injected point, the store opens and serves the newest durable
//! generation bit-identically*.  "Durable" means manifest-committed: a
//! crash strictly before the manifest rename
//! ([`l2r_core::store::PUBLISH_OP_COMMIT`]) leaves the previous generation
//! active; a crash at or after it leaves the new one active.
//!
//! The fault schedule is seeded; override with `L2R_CHAOS_SEED=<u64>` to
//! rehearse different short-write lengths and bit-flip positions (CI runs
//! two extra fixed seeds).

use std::sync::Arc;

use l2r_core::store::{PUBLISH_OP_COMMIT, PUBLISH_OP_WRITE_SNAPSHOT};
use l2r_core::{
    encode_snapshot, FaultFs, FsFaultConfig, FsFaultKind, L2r, L2rConfig, ModelStore, QueryScratch,
    StoreOptions,
};
use l2r_datagen::{generate_network, generate_workload, SyntheticNetworkConfig, WorkloadConfig};
use l2r_road_network::VertexId;

/// The fault-schedule seed of this run (`L2R_CHAOS_SEED` overrides).
fn chaos_seed() -> u64 {
    std::env::var("L2R_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xFA17_5EED)
}

fn fitted(trajectories: usize) -> L2r {
    let syn = generate_network(&SyntheticNetworkConfig::tiny());
    let wl = generate_workload(&syn, &WorkloadConfig::tiny(trajectories));
    let (train, _) = wl.temporal_split(0.8);
    L2r::fit(&syn.net, &train, L2rConfig::fast()).unwrap()
}

fn temp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("l2r-crash-matrix-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Builds a store holding `old` as durable generation 1, then publishes
/// `new` through a [`FaultFs`] injecting `kind` at mutating op `fault_at`.
/// Returns (publish succeeded, the FaultFs for inspection).
fn faulted_publish(
    dir: &std::path::Path,
    old: &L2r,
    new: &L2r,
    fault_at: Option<u64>,
    kind: FsFaultKind,
    retain: usize,
) -> (bool, Arc<FaultFs>) {
    let mut store = ModelStore::create(dir, "city", StoreOptions { retain }).unwrap();
    store.publish(old).unwrap();
    drop(store);

    let fs = Arc::new(FaultFs::new(FsFaultConfig {
        seed: chaos_seed(),
        fault_at,
        kind,
    }));
    // Opening a clean store performs no mutating ops, so publish ops start
    // at index 0 regardless of the open.  retain: 1 makes the publish
    // include a retention unlink, so the matrix covers that op too.
    let mut store = ModelStore::open_with_options(
        Arc::clone(&fs) as Arc<dyn l2r_core::StoreFs>,
        dir,
        StoreOptions { retain },
    )
    .expect("opening a clean store never faults");
    assert_eq!(fs.ops(), 0, "open of a clean store must not mutate");
    let ok = store.publish(new).is_ok();
    (ok, fs)
}

/// The recovery invariant: reopening `dir` on the real filesystem serves
/// `expect_gen` with exactly `expect_bytes`, the decoded model answers
/// queries, and no temp files survive.
fn assert_recovers(dir: &std::path::Path, expect_gen: u64, expect_bytes: &[u8], context: &str) {
    let store = ModelStore::open(dir).unwrap_or_else(|e| panic!("{context}: open failed: {e}"));
    assert_eq!(store.latest(), Some(expect_gen), "{context}");
    let bytes = store
        .load_bytes(expect_gen)
        .unwrap_or_else(|e| panic!("{context}: load failed: {e}"));
    assert_eq!(
        bytes, expect_bytes,
        "{context}: served bytes not bit-identical"
    );
    let (_, snap) = store.load_latest().unwrap();
    let engine = snap.model.into_engine();
    let mut scratch = QueryScratch::new();
    let n = engine.network().num_vertices() as u32;
    let mut answered = 0;
    for i in (0..n.min(40)).step_by(7) {
        if engine
            .route(&mut scratch, VertexId(i), VertexId((i * 3 + 1) % n))
            .is_some()
        {
            answered += 1;
        }
    }
    assert!(answered > 0, "{context}: recovered engine must answer");
    // Recovery leaves no torn temp files behind (open sweeps them).
    let reopened = ModelStore::open(dir).unwrap();
    drop(reopened);
    for entry in std::fs::read_dir(dir).unwrap() {
        let name = entry.unwrap().file_name().to_string_lossy().into_owned();
        assert!(!name.ends_with(".tmp"), "{context}: orphan temp `{name}`");
    }
}

/// Counts the mutating ops of one full publish (no fault injected), so the
/// matrix enumerates every injection point exactly.
fn publish_op_count() -> u64 {
    let dir = temp_dir("op-count");
    let (ok, fs) = faulted_publish(
        &dir,
        &fitted(250),
        &fitted(200),
        None,
        FsFaultKind::Crash,
        1,
    );
    let _ = std::fs::remove_dir_all(&dir);
    assert!(ok, "un-faulted publish must succeed");
    fs.ops()
}

#[test]
fn crash_matrix_serves_the_newest_durable_generation_at_every_point() {
    let old = fitted(250);
    let new = fitted(200);
    let old_bytes = encode_snapshot(&old, "city");
    let new_bytes = encode_snapshot(&new, "city");
    assert_ne!(old_bytes, new_bytes, "matrix needs two distinct models");

    let total_ops = publish_op_count();
    assert!(
        total_ops > PUBLISH_OP_COMMIT,
        "publish must at least reach its commit op ({total_ops} ops)"
    );

    for kind in [
        FsFaultKind::Crash,
        FsFaultKind::ShortWrite,
        FsFaultKind::Enospc,
    ] {
        for op in 0..total_ops {
            let context = format!("{kind:?} at op {op}");
            let dir = temp_dir(&format!("{kind:?}-{op}"));
            let (ok, fs) = faulted_publish(&dir, &old, &new, Some(op), kind, 1);
            assert!(fs.injected(), "{context}: fault never fired");
            // The commit op is the durability boundary: a fault striking
            // before the manifest rename leaves generation 1 active, at or
            // after it generation 2.  A fault *after* the commit (the
            // trailing dir fsync or a retention unlink) may or may not
            // fail the publish call, but never un-commits it.
            let committed = op > PUBLISH_OP_COMMIT;
            if !committed {
                assert!(!ok, "{context}: an uncommitted publish must error");
            }
            let (expect_gen, expect_bytes): (u64, &[u8]) = if committed {
                (2, &new_bytes)
            } else {
                (1, &old_bytes)
            };
            assert_recovers(&dir, expect_gen, expect_bytes, &context);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

#[test]
fn bit_flip_in_the_snapshot_file_falls_back_to_the_previous_generation() {
    let old = fitted(250);
    let new = fitted(200);
    let old_bytes = encode_snapshot(&old, "city");

    let dir = temp_dir("bitflip-snapshot");
    // A bit flip is *silent*: the publish succeeds and the writer believes
    // the new generation is live.  Only checksums catch it at open time.
    let (ok, fs) = faulted_publish(
        &dir,
        &old,
        &new,
        Some(PUBLISH_OP_WRITE_SNAPSHOT),
        FsFaultKind::BitFlip,
        2,
    );
    assert!(ok && fs.injected());
    assert_recovers(&dir, 1, &old_bytes, "bit flip in snapshot write");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bit_flip_in_the_manifest_recovers_the_new_generation_by_scan() {
    use l2r_core::store::PUBLISH_OP_WRITE_MANIFEST;
    let old = fitted(250);
    let new = fitted(200);
    let new_bytes = encode_snapshot(&new, "city");

    let dir = temp_dir("bitflip-manifest");
    // Here the generation file itself is intact — only the manifest is
    // rotten — so recovery's directory scan adopts the *new* generation:
    // it is durable on disk even though the manifest lies.
    let (ok, fs) = faulted_publish(
        &dir,
        &old,
        &new,
        Some(PUBLISH_OP_WRITE_MANIFEST),
        FsFaultKind::BitFlip,
        2,
    );
    assert!(ok && fs.injected());
    assert_recovers(&dir, 2, &new_bytes, "bit flip in manifest write");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn enospc_failure_is_clean_and_retryable() {
    let old = fitted(250);
    let new = fitted(200);
    let new_bytes = encode_snapshot(&new, "city");

    let dir = temp_dir("enospc-retry");
    let (ok, fs) = faulted_publish(&dir, &old, &new, Some(0), FsFaultKind::Enospc, 2);
    assert!(!ok && fs.injected());
    // ENOSPC does not kill the process: the same store handle can retry
    // once space frees up, and the retry must not burn the generation
    // number space unboundedly nor leave torn state.
    let mut store = ModelStore::open(&dir).unwrap();
    assert_eq!(store.latest(), Some(1));
    let g = store.publish(&new).unwrap();
    assert_eq!(store.load_bytes(g).unwrap(), new_bytes);
    let _ = std::fs::remove_dir_all(&dir);
}
