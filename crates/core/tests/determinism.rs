//! The parallel offline pipeline must be bit-identical to a serial run:
//! `L2r::fit` with `L2R_THREADS=1` and `L2R_THREADS=4` has to produce the
//! same learned preferences, the same transferred preferences and the same
//! B-edge paths.
//!
//! This file intentionally contains a single `#[test]` so the process-global
//! `L2R_THREADS` variable is not raced by other tests in the same binary.

use std::collections::HashMap;

use l2r_core::{L2r, L2rConfig};
use l2r_datagen::{generate_network, generate_workload, SyntheticNetworkConfig, WorkloadConfig};
use l2r_preference::{LearnedPreference, Preference};
use l2r_region_graph::{RegionEdgeId, SupportedPath};

fn fit() -> L2r {
    let syn = generate_network(&SyntheticNetworkConfig::tiny());
    let wl = generate_workload(&syn, &WorkloadConfig::tiny(250));
    let (train, _) = wl.temporal_split(0.8);
    L2r::fit(&syn.net, &train, L2rConfig::fast()).expect("fit")
}

#[test]
fn parallel_fit_is_bit_identical_to_serial_fit() {
    std::env::set_var(l2r_par::THREADS_ENV, "1");
    let serial = fit();
    std::env::set_var(l2r_par::THREADS_ENV, "4");
    let parallel = fit();
    std::env::remove_var(l2r_par::THREADS_ENV);

    // Identical learned T-edge preferences (including the f64 similarity).
    let learned_serial: &HashMap<RegionEdgeId, LearnedPreference> = serial.learned_preferences();
    let learned_parallel = parallel.learned_preferences();
    assert_eq!(learned_serial, learned_parallel, "learned preferences");
    assert!(!learned_serial.is_empty(), "test needs learned preferences");

    // Identical transferred B-edge preferences.
    let transferred_serial: &HashMap<RegionEdgeId, Option<Preference>> =
        serial.transferred_preferences();
    assert_eq!(
        transferred_serial,
        parallel.transferred_preferences(),
        "transferred preferences"
    );
    assert!(!transferred_serial.is_empty(), "test needs B-edges");

    // Identical region-graph shape and identical paths on every edge
    // (B-edge paths are assigned by the parallel apply step).
    assert_eq!(
        serial.region_graph().num_edges(),
        parallel.region_graph().num_edges()
    );
    let mut b_edges_with_paths = 0usize;
    for (es, ep) in serial
        .region_graph()
        .edges()
        .iter()
        .zip(parallel.region_graph().edges())
    {
        assert_eq!(es.id, ep.id);
        assert_eq!(es.kind, ep.kind);
        let ps: &[SupportedPath] = &es.paths;
        assert_eq!(ps, &ep.paths[..], "paths of edge {:?}", es.id);
        if es.is_b_edge() && es.has_paths() {
            b_edges_with_paths += 1;
        }
    }
    assert!(b_edges_with_paths > 0, "test needs B-edge paths to compare");

    // Same aggregate statistics.
    assert_eq!(serial.stats().num_regions, parallel.stats().num_regions);
    assert_eq!(serial.stats().num_t_edges, parallel.stats().num_t_edges);
    assert_eq!(serial.stats().num_b_edges, parallel.stats().num_b_edges);
    assert_eq!(serial.stats().apply, parallel.stats().apply);
    assert_eq!(serial.stats().null_rate, parallel.stats().null_rate);
}
