//! The parallel offline pipeline must be bit-identical to a serial run:
//! `L2r::fit` with `L2R_THREADS=1` and `L2R_THREADS=4` has to produce the
//! same learned preferences, the same transferred preferences and the same
//! B-edge paths.
//!
//! This file intentionally contains a single `#[test]` so the process-global
//! `L2R_THREADS` variable is not raced by other tests in the same binary.

use std::collections::HashMap;

use l2r_core::{L2r, L2rConfig};
use l2r_datagen::{generate_network, generate_workload, SyntheticNetworkConfig, WorkloadConfig};
use l2r_preference::{LearnedPreference, Preference};
use l2r_region_graph::{RegionEdgeId, SupportedPath};

fn fit() -> L2r {
    let syn = generate_network(&SyntheticNetworkConfig::tiny());
    let wl = generate_workload(&syn, &WorkloadConfig::tiny(250));
    let (train, _) = wl.temporal_split(0.8);
    L2r::fit(&syn.net, &train, L2rConfig::fast()).expect("fit")
}

#[test]
fn parallel_fit_is_bit_identical_to_serial_fit() {
    std::env::set_var(l2r_par::THREADS_ENV, "1");
    let serial = fit();
    std::env::set_var(l2r_par::THREADS_ENV, "4");
    let parallel = fit();
    std::env::remove_var(l2r_par::THREADS_ENV);

    // Identical learned T-edge preferences (including the f64 similarity).
    let learned_serial: &HashMap<RegionEdgeId, LearnedPreference> = serial.learned_preferences();
    let learned_parallel = parallel.learned_preferences();
    assert_eq!(learned_serial, learned_parallel, "learned preferences");
    assert!(!learned_serial.is_empty(), "test needs learned preferences");

    // Identical transferred B-edge preferences.
    let transferred_serial: &HashMap<RegionEdgeId, Option<Preference>> =
        serial.transferred_preferences();
    assert_eq!(
        transferred_serial,
        parallel.transferred_preferences(),
        "transferred preferences"
    );
    assert!(!transferred_serial.is_empty(), "test needs B-edges");

    // Identical region-graph shape and identical paths on every edge
    // (B-edge paths are assigned by the parallel apply step).
    assert_eq!(
        serial.region_graph().num_edges(),
        parallel.region_graph().num_edges()
    );
    let mut b_edges_with_paths = 0usize;
    for (es, ep) in serial
        .region_graph()
        .edges()
        .iter()
        .zip(parallel.region_graph().edges())
    {
        assert_eq!(es.id, ep.id);
        assert_eq!(es.kind, ep.kind);
        let ps: &[SupportedPath] = &es.paths;
        assert_eq!(ps, &ep.paths[..], "paths of edge {:?}", es.id);
        if es.is_b_edge() && es.has_paths() {
            b_edges_with_paths += 1;
        }
    }
    assert!(b_edges_with_paths > 0, "test needs B-edge paths to compare");

    // Same aggregate statistics.
    assert_eq!(serial.stats().num_regions, parallel.stats().num_regions);
    assert_eq!(serial.stats().num_t_edges, parallel.stats().num_t_edges);
    assert_eq!(serial.stats().num_b_edges, parallel.stats().num_b_edges);
    assert_eq!(serial.stats().apply, parallel.stats().apply);
    assert_eq!(serial.stats().null_rate, parallel.stats().null_rate);
}

/// Country-scale determinism smoke: the same fit on the XL-smoke network at
/// 1, 4 and 8 worker threads must encode to bit-identical structural
/// snapshots (per-stage wall times excluded — they are timing provenance,
/// not model state).  Ignored by default because it fits a multi-district
/// network three times; the CI `xl-smoke` job runs it with `--ignored`.
/// Uses `set_thread_override` (an atomic) rather than `L2R_THREADS` so it
/// cannot race the env mutation of the test above if both are selected.
#[test]
#[ignore = "country-scale smoke; run explicitly with --ignored (CI xl-smoke job)"]
fn xl_fit_is_bit_identical_across_1_4_and_8_threads() {
    let syn = generate_network(&SyntheticNetworkConfig::xl_smoke());
    let wl = generate_workload(&syn, &WorkloadConfig::xl_like(400));
    let (train, _) = wl.temporal_split(0.8);
    let mut encodings: Vec<(usize, Vec<u8>)> = Vec::new();
    for threads in [1usize, 4, 8] {
        l2r_par::set_thread_override(Some(threads));
        let model = L2r::fit(&syn.net, &train, L2rConfig::default()).expect("fit");
        encodings.push((threads, l2r_core::encode_model_structural(&model)));
    }
    l2r_par::set_thread_override(None);
    assert!(
        !encodings[0].1.is_empty(),
        "structural snapshot must not be empty"
    );
    let first = &encodings[0].1;
    for (threads, bytes) in &encodings[1..] {
        assert_eq!(
            bytes, first,
            "fit at {threads} threads diverged from the single-threaded fit"
        );
    }
}
