//! Failure paths of [`ModelRegistry::reload`]: a reload from a missing,
//! truncated, corrupt or stale-format `.l2r` file — or one that decodes
//! fine but fails semantic validation (wrong dataset stamp, canary digest
//! mismatch) — must leave the registered engine serving untouched and
//! report the precise [`RegistryError`], mirroring the malformed-file
//! corpus of `snapshot_robustness.rs` at the registry layer.

use std::sync::Arc;

use l2r_core::{
    encode_model, encode_snapshot, encode_snapshot_with, save_model, save_snapshot, Canary, Engine,
    L2r, L2rConfig, ModelRegistry, QueryScratch, RegistryError, SnapshotError,
};
use l2r_datagen::{generate_network, generate_workload, SyntheticNetworkConfig, WorkloadConfig};
use l2r_road_network::VertexId;

fn fitted() -> L2r {
    let syn = generate_network(&SyntheticNetworkConfig::tiny());
    let wl = generate_workload(&syn, &WorkloadConfig::tiny(250));
    let (train, _) = wl.temporal_split(0.8);
    L2r::fit(&syn.net, &train, L2rConfig::fast()).unwrap()
}

fn temp_path(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("l2r-registry-test-{}-{name}", std::process::id()))
}

/// Registers a fitted engine and returns (registry, served handle, the good
/// snapshot bytes to corrupt).
fn registry_with_model() -> (ModelRegistry, Arc<Engine>, Vec<u8>) {
    let model = fitted();
    let bytes = encode_model(&model);
    let registry = ModelRegistry::new();
    let served = registry.insert("city", model.into_engine());
    (registry, served, bytes)
}

/// Asserts `registry` still serves exactly `served` (same engine object,
/// same generation, still answering).
fn assert_still_serving(registry: &ModelRegistry, served: &Arc<Engine>) {
    let current = registry.get("city").expect("entry must survive");
    assert!(
        Arc::ptr_eq(served, &current),
        "the old engine must keep serving after a failed reload"
    );
    assert_eq!(registry.generation("city"), Some(1));
    let mut scratch = QueryScratch::new();
    let r = current.route(&mut scratch, VertexId(0), VertexId(5));
    assert!(r.is_none() || r.unwrap().path.source() == VertexId(0));
}

#[test]
fn reload_from_a_missing_file_keeps_the_old_engine() {
    let (registry, served, _) = registry_with_model();
    let err = registry
        .reload("city", &temp_path("does-not-exist.l2r"))
        .unwrap_err();
    assert!(
        matches!(err, RegistryError::Snapshot(SnapshotError::Io { .. })),
        "{err}"
    );
    assert_still_serving(&registry, &served);
}

#[test]
fn reload_from_truncated_files_keeps_the_old_engine_at_every_cut() {
    let (registry, served, bytes) = registry_with_model();
    let path = temp_path("truncated.l2r");
    for cut in [4usize, 12, 20, bytes.len() / 2, bytes.len() - 1] {
        std::fs::write(&path, &bytes[..cut]).unwrap();
        let err = registry.reload("city", &path).unwrap_err();
        assert!(
            matches!(
                err,
                RegistryError::Snapshot(
                    SnapshotError::BadMagic
                        | SnapshotError::TruncatedHeader { .. }
                        | SnapshotError::Truncated { .. }
                )
            ),
            "cut at {cut}: {err}"
        );
        assert_still_serving(&registry, &served);
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn reload_from_a_stale_format_version_keeps_the_old_engine() {
    let (registry, served, mut bytes) = registry_with_model();
    bytes[8] = l2r_core::SNAPSHOT_VERSION + 1;
    let path = temp_path("stale-version.l2r");
    std::fs::write(&path, &bytes).unwrap();
    let err = registry.reload("city", &path).unwrap_err();
    std::fs::remove_file(&path).ok();
    assert!(
        matches!(
            err,
            RegistryError::Snapshot(SnapshotError::UnsupportedVersion(v))
                if v == l2r_core::SNAPSHOT_VERSION + 1
        ),
        "{err}"
    );
    assert_still_serving(&registry, &served);
}

#[test]
fn reload_from_corrupt_payloads_keeps_the_old_engine() {
    let (registry, served, bytes) = registry_with_model();
    let path = temp_path("corrupt.l2r");

    // Wrong magic.
    let mut wrong_magic = bytes.clone();
    wrong_magic[0] ^= 0xFF;
    std::fs::write(&path, &wrong_magic).unwrap();
    assert!(matches!(
        registry.reload("city", &path).unwrap_err(),
        RegistryError::Snapshot(SnapshotError::BadMagic)
    ));
    assert_still_serving(&registry, &served);

    // Flipped payload bytes at several offsets (checksum catches them all).
    let payload_start = 21;
    let step = ((bytes.len() - payload_start) / 8).max(1);
    for offset in (payload_start..bytes.len()).step_by(step) {
        let mut corrupt = bytes.clone();
        corrupt[offset] ^= 0x40;
        std::fs::write(&path, &corrupt).unwrap();
        let err = registry.reload("city", &path).unwrap_err();
        assert!(
            matches!(
                err,
                RegistryError::Snapshot(SnapshotError::ChecksumMismatch { .. })
            ),
            "flip at {offset}: {err}"
        );
        assert_still_serving(&registry, &served);
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn failed_load_into_a_new_name_registers_nothing() {
    let (registry, _, mut bytes) = registry_with_model();
    bytes[17] ^= 0x01; // corrupt the checksum
    let path = temp_path("new-name.l2r");
    std::fs::write(&path, &bytes).unwrap();
    assert!(registry.reload("fresh", &path).is_err());
    std::fs::remove_file(&path).ok();
    assert!(registry.get("fresh").is_none());
    assert_eq!(registry.names(), vec!["city".to_string()]);
}

#[test]
fn successful_reload_swaps_and_failed_reload_after_it_keeps_the_replacement() {
    let (registry, original, bytes) = registry_with_model();
    let path = temp_path("good.l2r");
    std::fs::write(&path, &bytes).unwrap();

    // Good reload: new engine object, generation bumps.
    let replacement = registry.reload("city", &path).unwrap();
    assert!(!Arc::ptr_eq(&original, &replacement));
    assert_eq!(registry.generation("city"), Some(2));

    // A failed reload right after keeps the *replacement* (not the
    // original, not nothing).
    let err = registry.reload("city", &temp_path("gone.l2r")).unwrap_err();
    assert!(matches!(
        err,
        RegistryError::Snapshot(SnapshotError::Io { .. })
    ));
    let current = registry.get("city").unwrap();
    assert!(Arc::ptr_eq(&replacement, &current));
    assert_eq!(registry.generation("city"), Some(2));

    // And the replacement answers bit-identically to the original: it was
    // loaded from the original's own snapshot.
    let mut s1 = QueryScratch::new();
    let mut s2 = QueryScratch::new();
    let n = current.network().num_vertices() as u32;
    for i in (0..n).step_by(11) {
        let (a, b) = (VertexId(i), VertexId((i * 5 + 2) % n));
        assert_eq!(original.route(&mut s1, a, b), current.route(&mut s2, a, b));
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn engine_load_reports_the_same_errors_as_load_model() {
    // `Engine::load` is the serving entry point; its error surface must be
    // the snapshot layer's, not a panic.
    let err = Engine::load(&temp_path("nope.l2r")).unwrap_err();
    assert!(matches!(err, SnapshotError::Io { .. }));
    let path = temp_path("engine-bad.l2r");
    std::fs::write(&path, b"definitely not a snapshot").unwrap();
    let err = Engine::load(&path).unwrap_err();
    std::fs::remove_file(&path).ok();
    assert!(matches!(err, SnapshotError::BadMagic));
}

#[test]
fn save_then_registry_reload_roundtrips_through_a_real_file() {
    let model = fitted();
    let path = temp_path("roundtrip.l2r");
    save_model(&model, &path).unwrap();
    let registry = ModelRegistry::new();
    // `reload` on an empty name acts as the initial load.
    let engine = registry.reload("city", &path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(registry.generation("city"), Some(1));
    let mut scratch = QueryScratch::new();
    let n = engine.network().num_vertices() as u32;
    let mut answered = 0;
    for i in (0..n).step_by(7) {
        if engine
            .route(&mut scratch, VertexId(i), VertexId((i * 3 + 1) % n))
            .is_some()
        {
            answered += 1;
        }
    }
    assert!(answered > 0, "the loaded engine must answer queries");
}

#[test]
fn io_errors_name_the_offending_path() {
    let (registry, _, _) = registry_with_model();
    let path = temp_path("which-file-was-it.l2r");
    let err = registry.reload("city", &path).unwrap_err();
    // Operator-facing reload messages must say *which* file failed.
    assert!(err.to_string().contains("which-file-was-it.l2r"), "{err}");
}

#[test]
fn reload_refuses_a_snapshot_stamped_for_another_dataset() {
    let (registry, served, _) = registry_with_model();
    let path = temp_path("other-dataset.l2r");
    save_snapshot(&fitted(), "suburbs", &path).unwrap();
    let err = registry.reload("city", &path).unwrap_err();
    std::fs::remove_file(&path).ok();
    assert!(
        matches!(
            &err,
            RegistryError::DatasetMismatch { snapshot, requested }
                if snapshot == "suburbs" && requested == "city"
        ),
        "{err}"
    );
    assert_still_serving(&registry, &served);
}

#[test]
fn reload_accepts_a_snapshot_stamped_with_the_matching_dataset() {
    let (registry, original, _) = registry_with_model();
    let path = temp_path("matching-dataset.l2r");
    save_snapshot(&fitted(), "city", &path).unwrap();
    let replacement = registry.reload("city", &path).unwrap();
    std::fs::remove_file(&path).ok();
    assert!(!Arc::ptr_eq(&original, &replacement));
    assert_eq!(registry.generation("city"), Some(2));
}

#[test]
fn reload_rejects_a_snapshot_whose_canaries_mismatch() {
    let (registry, served, _) = registry_with_model();
    let model = fitted();
    // Record a canary whose digest cannot match any real answer.
    let poisoned = [Canary {
        src: VertexId(0),
        dst: VertexId(1),
        digest: 0xDEAD_BEEF_DEAD_BEEF,
    }];
    let path = temp_path("poisoned-canary.l2r");
    std::fs::write(&path, encode_snapshot_with(&model, "city", &poisoned)).unwrap();
    let err = registry.reload("city", &path).unwrap_err();
    std::fs::remove_file(&path).ok();
    assert!(
        matches!(
            err,
            RegistryError::CanaryMismatch {
                src: 0,
                dst: 1,
                expected: 0xDEAD_BEEF_DEAD_BEEF,
                ..
            }
        ),
        "{err}"
    );
    assert_still_serving(&registry, &served);
}

#[test]
fn reload_replays_recorded_canaries_against_the_compiled_engine() {
    // The happy path of validation: genuine canaries recorded at save time
    // replay cleanly on the compiled engine (free-route/engine equivalence).
    let (registry, _, _) = registry_with_model();
    let model = fitted();
    let path = temp_path("genuine-canaries.l2r");
    std::fs::write(&path, encode_snapshot(&model, "city")).unwrap();
    registry.reload("city", &path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(registry.generation("city"), Some(2));
}

#[test]
fn rollback_after_reload_restores_the_original_engine() {
    let (registry, original, bytes) = registry_with_model();
    let path = temp_path("rollback-target.l2r");
    std::fs::write(&path, &bytes).unwrap();
    let replacement = registry.reload("city", &path).unwrap();
    std::fs::remove_file(&path).ok();
    assert!(!Arc::ptr_eq(&original, &replacement));

    let (restored, generation) = registry.rollback("city").unwrap();
    assert!(Arc::ptr_eq(&restored, &original));
    assert_eq!(generation, 3);
    assert!(Arc::ptr_eq(&registry.get("city").unwrap(), &original));

    // The failed-validation path must NOT disturb the rollback target: a
    // rejected reload retains nothing.
    assert!(matches!(
        registry.rollback("city"),
        Err(RegistryError::NoPreviousEngine(_))
    ));
}
