//! Hot-swap under load: worker threads hammer a shared [`ModelRegistry`]
//! while the main thread repeatedly swaps the entry between two *different*
//! fitted models.  Every single answer must be bit-identical to one of the
//! two models' serial answers — an answer matching neither would mean a
//! query observed a half-swapped model (mixed indexes, or a model torn down
//! mid-request), which the `Arc`-handout design makes impossible.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use l2r_core::{save_model, L2r, L2rConfig, ModelRegistry, QueryScratch, RouteResult};
use l2r_datagen::{generate_network, generate_workload, SyntheticNetworkConfig, WorkloadConfig};
use l2r_road_network::VertexId;

/// Two models over the *same* road network fitted on different workloads:
/// same query space, (typically) different answers.
fn two_models() -> (L2r, L2r) {
    let syn = generate_network(&SyntheticNetworkConfig::tiny());
    let wl_a = generate_workload(&syn, &WorkloadConfig::tiny(250));
    let wl_b = generate_workload(&syn, &WorkloadConfig::tiny(120));
    let (train_a, _) = wl_a.temporal_split(0.8);
    let (train_b, _) = wl_b.temporal_split(0.8);
    let a = L2r::fit(&syn.net, &train_a, L2rConfig::fast()).unwrap();
    let b = L2r::fit(&syn.net, &train_b, L2rConfig::fast()).unwrap();
    (a, b)
}

fn temp_path(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("l2r-hotswap-test-{}-{name}", std::process::id()))
}

#[test]
fn queries_during_hot_swaps_always_see_exactly_one_model() {
    let (model_a, model_b) = two_models();
    let n = model_a.network().num_vertices() as u32;
    let path_a = temp_path("a.l2r");
    let path_b = temp_path("b.l2r");
    save_model(&model_a, &path_a).unwrap();
    save_model(&model_b, &path_b).unwrap();

    let engine_a = Arc::new(model_a.into_engine());
    let engine_b = Arc::new(model_b.into_engine());

    // Serial reference answers of both models.
    let queries: Vec<(VertexId, VertexId)> = (0..n)
        .flat_map(|i| {
            (1..n)
                .step_by(9)
                .map(move |j| (VertexId(i), VertexId((j * 7 + i) % n)))
        })
        .filter(|(s, d)| s != d)
        .take(120)
        .collect();
    let mut scratch = QueryScratch::new();
    let answers_a: Vec<Option<RouteResult>> = queries
        .iter()
        .map(|(s, d)| engine_a.route(&mut scratch, *s, *d))
        .collect();
    let answers_b: Vec<Option<RouteResult>> = queries
        .iter()
        .map(|(s, d)| engine_b.route(&mut scratch, *s, *d))
        .collect();
    let differing = answers_a
        .iter()
        .zip(&answers_b)
        .filter(|(a, b)| a != b)
        .count();

    let registry = ModelRegistry::new();
    registry.insert_shared("city", Arc::clone(&engine_a));

    const THREADS: usize = 4;
    const SWAPS: usize = 12;
    let stop = AtomicBool::new(false);
    // (matched A, matched B, matched neither) per worker.
    let outcomes: Vec<(u64, u64, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let registry = &registry;
                let stop = &stop;
                let queries = &queries;
                let answers_a = &answers_a;
                let answers_b = &answers_b;
                scope.spawn(move || {
                    let mut scratch = QueryScratch::new();
                    let (mut from_a, mut from_b, mut torn) = (0u64, 0u64, 0u64);
                    'outer: loop {
                        for (i, (s, d)) in queries.iter().enumerate() {
                            // ordering: Relaxed — the flag carries no data;
                            // workers stop eventually and join() synchronises.
                            if stop.load(Ordering::Relaxed) {
                                break 'outer;
                            }
                            let engine = registry.get("city").expect("entry never removed");
                            let r = engine.route(&mut scratch, *s, *d);
                            if r == answers_a[i] {
                                from_a += 1;
                            } else if r == answers_b[i] {
                                from_b += 1;
                            } else {
                                torn += 1;
                            }
                        }
                    }
                    (from_a, from_b, torn)
                })
            })
            .collect();
        // Main thread: alternate hot-reloads from the two snapshot files
        // while the workers run.
        for swap in 0..SWAPS {
            let path = if swap % 2 == 0 { &path_b } else { &path_a };
            registry
                .reload("city", path)
                .expect("valid snapshot reloads");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        // ordering: Relaxed — see the worker-side load; join() synchronises.
        stop.store(true, Ordering::Relaxed);
        handles
            .into_iter()
            .map(|h| h.join().expect("worker"))
            .collect()
    });
    std::fs::remove_file(&path_a).ok();
    std::fs::remove_file(&path_b).ok();

    assert_eq!(registry.generation("city"), Some(1 + SWAPS as u64));
    let (total_a, total_b, total_torn) = outcomes
        .iter()
        .fold((0u64, 0u64, 0u64), |(a, b, t), (xa, xb, xt)| {
            (a + xa, b + xb, t + xt)
        });
    // The invariant under test: never an answer that matches neither model.
    assert_eq!(
        total_torn, 0,
        "every answer must be bit-identical to model A's or model B's"
    );
    assert!(total_a + total_b > 0, "workers must have routed queries");
    // With differing answers and 12 swaps, both models should have been
    // observed (soft check: only meaningful when the models disagree).
    if differing > 0 {
        assert!(
            total_b > 0,
            "after {SWAPS} swaps some queries should have hit the swapped-in model \
             ({differing}/{} answers differ between models)",
            queries.len()
        );
    }
}

#[test]
fn handles_held_across_swaps_keep_serving_the_old_model() {
    let (model_a, model_b) = two_models();
    let path_b = temp_path("held-b.l2r");
    save_model(&model_b, &path_b).unwrap();

    let registry = ModelRegistry::new();
    let held = registry.insert("city", model_a.into_engine());
    let before: Vec<_> = {
        let mut scratch = QueryScratch::new();
        (0..20u32)
            .map(|i| held.route(&mut scratch, VertexId(i), VertexId((i * 3 + 1) % 20)))
            .collect()
    };

    registry.reload("city", &path_b).unwrap();
    std::fs::remove_file(&path_b).ok();

    // The swapped-in engine is a different object…
    let current = registry.get("city").unwrap();
    assert!(!Arc::ptr_eq(&held, &current));
    // …while the held handle still answers exactly as before the swap.
    let mut scratch = QueryScratch::new();
    for (i, expected) in before.iter().enumerate() {
        let i = i as u32;
        assert_eq!(
            &held.route(&mut scratch, VertexId(i), VertexId((i * 3 + 1) % 20)),
            expected
        );
    }
}
