//! # l2r-core
//!
//! **learn-to-route (L2R)** — the primary contribution of *"Learning to Route
//! with Sparse Trajectory Sets"* (ICDE 2018), assembled behind one public
//! API.
//!
//! ```no_run
//! use l2r_core::{L2r, L2rConfig};
//! use l2r_datagen::{generate_network, generate_workload, SyntheticNetworkConfig, WorkloadConfig};
//!
//! // 1. A road network and a sparse set of (map-matched) trajectories.
//! let city = generate_network(&SyntheticNetworkConfig::tiny());
//! let workload = generate_workload(&city, &WorkloadConfig::tiny(300));
//! let (train, test) = workload.temporal_split(0.8);
//!
//! // 2. Fit: clustering -> region graph -> preference learning -> transfer
//! //    -> path assignment for B-edges.
//! let model = L2r::fit(&city.net, &train, L2rConfig::default()).unwrap();
//!
//! // 3. Route arbitrary (source, destination) pairs.
//! let query = &test[0];
//! let route = model.route(query.source(), query.destination()).unwrap();
//! println!("recommended path: {}", route.path);
//! ```
//!
//! The pipeline modules mirror the three steps of the paper:
//! [`pipeline`] (orchestration and offline statistics), [`apply`] (Step 3),
//! [`region_routing`] and [`router`] (Section VI), with Step 1 and Step 2
//! living in the `l2r-region-graph` and `l2r-preference` crates.
//!
//! For serving traffic, compile the fitted model once into an owned
//! [`engine::Engine`] (`model.prepare()`, or [`engine::Engine::load`]
//! straight from a snapshot file): it answers queries bit-identically to
//! [`L2r::route`] through reusable per-thread [`engine::QueryScratch`]
//! state — several times faster, without per-query allocation — batches
//! with [`engine::Engine::route_many`], and, being a `Send + Sync` unit
//! owning its model, serves any number of threads behind an `Arc<Engine>`.
//! A long-lived service manages named engines through a
//! [`registry::ModelRegistry`], which hot-swaps freshly fitted snapshots in
//! atomically while queries are in flight, and hands serving threads
//! reusable scratches from a [`registry::ScratchPool`].
//!
//! To pay the offline cost once *per fleet* rather than once per process,
//! persist the fitted model with [`snapshot::save_model`] and serve it from
//! disk with [`snapshot::load_model`]: a loaded model prepares and routes
//! bit-identically to the in-memory original.

#![warn(missing_docs)]

pub mod apply;
pub mod config;
pub mod engine;
pub mod error;
pub mod pipeline;
pub mod region_routing;
pub mod registry;
pub mod router;
pub mod snapshot;
pub mod store;

pub use apply::{apply_preferences_to_b_edges, path_under_preference, ApplyStats};
pub use config::L2rConfig;
pub use engine::{Engine, QueryScratch};
pub use error::L2rError;
pub use pipeline::{L2r, OfflineStats};
pub use region_routing::{find_region_path, RegionPath, RegionSearchSpace};
pub use registry::{ModelRegistry, PooledScratch, RegistryError, ScratchPool};
pub use router::{region_coverage, route, RegionCoverage, RouteResult, RouteStrategy};
pub use snapshot::{
    compute_canaries, decode_model, decode_snapshot, encode_model, encode_model_structural,
    encode_snapshot, encode_snapshot_with, load_model, load_snapshot, route_digest, save_model,
    save_snapshot, verify_frame, Canary, Snapshot, SnapshotError, DEFAULT_CANARY_COUNT,
    SNAPSHOT_MAGIC, SNAPSHOT_VERSION,
};
pub use store::{
    decode_manifest, encode_manifest, FaultFs, FsFaultConfig, FsFaultKind, Manifest, ManifestEntry,
    ManifestError, ModelStore, RealFs, StoreError, StoreFs, StoreOptions,
};
