//! Configuration of the learn-to-route pipeline.

use l2r_preference::{LearnConfig, TransferConfig};

/// Configuration of [`crate::pipeline::L2r::fit`].
#[derive(Debug, Clone)]
pub struct L2rConfig {
    /// Preference-learning configuration (Step 1 of Section V).
    pub learn: LearnConfig,
    /// Preference-transfer configuration (Step 2 of Section V).
    pub transfer: TransferConfig,
    /// Number of road types kept in each region's functionality descriptor.
    pub function_top_k: usize,
    /// Cap on the number of (transfer-center, transfer-center) pairs for
    /// which Step 3 materialises a path per B-edge.
    pub max_transfer_center_pairs: usize,
}

impl Default for L2rConfig {
    fn default() -> Self {
        L2rConfig {
            learn: LearnConfig::default(),
            transfer: TransferConfig::default(),
            function_top_k: 2,
            max_transfer_center_pairs: 4,
        }
    }
}

impl L2rConfig {
    /// A configuration tuned for the small networks used in unit tests:
    /// a denser similarity graph and fewer materialised paths.
    pub fn fast() -> Self {
        L2rConfig {
            transfer: TransferConfig {
                amr: 0.5,
                ..TransferConfig::default()
            },
            max_transfer_center_pairs: 2,
            ..L2rConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_matches_paper_defaults() {
        let c = L2rConfig::default();
        assert!(
            (c.transfer.amr - 0.7).abs() < 1e-12,
            "amr default is 0.7 (Section VII-B)"
        );
        assert_eq!(c.function_top_k, 2);
        assert!(c.max_transfer_center_pairs >= 1);
    }

    #[test]
    fn fast_config_loosens_the_similarity_threshold() {
        let c = L2rConfig::fast();
        assert!(c.transfer.amr < L2rConfig::default().transfer.amr);
    }
}
