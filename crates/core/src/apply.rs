//! Step 3 of Section V: applying transferred preferences to B-edges.
//!
//! Every B-edge receives concrete road-network paths: for (a capped number
//! of) pairs of transfer centers of its two endpoint regions, a path is
//! computed with the preference-constrained search of Algorithm 2 under the
//! edge's transferred preference.  Edges whose transferred preference is null
//! fall back to fastest paths, exactly as the paper does (Section VII-B).

use std::collections::HashMap;

use l2r_preference::Preference;
use l2r_region_graph::{RegionEdgeId, RegionGraph, SupportedPath};
use l2r_road_network::{fastest_path, preference_constrained_path, Path, RoadNetwork, VertexId};

/// Computes a path between two concrete vertices under an optional
/// preference (`None` = fastest path).
pub fn path_under_preference(
    net: &RoadNetwork,
    source: VertexId,
    destination: VertexId,
    preference: Option<&Preference>,
) -> Option<Path> {
    match preference {
        Some(p) => preference_constrained_path(net, source, destination, p.master, p.slave),
        None => fastest_path(net, source, destination),
    }
}

/// Statistics of the apply step.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ApplyStats {
    /// Number of B-edges that received at least one path.
    pub edges_with_paths: usize,
    /// Number of B-edges for which no path could be found at all.
    pub edges_without_paths: usize,
    /// Total number of paths materialised.
    pub total_paths: usize,
}

/// Attaches preference-based paths to every B-edge of `rg`.
///
/// `preferences` maps B-edge ids to their transferred preference (possibly
/// `None` for a null preference); edges missing from the map are treated as
/// null.  `max_center_pairs` caps the number of transfer-center pairs per
/// edge for which a path is materialised.
pub fn apply_preferences_to_b_edges(
    net: &RoadNetwork,
    rg: &mut RegionGraph,
    preferences: &HashMap<RegionEdgeId, Option<Preference>>,
    max_center_pairs: usize,
) -> ApplyStats {
    let mut stats = ApplyStats::default();
    let b_edges: Vec<RegionEdgeId> = rg.b_edges().map(|e| e.id).collect();
    for eid in b_edges {
        let (ra, rb) = {
            let e = rg.edge(eid);
            (e.a, e.b)
        };
        let pref = preferences.get(&eid).and_then(|p| p.as_ref()).copied();
        let centers_a = rg.transfer_centers_or_default(net, ra);
        let centers_b = rg.transfer_centers_or_default(net, rb);
        let mut paths: Vec<SupportedPath> = Vec::new();
        'outer: for ca in &centers_a {
            for cb in &centers_b {
                if paths.len() >= max_center_pairs.max(1) {
                    break 'outer;
                }
                if ca == cb {
                    continue;
                }
                if let Some(p) = path_under_preference(net, *ca, *cb, pref.as_ref()) {
                    if !p.is_trivial() && !paths.iter().any(|sp| sp.path == p) {
                        paths.push(SupportedPath {
                            path: p,
                            support: 1,
                        });
                    }
                }
            }
        }
        stats.total_paths += paths.len();
        if paths.is_empty() {
            stats.edges_without_paths += 1;
        } else {
            stats.edges_with_paths += 1;
            rg.set_edge_paths(eid, paths);
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use l2r_datagen::{
        generate_network, generate_workload, SyntheticNetworkConfig, WorkloadConfig,
    };
    use l2r_region_graph::{bottom_up_clustering, TrajectoryGraph};
    use l2r_road_network::{CostType, RoadType, RoadTypeSet};

    fn build() -> (l2r_road_network::RoadNetwork, RegionGraph) {
        let syn = generate_network(&SyntheticNetworkConfig::tiny());
        let wl = generate_workload(&syn, &WorkloadConfig::tiny(200));
        let tg = TrajectoryGraph::build(&syn.net, &wl.trajectories);
        let clusters = bottom_up_clustering(&tg);
        let rg = RegionGraph::build(&syn.net, &clusters, &wl.trajectories, 2);
        (syn.net.clone(), rg)
    }

    #[test]
    fn b_edges_receive_paths() {
        let (net, mut rg) = build();
        let num_b = rg.b_edges().count();
        assert!(num_b > 0, "need B-edges for this test");
        let prefs: HashMap<RegionEdgeId, Option<Preference>> = rg
            .b_edges()
            .map(|e| {
                (
                    e.id,
                    Some(Preference {
                        master: CostType::TravelTime,
                        slave: Some(RoadTypeSet::single(RoadType::Primary)),
                    }),
                )
            })
            .collect();
        let stats = apply_preferences_to_b_edges(&net, &mut rg, &prefs, 3);
        assert_eq!(stats.edges_with_paths + stats.edges_without_paths, num_b);
        assert!(stats.edges_with_paths > 0);
        assert!(stats.total_paths >= stats.edges_with_paths);
        // The attached paths are valid and non-trivial.
        for e in rg.b_edges() {
            for sp in &e.paths {
                assert!(sp.path.validate(&net).is_ok());
                assert!(!sp.path.is_trivial());
            }
        }
    }

    #[test]
    fn null_preferences_fall_back_to_fastest_paths() {
        let (net, mut rg) = build();
        let prefs: HashMap<RegionEdgeId, Option<Preference>> =
            rg.b_edges().map(|e| (e.id, None)).collect();
        let stats = apply_preferences_to_b_edges(&net, &mut rg, &prefs, 1);
        assert!(stats.edges_with_paths > 0);
        // With max 1 pair, each edge has at most one path.
        for e in rg.b_edges() {
            assert!(e.paths.len() <= 1);
        }
    }

    #[test]
    fn path_under_preference_respects_master_feature() {
        let (net, _) = build();
        let a = l2r_road_network::VertexId(0);
        let b = l2r_road_network::VertexId((net.num_vertices() - 1) as u32);
        let fastest = path_under_preference(&net, a, b, None).unwrap();
        let shortest_pref = Preference::cost_only(CostType::Distance);
        let shortest = path_under_preference(&net, a, b, Some(&shortest_pref)).unwrap();
        assert!(
            shortest.length_m(&net).unwrap() <= fastest.length_m(&net).unwrap() + 1e-6,
            "the distance-preferring path is never longer than the fastest path"
        );
    }
}
