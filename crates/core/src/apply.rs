//! Step 3 of Section V: applying transferred preferences to B-edges.
//!
//! Every B-edge receives concrete road-network paths: for (a capped number
//! of) pairs of transfer centers of its two endpoint regions, a path is
//! computed with the preference-constrained search of Algorithm 2 under the
//! edge's transferred preference.  Edges whose transferred preference is null
//! fall back to fastest paths, exactly as the paper does (Section VII-B).
//!
//! Because sparsity makes B-edges vastly outnumber T-edges, this is the most
//! search-heavy offline stage (Section VII-C).  Two optimisations keep it
//! fast without changing its output: each transfer center `ca` issues **one**
//! one-to-many search that settles every center of the opposite region
//! (instead of `|centers_b|` full searches), and the per-edge path
//! collection fans out across threads (`L2R_THREADS`), with results applied
//! to the region graph serially in edge order so the outcome is bit-identical
//! to a serial run.

use std::collections::HashMap;

use l2r_preference::Preference;
use l2r_region_graph::{RegionEdgeId, RegionGraph, SupportedPath};
use l2r_road_network::{
    fastest_path, preference_constrained_path, CostType, Path, RoadNetwork, SearchSpace, VertexId,
};

/// Computes a path between two concrete vertices under an optional
/// preference (`None` = fastest path).
pub fn path_under_preference(
    net: &RoadNetwork,
    source: VertexId,
    destination: VertexId,
    preference: Option<&Preference>,
) -> Option<Path> {
    match preference {
        Some(p) => preference_constrained_path(net, source, destination, p.master, p.slave),
        None => fastest_path(net, source, destination),
    }
}

/// Statistics of the apply step.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ApplyStats {
    /// Number of B-edges that received at least one path.
    pub edges_with_paths: usize,
    /// Number of B-edges for which no path could be found at all.
    pub edges_without_paths: usize,
    /// Total number of paths materialised.
    pub total_paths: usize,
}

/// Attaches preference-based paths to every B-edge of `rg`.
///
/// `preferences` maps B-edge ids to their transferred preference (possibly
/// `None` for a null preference); edges missing from the map are treated as
/// null.  `max_center_pairs` caps the number of transfer-center pairs per
/// edge for which a path is materialised.
pub fn apply_preferences_to_b_edges(
    net: &RoadNetwork,
    rg: &mut RegionGraph,
    preferences: &HashMap<RegionEdgeId, Option<Preference>>,
    max_center_pairs: usize,
) -> ApplyStats {
    // Resolve the per-edge inputs up front (cheap, needs `rg`), then collect
    // paths in parallel with one reusable search space per worker, and
    // finally mutate `rg` serially in edge-id order.
    struct EdgeJob {
        id: RegionEdgeId,
        pref: Option<Preference>,
        centers_a: Vec<VertexId>,
        centers_b: Vec<VertexId>,
    }
    let jobs: Vec<EdgeJob> = rg
        .b_edges()
        .map(|e| EdgeJob {
            id: e.id,
            pref: preferences.get(&e.id).and_then(|p| p.as_ref()).copied(),
            centers_a: rg.transfer_centers_or_default(e.a).to_vec(),
            centers_b: rg.transfer_centers_or_default(e.b).to_vec(),
        })
        .collect();

    let collected: Vec<Vec<SupportedPath>> =
        l2r_par::par_map_init(&jobs, SearchSpace::new, |space, _, job| {
            collect_center_pair_paths(
                space,
                net,
                &job.centers_a,
                &job.centers_b,
                job.pref.as_ref(),
                max_center_pairs,
            )
        });

    let mut stats = ApplyStats::default();
    for (job, paths) in jobs.iter().zip(collected) {
        stats.total_paths += paths.len();
        if paths.is_empty() {
            stats.edges_without_paths += 1;
        } else {
            stats.edges_with_paths += 1;
            rg.set_edge_paths(job.id, paths);
        }
    }
    stats
}

/// Collects up to `max_center_pairs` distinct, non-trivial paths between the
/// transfer centers of two regions under an optional preference.  For every
/// source center one single search settles *all* destination centers
/// (`dijkstra_to_many`), which is equivalent to — but much cheaper than —
/// the historical per-pair searches: Dijkstra parents of settled vertices do
/// not change when the search keeps running past them.
fn collect_center_pair_paths(
    space: &mut SearchSpace,
    net: &RoadNetwork,
    centers_a: &[VertexId],
    centers_b: &[VertexId],
    pref: Option<&Preference>,
    max_center_pairs: usize,
) -> Vec<SupportedPath> {
    let cap = max_center_pairs.max(1);
    let mut paths: Vec<SupportedPath> = Vec::new();
    for ca in centers_a {
        if paths.len() >= cap {
            break;
        }
        if ca.idx() >= net.num_vertices() {
            continue;
        }
        match pref {
            Some(p) => space.constrained_to_many(net, *ca, centers_b, p.master, p.slave),
            None => {
                space.dijkstra_to_many(net, *ca, centers_b, |e| e.cost(CostType::TravelTime));
            }
        }
        for cb in centers_b {
            if paths.len() >= cap {
                break;
            }
            if ca == cb {
                continue;
            }
            if let Some(p) = space.path_to(*cb) {
                if !p.is_trivial() && !paths.iter().any(|sp| sp.path == p) {
                    paths.push(SupportedPath {
                        path: p,
                        support: 1,
                    });
                }
            }
        }
    }
    paths
}

#[cfg(test)]
mod tests {
    use super::*;
    use l2r_datagen::{
        generate_network, generate_workload, SyntheticNetworkConfig, WorkloadConfig,
    };
    use l2r_region_graph::{bottom_up_clustering, TrajectoryGraph};
    use l2r_road_network::{CostType, RoadType, RoadTypeSet};

    fn build() -> (l2r_road_network::RoadNetwork, RegionGraph) {
        let syn = generate_network(&SyntheticNetworkConfig::tiny());
        let wl = generate_workload(&syn, &WorkloadConfig::tiny(200));
        let tg = TrajectoryGraph::build(&syn.net, &wl.trajectories);
        let clusters = bottom_up_clustering(&tg);
        let rg = RegionGraph::build(&syn.net, &clusters, &wl.trajectories, 2);
        (syn.net.clone(), rg)
    }

    #[test]
    fn b_edges_receive_paths() {
        let (net, mut rg) = build();
        let num_b = rg.b_edges().count();
        assert!(num_b > 0, "need B-edges for this test");
        let prefs: HashMap<RegionEdgeId, Option<Preference>> = rg
            .b_edges()
            .map(|e| {
                (
                    e.id,
                    Some(Preference {
                        master: CostType::TravelTime,
                        slave: Some(RoadTypeSet::single(RoadType::Primary)),
                    }),
                )
            })
            .collect();
        let stats = apply_preferences_to_b_edges(&net, &mut rg, &prefs, 3);
        assert_eq!(stats.edges_with_paths + stats.edges_without_paths, num_b);
        assert!(stats.edges_with_paths > 0);
        assert!(stats.total_paths >= stats.edges_with_paths);
        // The attached paths are valid and non-trivial.
        for e in rg.b_edges() {
            for sp in &e.paths {
                assert!(sp.path.validate(&net).is_ok());
                assert!(!sp.path.is_trivial());
            }
        }
    }

    #[test]
    fn null_preferences_fall_back_to_fastest_paths() {
        let (net, mut rg) = build();
        let prefs: HashMap<RegionEdgeId, Option<Preference>> =
            rg.b_edges().map(|e| (e.id, None)).collect();
        let stats = apply_preferences_to_b_edges(&net, &mut rg, &prefs, 1);
        assert!(stats.edges_with_paths > 0);
        // With max 1 pair, each edge has at most one path.
        for e in rg.b_edges() {
            assert!(e.paths.len() <= 1);
        }
    }

    #[test]
    fn path_under_preference_respects_master_feature() {
        let (net, _) = build();
        let a = l2r_road_network::VertexId(0);
        let b = l2r_road_network::VertexId((net.num_vertices() - 1) as u32);
        let fastest = path_under_preference(&net, a, b, None).unwrap();
        let shortest_pref = Preference::cost_only(CostType::Distance);
        let shortest = path_under_preference(&net, a, b, Some(&shortest_pref)).unwrap();
        assert!(
            shortest.length_m(&net).unwrap() <= fastest.length_m(&net).unwrap() + 1e-6,
            "the distance-preferring path is never longer than the fastest path"
        );
    }
}
