//! The end-to-end learn-to-route pipeline: Figure 2 of the paper.
//!
//! [`L2r::fit`] runs clustering (Step 1), preference learning and transfer
//! (Step 2), and path assignment for B-edges (Step 3); [`L2r::route`] answers
//! arbitrary `(source, destination)` queries (Section VI).

use std::collections::HashMap;
use std::time::{Duration, Instant};

use l2r_preference::{
    learn_edge_preference_in, transfer_preferences, LearnedPreference, Preference,
};
use l2r_region_graph::{bottom_up_clustering, RegionEdgeId, RegionGraph, TrajectoryGraph};
use l2r_road_network::{RoadNetwork, SearchSpace, VertexId};
use l2r_trajectory::MatchedTrajectory;

use crate::apply::{apply_preferences_to_b_edges, ApplyStats};
use crate::config::L2rConfig;
use crate::error::L2rError;
use crate::router::{region_coverage, route, RegionCoverage, RouteResult};

/// Timings and sizes of the offline phase (reported in Section VII-C,
/// "Offline Processing Time").
#[derive(Debug, Clone, Default)]
pub struct OfflineStats {
    /// Time spent clustering (region generation).
    pub clustering_time: Duration,
    /// Time spent building the region graph (T-edges, B-edges).
    pub region_graph_time: Duration,
    /// Time spent learning T-edge preferences (Step 1).
    pub learning_time: Duration,
    /// Time spent transferring preferences (Step 2).
    pub transfer_time: Duration,
    /// Time spent applying preferences to B-edges (Step 3).
    pub apply_time: Duration,
    /// Number of regions.
    pub num_regions: usize,
    /// Number of T-edges.
    pub num_t_edges: usize,
    /// Number of B-edges.
    pub num_b_edges: usize,
    /// Null rate of the transfer step.
    pub null_rate: f64,
    /// Path-materialisation statistics of Step 3.
    pub apply: ApplyStats,
}

/// A fitted learn-to-route model.
#[derive(Debug, Clone)]
pub struct L2r {
    net: RoadNetwork,
    region_graph: RegionGraph,
    learned: HashMap<RegionEdgeId, LearnedPreference>,
    transferred: HashMap<RegionEdgeId, Option<Preference>>,
    config: L2rConfig,
    stats: OfflineStats,
}

impl L2r {
    /// Fits an L2R model on a road network and a set of map-matched training
    /// trajectories.
    pub fn fit(
        net: &RoadNetwork,
        trajectories: &[MatchedTrajectory],
        config: L2rConfig,
    ) -> Result<L2r, L2rError> {
        if trajectories.is_empty() {
            return Err(L2rError::EmptyTrajectorySet);
        }
        let mut stats = OfflineStats::default();

        // Step 1a: trajectory graph + clustering.
        let t0 = Instant::now();
        let tg = TrajectoryGraph::build(net, trajectories);
        let clusters = bottom_up_clustering(&tg);
        stats.clustering_time = t0.elapsed();
        if clusters.is_empty() {
            return Err(L2rError::NoRegions);
        }

        // Step 1b: region graph.
        let t0 = Instant::now();
        let mut region_graph =
            RegionGraph::build(net, &clusters, trajectories, config.function_top_k);
        stats.region_graph_time = t0.elapsed();
        stats.num_regions = region_graph.num_regions();

        // Step 2a: learn preferences for T-edges.  Each T-edge is
        // independent, so learning fans out across threads (`L2R_THREADS`
        // workers, each with its own reusable search space); results are
        // collected in T-edge order, making the outcome identical to a
        // serial run.
        let t0 = Instant::now();
        let t_edges: Vec<&l2r_region_graph::RegionEdge> = region_graph.t_edges().collect();
        let learned_per_edge: Vec<Option<LearnedPreference>> =
            l2r_par::par_map_init(&t_edges, SearchSpace::new, |space, _, edge| {
                learn_edge_preference_in(space, net, &edge.paths, &config.learn)
            });
        let mut learned: HashMap<RegionEdgeId, LearnedPreference> =
            HashMap::with_capacity(t_edges.len());
        for (edge, lp) in t_edges.iter().zip(learned_per_edge) {
            if let Some(lp) = lp {
                learned.insert(edge.id, lp);
            }
        }
        stats.learning_time = t0.elapsed();
        stats.num_t_edges = t_edges.len();
        drop(t_edges);

        // Step 2b: transfer preferences to B-edges.
        let t0 = Instant::now();
        let labeled: HashMap<RegionEdgeId, Preference> = learned
            .iter()
            .map(|(id, lp)| (*id, lp.preference))
            .collect();
        let targets: Vec<RegionEdgeId> = region_graph.b_edges().map(|e| e.id).collect();
        let transfer = transfer_preferences(&region_graph, &labeled, &targets, &config.transfer);
        stats.transfer_time = t0.elapsed();
        stats.null_rate = transfer.null_rate;
        stats.num_b_edges = targets.len();

        // Step 3: apply preferences to B-edges.
        let t0 = Instant::now();
        stats.apply = apply_preferences_to_b_edges(
            net,
            &mut region_graph,
            &transfer.preferences,
            config.max_transfer_center_pairs,
        );
        stats.apply_time = t0.elapsed();

        Ok(L2r {
            net: net.clone(),
            region_graph,
            learned,
            transferred: transfer.preferences,
            config,
            stats,
        })
    }

    /// Reassembles a model from its constituent parts (snapshot decoding);
    /// the parts must describe a consistent fitted model.
    pub(crate) fn from_parts(
        net: RoadNetwork,
        region_graph: RegionGraph,
        learned: HashMap<RegionEdgeId, LearnedPreference>,
        transferred: HashMap<RegionEdgeId, Option<Preference>>,
        config: L2rConfig,
        stats: OfflineStats,
    ) -> L2r {
        L2r {
            net,
            region_graph,
            learned,
            transferred,
            config,
            stats,
        }
    }

    /// Routes between two road-network vertices.
    pub fn route(&self, source: VertexId, destination: VertexId) -> Option<RouteResult> {
        route(&self.net, &self.region_graph, source, destination)
    }

    /// Classifies a query against the region graph (InRegion / InOutRegion /
    /// OutRegion).
    pub fn coverage(&self, source: VertexId, destination: VertexId) -> RegionCoverage {
        region_coverage(&self.region_graph, source, destination)
    }

    /// The underlying road network.
    pub fn network(&self) -> &RoadNetwork {
        &self.net
    }

    /// The region graph (after Step 3, i.e. with paths on B-edges).
    pub fn region_graph(&self) -> &RegionGraph {
        &self.region_graph
    }

    /// The preferences learned for T-edges.
    pub fn learned_preferences(&self) -> &HashMap<RegionEdgeId, LearnedPreference> {
        &self.learned
    }

    /// The preferences transferred to B-edges (`None` = null preference).
    pub fn transferred_preferences(&self) -> &HashMap<RegionEdgeId, Option<Preference>> {
        &self.transferred
    }

    /// Offline-phase statistics.
    pub fn stats(&self) -> &OfflineStats {
        &self.stats
    }

    /// The configuration the model was fitted with.
    pub fn config(&self) -> &L2rConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use l2r_datagen::{
        generate_network, generate_workload, SyntheticNetworkConfig, WorkloadConfig,
    };

    fn fit_tiny() -> (l2r_datagen::SyntheticNetwork, l2r_datagen::Workload, L2r) {
        let syn = generate_network(&SyntheticNetworkConfig::tiny());
        let wl = generate_workload(&syn, &WorkloadConfig::tiny(250));
        let (train, _) = wl.temporal_split(0.8);
        let model = L2r::fit(&syn.net, &train, L2rConfig::fast()).unwrap();
        (syn, wl, model)
    }

    #[test]
    fn fit_produces_a_complete_model() {
        let (_, _, model) = fit_tiny();
        let stats = model.stats();
        assert!(stats.num_regions > 0);
        assert!(stats.num_t_edges > 0);
        assert!(!model.learned_preferences().is_empty());
        // Every T-edge with paths got a learned preference.
        assert_eq!(
            model.learned_preferences().len(),
            model
                .region_graph()
                .t_edges()
                .filter(|e| e.has_paths())
                .count()
        );
        // B-edges either have transferred preferences recorded or are absent.
        assert_eq!(model.transferred_preferences().len(), stats.num_b_edges);
    }

    #[test]
    fn fit_rejects_empty_input() {
        let syn = generate_network(&SyntheticNetworkConfig::tiny());
        assert!(matches!(
            L2r::fit(&syn.net, &[], L2rConfig::fast()),
            Err(L2rError::EmptyTrajectorySet)
        ));
    }

    #[test]
    fn routes_held_out_test_queries() {
        let (syn, wl, model) = fit_tiny();
        let (_, test) = wl.temporal_split(0.8);
        assert!(!test.is_empty());
        let mut routed = 0usize;
        for t in test.iter().take(40) {
            let s = t.source();
            let d = t.destination();
            if let Some(r) = model.route(s, d) {
                assert!(r.path.validate(&syn.net).is_ok());
                assert_eq!(r.path.source(), s);
                assert_eq!(r.path.destination(), d);
                routed += 1;
            }
        }
        assert!(routed > 0, "the model should answer held-out queries");
    }

    #[test]
    fn l2r_paths_resemble_driver_paths_more_than_shortest_paths() {
        use l2r_road_network::{path_similarity, shortest_path};
        let (syn, wl, model) = fit_tiny();
        let (_, test) = wl.temporal_split(0.8);
        let mut l2r_total = 0.0;
        let mut shortest_total = 0.0;
        let mut n = 0usize;
        for t in test.iter().take(60) {
            let (s, d) = (t.source(), t.destination());
            let Some(l2r_route) = model.route(s, d) else {
                continue;
            };
            let Some(short) = shortest_path(&syn.net, s, d) else {
                continue;
            };
            l2r_total += path_similarity(&syn.net, &t.path, &l2r_route.path);
            shortest_total += path_similarity(&syn.net, &t.path, &short);
            n += 1;
        }
        assert!(n >= 10, "need enough comparable test queries, got {n}");
        // The headline claim of the paper, in aggregate: trajectory-based
        // routing matches driver behaviour at least as well as cost-centric
        // shortest paths.
        assert!(
            l2r_total >= shortest_total * 0.95,
            "L2R similarity {l2r_total:.2} should not be clearly worse than Shortest {shortest_total:.2}"
        );
    }

    #[test]
    fn offline_stats_record_timings() {
        let (_, _, model) = fit_tiny();
        let s = model.stats();
        assert!(s.clustering_time.as_nanos() > 0);
        assert!(s.region_graph_time.as_nanos() > 0);
        assert!(s.learning_time.as_nanos() > 0);
        assert!(s.apply.edges_with_paths + s.apply.edges_without_paths == s.num_b_edges);
        assert!(s.null_rate >= 0.0 && s.null_rate <= 1.0);
    }
}
