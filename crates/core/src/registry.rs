//! Serving-side model management: [`ModelRegistry`] (named datasets →
//! shared [`Engine`]s with atomic hot-reload) and [`ScratchPool`] (reusable
//! [`QueryScratch`]es for worker threads).
//!
//! A long-lived route service holds one registry for its whole lifetime.
//! Query threads call [`ModelRegistry::get`] and receive an `Arc<Engine>` —
//! an immutable model+index unit they keep for the duration of the request,
//! so a concurrent [`ModelRegistry::reload`] can never tear state out from
//! under them: the swap replaces the registry's *pointer* under a brief
//! write lock, in-flight queries finish on the engine they already hold, and
//! the old engine is freed when the last holder drops it.  A failed reload
//! (missing file, corrupt payload, stale format version) leaves the
//! registered engine untouched and reports the [`SnapshotError`] — serving
//! never degrades because an operator fat-fingered a path.
//!
//! The expensive part of a reload — reading, validating and compiling the
//! snapshot — happens *outside* the lock; the critical section is a single
//! `HashMap` insert.  `crates/core/tests/registry_hotswap.rs` hammers a
//! registry from many threads mid-swap and asserts every answer is
//! bit-identical to one of the two registered models (never a mix);
//! `crates/core/tests/registry_robustness.rs` covers the failure paths.

use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use crate::engine::{Engine, QueryScratch};
use crate::snapshot::SnapshotError;

/// One registered engine plus its swap count.
struct Entry {
    engine: Arc<Engine>,
    /// Starts at 1 on first registration, +1 per successful swap.  Lets
    /// operators (and tests) observe that a hot-reload actually happened.
    generation: u64,
}

/// A named, concurrently readable collection of serving [`Engine`]s with
/// atomic hot-reload from `.l2r` snapshot files.
///
/// All methods take `&self`: share one registry across every serving thread
/// (e.g. behind an `Arc`, or borrowed into scoped workers).
#[derive(Default)]
pub struct ModelRegistry {
    entries: RwLock<HashMap<String, Entry>>,
}

impl std::fmt::Debug for ModelRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut names = self.names();
        names.sort();
        f.debug_struct("ModelRegistry")
            .field("datasets", &names)
            .finish()
    }
}

impl ModelRegistry {
    /// Creates an empty registry.
    pub fn new() -> ModelRegistry {
        ModelRegistry::default()
    }

    fn read(&self) -> std::sync::RwLockReadGuard<'_, HashMap<String, Entry>> {
        // A poisoned lock only means another thread panicked mid-access; the
        // map itself is always structurally valid (swaps are single inserts),
        // so serving continues.
        self.entries.read().unwrap_or_else(|e| e.into_inner())
    }

    fn write(&self) -> std::sync::RwLockWriteGuard<'_, HashMap<String, Entry>> {
        self.entries.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Registers (or replaces) `name` with an already-built engine,
    /// returning the shared handle now being served.
    pub fn insert(&self, name: &str, engine: Engine) -> Arc<Engine> {
        self.insert_shared(name, Arc::new(engine))
    }

    /// Registers (or replaces) `name` with a shared engine handle.
    pub fn insert_shared(&self, name: &str, engine: Arc<Engine>) -> Arc<Engine> {
        let mut entries = self.write();
        let generation = entries.get(name).map(|e| e.generation + 1).unwrap_or(1);
        entries.insert(
            name.to_string(),
            Entry {
                engine: Arc::clone(&engine),
                generation,
            },
        );
        engine
    }

    /// The engine currently serving `name` (a cheap `Arc` clone).  Hold the
    /// returned handle for the duration of one request: it stays valid and
    /// immutable even if the entry is hot-swapped or removed concurrently.
    pub fn get(&self, name: &str) -> Option<Arc<Engine>> {
        self.read().get(name).map(|e| Arc::clone(&e.engine))
    }

    /// The swap count of `name` (1 after first registration).
    pub fn generation(&self, name: &str) -> Option<u64> {
        self.read().get(name).map(|e| e.generation)
    }

    /// Loads a snapshot file, compiles it, and atomically swaps it in as
    /// `name` (registering it fresh when the name is new).  Queries in
    /// flight keep the engine they already hold; queries arriving after the
    /// swap get the new one — there is no in-between state.
    ///
    /// On **any** failure — missing file, truncation, bad magic, stale
    /// format version, checksum mismatch, invalid payload — the registry is
    /// left exactly as it was (the old engine keeps serving) and the error
    /// is returned for the operator.
    pub fn reload(&self, name: &str, path: &Path) -> Result<Arc<Engine>, SnapshotError> {
        // Read + validate + compile outside the lock: readers never wait on
        // disk or on index compilation.
        let engine = Engine::load(path)?;
        Ok(self.insert(name, engine))
    }

    /// Removes `name`, returning whether it was registered.  In-flight
    /// queries holding the engine finish normally.
    pub fn remove(&self, name: &str) -> bool {
        self.write().remove(name).is_some()
    }

    /// Registered dataset names, in registration-independent sorted order.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Number of registered datasets.
    pub fn len(&self) -> usize {
        self.read().len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.read().is_empty()
    }
}

/// A shared pool of [`QueryScratch`]es for serving threads.
///
/// Steady-state serving must not allocate per query *or per batch*: a worker
/// [`acquire`](ScratchPool::acquire)s a scratch (popping a warmed one when
/// available, creating one only when the pool has run dry), serves any
/// number of queries through it, and returns it automatically on drop.  The
/// total number of scratches ever created is bounded by the peak number of
/// concurrent holders — observable via [`ScratchPool::created`], which tests
/// use to prove batch N+1 reuses batch N's buffers.
#[derive(Debug, Default)]
pub struct ScratchPool {
    free: Mutex<Vec<QueryScratch>>,
    created: AtomicUsize,
}

impl ScratchPool {
    /// Creates an empty pool; scratches are created lazily on first acquire.
    pub fn new() -> ScratchPool {
        ScratchPool::default()
    }

    /// Checks a scratch out of the pool (creating one only when none is
    /// idle).  The scratch returns to the pool when the guard drops.
    pub fn acquire(&self) -> PooledScratch<'_> {
        let reused = self.free.lock().unwrap_or_else(|e| e.into_inner()).pop();
        let scratch = reused.unwrap_or_else(|| {
            self.created.fetch_add(1, Ordering::Relaxed);
            QueryScratch::new()
        });
        PooledScratch {
            pool: self,
            scratch: Some(scratch),
        }
    }

    /// Total scratches this pool has ever created — equals the peak number
    /// of concurrent holders, regardless of how many acquire/release cycles
    /// have run.
    pub fn created(&self) -> usize {
        self.created.load(Ordering::Relaxed)
    }

    /// Scratches currently idle in the pool.
    pub fn idle(&self) -> usize {
        self.free.lock().unwrap_or_else(|e| e.into_inner()).len()
    }
}

/// A [`QueryScratch`] checked out of a [`ScratchPool`]; derefs to the
/// scratch and returns it to the pool on drop.
#[derive(Debug)]
pub struct PooledScratch<'a> {
    pool: &'a ScratchPool,
    scratch: Option<QueryScratch>,
}

impl std::ops::Deref for PooledScratch<'_> {
    type Target = QueryScratch;
    fn deref(&self) -> &QueryScratch {
        self.scratch.as_ref().expect("scratch present until drop")
    }
}

impl std::ops::DerefMut for PooledScratch<'_> {
    fn deref_mut(&mut self) -> &mut QueryScratch {
        self.scratch.as_mut().expect("scratch present until drop")
    }
}

impl Drop for PooledScratch<'_> {
    fn drop(&mut self) {
        if let Some(scratch) = self.scratch.take() {
            self.pool
                .free
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(scratch);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use l2r_datagen::{
        generate_network, generate_workload, SyntheticNetworkConfig, WorkloadConfig,
    };
    use l2r_region_graph::{bottom_up_clustering, RegionGraph, TrajectoryGraph};
    use l2r_road_network::VertexId;

    fn engine() -> Engine {
        let syn = generate_network(&SyntheticNetworkConfig::tiny());
        let wl = generate_workload(&syn, &WorkloadConfig::tiny(250));
        let tg = TrajectoryGraph::build(&syn.net, &wl.trajectories);
        let clusters = bottom_up_clustering(&tg);
        let mut rg = RegionGraph::build(&syn.net, &clusters, &wl.trajectories, 2);
        crate::apply::apply_preferences_to_b_edges(
            &syn.net,
            &mut rg,
            &std::collections::HashMap::new(),
            2,
        );
        Engine::from_graphs(&syn.net, &rg)
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let registry = ModelRegistry::new();
        assert!(registry.is_empty());
        assert!(registry.get("D1").is_none());
        assert_eq!(registry.generation("D1"), None);

        let served = registry.insert("D1", engine());
        assert_eq!(registry.len(), 1);
        assert_eq!(registry.names(), vec!["D1".to_string()]);
        assert_eq!(registry.generation("D1"), Some(1));
        let got = registry.get("D1").expect("registered");
        assert!(Arc::ptr_eq(&served, &got));

        assert!(registry.remove("D1"));
        assert!(!registry.remove("D1"));
        assert!(registry.get("D1").is_none());
        // The handle we held across the removal still serves.
        let mut scratch = QueryScratch::new();
        let _ = got.route(&mut scratch, VertexId(0), VertexId(1));
    }

    #[test]
    fn insert_replacing_bumps_generation_and_swaps_the_handle() {
        let registry = ModelRegistry::new();
        let first = registry.insert("D1", engine());
        let second = registry.insert("D1", engine());
        assert_eq!(registry.generation("D1"), Some(2));
        let got = registry.get("D1").unwrap();
        assert!(Arc::ptr_eq(&second, &got));
        assert!(!Arc::ptr_eq(&first, &got));
    }

    #[test]
    fn scratch_pool_reuses_across_sequential_batches() {
        let pool = ScratchPool::new();
        assert_eq!(pool.created(), 0);
        for _ in 0..10 {
            let scratch = pool.acquire();
            // Touch the scratch as a serving worker would.
            let _ = scratch.search_generation();
        }
        // Ten sequential batches, one scratch ever created.
        assert_eq!(pool.created(), 1);
        assert_eq!(pool.idle(), 1);
    }

    #[test]
    fn scratch_pool_grows_to_peak_concurrency_only() {
        let pool = ScratchPool::new();
        {
            let _a = pool.acquire();
            let _b = pool.acquire();
            let _c = pool.acquire();
            assert_eq!(pool.created(), 3);
            assert_eq!(pool.idle(), 0);
        }
        assert_eq!(pool.idle(), 3);
        // Re-acquiring after release creates nothing new.
        let _d = pool.acquire();
        let _e = pool.acquire();
        assert_eq!(pool.created(), 3);
    }
}
