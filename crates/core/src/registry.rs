//! Serving-side model management: [`ModelRegistry`] (named datasets →
//! shared [`Engine`]s with atomic hot-reload) and [`ScratchPool`] (reusable
//! [`QueryScratch`]es for worker threads).
//!
//! A long-lived route service holds one registry for its whole lifetime.
//! Query threads call [`ModelRegistry::get`] and receive an `Arc<Engine>` —
//! an immutable model+index unit they keep for the duration of the request,
//! so a concurrent [`ModelRegistry::reload`] can never tear state out from
//! under them: the swap replaces the registry's *pointer* under a brief
//! write lock, in-flight queries finish on the engine they already hold, and
//! the old engine is freed when the last holder drops it.  A failed reload
//! (missing file, corrupt payload, stale format version) leaves the
//! registered engine untouched and reports the [`SnapshotError`] — serving
//! never degrades because an operator fat-fingered a path.
//!
//! The expensive part of a reload — reading, validating and compiling the
//! snapshot — happens *outside* the lock; the critical section is a single
//! `HashMap` insert.  `crates/core/tests/registry_hotswap.rs` hammers a
//! registry from many threads mid-swap and asserts every answer is
//! bit-identical to one of the two registered models (never a mix);
//! `crates/core/tests/registry_robustness.rs` covers the failure paths.
//!
//! Reloads are **validated** before they swap: the snapshot's stamped
//! dataset name must match the registry name it is being installed under,
//! and every canary probe recorded at save time
//! ([`crate::snapshot::compute_canaries`]) is replayed against the freshly
//! compiled engine — a digest mismatch rejects the reload with the old
//! engine still serving.  Each successful swap retains the **previous**
//! engine so [`ModelRegistry::rollback`] can restore it instantly, and
//! generations stay monotonic per name even across remove + re-register
//! (removed names leave a generation tombstone behind).

use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use crate::engine::{Engine, QueryScratch};
use crate::snapshot::{load_snapshot, route_digest, Snapshot, SnapshotError};
use crate::store::{ModelStore, StoreError};

/// An error raised by registry reload/rollback operations.  Every failure
/// leaves the registry exactly as it was: the old engine keeps serving.
#[derive(Debug)]
pub enum RegistryError {
    /// The snapshot file could not be read or decoded.
    Snapshot(SnapshotError),
    /// The model store could not serve the requested generation.
    Store(StoreError),
    /// The snapshot is stamped with a different dataset than the name it
    /// was being installed under.
    DatasetMismatch {
        /// Dataset stamped in the snapshot at save time.
        snapshot: String,
        /// Registry name the caller tried to install it under.
        requested: String,
    },
    /// A canary probe recorded at save time answered differently on the
    /// freshly compiled engine.
    CanaryMismatch {
        /// Probe source vertex id.
        src: u32,
        /// Probe destination vertex id.
        dst: u32,
        /// Digest recorded at save time.
        expected: u64,
        /// Digest the compiled engine produced.
        actual: u64,
    },
    /// The named dataset is not registered.
    UnknownDataset(String),
    /// The named dataset has no retained previous engine to roll back to.
    NoPreviousEngine(String),
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::Snapshot(e) => write!(f, "{e}"),
            RegistryError::Store(e) => write!(f, "{e}"),
            RegistryError::DatasetMismatch { snapshot, requested } => write!(
                f,
                "snapshot is stamped for dataset `{snapshot}`, refusing to install it as `{requested}`"
            ),
            RegistryError::CanaryMismatch {
                src,
                dst,
                expected,
                actual,
            } => write!(
                f,
                "canary probe {src}->{dst} answered {actual:#018x}, snapshot recorded {expected:#018x}: rejecting swap"
            ),
            RegistryError::UnknownDataset(name) => write!(f, "dataset `{name}` is not registered"),
            RegistryError::NoPreviousEngine(name) => {
                write!(f, "dataset `{name}` has no previous engine to roll back to")
            }
        }
    }
}

impl std::error::Error for RegistryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RegistryError::Snapshot(e) => Some(e),
            RegistryError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SnapshotError> for RegistryError {
    fn from(e: SnapshotError) -> Self {
        RegistryError::Snapshot(e)
    }
}

impl From<StoreError> for RegistryError {
    fn from(e: StoreError) -> Self {
        RegistryError::Store(e)
    }
}

/// One registered engine plus its swap count.
struct Entry {
    engine: Arc<Engine>,
    /// Starts at 1 on first registration, +1 per successful swap (and per
    /// rollback — a rollback *is* a swap).  Lets operators (and tests)
    /// observe that a hot-reload actually happened.
    generation: u64,
    /// The engine that was serving before the last swap, retained for
    /// [`ModelRegistry::rollback`].
    previous: Option<Arc<Engine>>,
}

/// The registry's locked state: the live entries plus generation
/// tombstones of removed names, so a re-registered name resumes counting
/// where it left off instead of restarting at 1.
#[derive(Default)]
struct Inner {
    live: HashMap<String, Entry>,
    retired: HashMap<String, u64>,
}

/// A named, concurrently readable collection of serving [`Engine`]s with
/// validated atomic hot-reload from `.l2r` snapshot files or a
/// [`ModelStore`], previous-engine retention, and explicit rollback.
///
/// All methods take `&self`: share one registry across every serving thread
/// (e.g. behind an `Arc`, or borrowed into scoped workers).
#[derive(Default)]
pub struct ModelRegistry {
    entries: RwLock<Inner>,
}

impl std::fmt::Debug for ModelRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut names = self.names();
        names.sort();
        f.debug_struct("ModelRegistry")
            .field("datasets", &names)
            .finish()
    }
}

impl ModelRegistry {
    /// Creates an empty registry.
    pub fn new() -> ModelRegistry {
        ModelRegistry::default()
    }

    fn read(&self) -> std::sync::RwLockReadGuard<'_, Inner> {
        // A poisoned lock only means another thread panicked mid-access; the
        // map itself is always structurally valid (swaps are single inserts),
        // so serving continues.
        self.entries.read().unwrap_or_else(|e| e.into_inner())
    }

    fn write(&self) -> std::sync::RwLockWriteGuard<'_, Inner> {
        self.entries.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Registers (or replaces) `name` with an already-built engine,
    /// returning the shared handle now being served.
    pub fn insert(&self, name: &str, engine: Engine) -> Arc<Engine> {
        self.insert_shared(name, Arc::new(engine))
    }

    /// Registers (or replaces) `name` with a shared engine handle.  When
    /// replacing, the outgoing engine is retained as the rollback target.
    pub fn insert_shared(&self, name: &str, engine: Arc<Engine>) -> Arc<Engine> {
        let mut inner = self.write();
        let resumed = inner.retired.remove(name).unwrap_or(0);
        match inner.live.get_mut(name) {
            Some(entry) => {
                entry.previous = Some(std::mem::replace(&mut entry.engine, Arc::clone(&engine)));
                entry.generation += 1;
            }
            None => {
                inner.live.insert(
                    name.to_string(),
                    Entry {
                        engine: Arc::clone(&engine),
                        generation: resumed + 1,
                        previous: None,
                    },
                );
            }
        }
        engine
    }

    /// The engine currently serving `name` (a cheap `Arc` clone).  Hold the
    /// returned handle for the duration of one request: it stays valid and
    /// immutable even if the entry is hot-swapped or removed concurrently.
    pub fn get(&self, name: &str) -> Option<Arc<Engine>> {
        self.read().live.get(name).map(|e| Arc::clone(&e.engine))
    }

    /// The swap count of `name` (1 after first registration; monotonic
    /// even across remove + re-register).
    pub fn generation(&self, name: &str) -> Option<u64> {
        self.read().live.get(name).map(|e| e.generation)
    }

    /// Every registered dataset with its generation, sorted by name.
    pub fn generations(&self) -> Vec<(String, u64)> {
        let inner = self.read();
        let mut out: Vec<(String, u64)> = inner
            .live
            .iter()
            .map(|(name, e)| (name.clone(), e.generation))
            .collect();
        out.sort();
        out
    }

    /// Whether `name` has a retained previous engine to roll back to.
    pub fn has_previous(&self, name: &str) -> bool {
        self.read()
            .live
            .get(name)
            .is_some_and(|e| e.previous.is_some())
    }

    /// Validates a decoded snapshot against `name`, compiles it, and swaps
    /// it in.  Validation is two-stage: the snapshot's stamped dataset must
    /// match `name` (empty stamps — pre-provenance saves — match anything),
    /// and every canary probe recorded at save time must reproduce its
    /// digest on the compiled engine.  Any mismatch rejects the swap with
    /// the old engine still serving.
    pub fn install_validated(
        &self,
        name: &str,
        snapshot: Snapshot,
    ) -> Result<Arc<Engine>, RegistryError> {
        if !snapshot.dataset.is_empty() && snapshot.dataset != name {
            return Err(RegistryError::DatasetMismatch {
                snapshot: snapshot.dataset,
                requested: name.to_string(),
            });
        }
        // Compile and replay canaries outside the lock: readers never wait
        // on index compilation or probe routing.
        let canaries = snapshot.canaries;
        let engine = snapshot.model.into_engine();
        let mut scratch = QueryScratch::new();
        for c in &canaries {
            let actual = route_digest(&engine.route(&mut scratch, c.src, c.dst));
            if actual != c.digest {
                return Err(RegistryError::CanaryMismatch {
                    src: c.src.0,
                    dst: c.dst.0,
                    expected: c.digest,
                    actual,
                });
            }
        }
        Ok(self.insert(name, engine))
    }

    /// Loads a snapshot file, validates it against `name`
    /// ([`ModelRegistry::install_validated`]), and atomically swaps it in
    /// (registering it fresh when the name is new).  Queries in flight keep
    /// the engine they already hold; queries arriving after the swap get
    /// the new one — there is no in-between state.
    ///
    /// On **any** failure — missing file, truncation, bad magic, stale
    /// format version, checksum mismatch, invalid payload, dataset
    /// mismatch, canary mismatch — the registry is left exactly as it was
    /// (the old engine keeps serving) and the error is returned for the
    /// operator.
    pub fn reload(&self, name: &str, path: &Path) -> Result<Arc<Engine>, RegistryError> {
        // Read + validate + compile outside the lock: readers never wait on
        // disk or on index compilation.
        let snapshot = load_snapshot(path)?;
        self.install_validated(name, snapshot)
    }

    /// Reloads `name` from a [`ModelStore`]: the newest durable generation
    /// when `generation` is `None`, a pinned one otherwise.  Returns the
    /// engine now serving and the *store* generation it came from.
    pub fn reload_from_store(
        &self,
        name: &str,
        store: &ModelStore,
        generation: Option<u64>,
    ) -> Result<(Arc<Engine>, u64), RegistryError> {
        let (generation, snapshot) = match generation {
            Some(g) => (g, store.load(g)?),
            None => store.load_latest()?,
        };
        let engine = self.install_validated(name, snapshot)?;
        Ok((engine, generation))
    }

    /// Restores the engine that was serving `name` before its last swap.
    /// The retained engine is consumed (no flip-flop: a second rollback
    /// without an intervening swap fails), the generation is bumped — a
    /// rollback *is* a swap — and the restored handle is returned with the
    /// new generation.
    pub fn rollback(&self, name: &str) -> Result<(Arc<Engine>, u64), RegistryError> {
        let mut inner = self.write();
        let entry = inner
            .live
            .get_mut(name)
            .ok_or_else(|| RegistryError::UnknownDataset(name.to_string()))?;
        let previous = entry
            .previous
            .take()
            .ok_or_else(|| RegistryError::NoPreviousEngine(name.to_string()))?;
        entry.engine = Arc::clone(&previous);
        entry.generation += 1;
        Ok((previous, entry.generation))
    }

    /// Removes `name`, returning whether it was registered.  In-flight
    /// queries holding the engine finish normally.  The generation is
    /// tombstoned: re-registering the same name resumes counting.
    pub fn remove(&self, name: &str) -> bool {
        let mut inner = self.write();
        match inner.live.remove(name) {
            Some(entry) => {
                inner.retired.insert(name.to_string(), entry.generation);
                true
            }
            None => false,
        }
    }

    /// Registered dataset names, in registration-independent sorted order.
    pub fn names(&self) -> Vec<String> {
        // l2r: allow(nondeterministic-iteration) — collected then sorted below
        let mut names: Vec<String> = self.read().live.keys().cloned().collect();
        names.sort();
        names
    }

    /// Number of registered datasets.
    pub fn len(&self) -> usize {
        self.read().live.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.read().live.is_empty()
    }
}

/// A shared pool of [`QueryScratch`]es for serving threads.
///
/// Steady-state serving must not allocate per query *or per batch*: a worker
/// [`acquire`](ScratchPool::acquire)s a scratch (popping a warmed one when
/// available, creating one only when the pool has run dry), serves any
/// number of queries through it, and returns it automatically on drop.  The
/// total number of scratches ever created is bounded by the peak number of
/// concurrent holders — observable via [`ScratchPool::created`], which tests
/// use to prove batch N+1 reuses batch N's buffers.
#[derive(Debug, Default)]
pub struct ScratchPool {
    free: Mutex<Vec<QueryScratch>>,
    created: AtomicUsize,
}

impl ScratchPool {
    /// Creates an empty pool; scratches are created lazily on first acquire.
    pub fn new() -> ScratchPool {
        ScratchPool::default()
    }

    /// Checks a scratch out of the pool (creating one only when none is
    /// idle).  The scratch returns to the pool when the guard drops.
    pub fn acquire(&self) -> PooledScratch<'_> {
        let reused = self.free.lock().unwrap_or_else(|e| e.into_inner()).pop();
        let scratch = reused.unwrap_or_else(|| {
            self.created.fetch_add(1, Ordering::Relaxed);
            QueryScratch::new()
        });
        PooledScratch {
            pool: self,
            scratch: Some(scratch),
        }
    }

    /// Total scratches this pool has ever created — equals the peak number
    /// of concurrent holders, regardless of how many acquire/release cycles
    /// have run.
    pub fn created(&self) -> usize {
        self.created.load(Ordering::Relaxed)
    }

    /// Scratches currently idle in the pool.
    pub fn idle(&self) -> usize {
        self.free.lock().unwrap_or_else(|e| e.into_inner()).len()
    }
}

/// A [`QueryScratch`] checked out of a [`ScratchPool`]; derefs to the
/// scratch and returns it to the pool on drop.
#[derive(Debug)]
pub struct PooledScratch<'a> {
    pool: &'a ScratchPool,
    scratch: Option<QueryScratch>,
}

impl std::ops::Deref for PooledScratch<'_> {
    type Target = QueryScratch;
    fn deref(&self) -> &QueryScratch {
        self.scratch.as_ref().expect("scratch present until drop")
    }
}

impl std::ops::DerefMut for PooledScratch<'_> {
    fn deref_mut(&mut self) -> &mut QueryScratch {
        self.scratch.as_mut().expect("scratch present until drop")
    }
}

impl Drop for PooledScratch<'_> {
    fn drop(&mut self) {
        if let Some(scratch) = self.scratch.take() {
            self.pool
                .free
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(scratch);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use l2r_datagen::{
        generate_network, generate_workload, SyntheticNetworkConfig, WorkloadConfig,
    };
    use l2r_region_graph::{bottom_up_clustering, RegionGraph, TrajectoryGraph};
    use l2r_road_network::VertexId;

    fn engine() -> Engine {
        let syn = generate_network(&SyntheticNetworkConfig::tiny());
        let wl = generate_workload(&syn, &WorkloadConfig::tiny(250));
        let tg = TrajectoryGraph::build(&syn.net, &wl.trajectories);
        let clusters = bottom_up_clustering(&tg);
        let mut rg = RegionGraph::build(&syn.net, &clusters, &wl.trajectories, 2);
        crate::apply::apply_preferences_to_b_edges(
            &syn.net,
            &mut rg,
            &std::collections::HashMap::new(),
            2,
        );
        Engine::from_graphs(&syn.net, &rg)
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let registry = ModelRegistry::new();
        assert!(registry.is_empty());
        assert!(registry.get("D1").is_none());
        assert_eq!(registry.generation("D1"), None);

        let served = registry.insert("D1", engine());
        assert_eq!(registry.len(), 1);
        assert_eq!(registry.names(), vec!["D1".to_string()]);
        assert_eq!(registry.generation("D1"), Some(1));
        let got = registry.get("D1").expect("registered");
        assert!(Arc::ptr_eq(&served, &got));

        assert!(registry.remove("D1"));
        assert!(!registry.remove("D1"));
        assert!(registry.get("D1").is_none());
        // The handle we held across the removal still serves.
        let mut scratch = QueryScratch::new();
        let _ = got.route(&mut scratch, VertexId(0), VertexId(1));
    }

    #[test]
    fn insert_replacing_bumps_generation_and_swaps_the_handle() {
        let registry = ModelRegistry::new();
        let first = registry.insert("D1", engine());
        let second = registry.insert("D1", engine());
        assert_eq!(registry.generation("D1"), Some(2));
        let got = registry.get("D1").unwrap();
        assert!(Arc::ptr_eq(&second, &got));
        assert!(!Arc::ptr_eq(&first, &got));
    }

    #[test]
    fn rollback_restores_previous_engine_and_bumps_generation() {
        let registry = ModelRegistry::new();
        let first = registry.insert("D1", engine());
        assert!(!registry.has_previous("D1"));
        assert!(matches!(
            registry.rollback("D1"),
            Err(RegistryError::NoPreviousEngine(_))
        ));

        let second = registry.insert("D1", engine());
        assert!(registry.has_previous("D1"));
        let (restored, generation) = registry.rollback("D1").unwrap();
        assert!(Arc::ptr_eq(&restored, &first));
        assert!(!Arc::ptr_eq(&restored, &second));
        assert_eq!(generation, 3); // insert, swap, rollback
        assert!(Arc::ptr_eq(&registry.get("D1").unwrap(), &first));

        // The retained engine was consumed: no flip-flop.
        assert!(matches!(
            registry.rollback("D1"),
            Err(RegistryError::NoPreviousEngine(_))
        ));
        assert!(matches!(
            registry.rollback("nope"),
            Err(RegistryError::UnknownDataset(_))
        ));
    }

    #[test]
    fn generations_stay_monotonic_across_remove_and_reregister() {
        let registry = ModelRegistry::new();
        registry.insert("D1", engine());
        registry.insert("D1", engine());
        assert_eq!(registry.generation("D1"), Some(2));
        assert!(registry.remove("D1"));
        assert_eq!(registry.generation("D1"), None);
        registry.insert("D1", engine());
        // Never back to 1: a monitoring system watching the generation
        // counter must see it only ever grow.
        assert_eq!(registry.generation("D1"), Some(3));
        assert_eq!(registry.generations(), vec![("D1".to_string(), 3)]);
    }

    #[test]
    fn scratch_pool_reuses_across_sequential_batches() {
        let pool = ScratchPool::new();
        assert_eq!(pool.created(), 0);
        for _ in 0..10 {
            let scratch = pool.acquire();
            // Touch the scratch as a serving worker would.
            let _ = scratch.search_generation();
        }
        // Ten sequential batches, one scratch ever created.
        assert_eq!(pool.created(), 1);
        assert_eq!(pool.idle(), 1);
    }

    #[test]
    fn scratch_pool_grows_to_peak_concurrency_only() {
        let pool = ScratchPool::new();
        {
            let _a = pool.acquire();
            let _b = pool.acquire();
            let _c = pool.acquire();
            assert_eq!(pool.created(), 3);
            assert_eq!(pool.idle(), 0);
        }
        assert_eq!(pool.idle(), 3);
        // Re-acquiring after release creates nothing new.
        let _d = pool.acquire();
        let _e = pool.acquire();
        assert_eq!(pool.created(), 3);
    }
}
