//! The compiled online query engine: [`PreparedRouter`].
//!
//! The free [`crate::router::route`] function recomputes per query what never
//! changes between queries: it scans every attached path of every region edge
//! (cloning, reversing and re-validating candidates), calls `subpath` on
//! every stored inner-region path, allocates fresh transfer-center `Vec`s and
//! stitches segments with an O(n²) `concat` chain.  A [`PreparedRouter`]
//! compiles a `(RoadNetwork, RegionGraph)` pair **once** into
//! query-optimised indexes:
//!
//! * per region edge, the best attached path pre-resolved for *both*
//!   orientations (the reversed orientation already validated), so mapping a
//!   region path back to roads is an array lookup per edge;
//! * per region, an inner-path occurrence index `vertex → (path, positions)`,
//!   so inner-region routing intersects two sorted occurrence lists instead
//!   of scanning every stored path twice;
//! * transfer centers borrowed from the region graph's build-time cache;
//! * a **connector cache**: the fastest-path stubs a Case-1 query needs —
//!   query source → attached-path entry, attached-path exit → query
//!   destination, anchor → next-hop entry — always start or end at a region
//!   vertex, so they are precomputed with one bounded one-to-many search per
//!   region vertex.  Extracting a path from a search that ran longer is
//!   bit-identical to the early-stopped per-query search (settled parents
//!   never change), so cached connectors answer exactly like live Dijkstra —
//!   without running one.
//!
//! Every query runs through a caller-owned [`QueryScratch`] — one reusable
//! road-network `SearchSpace`, one `RegionSearchSpace` and one `PathBuilder`
//! — so the steady-state serving path performs **no heap allocation besides
//! the returned route** (scratch reuse is provable: the search-space
//! generations advance by exactly the number of searches a workload
//! performs).  [`PreparedRouter::route_many`] fans a query batch across
//! `L2R_THREADS` workers (one scratch per worker) with deterministic
//! index-ordered results.
//!
//! Results are **bit-identical** to the free `route` function — enforced by
//! an equivalence test sweeping vertex-pair grids on the D1/D2 datasets.

use std::collections::HashMap;

use l2r_region_graph::{RegionGraph, RegionId};
use l2r_road_network::{CostType, Path, PathBuilder, RoadNetwork, SearchSpace, VertexId};

use crate::pipeline::L2r;
use crate::region_routing::{RegionPath, RegionSearchSpace};
use crate::router::{best_oriented_path, find_anchor_in, RouteResult, RouteStrategy};

/// Best attached path of a region edge, pre-resolved per orientation exactly
/// as the per-query scan would have (most supported path, first wins ties;
/// opposite-orientation paths reversed and kept only when drivable).
#[derive(Debug, Clone, Default)]
struct OrientedPaths {
    /// Best path oriented `a → b`.
    forward: Option<Path>,
    /// Best path oriented `b → a`.
    backward: Option<Path>,
}

/// Positions of one vertex inside one stored inner-region path.
#[derive(Debug, Clone)]
struct VertexOccurrence {
    /// Index into the region's `inner_paths` list.
    path: u32,
    /// Ascending positions of the vertex inside that path.
    positions: Vec<u32>,
}

/// Per-region index: every vertex of every stored inner path, with its
/// occurrence positions, keyed for O(1) lookup.  Occurrence lists are sorted
/// by path index, enabling a linear-merge intersection per query.
#[derive(Debug, Clone, Default)]
struct InnerPathIndex {
    occurrences: HashMap<VertexId, Vec<VertexOccurrence>>,
}

impl InnerPathIndex {
    fn build(paths: &[l2r_region_graph::SupportedPath]) -> InnerPathIndex {
        let mut occurrences: HashMap<VertexId, Vec<VertexOccurrence>> = HashMap::new();
        for (pi, sp) in paths.iter().enumerate() {
            for (pos, v) in sp.path.vertices().iter().enumerate() {
                let occ = occurrences.entry(*v).or_default();
                match occ.last_mut() {
                    Some(last) if last.path == pi as u32 => last.positions.push(pos as u32),
                    _ => occ.push(VertexOccurrence {
                        path: pi as u32,
                        positions: vec![pos as u32],
                    }),
                }
            }
        }
        InnerPathIndex { occurrences }
    }
}

/// Reusable per-query scratch state: one road-network search space, one
/// region-graph search space, a region-path buffer and a path builder.  Keep
/// one per serving thread ([`PreparedRouter::route_many`] does this for you);
/// a `QueryScratch` is intentionally not shared between threads.
#[derive(Debug, Clone, Default)]
pub struct QueryScratch {
    space: SearchSpace,
    region_space: RegionSearchSpace,
    region_path: RegionPath,
    builder: PathBuilder,
}

impl QueryScratch {
    /// Creates an empty scratch; all buffers grow on first use.
    pub fn new() -> QueryScratch {
        QueryScratch::default()
    }

    /// Generation of the road-network search space: advances by exactly one
    /// per road search routed through this scratch.  Used (together with
    /// [`l2r_road_network::searches_performed`]) to prove the serving path
    /// allocates no hidden search state.
    pub fn search_generation(&self) -> u32 {
        self.space.generation()
    }

    /// Generation of the region-graph search space (one per non-trivial
    /// region-path search).
    pub fn region_generation(&self) -> u32 {
        self.region_space.generation()
    }
}

/// A compiled, immutable online query engine over a fitted model's road
/// network and region graph.  Build once with [`PreparedRouter::prepare`]
/// (or [`L2r::prepare`]), then serve queries through [`PreparedRouter::route`]
/// / [`PreparedRouter::route_many`].
///
/// `PreparedRouter` is `Sync`: one instance serves any number of threads,
/// each bringing its own [`QueryScratch`].
#[derive(Debug, Clone)]
pub struct PreparedRouter<'a> {
    net: &'a RoadNetwork,
    rg: &'a RegionGraph,
    /// Indexed by `RegionEdgeId`.
    oriented: Vec<OrientedPaths>,
    /// Indexed by `RegionId`.
    inner: Vec<InnerPathIndex>,
    /// Pre-resolved fastest-path connectors `(from, to)` for every stub a
    /// Case-1 query can need (`None` = proven unreachable).  Misses fall
    /// back to a live scratch search with identical results.
    connectors: HashMap<(VertexId, VertexId), Option<Path>>,
}

impl<'a> PreparedRouter<'a> {
    /// Compiles the routing model into query-optimised indexes.
    pub fn prepare(net: &'a RoadNetwork, rg: &'a RegionGraph) -> PreparedRouter<'a> {
        let oriented: Vec<OrientedPaths> = rg
            .edges()
            .iter()
            .map(|edge| OrientedPaths {
                forward: best_oriented_path(net, rg, edge, edge.a, edge.b),
                backward: best_oriented_path(net, rg, edge, edge.b, edge.a),
            })
            .collect();
        let inner = rg
            .regions()
            .iter()
            .map(|r| InnerPathIndex::build(rg.inner_paths(r.id)))
            .collect();
        let connectors = resolve_connectors(net, rg, &oriented);
        PreparedRouter {
            net,
            rg,
            oriented,
            inner,
            connectors,
        }
    }

    /// Number of precomputed connector entries (diagnostics).
    pub fn num_connectors(&self) -> usize {
        self.connectors.len()
    }

    /// The underlying road network.
    pub fn network(&self) -> &RoadNetwork {
        self.net
    }

    /// The underlying region graph.
    pub fn region_graph(&self) -> &RegionGraph {
        self.rg
    }

    /// Routes from `source` to `destination`, reusing `scratch` across calls.
    ///
    /// Returns the same `RouteResult` (bit-identical path and strategy) as
    /// the free [`crate::router::route`] function, while performing no heap
    /// allocation besides the returned path once the scratch buffers have
    /// warmed up.
    pub fn route(
        &self,
        scratch: &mut QueryScratch,
        source: VertexId,
        destination: VertexId,
    ) -> Option<RouteResult> {
        if source == destination {
            return Some(RouteResult {
                path: Path::single(source),
                strategy: RouteStrategy::FastestFallback,
            });
        }
        let result = match (self.rg.region_of(source), self.rg.region_of(destination)) {
            (Some(rs), Some(rd)) => {
                scratch.builder.reset(source);
                let strategy = self.case1_append(scratch, source, destination, rs, rd)?;
                Some(RouteResult {
                    path: scratch.builder.to_path(),
                    strategy,
                })
            }
            _ => self.route_case2(scratch, source, destination),
        };
        if let Some(r) = &result {
            debug_assert!(r.path.validate(self.net).is_ok());
            debug_assert_eq!(r.path.source(), source);
            debug_assert_eq!(r.path.destination(), destination);
        }
        result
    }

    /// Routes a whole batch in parallel (`L2R_THREADS` workers, one scratch
    /// per worker).  Results come back in query order and are bit-identical
    /// to routing the batch serially through a single scratch.
    pub fn route_many(&self, queries: &[(VertexId, VertexId)]) -> Vec<Option<RouteResult>> {
        l2r_par::par_map_init(queries, QueryScratch::new, |scratch, _, &(s, d)| {
            self.route(scratch, s, d)
        })
    }

    /// Case 1 (both endpoints in regions): appends the route to the scratch
    /// builder (which must currently end at `source`) and returns the
    /// strategy used, or `None` when no route exists.
    fn case1_append(
        &self,
        scratch: &mut QueryScratch,
        source: VertexId,
        destination: VertexId,
        rs: RegionId,
        rd: RegionId,
    ) -> Option<RouteStrategy> {
        if rs == rd {
            if self.append_inner_route(&mut scratch.builder, rs, source, destination) {
                return Some(RouteStrategy::InnerRegionTrajectory);
            }
            return self
                .append_connector(
                    &mut scratch.space,
                    &mut scratch.builder,
                    source,
                    destination,
                )
                .then_some(RouteStrategy::InnerRegionFastest);
        }
        let QueryScratch {
            space,
            region_space,
            region_path,
            builder,
        } = scratch;
        if !region_space.find_region_path_into(self.rg, rs, rd, region_path) {
            return None;
        }
        let checkpoint = builder.checkpoint();
        if self.append_region_road_path(space, builder, region_path, source, destination) {
            return Some(RouteStrategy::RegionPath);
        }
        builder.truncate(checkpoint);
        self.append_connector(space, builder, source, destination)
            .then_some(RouteStrategy::FastestFallback)
    }

    /// Case 2: at least one endpoint is outside every region.
    fn route_case2(
        &self,
        scratch: &mut QueryScratch,
        source: VertexId,
        destination: VertexId,
    ) -> Option<RouteResult> {
        let source_anchor = match self.rg.region_of(source) {
            Some(_) => Some(source),
            None => self.find_anchor(scratch, source, destination),
        };
        let dest_anchor = match self.rg.region_of(destination) {
            Some(_) => Some(destination),
            None => self.find_anchor(scratch, destination, source),
        };
        let (Some(sa), Some(da)) = (source_anchor, dest_anchor) else {
            // One or no candidate regions: plain fastest path (Section VI).
            scratch.builder.reset(source);
            return self
                .append_connector(
                    &mut scratch.space,
                    &mut scratch.builder,
                    source,
                    destination,
                )
                .then(|| RouteResult {
                    path: scratch.builder.to_path(),
                    strategy: RouteStrategy::FastestFallback,
                });
        };
        let rs = self.rg.region_of(sa)?;
        let rd = self.rg.region_of(da)?;
        // Fastest stub from the query source to its anchor, then the Case-1
        // route between the anchors, then the stub to the destination — all
        // appended in place (the historical implementation concatenated
        // three materialised paths; the vertex sequence is identical).
        scratch.builder.reset(source);
        if sa != source
            && !self.append_connector(&mut scratch.space, &mut scratch.builder, source, sa)
        {
            return None;
        }
        self.case1_append(scratch, sa, da, rs, rd)?;
        if da != destination
            && !self.append_connector(&mut scratch.space, &mut scratch.builder, da, destination)
        {
            return None;
        }
        Some(RouteResult {
            path: scratch.builder.to_path(),
            strategy: RouteStrategy::Stitched,
        })
    }

    /// Finds the first region vertex settled by a fastest-path search from
    /// `from` towards `towards` (early-exit settle hook, scratch space).
    fn find_anchor(
        &self,
        scratch: &mut QueryScratch,
        from: VertexId,
        towards: VertexId,
    ) -> Option<VertexId> {
        if from.idx() >= self.net.num_vertices() {
            return None;
        }
        find_anchor_in(&mut scratch.space, self.net, self.rg, from, towards)
    }

    /// Appends the fastest path `from → to` to the builder, consulting the
    /// connector cache first: a hit (including a cached "unreachable") avoids
    /// the Dijkstra search entirely; a miss runs a live search through the
    /// scratch space.  Both produce the exact path the free `fastest_path`
    /// would have.
    fn append_connector(
        &self,
        space: &mut SearchSpace,
        builder: &mut PathBuilder,
        from: VertexId,
        to: VertexId,
    ) -> bool {
        if from == to {
            return true;
        }
        match self.connectors.get(&(from, to)) {
            Some(Some(p)) => {
                builder.append_slice(p.vertices());
                true
            }
            Some(None) => false,
            None => self.append_fastest(space, builder, from, to),
        }
    }

    /// Appends the fastest path `from → to` to the builder (which must end at
    /// `from`).  `from == to` is a no-op success, mirroring the trivial path
    /// the free `fastest_path` returns.
    fn append_fastest(
        &self,
        space: &mut SearchSpace,
        builder: &mut PathBuilder,
        from: VertexId,
        to: VertexId,
    ) -> bool {
        let n = self.net.num_vertices();
        if from.idx() >= n || to.idx() >= n {
            return false;
        }
        if from == to {
            return true;
        }
        space.dijkstra(self.net, from, Some(to), |e| e.cost(CostType::TravelTime));
        builder.append_from_search(space, to)
    }

    /// Inner-region routing via the occurrence index: picks the most
    /// supported stored path containing `source` before `destination` (in
    /// either orientation, forward preferred on equal support — identical
    /// tie-breaking to the historical full scan) and appends the sub-path.
    fn append_inner_route(
        &self,
        builder: &mut PathBuilder,
        region: RegionId,
        source: VertexId,
        destination: VertexId,
    ) -> bool {
        let index = &self.inner[region.idx()];
        let (Some(src_occ), Some(dst_occ)) = (
            index.occurrences.get(&source),
            index.occurrences.get(&destination),
        ) else {
            return false;
        };
        let paths = self.rg.inner_paths(region);
        // (support, path index, forward?, slice start, slice end)
        let mut best: Option<(usize, u32, bool, usize, usize)> = None;
        let (mut i, mut j) = (0usize, 0usize);
        while i < src_occ.len() && j < dst_occ.len() {
            match src_occ[i].path.cmp(&dst_occ[j].path) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    let pi = src_occ[i].path;
                    let support = paths[pi as usize].support;
                    let sp = &src_occ[i].positions;
                    let dp = &dst_occ[j].positions;
                    let beats = |best: &Option<(usize, u32, bool, usize, usize)>,
                                 support: usize| {
                        best.as_ref().map(|(s, ..)| support > *s).unwrap_or(true)
                    };
                    // Forward orientation: the sub-path from the first
                    // occurrence of `source` to the first occurrence of
                    // `destination` at or after it.
                    if beats(&best, support) {
                        let start = sp[0] as usize;
                        let k = dp.partition_point(|&p| (p as usize) < start);
                        if k < dp.len() {
                            let end = dp[k] as usize;
                            if end > start {
                                best = Some((support, pi, true, start, end));
                            }
                        }
                    }
                    // Reversed orientation: on the reversed path this is the
                    // sub-path from the *last* occurrence of `source` back to
                    // the closest preceding occurrence of `destination`.
                    if beats(&best, support) {
                        let last_src = *sp.last().expect("occurrences are non-empty") as usize;
                        let k = dp.partition_point(|&p| (p as usize) <= last_src);
                        if k > 0 {
                            let pd = dp[k - 1] as usize;
                            if pd < last_src {
                                best = Some((support, pi, false, pd, last_src));
                            }
                        }
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        match best {
            Some((_, pi, true, start, end)) => {
                builder.append_slice(&paths[pi as usize].path.vertices()[start..=end]);
                true
            }
            Some((_, pi, false, lo, hi)) => {
                builder.append_reversed_slice(&paths[pi as usize].path.vertices()[lo..=hi]);
                true
            }
            None => false,
        }
    }

    /// Maps the scratch region path back to a road-network path, appending to
    /// the builder (which must end at `source`).  Returns `false` on any gap
    /// the road network cannot bridge; the caller rolls the builder back and
    /// falls back to a fastest path.
    fn append_region_road_path(
        &self,
        space: &mut SearchSpace,
        builder: &mut PathBuilder,
        region_path: &RegionPath,
        source: VertexId,
        destination: VertexId,
    ) -> bool {
        let mut current = source;
        for (i, eid) in region_path.edges.iter().enumerate() {
            let from_region = region_path.regions[i];
            let to_region = region_path.regions[i + 1];
            let edge = self.rg.edge(*eid);
            let oriented = &self.oriented[eid.idx()];
            let candidate = if from_region == edge.a {
                oriented.forward.as_ref()
            } else {
                oriented.backward.as_ref()
            };
            match candidate {
                Some(segment) => {
                    // Connect the current position to the segment start if
                    // needed, then take the pre-resolved attached path.
                    if segment.source() != current
                        && !self.append_connector(space, builder, current, segment.source())
                    {
                        return false;
                    }
                    builder.append_slice(segment.vertices());
                    current = segment.destination();
                }
                None => {
                    // No usable attached path (e.g. a B-edge whose apply step
                    // found nothing): route to a transfer center of the next
                    // region directly.
                    let Some(target) = self
                        .rg
                        .transfer_centers_or_default(to_region)
                        .first()
                        .copied()
                    else {
                        return false;
                    };
                    if !self.append_connector(space, builder, current, target) {
                        return false;
                    }
                    current = target;
                }
            }
        }
        if current != destination && !self.append_connector(space, builder, current, destination) {
            return false;
        }
        true
    }
}

impl L2r {
    /// Compiles this fitted model into a [`PreparedRouter`] borrowing its
    /// road network and region graph.
    pub fn prepare(&self) -> PreparedRouter<'_> {
        PreparedRouter::prepare(self.network(), self.region_graph())
    }
}

/// Precomputes the fastest-path connectors the Case-1 serving path can need.
///
/// Every such stub starts or ends at a region vertex:
///
/// * **head** — query source (∈ `r`) → entry vertex of the attached path an
///   adjacent edge uses out of `r` (also ∈ `r`), or the fallback transfer
///   center of the neighbouring region when the orientation has no path;
/// * **tail / next hop** — exit vertex of an attached path into `r` (or a
///   fallback center of `r`) → any vertex of `r` (the query destination, or
///   the entry of the next leg).
///
/// One `dijkstra_to_many` per source covers all of its targets; extracting
/// `path_to(t)` from that search is bit-identical to the early-stopped
/// per-query search the free router runs, because a settled vertex's parent
/// never changes after it settles.  Cache size and prepare cost stay linear
/// in `Σ |region| × (adjacent edges)` — no all-pairs blowup.
fn resolve_connectors(
    net: &RoadNetwork,
    rg: &RegionGraph,
    oriented: &[OrientedPaths],
) -> HashMap<(VertexId, VertexId), Option<Path>> {
    let nr = rg.num_regions();
    // Per region: the connector targets its vertices may route *out* to.
    let mut out_targets: Vec<Vec<VertexId>> = vec![Vec::new(); nr];
    // Per region: the anchors where legs *enter* the region (tail sources).
    let mut entry_anchors: Vec<Vec<VertexId>> = vec![Vec::new(); nr];
    for edge in rg.edges() {
        let o = &oriented[edge.id.idx()];
        let orientations = [
            (edge.a, edge.b, o.forward.as_ref()),
            (edge.b, edge.a, o.backward.as_ref()),
        ];
        for (from, to, seg) in orientations {
            match seg {
                Some(p) => {
                    out_targets[from.idx()].push(p.source());
                    entry_anchors[to.idx()].push(p.destination());
                }
                None => {
                    // The stitching falls back to the first transfer center
                    // of the next region for orientations without a path.
                    if let Some(&t) = rg.transfer_centers_or_default(to).first() {
                        out_targets[from.idx()].push(t);
                        entry_anchors[to.idx()].push(t);
                    }
                }
            }
        }
    }

    let n = net.num_vertices();
    let mut connectors: HashMap<(VertexId, VertexId), Option<Path>> = HashMap::new();
    let mut space = SearchSpace::new();
    for region in rg.regions() {
        let r = region.id.idx();
        out_targets[r].sort_unstable();
        out_targets[r].dedup();
        entry_anchors[r].sort_unstable();
        entry_anchors[r].dedup();
        // Head connectors: every region vertex reaches every out-target.
        if !out_targets[r].is_empty() {
            for &v in &region.vertices {
                if v.idx() >= n {
                    continue;
                }
                space.dijkstra_to_many(net, v, &out_targets[r], |e| e.cost(CostType::TravelTime));
                for &t in &out_targets[r] {
                    if t != v {
                        connectors.insert((v, t), space.path_to(t));
                    }
                }
            }
        }
        // Tail / next-hop connectors: every entry anchor reaches every
        // region vertex.
        for &a in &entry_anchors[r] {
            if a.idx() >= n {
                continue;
            }
            space.dijkstra_to_many(net, a, &region.vertices, |e| e.cost(CostType::TravelTime));
            for &t in &region.vertices {
                if t != a {
                    connectors.entry((a, t)).or_insert_with(|| space.path_to(t));
                }
            }
        }
    }
    connectors
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apply::apply_preferences_to_b_edges;
    use crate::router::route;
    use l2r_datagen::{
        generate_network, generate_workload, SyntheticNetworkConfig, WorkloadConfig,
    };
    use l2r_region_graph::{bottom_up_clustering, TrajectoryGraph};

    fn build() -> (RoadNetwork, RegionGraph) {
        let syn = generate_network(&SyntheticNetworkConfig::tiny());
        let wl = generate_workload(&syn, &WorkloadConfig::tiny(250));
        let tg = TrajectoryGraph::build(&syn.net, &wl.trajectories);
        let clusters = bottom_up_clustering(&tg);
        let mut rg = RegionGraph::build(&syn.net, &clusters, &wl.trajectories, 2);
        apply_preferences_to_b_edges(&syn.net, &mut rg, &std::collections::HashMap::new(), 2);
        (syn.net.clone(), rg)
    }

    #[test]
    fn prepared_route_matches_free_route_on_a_vertex_grid() {
        let (net, rg) = build();
        let prepared = PreparedRouter::prepare(&net, &rg);
        let mut scratch = QueryScratch::new();
        let n = net.num_vertices() as u32;
        let mut compared = 0usize;
        for i in (0..n).step_by(5) {
            for j in (1..n).step_by(11) {
                let (s, d) = (VertexId(i), VertexId(j));
                let free = route(&net, &rg, s, d);
                let fast = prepared.route(&mut scratch, s, d);
                assert_eq!(free, fast, "query {s:?} -> {d:?}");
                compared += 1;
            }
        }
        assert!(compared > 50, "the sweep should cover many pairs");
    }

    #[test]
    fn route_many_matches_serial_routing() {
        let (net, rg) = build();
        let prepared = PreparedRouter::prepare(&net, &rg);
        let n = net.num_vertices() as u32;
        let queries: Vec<(VertexId, VertexId)> = (0..n)
            .step_by(3)
            .map(|i| (VertexId(i), VertexId((i * 7 + 13) % n)))
            .collect();
        let batch = prepared.route_many(&queries);
        let mut scratch = QueryScratch::new();
        for (q, b) in queries.iter().zip(&batch) {
            assert_eq!(&prepared.route(&mut scratch, q.0, q.1), b);
        }
    }

    #[test]
    fn same_vertex_query_is_trivial() {
        let (net, rg) = build();
        let prepared = PreparedRouter::prepare(&net, &rg);
        let mut scratch = QueryScratch::new();
        let r = prepared
            .route(&mut scratch, VertexId(0), VertexId(0))
            .unwrap();
        assert!(r.path.is_trivial());
        assert_eq!(r.strategy, RouteStrategy::FastestFallback);
    }

    #[test]
    fn out_of_range_endpoints_are_rejected_like_the_free_router() {
        let (net, rg) = build();
        let prepared = PreparedRouter::prepare(&net, &rg);
        let mut scratch = QueryScratch::new();
        let big = VertexId(net.num_vertices() as u32 + 17);
        assert_eq!(
            prepared.route(&mut scratch, VertexId(0), big),
            route(&net, &rg, VertexId(0), big)
        );
        assert_eq!(
            prepared.route(&mut scratch, big, VertexId(0)),
            route(&net, &rg, big, VertexId(0))
        );
    }

    #[test]
    fn cached_connectors_match_live_fastest_paths() {
        let (net, rg) = build();
        let prepared = PreparedRouter::prepare(&net, &rg);
        assert!(prepared.num_connectors() > 0);
        for ((from, to), cached) in prepared.connectors.iter().take(500) {
            let live = l2r_road_network::fastest_path(&net, *from, *to);
            assert_eq!(cached, &live, "connector {from:?} -> {to:?}");
        }
    }

    #[test]
    fn oriented_paths_cover_both_directions_of_t_edges() {
        let (net, rg) = build();
        let prepared = PreparedRouter::prepare(&net, &rg);
        // Every edge with attached paths resolves at least one orientation.
        for e in rg.edges() {
            if e.has_paths() {
                let o = &prepared.oriented[e.id.idx()];
                assert!(
                    o.forward.is_some() || o.backward.is_some(),
                    "edge {:?} has paths but no oriented resolution",
                    e.id
                );
                if let Some(p) = &o.forward {
                    assert_eq!(rg.region_of(p.source()), Some(e.a));
                    assert_eq!(rg.region_of(p.destination()), Some(e.b));
                    assert!(p.validate(&net).is_ok());
                }
                if let Some(p) = &o.backward {
                    assert_eq!(rg.region_of(p.source()), Some(e.b));
                    assert_eq!(rg.region_of(p.destination()), Some(e.a));
                    assert!(p.validate(&net).is_ok());
                }
            }
        }
    }
}
