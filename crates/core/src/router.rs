//! The unified learn-to-route routing algorithm (Section VI of the paper).
//!
//! Given an arbitrary `(source, destination)` pair in the road network the
//! router distinguishes two cases:
//!
//! * **Case 1** — both endpoints lie in regions.  Inside one region the
//!   most-travelled inner-region path is returned (fastest path as a
//!   fallback); across regions a region path is found on the region graph and
//!   mapped back to a road-network path by stitching the paths attached to
//!   its region edges.
//! * **Case 2** — at least one endpoint lies outside every region.  A fastest
//!   path search locates candidate regions near the endpoints; the final path
//!   is `fastest(source → R_s) + Case-1 path + fastest(R_d → destination)`.
//!   When no candidate region exists the fastest path is returned.

use l2r_region_graph::{RegionGraph, RegionId};
use l2r_road_network::{fastest_path, CostType, Path, RoadNetwork, SearchSpace, VertexId};

use crate::region_routing::{find_region_path, RegionPath};

/// Which strategy produced a route (useful for the per-category evaluation
/// of Figures 10–12).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteStrategy {
    /// Both endpoints in the same region, an observed inner path was reused.
    InnerRegionTrajectory,
    /// Both endpoints in the same region, fastest-path fallback.
    InnerRegionFastest,
    /// Endpoints in different regions, routed over the region graph.
    RegionPath,
    /// At least one endpoint outside all regions; stitched with fastest-path
    /// stubs to the candidate regions.
    Stitched,
    /// No usable region information; plain fastest path.
    FastestFallback,
}

impl RouteStrategy {
    /// All strategies in report order.
    pub const ALL: [RouteStrategy; 5] = [
        RouteStrategy::InnerRegionTrajectory,
        RouteStrategy::InnerRegionFastest,
        RouteStrategy::RegionPath,
        RouteStrategy::Stitched,
        RouteStrategy::FastestFallback,
    ];

    /// Stable display label (used by the serving benchmark report).
    pub fn label(self) -> &'static str {
        match self {
            RouteStrategy::InnerRegionTrajectory => "InnerRegionTrajectory",
            RouteStrategy::InnerRegionFastest => "InnerRegionFastest",
            RouteStrategy::RegionPath => "RegionPath",
            RouteStrategy::Stitched => "Stitched",
            RouteStrategy::FastestFallback => "FastestFallback",
        }
    }
}

/// A route produced by L2R.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteResult {
    /// The recommended road-network path.
    pub path: Path,
    /// How the path was produced.
    pub strategy: RouteStrategy,
}

/// Endpoint categories of a query with respect to the region graph, used to
/// bucket evaluation results (Section VII-A: InRegion / InOutRegion /
/// OutRegion).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegionCoverage {
    /// Both endpoints belong to regions.
    InRegion,
    /// Exactly one endpoint belongs to a region.
    InOutRegion,
    /// Neither endpoint belongs to a region.
    OutRegion,
}

/// Classifies a query's endpoints against the region graph.
pub fn region_coverage(
    rg: &RegionGraph,
    source: VertexId,
    destination: VertexId,
) -> RegionCoverage {
    match (rg.region_of(source), rg.region_of(destination)) {
        (Some(_), Some(_)) => RegionCoverage::InRegion,
        (None, None) => RegionCoverage::OutRegion,
        _ => RegionCoverage::InOutRegion,
    }
}

/// Routes from `source` to `destination` using the region graph.
///
/// Returns `None` only when the destination is unreachable in the road
/// network.
pub fn route(
    net: &RoadNetwork,
    rg: &RegionGraph,
    source: VertexId,
    destination: VertexId,
) -> Option<RouteResult> {
    if source == destination {
        return Some(RouteResult {
            path: Path::single(source),
            strategy: RouteStrategy::FastestFallback,
        });
    }
    match (rg.region_of(source), rg.region_of(destination)) {
        (Some(rs), Some(rd)) => route_case1(net, rg, source, destination, rs, rd),
        _ => route_case2(net, rg, source, destination),
    }
}

/// Case 1: both endpoints belong to regions.
fn route_case1(
    net: &RoadNetwork,
    rg: &RegionGraph,
    source: VertexId,
    destination: VertexId,
    rs: RegionId,
    rd: RegionId,
) -> Option<RouteResult> {
    if rs == rd {
        if let Some(path) = inner_region_route(rg, rs, source, destination) {
            return Some(RouteResult {
                path,
                strategy: RouteStrategy::InnerRegionTrajectory,
            });
        }
        return fastest_path(net, source, destination).map(|path| RouteResult {
            path,
            strategy: RouteStrategy::InnerRegionFastest,
        });
    }
    let region_path = find_region_path(rg, rs, rd)?;
    match region_path_to_road_path(net, rg, &region_path, source, destination) {
        Some(path) => Some(RouteResult {
            path,
            strategy: RouteStrategy::RegionPath,
        }),
        None => fastest_path(net, source, destination).map(|path| RouteResult {
            path,
            strategy: RouteStrategy::FastestFallback,
        }),
    }
}

/// Case 2: at least one endpoint is outside every region.
fn route_case2(
    net: &RoadNetwork,
    rg: &RegionGraph,
    source: VertexId,
    destination: VertexId,
) -> Option<RouteResult> {
    // Candidate region near the source: the first settled vertex (by a
    // fastest-path search towards the destination) that lies in a region.
    let source_anchor = match rg.region_of(source) {
        Some(_) => Some(source),
        None => find_anchor(net, rg, source, destination),
    };
    let dest_anchor = match rg.region_of(destination) {
        Some(_) => Some(destination),
        None => find_anchor(net, rg, destination, source),
    };
    let (Some(sa), Some(da)) = (source_anchor, dest_anchor) else {
        // One or no candidate regions: plain fastest path (Section VI).
        return fastest_path(net, source, destination).map(|path| RouteResult {
            path,
            strategy: RouteStrategy::FastestFallback,
        });
    };
    let rs = rg.region_of(sa)?;
    let rd = rg.region_of(da)?;
    let middle = route_case1(net, rg, sa, da, rs, rd)?;
    // Fastest stubs from the query endpoints to the anchors.
    let mut full = if sa == source {
        Path::single(source)
    } else {
        fastest_path(net, source, sa)?
    };
    full = full.concat(&middle.path);
    if da != destination {
        full = full.concat(&fastest_path(net, da, destination)?);
    }
    Some(RouteResult {
        path: full,
        strategy: RouteStrategy::Stitched,
    })
}

/// Finds the first region vertex settled by a fastest-path search from
/// `from` towards `towards`.
///
/// Runs through the calling thread's shared search space with an early-exit
/// settle hook: the search aborts the moment the first in-region vertex
/// settles instead of settling everything up to `towards` and materialising
/// the full settle order.  (The search still stops once `towards` settles,
/// so an anchor is only reported when a region vertex settles no later than
/// the target — exactly the historical scan-the-settle-order semantics.)
fn find_anchor(
    net: &RoadNetwork,
    rg: &RegionGraph,
    from: VertexId,
    towards: VertexId,
) -> Option<VertexId> {
    if from.idx() >= net.num_vertices() {
        return None;
    }
    SearchSpace::with_thread_local(|space| find_anchor_in(space, net, rg, from, towards))
}

/// [`find_anchor`] on an explicit search space (the prepared serving path
/// passes its per-query scratch).
pub(crate) fn find_anchor_in(
    space: &mut SearchSpace,
    net: &RoadNetwork,
    rg: &RegionGraph,
    from: VertexId,
    towards: VertexId,
) -> Option<VertexId> {
    let mut anchor = None;
    space.dijkstra_with_settle(
        net,
        from,
        Some(towards),
        |e| e.cost(CostType::TravelTime),
        |v| {
            if rg.region_of(v).is_some() {
                anchor = Some(v);
                true
            } else {
                false
            }
        },
    );
    anchor
}

/// Routing inside a single region: reuse the most supported inner-region
/// path that visits `source` before `destination`.
fn inner_region_route(
    rg: &RegionGraph,
    region: RegionId,
    source: VertexId,
    destination: VertexId,
) -> Option<Path> {
    let mut best: Option<(Path, usize)> = None;
    for sp in rg.inner_paths(region) {
        if let Some(sub) = sp.path.subpath(source, destination) {
            if !sub.is_trivial() && best.as_ref().map(|(_, s)| sp.support > *s).unwrap_or(true) {
                best = Some((sub, sp.support));
            }
        }
        // Also consider the reverse orientation of the stored path.
        let rev = sp.path.reversed();
        if let Some(sub) = rev.subpath(source, destination) {
            if !sub.is_trivial() && best.as_ref().map(|(_, s)| sp.support > *s).unwrap_or(true) {
                best = Some((sub, sp.support));
            }
        }
    }
    best.map(|(p, _)| p)
}

/// Maps a region path back to a road-network path by stitching the paths
/// attached to its region edges, connecting gaps with fastest paths.
fn region_path_to_road_path(
    net: &RoadNetwork,
    rg: &RegionGraph,
    region_path: &RegionPath,
    source: VertexId,
    destination: VertexId,
) -> Option<Path> {
    let mut acc = Path::single(source);
    let mut current = source;
    for (i, eid) in region_path.edges.iter().enumerate() {
        let from_region = region_path.regions[i];
        let to_region = region_path.regions[i + 1];
        let edge = rg.edge(*eid);

        let segment = match best_oriented_path(net, rg, edge, from_region, to_region) {
            Some(p) => p,
            None => {
                // No usable attached path (e.g. a B-edge whose apply step
                // found nothing): route to a transfer center of the next
                // region directly.
                let target = rg.transfer_centers_or_default(to_region).first().copied()?;
                fastest_path(net, current, target)?
            }
        };

        // Connect the current position to the segment start if needed.
        if segment.source() != current {
            let connector = fastest_path(net, current, segment.source())?;
            acc = acc.concat(&connector);
        }
        current = segment.destination();
        acc = acc.concat(&segment);
    }
    if current != destination {
        let tail = fastest_path(net, current, destination)?;
        acc = acc.concat(&tail);
    }
    // The stitching guarantees connectivity by construction; validate in
    // debug builds to catch regressions.
    debug_assert!(acc.validate(net).is_ok());
    Some(acc)
}

/// Picks the most supported attached path of `edge` oriented `from → to`
/// (first wins ties; opposite-orientation paths are reversed and kept only
/// when the reverse is drivable).
///
/// Shared between the per-query scan above and the compile-time resolution
/// of `Engine` — one implementation, so the bit-identical guarantee
/// between the two routers cannot drift.
pub(crate) fn best_oriented_path(
    net: &RoadNetwork,
    rg: &RegionGraph,
    edge: &l2r_region_graph::RegionEdge,
    from: RegionId,
    to: RegionId,
) -> Option<Path> {
    let mut candidate: Option<(Path, usize)> = None;
    for sp in &edge.paths {
        let src = rg.region_of(sp.path.source());
        let dst = rg.region_of(sp.path.destination());
        if src == Some(from) && dst == Some(to) {
            if candidate
                .as_ref()
                .map(|(_, s)| sp.support > *s)
                .unwrap_or(true)
            {
                candidate = Some((sp.path.clone(), sp.support));
            }
        } else if src == Some(to) && dst == Some(from) {
            let rev = sp.path.reversed();
            if rev.validate(net).is_ok()
                && candidate
                    .as_ref()
                    .map(|(_, s)| sp.support > *s)
                    .unwrap_or(true)
            {
                candidate = Some((rev, sp.support));
            }
        }
    }
    candidate.map(|(p, _)| p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apply::apply_preferences_to_b_edges;
    use l2r_datagen::{
        generate_network, generate_workload, SyntheticNetworkConfig, WorkloadConfig,
    };
    use l2r_region_graph::{bottom_up_clustering, TrajectoryGraph};
    use std::collections::HashMap;

    fn build() -> (l2r_road_network::RoadNetwork, RegionGraph) {
        let syn = generate_network(&SyntheticNetworkConfig::tiny());
        let wl = generate_workload(&syn, &WorkloadConfig::tiny(250));
        let tg = TrajectoryGraph::build(&syn.net, &wl.trajectories);
        let clusters = bottom_up_clustering(&tg);
        let mut rg = RegionGraph::build(&syn.net, &clusters, &wl.trajectories, 2);
        // Give B-edges fastest-path fallbacks so the router has full coverage.
        apply_preferences_to_b_edges(&syn.net, &mut rg, &HashMap::new(), 2);
        (syn.net.clone(), rg)
    }

    #[test]
    fn routes_between_all_coverage_categories() {
        let (net, rg) = build();
        let mut seen = std::collections::HashSet::new();
        // Probe a spread of vertex pairs to hit all categories.
        let n = net.num_vertices() as u32;
        for i in (0..n).step_by(7) {
            for j in (1..n).step_by(13) {
                if i == j {
                    continue;
                }
                let (s, d) = (VertexId(i), VertexId(j));
                let result = route(&net, &rg, s, d);
                if let Some(r) = result {
                    assert!(r.path.validate(&net).is_ok());
                    assert_eq!(r.path.source(), s);
                    assert_eq!(r.path.destination(), d);
                    seen.insert(region_coverage(&rg, s, d));
                }
            }
        }
        assert!(
            seen.contains(&RegionCoverage::InRegion),
            "should exercise InRegion queries"
        );
    }

    #[test]
    fn same_vertex_query_is_trivial() {
        let (net, rg) = build();
        let r = route(&net, &rg, VertexId(0), VertexId(0)).unwrap();
        assert!(r.path.is_trivial());
    }

    #[test]
    fn inner_region_queries_reuse_trajectories_when_possible() {
        let (net, rg) = build();
        // Find a region with a non-trivial inner path and query along it.
        let mut exercised = false;
        for region in rg.regions() {
            for sp in rg.inner_paths(region.id) {
                if sp.path.len() >= 3 {
                    let s = sp.path.vertices()[0];
                    let d = *sp.path.vertices().last().unwrap();
                    if s == d {
                        continue;
                    }
                    let r = route(&net, &rg, s, d).unwrap();
                    assert!(r.path.validate(&net).is_ok());
                    if r.strategy == RouteStrategy::InnerRegionTrajectory {
                        exercised = true;
                    }
                }
            }
            if exercised {
                break;
            }
        }
        assert!(
            exercised,
            "at least one query should reuse an inner-region trajectory"
        );
    }

    #[test]
    fn cross_region_queries_use_the_region_graph() {
        let (net, rg) = build();
        // Take transfer centers of two different regions as endpoints.
        let regions = rg.regions();
        let a = rg.transfer_centers_or_default(regions.first().unwrap().id)[0];
        let b = rg.transfer_centers_or_default(regions.last().unwrap().id)[0];
        if a != b {
            let r = route(&net, &rg, a, b).unwrap();
            assert!(matches!(
                r.strategy,
                RouteStrategy::RegionPath
                    | RouteStrategy::InnerRegionTrajectory
                    | RouteStrategy::InnerRegionFastest
                    | RouteStrategy::FastestFallback
            ));
            assert_eq!(r.path.source(), a);
            assert_eq!(r.path.destination(), b);
        }
    }

    #[test]
    fn coverage_classification() {
        let (_, rg) = build();
        // Find one vertex in a region and one outside.
        let inside = rg.regions()[0].vertices[0];
        let mut outside = None;
        for v in 0..10_000u32 {
            if rg.region_of(VertexId(v)).is_none() {
                outside = Some(VertexId(v));
                break;
            }
        }
        assert_eq!(
            region_coverage(&rg, inside, inside),
            RegionCoverage::InRegion
        );
        if let Some(out) = outside {
            assert_eq!(
                region_coverage(&rg, inside, out),
                RegionCoverage::InOutRegion
            );
            assert_eq!(region_coverage(&rg, out, out), RegionCoverage::OutRegion);
        }
    }
}
