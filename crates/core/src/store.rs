//! Crash-safe, generation-numbered model store.
//!
//! A [`ModelStore`] is a directory of snapshot **generations**
//! (`gen-00000001.l2r`, `gen-00000002.l2r`, …) plus a checksummed
//! `MANIFEST` naming the **active** generation and the length + CRC of
//! every retained file.  It is the durable hand-off point between the
//! offline fit and the online serving stack: `fit` publishes into the
//! store, the server reloads from it (by generation or `latest`), and a
//! crash at *any* point of a publish leaves the store serving the newest
//! **durable** generation — never a torn file.
//!
//! ## Publish discipline
//!
//! Every publish is a fixed sequence of filesystem operations:
//!
//! ```text
//! op 0  write   gen-N.l2r.tmp      (full snapshot bytes)
//! op 1  fsync   gen-N.l2r.tmp
//! op 2  rename  gen-N.l2r.tmp  → gen-N.l2r
//! op 3  fsync   store directory
//! op 4  write   MANIFEST.tmp       (new manifest: active = N)
//! op 5  fsync   MANIFEST.tmp
//! op 6  rename  MANIFEST.tmp   → MANIFEST        ← the commit point
//! op 7  fsync   store directory
//! op 8+ unlink  generations dropped by retention (best-effort)
//! ```
//!
//! A generation is **durable** once op 6 completes; before that, recovery
//! serves the previous manifest.  [`ModelStore::open`] recovers from a
//! crash between any two ops: orphaned `.tmp` files are removed, a torn
//! or missing `MANIFEST` falls back to a directory scan that adopts the
//! newest generation file passing [`crate::snapshot::verify_frame`] and
//! durably rewrites the manifest, and a manifest whose active generation
//! file fails its length/CRC check (bit rot) falls back the same way.
//!
//! ## Fault injection
//!
//! All filesystem access goes through the [`StoreFs`] trait.  Production
//! code uses [`RealFs`]; the crash-matrix suite
//! (`crates/core/tests/store_crash_matrix.rs`) and the `lifecycle` bench
//! section install a [`FaultFs`] — the filesystem-level sibling of the
//! serve crate's seeded `FaultPlan` — which injects one deterministic
//! fault (crash, short write, bit flip, or `ENOSPC`) at a chosen
//! mutating-operation index and counts every operation so the matrix can
//! enumerate all crash points exactly.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use l2r_road_network::{CodecError, Reader, Writer};

use crate::pipeline::L2r;
use crate::snapshot::{
    crc32, decode_snapshot, encode_snapshot, verify_frame, Snapshot, SnapshotError,
    MAX_DATASET_NAME,
};

/// Magic bytes identifying a store `MANIFEST` file.
pub const MANIFEST_MAGIC: [u8; 8] = *b"L2RMANI\0";

/// Current manifest format version.
pub const MANIFEST_VERSION: u8 = 1;

/// File name of the manifest inside a store directory.
pub const MANIFEST_FILE: &str = "MANIFEST";

/// Size of the fixed manifest header preceding the payload.
const MANIFEST_HEADER_LEN: usize = 8 + 1 + 8 + 4;

/// Most generations a manifest may list (a plausibility bound, far above
/// any real retention setting).
pub const MAX_MANIFEST_ENTRIES: usize = 65_536;

/// Operation index of the snapshot-file write within a publish.
pub const PUBLISH_OP_WRITE_SNAPSHOT: u64 = 0;

/// Operation index of the manifest write within a publish.
pub const PUBLISH_OP_WRITE_MANIFEST: u64 = 4;

/// Operation index of the manifest rename — the commit point — within a
/// publish.  A crash strictly before this op leaves the previous
/// generation active; a crash after it leaves the new one active.
pub const PUBLISH_OP_COMMIT: u64 = 6;

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// An error raised while decoding a store `MANIFEST`.  Mirrors
/// [`SnapshotError`] variant-for-variant so the robustness sweep in
/// `tests/store_robustness.rs` can pin the same malformed-file surface.
#[derive(Debug)]
pub enum ManifestError {
    /// The file does not start with [`MANIFEST_MAGIC`].
    BadMagic,
    /// The file was written by a newer (or unknown) format version.
    UnsupportedVersion(u8),
    /// The file has the manifest magic but ends inside the fixed header.
    TruncatedHeader {
        /// Total file length in bytes (less than the header size).
        len: u64,
    },
    /// The file is shorter than its header claims.
    Truncated {
        /// Bytes the header promised.
        expected: u64,
        /// Bytes actually present after the header.
        actual: u64,
    },
    /// The file is longer than its header claims.
    TrailingBytes(u64),
    /// The payload checksum does not match the header.
    ChecksumMismatch {
        /// Checksum stored in the header.
        expected: u32,
        /// Checksum of the payload as read.
        actual: u32,
    },
    /// The payload failed structural validation.
    Codec(CodecError),
}

impl std::fmt::Display for ManifestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ManifestError::BadMagic => write!(f, "not a store manifest (bad magic)"),
            ManifestError::UnsupportedVersion(v) => write!(
                f,
                "unsupported manifest format version {v} (this build reads up to {MANIFEST_VERSION})"
            ),
            ManifestError::TruncatedHeader { len } => write!(
                f,
                "manifest truncated inside the {MANIFEST_HEADER_LEN}-byte header ({len} bytes total)"
            ),
            ManifestError::Truncated { expected, actual } => {
                write!(f, "manifest truncated: payload {actual} of {expected} bytes")
            }
            ManifestError::TrailingBytes(n) => {
                write!(f, "manifest has {n} trailing bytes after the payload")
            }
            ManifestError::ChecksumMismatch { expected, actual } => write!(
                f,
                "manifest checksum mismatch: header {expected:#010x}, payload {actual:#010x}"
            ),
            ManifestError::Codec(e) => write!(f, "manifest payload invalid: {e}"),
        }
    }
}

impl std::error::Error for ManifestError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ManifestError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CodecError> for ManifestError {
    fn from(e: CodecError) -> Self {
        ManifestError::Codec(e)
    }
}

/// An error raised by [`ModelStore`] operations.
#[derive(Debug)]
pub enum StoreError {
    /// A filesystem operation failed; carries the offending path.
    Io {
        /// The file or directory the operation failed on.
        path: PathBuf,
        /// The underlying I/O error.
        source: io::Error,
    },
    /// The `MANIFEST` failed to decode (only surfaced when recovery has
    /// nothing to fall back to; a torn manifest with surviving generation
    /// files recovers silently).
    Manifest(ManifestError),
    /// A snapshot file failed to decode.
    Snapshot(SnapshotError),
    /// The directory is not a model store: no manifest and no generation
    /// files to recover from.
    NotAStore(PathBuf),
    /// The requested generation is not in the store.
    UnknownGeneration(u64),
    /// A generation listed in the manifest fails its length/CRC check
    /// (bit rot after commit).
    CorruptGeneration {
        /// The damaged generation.
        generation: u64,
    },
    /// The store has no published generation to serve.
    NoDurableGeneration,
    /// The store was created for a different dataset.
    DatasetMismatch {
        /// Dataset stamped in the store's manifest.
        store: String,
        /// Dataset the caller asked for.
        requested: String,
    },
}

impl StoreError {
    fn io(path: &Path, source: io::Error) -> StoreError {
        StoreError::Io {
            path: path.to_path_buf(),
            source,
        }
    }
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io { path, source } => {
                write!(f, "store I/O error at `{}`: {source}", path.display())
            }
            StoreError::Manifest(e) => write!(f, "store manifest unreadable: {e}"),
            StoreError::Snapshot(e) => write!(f, "store snapshot unreadable: {e}"),
            StoreError::NotAStore(dir) => {
                write!(f, "`{}` is not a model store", dir.display())
            }
            StoreError::UnknownGeneration(g) => write!(f, "store has no generation {g}"),
            StoreError::CorruptGeneration { generation } => {
                write!(
                    f,
                    "store generation {generation} is corrupt (checksum mismatch)"
                )
            }
            StoreError::NoDurableGeneration => {
                write!(f, "store has no durable generation to serve")
            }
            StoreError::DatasetMismatch { store, requested } => {
                write!(f, "store holds dataset `{store}`, not `{requested}`")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            StoreError::Manifest(e) => Some(e),
            StoreError::Snapshot(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SnapshotError> for StoreError {
    fn from(e: SnapshotError) -> Self {
        StoreError::Snapshot(e)
    }
}

// ---------------------------------------------------------------------------
// Manifest codec
// ---------------------------------------------------------------------------

/// One retained generation as listed by the manifest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ManifestEntry {
    /// Generation number (monotonic, starting at 1).
    pub generation: u64,
    /// Exact snapshot file length in bytes.
    pub len: u64,
    /// CRC-32 (IEEE) of the full snapshot file.
    pub crc: u32,
}

/// The decoded contents of a store `MANIFEST`: which dataset the store
/// holds, which generation is active, and the integrity data of every
/// retained generation file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Dataset every generation in this store was fitted on.
    pub dataset: String,
    /// The active generation (0 = none published yet).
    pub active: u64,
    /// Retained generations, ascending.
    pub entries: Vec<ManifestEntry>,
}

/// Serialises a manifest into its framed byte stream (same framing
/// discipline as snapshots: magic, version, payload length, CRC-32).
pub fn encode_manifest(m: &Manifest) -> Vec<u8> {
    let mut w = Writer::new();
    w.str(&m.dataset);
    w.u64(m.active);
    w.length(m.entries.len());
    for e in &m.entries {
        w.u64(e.generation);
        w.u64(e.len);
        w.u32(e.crc);
    }
    let payload = w.into_vec();
    let mut out = Vec::with_capacity(MANIFEST_HEADER_LEN + payload.len());
    out.extend_from_slice(&MANIFEST_MAGIC);
    out.push(MANIFEST_VERSION);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Decodes a framed manifest, validating magic, version, length, checksum
/// and structural invariants (entries strictly ascending, active listed).
pub fn decode_manifest(bytes: &[u8]) -> Result<Manifest, ManifestError> {
    if bytes.len() < MANIFEST_MAGIC.len() || bytes[..MANIFEST_MAGIC.len()] != MANIFEST_MAGIC {
        return Err(ManifestError::BadMagic);
    }
    if bytes.len() < MANIFEST_HEADER_LEN {
        return Err(ManifestError::TruncatedHeader {
            len: bytes.len() as u64,
        });
    }
    let version = bytes[8];
    if version != MANIFEST_VERSION {
        return Err(ManifestError::UnsupportedVersion(version));
    }
    let payload_len = u64::from_le_bytes(bytes[9..17].try_into().expect("8-byte slice"));
    let stored_crc = u32::from_le_bytes(bytes[17..21].try_into().expect("4-byte slice"));
    let payload = &bytes[MANIFEST_HEADER_LEN..];
    if (payload.len() as u64) < payload_len {
        return Err(ManifestError::Truncated {
            expected: payload_len,
            actual: payload.len() as u64,
        });
    }
    if (payload.len() as u64) > payload_len {
        return Err(ManifestError::TrailingBytes(
            payload.len() as u64 - payload_len,
        ));
    }
    let actual_crc = crc32(payload);
    if actual_crc != stored_crc {
        return Err(ManifestError::ChecksumMismatch {
            expected: stored_crc,
            actual: actual_crc,
        });
    }

    let mut r = Reader::new(payload);
    let dataset = r.str("manifest dataset", MAX_DATASET_NAME)?.to_string();
    let active = r.u64("manifest active generation")?;
    let n = r.length("manifest entry count", 20)?;
    if n > MAX_MANIFEST_ENTRIES {
        return Err(CodecError::ImplausibleLength {
            what: "manifest entry count",
            len: n as u64,
        }
        .into());
    }
    let mut entries = Vec::with_capacity(n);
    let mut prev = 0u64;
    for _ in 0..n {
        let generation = r.u64("manifest entry generation")?;
        if generation <= prev {
            return Err(CodecError::Invalid("manifest generations not ascending").into());
        }
        prev = generation;
        entries.push(ManifestEntry {
            generation,
            len: r.u64("manifest entry length")?,
            crc: r.u32("manifest entry crc")?,
        });
    }
    if !r.is_exhausted() {
        return Err(ManifestError::TrailingBytes(r.remaining() as u64));
    }
    if active != 0 && !entries.iter().any(|e| e.generation == active) {
        return Err(CodecError::Invalid("manifest active generation not listed").into());
    }
    Ok(Manifest {
        dataset,
        active,
        entries,
    })
}

// ---------------------------------------------------------------------------
// Filesystem abstraction
// ---------------------------------------------------------------------------

/// The filesystem operations a [`ModelStore`] performs, behind a trait so
/// the crash-matrix suite can inject deterministic faults.  Implementors
/// must be cheap to share across threads.
pub trait StoreFs: Send + Sync {
    /// Reads the entire file at `path`.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Creates (or truncates) `path` and writes all of `data`.
    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()>;
    /// Flushes `path`'s data and metadata to stable storage.
    fn sync_file(&self, path: &Path) -> io::Result<()>;
    /// Atomically renames `from` to `to`.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Removes the file at `path`.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Flushes the directory entry table of `dir` to stable storage.
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;
    /// Creates `dir` and any missing parents.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;
    /// Lists the file names (not paths) inside `dir`.
    fn list(&self, dir: &Path) -> io::Result<Vec<String>>;
}

/// The production [`StoreFs`]: plain `std::fs` with real fsyncs.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealFs;

impl StoreFs for RealFs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        std::fs::write(path, data)
    }

    fn sync_file(&self, path: &Path) -> io::Result<()> {
        std::fs::File::open(path)?.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        // Opening a directory read-only and syncing it flushes its entry
        // table on unix; harmless elsewhere.
        std::fs::File::open(dir)?.sync_all()
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            names.push(entry?.file_name().to_string_lossy().into_owned());
        }
        names.sort();
        Ok(names)
    }
}

/// What a [`FaultFs`] injects at its chosen operation index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsFaultKind {
    /// The process dies before the operation takes effect: the op fails
    /// and every later operation fails too.
    Crash,
    /// A write persists only a seeded prefix of its bytes, then the
    /// process dies (torn file on disk).  Non-write operations crash.
    ShortWrite,
    /// A write silently flips one seeded bit and *succeeds* — the caller
    /// never learns; only checksums can catch it.  Non-write operations
    /// are unaffected.
    BitFlip,
    /// The operation fails with `ENOSPC`; the process stays alive.
    Enospc,
}

/// Configuration of a [`FaultFs`].
#[derive(Debug, Clone, Copy)]
pub struct FsFaultConfig {
    /// Seed of the short-write length and bit-flip position draws.
    pub seed: u64,
    /// Index of the mutating operation to fault (writes, fsyncs, renames
    /// and removes count; reads and listings do not), or `None` to count
    /// operations without injecting anything.
    pub fault_at: Option<u64>,
    /// What to inject at that operation.
    pub kind: FsFaultKind,
}

impl Default for FsFaultConfig {
    fn default() -> FsFaultConfig {
        FsFaultConfig {
            seed: 0xFA17_F500,
            fault_at: None,
            kind: FsFaultKind::Crash,
        }
    }
}

/// The finalization step of splitmix64 — same mixer as the serve crate's
/// `FaultPlan`, so seeds behave identically across both fault layers.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A [`StoreFs`] that injects one deterministic fault at a chosen
/// mutating-operation index, then (for crash-class faults) fails every
/// later operation as a dead process would.  Counts operations so the
/// crash matrix can enumerate every injection point.
#[derive(Debug, Default)]
pub struct FaultFs {
    cfg: FsFaultConfig,
    inner: RealFs,
    ops: AtomicU64,
    dead: AtomicBool,
    injected: AtomicBool,
}

impl FaultFs {
    /// Wraps the real filesystem with an injection plan.
    pub fn new(cfg: FsFaultConfig) -> FaultFs {
        FaultFs {
            cfg,
            ..FaultFs::default()
        }
    }

    /// Mutating operations performed so far (including the faulted one).
    pub fn ops(&self) -> u64 {
        self.ops.load(Ordering::Relaxed)
    }

    /// Whether the configured fault has fired.
    pub fn injected(&self) -> bool {
        self.injected.load(Ordering::Relaxed)
    }

    fn dead_err() -> io::Error {
        io::Error::other("injected crash: filesystem is dead")
    }

    fn enospc() -> io::Error {
        io::Error::from_raw_os_error(28) // ENOSPC
    }

    /// Advances the mutating-op counter; returns the fault to inject at
    /// this op, if any.
    fn mutating(&self) -> io::Result<Option<FsFaultKind>> {
        // ordering: Relaxed — the crash simulation is single-threaded per
        // store; the flag only gates later ops on the same thread.
        if self.dead.load(Ordering::Relaxed) {
            return Err(Self::dead_err());
        }
        let idx = self.ops.fetch_add(1, Ordering::Relaxed);
        if self.cfg.fault_at == Some(idx) {
            self.injected.store(true, Ordering::Relaxed);
            Ok(Some(self.cfg.kind))
        } else {
            Ok(None)
        }
    }

    fn alive(&self) -> io::Result<()> {
        // ordering: Relaxed — single-threaded crash simulation (see above).
        if self.dead.load(Ordering::Relaxed) {
            Err(Self::dead_err())
        } else {
            Ok(())
        }
    }

    fn die(&self) -> io::Error {
        // ordering: Relaxed — single-threaded crash simulation (see above).
        self.dead.store(true, Ordering::Relaxed);
        Self::dead_err()
    }
}

impl StoreFs for FaultFs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.alive()?;
        self.inner.read(path)
    }

    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        match self.mutating()? {
            None => self.inner.write(path, data),
            Some(FsFaultKind::Crash) => Err(self.die()),
            Some(FsFaultKind::Enospc) => Err(Self::enospc()),
            Some(FsFaultKind::ShortWrite) => {
                let keep = if data.is_empty() {
                    0
                } else {
                    (splitmix64(self.cfg.seed ^ 0x5707) as usize) % data.len()
                };
                let _ = self.inner.write(path, &data[..keep]);
                Err(self.die())
            }
            Some(FsFaultKind::BitFlip) => {
                let mut corrupt = data.to_vec();
                if !corrupt.is_empty() {
                    let bit = (splitmix64(self.cfg.seed ^ 0xF11B) as usize) % (corrupt.len() * 8);
                    corrupt[bit / 8] ^= 1 << (bit % 8);
                }
                self.inner.write(path, &corrupt)
            }
        }
    }

    fn sync_file(&self, path: &Path) -> io::Result<()> {
        match self.mutating()? {
            None | Some(FsFaultKind::BitFlip) => self.inner.sync_file(path),
            Some(FsFaultKind::Enospc) => Err(Self::enospc()),
            Some(FsFaultKind::Crash) | Some(FsFaultKind::ShortWrite) => Err(self.die()),
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        match self.mutating()? {
            None | Some(FsFaultKind::BitFlip) => self.inner.rename(from, to),
            Some(FsFaultKind::Enospc) => Err(Self::enospc()),
            Some(FsFaultKind::Crash) | Some(FsFaultKind::ShortWrite) => Err(self.die()),
        }
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        match self.mutating()? {
            None | Some(FsFaultKind::BitFlip) => self.inner.remove_file(path),
            Some(FsFaultKind::Enospc) => Err(Self::enospc()),
            Some(FsFaultKind::Crash) | Some(FsFaultKind::ShortWrite) => Err(self.die()),
        }
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        match self.mutating()? {
            None | Some(FsFaultKind::BitFlip) => self.inner.sync_dir(dir),
            Some(FsFaultKind::Enospc) => Err(Self::enospc()),
            Some(FsFaultKind::Crash) | Some(FsFaultKind::ShortWrite) => Err(self.die()),
        }
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        // Not counted: only runs at store creation, and counting it would
        // shift publish op indices by whether the directory pre-existed.
        self.alive()?;
        self.inner.create_dir_all(dir)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<String>> {
        self.alive()?;
        self.inner.list(dir)
    }
}

// ---------------------------------------------------------------------------
// The store
// ---------------------------------------------------------------------------

/// Tunables of a [`ModelStore`].
#[derive(Debug, Clone, Copy)]
pub struct StoreOptions {
    /// Total generations to retain (including the active one); older
    /// generations are unlinked after each publish commits.  Clamped to a
    /// minimum of 1.
    pub retain: usize,
}

impl Default for StoreOptions {
    fn default() -> StoreOptions {
        StoreOptions { retain: 3 }
    }
}

fn gen_file_name(generation: u64) -> String {
    format!("gen-{generation:08}.l2r")
}

fn parse_gen_file_name(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("gen-")?.strip_suffix(".l2r")?;
    (digits.len() == 8 && digits.bytes().all(|b| b.is_ascii_digit()))
        .then(|| digits.parse().ok())
        .flatten()
}

/// A crash-safe, generation-numbered snapshot directory (see the module
/// docs for the publish discipline and recovery rules).
pub struct ModelStore {
    fs: Arc<dyn StoreFs>,
    dir: PathBuf,
    options: StoreOptions,
    manifest: Manifest,
    next_generation: u64,
}

impl std::fmt::Debug for ModelStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelStore")
            .field("dir", &self.dir)
            .field("dataset", &self.manifest.dataset)
            .field("active", &self.manifest.active)
            .field("generations", &self.manifest.entries.len())
            .finish()
    }
}

impl ModelStore {
    /// Creates (or opens, if it already exists) a store for `dataset` at
    /// `dir` on the real filesystem.
    pub fn create(
        dir: &Path,
        dataset: &str,
        options: StoreOptions,
    ) -> Result<ModelStore, StoreError> {
        ModelStore::create_with(Arc::new(RealFs), dir, dataset, options)
    }

    /// [`ModelStore::create`] over an injectable filesystem.
    pub fn create_with(
        fs: Arc<dyn StoreFs>,
        dir: &Path,
        dataset: &str,
        options: StoreOptions,
    ) -> Result<ModelStore, StoreError> {
        fs.create_dir_all(dir).map_err(|e| StoreError::io(dir, e))?;
        let manifest_path = dir.join(MANIFEST_FILE);
        if fs.read(&manifest_path).is_ok() {
            let store = ModelStore::open_with_options(fs, dir, options)?;
            if store.manifest.dataset != dataset {
                return Err(StoreError::DatasetMismatch {
                    store: store.manifest.dataset.clone(),
                    requested: dataset.to_string(),
                });
            }
            return Ok(store);
        }
        let mut store = ModelStore {
            fs,
            dir: dir.to_path_buf(),
            options: StoreOptions {
                retain: options.retain.max(1),
            },
            manifest: Manifest {
                dataset: dataset.to_string(),
                active: 0,
                entries: Vec::new(),
            },
            next_generation: 1,
        };
        let manifest = store.manifest.clone();
        store.write_manifest(&manifest)?;
        Ok(store)
    }

    /// Opens (and, if the last writer crashed, recovers) the store at
    /// `dir` on the real filesystem.
    pub fn open(dir: &Path) -> Result<ModelStore, StoreError> {
        ModelStore::open_with(Arc::new(RealFs), dir)
    }

    /// [`ModelStore::open`] over an injectable filesystem.
    pub fn open_with(fs: Arc<dyn StoreFs>, dir: &Path) -> Result<ModelStore, StoreError> {
        ModelStore::open_with_options(fs, dir, StoreOptions::default())
    }

    /// [`ModelStore::open_with`] with explicit [`StoreOptions`] (retention
    /// is a per-handle policy, not persisted in the manifest).
    pub fn open_with_options(
        fs: Arc<dyn StoreFs>,
        dir: &Path,
        options: StoreOptions,
    ) -> Result<ModelStore, StoreError> {
        let names = fs.list(dir).map_err(|e| StoreError::io(dir, e))?;
        let mut scanned: Vec<u64> = names
            .iter()
            .filter_map(|n| parse_gen_file_name(n))
            .collect();
        scanned.sort_unstable();

        let manifest_path = dir.join(MANIFEST_FILE);
        let mut manifest = match fs.read(&manifest_path) {
            Ok(bytes) => decode_manifest(&bytes).ok(),
            Err(_) => None,
        };
        let had_manifest = manifest.is_some();

        // Trust the manifest only if its active generation file verifies
        // bit-for-bit; bit rot after commit falls back to recovery.
        if let Some(m) = &manifest {
            if m.active != 0 {
                let entry = m
                    .entries
                    .iter()
                    .find(|e| e.generation == m.active)
                    .copied()
                    .expect("decode_manifest guarantees the active generation is listed");
                let path = dir.join(gen_file_name(m.active));
                let ok = matches!(
                    fs.read(&path),
                    Ok(bytes) if bytes.len() as u64 == entry.len && crc32(&bytes) == entry.crc
                );
                if !ok {
                    manifest = None;
                }
            }
        }

        // Generation numbers are never reused, even for files that were
        // renamed into place but whose manifest commit never happened.
        let max_seen = scanned
            .iter()
            .copied()
            .chain(
                manifest
                    .iter()
                    .flat_map(|m| m.entries.iter().map(|e| e.generation)),
            )
            .max()
            .unwrap_or(0);

        let mut store = ModelStore {
            fs,
            dir: dir.to_path_buf(),
            options: StoreOptions {
                retain: options.retain.max(1),
            },
            manifest: Manifest {
                dataset: String::new(),
                active: 0,
                entries: Vec::new(),
            },
            next_generation: max_seen + 1,
        };

        match manifest {
            Some(m) => store.manifest = m,
            None => {
                // Torn, missing, or bit-rotted manifest: adopt every
                // generation file that verifies, newest one active, and
                // durably rewrite the manifest.
                let mut entries = Vec::new();
                let mut dataset = None;
                for &generation in scanned.iter().rev() {
                    let path = store.dir.join(gen_file_name(generation));
                    let Ok(bytes) = store.fs.read(&path) else {
                        continue;
                    };
                    if verify_frame(&bytes).is_err() {
                        continue;
                    }
                    if dataset.is_none() {
                        // The newest verifying generation names the
                        // dataset for the whole store.
                        dataset = Some(decode_snapshot(&bytes)?.dataset);
                    }
                    entries.push(ManifestEntry {
                        generation,
                        len: bytes.len() as u64,
                        crc: crc32(&bytes),
                    });
                }
                entries.reverse();
                let Some(dataset) = dataset else {
                    return Err(if had_manifest || !names.is_empty() {
                        StoreError::NoDurableGeneration
                    } else {
                        StoreError::NotAStore(store.dir.clone())
                    });
                };
                let recovered = Manifest {
                    dataset,
                    active: entries.last().map_or(0, |e| e.generation),
                    entries,
                };
                store.write_manifest(&recovered)?;
            }
        }

        // Clear orphaned temp files from interrupted publishes.
        for name in &names {
            if name.ends_with(".tmp") {
                let _ = store.fs.remove_file(&store.dir.join(name));
            }
        }
        Ok(store)
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The dataset every generation in this store was fitted on.
    pub fn dataset(&self) -> &str {
        &self.manifest.dataset
    }

    /// The active (newest durable) generation, if any.
    pub fn latest(&self) -> Option<u64> {
        (self.manifest.active != 0).then_some(self.manifest.active)
    }

    /// All retained generations, ascending.
    pub fn generations(&self) -> Vec<u64> {
        self.manifest.entries.iter().map(|e| e.generation).collect()
    }

    /// Durably publishes `model` as the next generation and returns its
    /// number.  See the module docs for the exact operation sequence; the
    /// new generation is visible to [`ModelStore::open`] only once the
    /// manifest rename (op [`PUBLISH_OP_COMMIT`]) completes.
    pub fn publish(&mut self, model: &L2r) -> Result<u64, StoreError> {
        let generation = self.next_generation;
        let bytes = encode_snapshot(model, &self.manifest.dataset);
        let final_name = gen_file_name(generation);
        let final_path = self.dir.join(&final_name);
        let tmp_path = self.dir.join(format!("{final_name}.tmp"));

        self.fs
            .write(&tmp_path, &bytes)
            .map_err(|e| StoreError::io(&tmp_path, e))?;
        self.fs
            .sync_file(&tmp_path)
            .map_err(|e| StoreError::io(&tmp_path, e))?;
        self.fs
            .rename(&tmp_path, &final_path)
            .map_err(|e| StoreError::io(&final_path, e))?;
        self.fs
            .sync_dir(&self.dir)
            .map_err(|e| StoreError::io(&self.dir, e))?;

        let mut manifest = self.manifest.clone();
        manifest.entries.push(ManifestEntry {
            generation,
            len: bytes.len() as u64,
            crc: crc32(&bytes),
        });
        manifest.active = generation;
        let mut dropped = Vec::new();
        while manifest.entries.len() > self.options.retain {
            dropped.push(manifest.entries.remove(0).generation);
        }
        self.write_manifest(&manifest)?;
        self.next_generation = generation + 1;

        // Retention: unlink dropped generations only after the commit.
        // Best-effort — a crash here leaves orphans the next publish or
        // open sweeps up, never a correctness problem.
        for g in dropped {
            let _ = self.fs.remove_file(&self.dir.join(gen_file_name(g)));
        }
        Ok(generation)
    }

    /// Reads and integrity-checks the exact bytes of `generation`.
    pub fn load_bytes(&self, generation: u64) -> Result<Vec<u8>, StoreError> {
        let entry = self
            .manifest
            .entries
            .iter()
            .find(|e| e.generation == generation)
            .copied()
            .ok_or(StoreError::UnknownGeneration(generation))?;
        let path = self.dir.join(gen_file_name(generation));
        let bytes = self.fs.read(&path).map_err(|e| StoreError::io(&path, e))?;
        if bytes.len() as u64 != entry.len || crc32(&bytes) != entry.crc {
            return Err(StoreError::CorruptGeneration { generation });
        }
        Ok(bytes)
    }

    /// Loads and decodes `generation`.
    pub fn load(&self, generation: u64) -> Result<Snapshot, StoreError> {
        Ok(decode_snapshot(&self.load_bytes(generation)?)?)
    }

    /// Loads the newest durable generation, returning its number too.
    pub fn load_latest(&self) -> Result<(u64, Snapshot), StoreError> {
        let generation = self.latest().ok_or(StoreError::NoDurableGeneration)?;
        Ok((generation, self.load(generation)?))
    }

    /// Durably replaces the manifest (ops 4–7 of a publish), then adopts
    /// it in memory.
    fn write_manifest(&mut self, manifest: &Manifest) -> Result<(), StoreError> {
        let final_path = self.dir.join(MANIFEST_FILE);
        let tmp_path = self.dir.join(format!("{MANIFEST_FILE}.tmp"));
        let bytes = encode_manifest(manifest);
        self.fs
            .write(&tmp_path, &bytes)
            .map_err(|e| StoreError::io(&tmp_path, e))?;
        self.fs
            .sync_file(&tmp_path)
            .map_err(|e| StoreError::io(&tmp_path, e))?;
        self.fs
            .rename(&tmp_path, &final_path)
            .map_err(|e| StoreError::io(&final_path, e))?;
        self.fs
            .sync_dir(&self.dir)
            .map_err(|e| StoreError::io(&self.dir, e))?;
        self.manifest = manifest.clone();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest() -> Manifest {
        Manifest {
            dataset: "porto".to_string(),
            active: 3,
            entries: vec![
                ManifestEntry {
                    generation: 2,
                    len: 100,
                    crc: 0xAB,
                },
                ManifestEntry {
                    generation: 3,
                    len: 120,
                    crc: 0xCD,
                },
            ],
        }
    }

    #[test]
    fn manifest_roundtrips_bit_stably() {
        let m = manifest();
        let bytes = encode_manifest(&m);
        let decoded = decode_manifest(&bytes).unwrap();
        assert_eq!(decoded, m);
        assert_eq!(encode_manifest(&decoded), bytes);
    }

    #[test]
    fn manifest_rejects_unlisted_active_generation() {
        let mut m = manifest();
        m.active = 9;
        assert!(matches!(
            decode_manifest(&encode_manifest(&m)),
            Err(ManifestError::Codec(CodecError::Invalid(_)))
        ));
    }

    #[test]
    fn manifest_rejects_non_ascending_generations() {
        let mut m = manifest();
        m.entries.swap(0, 1);
        assert!(matches!(
            decode_manifest(&encode_manifest(&m)),
            Err(ManifestError::Codec(CodecError::Invalid(_)))
        ));
    }

    #[test]
    fn gen_file_names_roundtrip() {
        assert_eq!(parse_gen_file_name(&gen_file_name(7)), Some(7));
        assert_eq!(
            parse_gen_file_name(&gen_file_name(12345678)),
            Some(12345678)
        );
        assert_eq!(parse_gen_file_name("gen-0000001.l2r"), None);
        assert_eq!(parse_gen_file_name("gen-00000007.l2r.tmp"), None);
        assert_eq!(parse_gen_file_name("MANIFEST"), None);
    }

    #[test]
    fn fault_fs_counts_only_mutating_ops() {
        let fs = FaultFs::new(FsFaultConfig::default());
        let dir = std::env::temp_dir().join(format!("l2r-faultfs-{}", std::process::id()));
        fs.create_dir_all(&dir).unwrap();
        let f = dir.join("x");
        fs.write(&f, b"abc").unwrap();
        let _ = fs.read(&f).unwrap();
        let _ = fs.list(&dir).unwrap();
        fs.remove_file(&f).unwrap();
        assert_eq!(fs.ops(), 2); // write + remove; read/list/create_dir_all free
        assert!(!fs.injected());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
