//! Error type of the learn-to-route pipeline.

use l2r_road_network::NetworkError;

/// Errors produced while fitting or querying an [`crate::pipeline::L2r`]
/// model.
#[derive(Debug, Clone, PartialEq)]
pub enum L2rError {
    /// No trajectories were supplied; the pipeline cannot learn anything.
    EmptyTrajectorySet,
    /// The trajectory set produced no regions (e.g. every trajectory was
    /// trivial).
    NoRegions,
    /// A lower-level road-network error.
    Network(NetworkError),
}

impl std::fmt::Display for L2rError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            L2rError::EmptyTrajectorySet => write!(f, "no trajectories supplied"),
            L2rError::NoRegions => write!(f, "clustering produced no regions"),
            L2rError::Network(e) => write!(f, "road-network error: {e}"),
        }
    }
}

impl std::error::Error for L2rError {}

impl From<NetworkError> for L2rError {
    fn from(e: NetworkError) -> Self {
        L2rError::Network(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use l2r_road_network::VertexId;

    #[test]
    fn display_and_conversion() {
        assert!(L2rError::EmptyTrajectorySet
            .to_string()
            .contains("no trajectories"));
        let e: L2rError = NetworkError::UnknownVertex(VertexId(3)).into();
        assert!(matches!(e, L2rError::Network(_)));
        assert!(e.to_string().contains("road-network"));
    }
}
