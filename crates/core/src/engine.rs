//! The owned, shareable online serving engine: [`Engine`].
//!
//! The free [`crate::router::route`] function recomputes per query what never
//! changes between queries: it scans every attached path of every region edge
//! (cloning, reversing and re-validating candidates), calls `subpath` on
//! every stored inner-region path, allocates fresh transfer-center `Vec`s and
//! stitches segments with an O(n²) `concat` chain.  An [`Engine`] compiles a
//! fitted model **once** into query-optimised indexes:
//!
//! * per region edge, the best attached path pre-resolved for *both*
//!   orientations (the reversed orientation already validated), so mapping a
//!   region path back to roads is an array lookup per edge;
//! * per region, an inner-path occurrence index `vertex → (path, positions)`,
//!   so inner-region routing intersects two sorted occurrence lists instead
//!   of scanning every stored path twice;
//! * transfer centers borrowed from the region graph's build-time cache;
//! * a **connector cache**: the fastest-path stubs a Case-1 query needs —
//!   query source → attached-path entry, attached-path exit → query
//!   destination, anchor → next-hop entry — always start or end at a region
//!   vertex, so they are precomputed with one bounded one-to-many search per
//!   region vertex.  Extracting a path from a search that ran longer is
//!   bit-identical to the early-stopped per-query search (settled parents
//!   never change), so cached connectors answer exactly like live Dijkstra —
//!   without running one.
//!
//! Unlike the historical `PreparedRouter<'a>` (which borrowed the network
//! and region graph it compiled), an `Engine` **owns** its model behind an
//! [`Arc<L2r>`]: model and indexes travel as one `Send + Sync` unit, so a
//! long-lived server can build it straight off a snapshot file
//! ([`Engine::load`]), share it across threads behind an `Arc<Engine>`, and
//! atomically swap in a freshly fitted replacement via
//! [`crate::registry::ModelRegistry`] without tearing anything down.
//!
//! Every query runs through a caller-owned [`QueryScratch`] — one reusable
//! road-network `SearchSpace`, one `RegionSearchSpace` and one `PathBuilder`
//! — so the steady-state serving path performs **no heap allocation besides
//! the returned route** (scratch reuse is provable: the search-space
//! generations advance by exactly the number of searches a workload
//! performs).  [`Engine::route_many`] fans a query batch across
//! `L2R_THREADS` workers (one scratch per worker) with deterministic
//! index-ordered results.
//!
//! Results are **bit-identical** to the free `route` function — enforced by
//! an equivalence test sweeping vertex-pair grids on the D1/D2 datasets, and
//! across threads by `crates/core/tests/engine_concurrency.rs`.

use std::collections::HashMap;
use std::sync::Arc;

use l2r_region_graph::{RegionGraph, RegionId};
use l2r_road_network::{CostType, Path, PathBuilder, RoadNetwork, SearchSpace, VertexId};

use crate::config::L2rConfig;
use crate::pipeline::{L2r, OfflineStats};
use crate::region_routing::{RegionPath, RegionSearchSpace};
use crate::router::{best_oriented_path, find_anchor_in, RouteResult, RouteStrategy};
use crate::snapshot::{load_model, SnapshotError};

/// Best attached path of a region edge, pre-resolved per orientation exactly
/// as the per-query scan would have (most supported path, first wins ties;
/// opposite-orientation paths reversed and kept only when drivable).
#[derive(Debug, Clone, Default)]
struct OrientedPaths {
    /// Best path oriented `a → b`.
    forward: Option<Path>,
    /// Best path oriented `b → a`.
    backward: Option<Path>,
}

/// Positions of one vertex inside one stored inner-region path.
#[derive(Debug, Clone)]
struct VertexOccurrence {
    /// Index into the region's `inner_paths` list.
    path: u32,
    /// Ascending positions of the vertex inside that path.
    positions: Vec<u32>,
}

/// Per-region index: every vertex of every stored inner path, with its
/// occurrence positions, keyed for O(1) lookup.  Occurrence lists are sorted
/// by path index, enabling a linear-merge intersection per query.
#[derive(Debug, Clone, Default)]
struct InnerPathIndex {
    occurrences: HashMap<VertexId, Vec<VertexOccurrence>>,
}

impl InnerPathIndex {
    fn build(paths: &[l2r_region_graph::SupportedPath]) -> InnerPathIndex {
        let mut occurrences: HashMap<VertexId, Vec<VertexOccurrence>> = HashMap::new();
        for (pi, sp) in paths.iter().enumerate() {
            for (pos, v) in sp.path.vertices().iter().enumerate() {
                let occ = occurrences.entry(*v).or_default();
                match occ.last_mut() {
                    Some(last) if last.path == pi as u32 => last.positions.push(pos as u32),
                    _ => occ.push(VertexOccurrence {
                        path: pi as u32,
                        positions: vec![pos as u32],
                    }),
                }
            }
        }
        InnerPathIndex { occurrences }
    }
}

/// Reusable per-query scratch state: one road-network search space, one
/// region-graph search space, a region-path buffer and a path builder.  Keep
/// one per serving thread ([`Engine::route_many`] does this for you, and
/// [`crate::registry::ScratchPool`] lends them out to server workers); a
/// `QueryScratch` is intentionally not shared between threads.
#[derive(Debug, Clone, Default)]
pub struct QueryScratch {
    space: SearchSpace,
    region_space: RegionSearchSpace,
    region_path: RegionPath,
    builder: PathBuilder,
}

impl QueryScratch {
    /// Creates an empty scratch; all buffers grow on first use.
    pub fn new() -> QueryScratch {
        QueryScratch::default()
    }

    /// Generation of the road-network search space: advances by exactly one
    /// per road search routed through this scratch.  Used (together with
    /// [`l2r_road_network::searches_performed`]) to prove the serving path
    /// allocates no hidden search state.
    pub fn search_generation(&self) -> u32 {
        self.space.generation()
    }

    /// Generation of the region-graph search space (one per non-trivial
    /// region-path search).
    pub fn region_generation(&self) -> u32 {
        self.region_space.generation()
    }
}

/// An owned, compiled, immutable online serving engine: a fitted model
/// (behind an [`Arc<L2r>`]) plus every query-optimised index compiled from
/// it, in one `Send + Sync` unit.
///
/// Build once — [`Engine::new`] from a fitted model, [`Engine::load`]
/// straight from a snapshot file, or [`L2r::prepare`] — then serve queries
/// through [`Engine::route`] / [`Engine::route_many`].  One instance serves
/// any number of threads (share it behind an `Arc<Engine>`), each bringing
/// its own [`QueryScratch`].
#[derive(Debug, Clone)]
pub struct Engine {
    model: Arc<L2r>,
    /// Indexed by `RegionEdgeId`.
    oriented: Vec<OrientedPaths>,
    /// Indexed by `RegionId`.
    inner: Vec<InnerPathIndex>,
    /// Pre-resolved fastest-path connectors `(from, to)` for every stub a
    /// Case-1 query can need (`None` = proven unreachable).  Misses fall
    /// back to a live scratch search with identical results.
    connectors: HashMap<(VertexId, VertexId), Option<Path>>,
}

// The whole point of owning the model: an Engine must be shareable across
// serving threads behind an `Arc` with no further ceremony.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Engine>();
    assert_send_sync::<L2r>();
};

impl Engine {
    /// Compiles a fitted model into an owned engine (the model moves behind
    /// an `Arc`; use [`Engine::from_shared`] to share an existing one).
    pub fn new(model: L2r) -> Engine {
        Engine::from_shared(Arc::new(model))
    }

    /// Compiles an engine around an already-shared model without cloning the
    /// model data.
    ///
    /// The three compile stages — oriented-path resolution per region edge,
    /// inner-path indexing per region, connector searches per region — are
    /// each embarrassingly parallel and fan out across `L2R_THREADS` workers;
    /// results are merged in index order, so the compiled engine is identical
    /// to a single-threaded build.
    pub fn from_shared(model: Arc<L2r>) -> Engine {
        let net = model.network();
        let rg = model.region_graph();
        let oriented: Vec<OrientedPaths> = l2r_par::par_map(rg.edges(), |_, edge| OrientedPaths {
            forward: best_oriented_path(net, rg, edge, edge.a, edge.b),
            backward: best_oriented_path(net, rg, edge, edge.b, edge.a),
        });
        let inner = l2r_par::par_map(rg.regions(), |_, r| {
            InnerPathIndex::build(rg.inner_paths(r.id))
        });
        let connectors = resolve_connectors(net, rg, &oriented);
        Engine {
            model,
            oriented,
            inner,
            connectors,
        }
    }

    /// Loads a model snapshot from disk and compiles it — everything a
    /// serving process needs to go from a `.l2r` file to answering queries.
    pub fn load(path: &std::path::Path) -> Result<Engine, SnapshotError> {
        Ok(Engine::new(load_model(path)?))
    }

    /// Thin borrowed constructor for tests: compiles an engine from a road
    /// network and region graph alone (no learned preferences, default
    /// config), cloning both into a degenerate owned model.  Serving only
    /// consults the network and region graph, so routing behaviour is
    /// identical to an engine around the full fitted model.
    pub fn from_graphs(net: &RoadNetwork, rg: &RegionGraph) -> Engine {
        Engine::new(L2r::from_parts(
            net.clone(),
            rg.clone(),
            HashMap::new(),
            HashMap::new(),
            L2rConfig::default(),
            OfflineStats::default(),
        ))
    }

    /// Number of precomputed connector entries (diagnostics).
    pub fn num_connectors(&self) -> usize {
        self.connectors.len()
    }

    /// The model this engine serves.
    pub fn model(&self) -> &L2r {
        &self.model
    }

    /// A shared handle to the model (cheap `Arc` clone), e.g. to compile a
    /// second engine or inspect the model while the engine keeps serving.
    pub fn shared_model(&self) -> Arc<L2r> {
        Arc::clone(&self.model)
    }

    /// The underlying road network.
    #[inline]
    pub fn network(&self) -> &RoadNetwork {
        self.model.network()
    }

    /// The underlying region graph.
    #[inline]
    pub fn region_graph(&self) -> &RegionGraph {
        self.model.region_graph()
    }

    /// Routes from `source` to `destination`, reusing `scratch` across calls.
    ///
    /// Returns the same `RouteResult` (bit-identical path and strategy) as
    /// the free [`crate::router::route`] function, while performing no heap
    /// allocation besides the returned path once the scratch buffers have
    /// warmed up.
    pub fn route(
        &self,
        scratch: &mut QueryScratch,
        source: VertexId,
        destination: VertexId,
    ) -> Option<RouteResult> {
        if source == destination {
            return Some(RouteResult {
                path: Path::single(source),
                strategy: RouteStrategy::FastestFallback,
            });
        }
        let rg = self.region_graph();
        let result = match (rg.region_of(source), rg.region_of(destination)) {
            (Some(rs), Some(rd)) => {
                scratch.builder.reset(source);
                let strategy = self.case1_append(scratch, source, destination, rs, rd)?;
                Some(RouteResult {
                    path: scratch.builder.to_path(),
                    strategy,
                })
            }
            _ => self.route_case2(scratch, source, destination),
        };
        if let Some(r) = &result {
            debug_assert!(r.path.validate(self.network()).is_ok());
            debug_assert_eq!(r.path.source(), source);
            debug_assert_eq!(r.path.destination(), destination);
        }
        result
    }

    /// Routes a whole batch in parallel (`L2R_THREADS` workers, one scratch
    /// per worker).  Results come back in query order and are bit-identical
    /// to routing the batch serially through a single scratch.
    pub fn route_many(&self, queries: &[(VertexId, VertexId)]) -> Vec<Option<RouteResult>> {
        l2r_par::par_map_init(queries, QueryScratch::new, |scratch, _, &(s, d)| {
            self.route(scratch, s, d)
        })
    }

    /// Case 1 (both endpoints in regions): appends the route to the scratch
    /// builder (which must currently end at `source`) and returns the
    /// strategy used, or `None` when no route exists.
    fn case1_append(
        &self,
        scratch: &mut QueryScratch,
        source: VertexId,
        destination: VertexId,
        rs: RegionId,
        rd: RegionId,
    ) -> Option<RouteStrategy> {
        if rs == rd {
            if self.append_inner_route(&mut scratch.builder, rs, source, destination) {
                return Some(RouteStrategy::InnerRegionTrajectory);
            }
            return self
                .append_connector(
                    &mut scratch.space,
                    &mut scratch.builder,
                    source,
                    destination,
                )
                .then_some(RouteStrategy::InnerRegionFastest);
        }
        let QueryScratch {
            space,
            region_space,
            region_path,
            builder,
        } = scratch;
        if !region_space.find_region_path_into(self.region_graph(), rs, rd, region_path) {
            return None;
        }
        let checkpoint = builder.checkpoint();
        if self.append_region_road_path(space, builder, region_path, source, destination) {
            return Some(RouteStrategy::RegionPath);
        }
        builder.truncate(checkpoint);
        self.append_connector(space, builder, source, destination)
            .then_some(RouteStrategy::FastestFallback)
    }

    /// Case 2: at least one endpoint is outside every region.
    fn route_case2(
        &self,
        scratch: &mut QueryScratch,
        source: VertexId,
        destination: VertexId,
    ) -> Option<RouteResult> {
        let rg = self.region_graph();
        let source_anchor = match rg.region_of(source) {
            Some(_) => Some(source),
            None => self.find_anchor(scratch, source, destination),
        };
        let dest_anchor = match rg.region_of(destination) {
            Some(_) => Some(destination),
            None => self.find_anchor(scratch, destination, source),
        };
        let (Some(sa), Some(da)) = (source_anchor, dest_anchor) else {
            // One or no candidate regions: plain fastest path (Section VI).
            scratch.builder.reset(source);
            return self
                .append_connector(
                    &mut scratch.space,
                    &mut scratch.builder,
                    source,
                    destination,
                )
                .then(|| RouteResult {
                    path: scratch.builder.to_path(),
                    strategy: RouteStrategy::FastestFallback,
                });
        };
        let rs = rg.region_of(sa)?;
        let rd = rg.region_of(da)?;
        // Fastest stub from the query source to its anchor, then the Case-1
        // route between the anchors, then the stub to the destination — all
        // appended in place (the historical implementation concatenated
        // three materialised paths; the vertex sequence is identical).
        scratch.builder.reset(source);
        if sa != source
            && !self.append_connector(&mut scratch.space, &mut scratch.builder, source, sa)
        {
            return None;
        }
        self.case1_append(scratch, sa, da, rs, rd)?;
        if da != destination
            && !self.append_connector(&mut scratch.space, &mut scratch.builder, da, destination)
        {
            return None;
        }
        Some(RouteResult {
            path: scratch.builder.to_path(),
            strategy: RouteStrategy::Stitched,
        })
    }

    /// Finds the first region vertex settled by a fastest-path search from
    /// `from` towards `towards` (early-exit settle hook, scratch space).
    fn find_anchor(
        &self,
        scratch: &mut QueryScratch,
        from: VertexId,
        towards: VertexId,
    ) -> Option<VertexId> {
        if from.idx() >= self.network().num_vertices() {
            return None;
        }
        find_anchor_in(
            &mut scratch.space,
            self.network(),
            self.region_graph(),
            from,
            towards,
        )
    }

    /// Appends the fastest path `from → to` to the builder, consulting the
    /// connector cache first: a hit (including a cached "unreachable") avoids
    /// the Dijkstra search entirely; a miss runs a live search through the
    /// scratch space.  Both produce the exact path the free `fastest_path`
    /// would have.
    fn append_connector(
        &self,
        space: &mut SearchSpace,
        builder: &mut PathBuilder,
        from: VertexId,
        to: VertexId,
    ) -> bool {
        if from == to {
            return true;
        }
        match self.connectors.get(&(from, to)) {
            Some(Some(p)) => {
                builder.append_slice(p.vertices());
                true
            }
            Some(None) => false,
            None => self.append_fastest(space, builder, from, to),
        }
    }

    /// Appends the fastest path `from → to` to the builder (which must end at
    /// `from`).  `from == to` is a no-op success, mirroring the trivial path
    /// the free `fastest_path` returns.
    fn append_fastest(
        &self,
        space: &mut SearchSpace,
        builder: &mut PathBuilder,
        from: VertexId,
        to: VertexId,
    ) -> bool {
        let net = self.network();
        let n = net.num_vertices();
        if from.idx() >= n || to.idx() >= n {
            return false;
        }
        if from == to {
            return true;
        }
        space.dijkstra(net, from, Some(to), |e| e.cost(CostType::TravelTime));
        builder.append_from_search(space, to)
    }

    /// Inner-region routing via the occurrence index: picks the most
    /// supported stored path containing `source` before `destination` (in
    /// either orientation, forward preferred on equal support — identical
    /// tie-breaking to the historical full scan) and appends the sub-path.
    fn append_inner_route(
        &self,
        builder: &mut PathBuilder,
        region: RegionId,
        source: VertexId,
        destination: VertexId,
    ) -> bool {
        let index = &self.inner[region.idx()];
        let (Some(src_occ), Some(dst_occ)) = (
            index.occurrences.get(&source),
            index.occurrences.get(&destination),
        ) else {
            return false;
        };
        let paths = self.region_graph().inner_paths(region);
        // (support, path index, forward?, slice start, slice end)
        let mut best: Option<(usize, u32, bool, usize, usize)> = None;
        let (mut i, mut j) = (0usize, 0usize);
        while i < src_occ.len() && j < dst_occ.len() {
            match src_occ[i].path.cmp(&dst_occ[j].path) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    let pi = src_occ[i].path;
                    let support = paths[pi as usize].support;
                    let sp = &src_occ[i].positions;
                    let dp = &dst_occ[j].positions;
                    let beats = |best: &Option<(usize, u32, bool, usize, usize)>,
                                 support: usize| {
                        best.as_ref().map(|(s, ..)| support > *s).unwrap_or(true)
                    };
                    // Forward orientation: the sub-path from the first
                    // occurrence of `source` to the first occurrence of
                    // `destination` at or after it.
                    if beats(&best, support) {
                        let start = sp[0] as usize;
                        let k = dp.partition_point(|&p| (p as usize) < start);
                        if k < dp.len() {
                            let end = dp[k] as usize;
                            if end > start {
                                best = Some((support, pi, true, start, end));
                            }
                        }
                    }
                    // Reversed orientation: on the reversed path this is the
                    // sub-path from the *last* occurrence of `source` back to
                    // the closest preceding occurrence of `destination`.
                    if beats(&best, support) {
                        let last_src = *sp.last().expect("occurrences are non-empty") as usize;
                        let k = dp.partition_point(|&p| (p as usize) <= last_src);
                        if k > 0 {
                            let pd = dp[k - 1] as usize;
                            if pd < last_src {
                                best = Some((support, pi, false, pd, last_src));
                            }
                        }
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        match best {
            Some((_, pi, true, start, end)) => {
                builder.append_slice(&paths[pi as usize].path.vertices()[start..=end]);
                true
            }
            Some((_, pi, false, lo, hi)) => {
                builder.append_reversed_slice(&paths[pi as usize].path.vertices()[lo..=hi]);
                true
            }
            None => false,
        }
    }

    /// Maps the scratch region path back to a road-network path, appending to
    /// the builder (which must end at `source`).  Returns `false` on any gap
    /// the road network cannot bridge; the caller rolls the builder back and
    /// falls back to a fastest path.
    fn append_region_road_path(
        &self,
        space: &mut SearchSpace,
        builder: &mut PathBuilder,
        region_path: &RegionPath,
        source: VertexId,
        destination: VertexId,
    ) -> bool {
        let rg = self.region_graph();
        let mut current = source;
        for (i, eid) in region_path.edges.iter().enumerate() {
            let from_region = region_path.regions[i];
            let to_region = region_path.regions[i + 1];
            let edge = rg.edge(*eid);
            let oriented = &self.oriented[eid.idx()];
            let candidate = if from_region == edge.a {
                oriented.forward.as_ref()
            } else {
                oriented.backward.as_ref()
            };
            match candidate {
                Some(segment) => {
                    // Connect the current position to the segment start if
                    // needed, then take the pre-resolved attached path.
                    if segment.source() != current
                        && !self.append_connector(space, builder, current, segment.source())
                    {
                        return false;
                    }
                    builder.append_slice(segment.vertices());
                    current = segment.destination();
                }
                None => {
                    // No usable attached path (e.g. a B-edge whose apply step
                    // found nothing): route to a transfer center of the next
                    // region directly.
                    let Some(target) = rg.transfer_centers_or_default(to_region).first().copied()
                    else {
                        return false;
                    };
                    if !self.append_connector(space, builder, current, target) {
                        return false;
                    }
                    current = target;
                }
            }
        }
        if current != destination && !self.append_connector(space, builder, current, destination) {
            return false;
        }
        true
    }
}

impl L2r {
    /// Compiles this fitted model into an owned [`Engine`] (the model data is
    /// cloned behind the engine's `Arc`; use [`L2r::into_engine`] to move it
    /// in without the clone).
    pub fn prepare(&self) -> Engine {
        Engine::new(self.clone())
    }

    /// Compiles this fitted model into an owned [`Engine`], consuming the
    /// model (no clone).
    pub fn into_engine(self) -> Engine {
        Engine::new(self)
    }
}

/// Precomputes the fastest-path connectors the Case-1 serving path can need.
///
/// Every such stub starts or ends at a region vertex:
///
/// * **head** — query source (∈ `r`) → entry vertex of the attached path an
///   adjacent edge uses out of `r` (also ∈ `r`), or the fallback transfer
///   center of the neighbouring region when the orientation has no path;
/// * **tail / next hop** — exit vertex of an attached path into `r` (or a
///   fallback center of `r`) → any vertex of `r` (the query destination, or
///   the entry of the next leg).
///
/// One `dijkstra_to_many` per source covers all of its targets; extracting
/// `path_to(t)` from that search is bit-identical to the early-stopped
/// per-query search the free router runs, because a settled vertex's parent
/// never changes after it settles.  Cache size and prepare cost stay linear
/// in `Σ |region| × (adjacent edges)` — no all-pairs blowup.
fn resolve_connectors(
    net: &RoadNetwork,
    rg: &RegionGraph,
    oriented: &[OrientedPaths],
) -> HashMap<(VertexId, VertexId), Option<Path>> {
    let nr = rg.num_regions();
    // Per region: the connector targets its vertices may route *out* to.
    let mut out_targets: Vec<Vec<VertexId>> = vec![Vec::new(); nr];
    // Per region: the anchors where legs *enter* the region (tail sources).
    let mut entry_anchors: Vec<Vec<VertexId>> = vec![Vec::new(); nr];
    for edge in rg.edges() {
        let o = &oriented[edge.id.idx()];
        let orientations = [
            (edge.a, edge.b, o.forward.as_ref()),
            (edge.b, edge.a, o.backward.as_ref()),
        ];
        for (from, to, seg) in orientations {
            match seg {
                Some(p) => {
                    out_targets[from.idx()].push(p.source());
                    entry_anchors[to.idx()].push(p.destination());
                }
                None => {
                    // The stitching falls back to the first transfer center
                    // of the next region for orientations without a path.
                    if let Some(&t) = rg.transfer_centers_or_default(to).first() {
                        out_targets[from.idx()].push(t);
                        entry_anchors[to.idx()].push(t);
                    }
                }
            }
        }
    }

    for r in 0..nr {
        out_targets[r].sort_unstable();
        out_targets[r].dedup();
        entry_anchors[r].sort_unstable();
        entry_anchors[r].dedup();
    }

    // The searches for different regions are independent (every connector key
    // starts at a vertex of its region, and regions partition the vertices),
    // so they fan out across workers — one reusable `SearchSpace` per worker.
    // Each region returns its head inserts and tail inserts separately; the
    // serial merge below replays them in region order with the exact
    // `insert` / `or_insert` semantics of a single-threaded build, so the
    // resulting map is identical.
    let n = net.num_vertices();
    type ConnectorEntry = ((VertexId, VertexId), Option<Path>);
    let per_region: Vec<(Vec<ConnectorEntry>, Vec<ConnectorEntry>)> =
        l2r_par::par_map_init(rg.regions(), SearchSpace::new, |space, _, region| {
            let r = region.id.idx();
            let mut heads: Vec<ConnectorEntry> = Vec::new();
            let mut tails: Vec<ConnectorEntry> = Vec::new();
            // Head connectors: every region vertex reaches every out-target.
            if !out_targets[r].is_empty() {
                for &v in &region.vertices {
                    if v.idx() >= n {
                        continue;
                    }
                    space.dijkstra_to_many(net, v, &out_targets[r], |e| {
                        e.cost(CostType::TravelTime)
                    });
                    for &t in &out_targets[r] {
                        if t != v {
                            heads.push(((v, t), space.path_to(t)));
                        }
                    }
                }
            }
            // Tail / next-hop connectors: every entry anchor reaches every
            // region vertex.
            for &a in &entry_anchors[r] {
                if a.idx() >= n {
                    continue;
                }
                space.dijkstra_to_many(net, a, &region.vertices, |e| e.cost(CostType::TravelTime));
                for &t in &region.vertices {
                    if t != a {
                        tails.push(((a, t), space.path_to(t)));
                    }
                }
            }
            (heads, tails)
        });

    let mut connectors: HashMap<(VertexId, VertexId), Option<Path>> = HashMap::new();
    for (heads, tails) in per_region {
        for (key, path) in heads {
            connectors.insert(key, path);
        }
        for (key, path) in tails {
            connectors.entry(key).or_insert(path);
        }
    }
    connectors
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apply::apply_preferences_to_b_edges;
    use crate::router::route;
    use l2r_datagen::{
        generate_network, generate_workload, SyntheticNetworkConfig, WorkloadConfig,
    };
    use l2r_region_graph::{bottom_up_clustering, TrajectoryGraph};

    fn build() -> (RoadNetwork, RegionGraph) {
        let syn = generate_network(&SyntheticNetworkConfig::tiny());
        let wl = generate_workload(&syn, &WorkloadConfig::tiny(250));
        let tg = TrajectoryGraph::build(&syn.net, &wl.trajectories);
        let clusters = bottom_up_clustering(&tg);
        let mut rg = RegionGraph::build(&syn.net, &clusters, &wl.trajectories, 2);
        apply_preferences_to_b_edges(&syn.net, &mut rg, &std::collections::HashMap::new(), 2);
        (syn.net.clone(), rg)
    }

    #[test]
    fn engine_route_matches_free_route_on_a_vertex_grid() {
        let (net, rg) = build();
        let engine = Engine::from_graphs(&net, &rg);
        let mut scratch = QueryScratch::new();
        let n = net.num_vertices() as u32;
        let mut compared = 0usize;
        for i in (0..n).step_by(5) {
            for j in (1..n).step_by(11) {
                let (s, d) = (VertexId(i), VertexId(j));
                let free = route(&net, &rg, s, d);
                let fast = engine.route(&mut scratch, s, d);
                assert_eq!(free, fast, "query {s:?} -> {d:?}");
                compared += 1;
            }
        }
        assert!(compared > 50, "the sweep should cover many pairs");
    }

    #[test]
    fn route_many_matches_serial_routing() {
        let (net, rg) = build();
        let engine = Engine::from_graphs(&net, &rg);
        let n = net.num_vertices() as u32;
        let queries: Vec<(VertexId, VertexId)> = (0..n)
            .step_by(3)
            .map(|i| (VertexId(i), VertexId((i * 7 + 13) % n)))
            .collect();
        let batch = engine.route_many(&queries);
        let mut scratch = QueryScratch::new();
        for (q, b) in queries.iter().zip(&batch) {
            assert_eq!(&engine.route(&mut scratch, q.0, q.1), b);
        }
    }

    #[test]
    fn same_vertex_query_is_trivial() {
        let (net, rg) = build();
        let engine = Engine::from_graphs(&net, &rg);
        let mut scratch = QueryScratch::new();
        let r = engine
            .route(&mut scratch, VertexId(0), VertexId(0))
            .unwrap();
        assert!(r.path.is_trivial());
        assert_eq!(r.strategy, RouteStrategy::FastestFallback);
    }

    #[test]
    fn out_of_range_endpoints_are_rejected_like_the_free_router() {
        let (net, rg) = build();
        let engine = Engine::from_graphs(&net, &rg);
        let mut scratch = QueryScratch::new();
        let big = VertexId(net.num_vertices() as u32 + 17);
        assert_eq!(
            engine.route(&mut scratch, VertexId(0), big),
            route(&net, &rg, VertexId(0), big)
        );
        assert_eq!(
            engine.route(&mut scratch, big, VertexId(0)),
            route(&net, &rg, big, VertexId(0))
        );
    }

    #[test]
    fn cached_connectors_match_live_fastest_paths() {
        let (net, rg) = build();
        let engine = Engine::from_graphs(&net, &rg);
        assert!(engine.num_connectors() > 0);
        for ((from, to), cached) in engine.connectors.iter().take(500) {
            let live = l2r_road_network::fastest_path(&net, *from, *to);
            assert_eq!(cached, &live, "connector {from:?} -> {to:?}");
        }
    }

    #[test]
    fn oriented_paths_cover_both_directions_of_t_edges() {
        let (net, rg) = build();
        let engine = Engine::from_graphs(&net, &rg);
        // Every edge with attached paths resolves at least one orientation.
        for e in rg.edges() {
            if e.has_paths() {
                let o = &engine.oriented[e.id.idx()];
                assert!(
                    o.forward.is_some() || o.backward.is_some(),
                    "edge {:?} has paths but no oriented resolution",
                    e.id
                );
                if let Some(p) = &o.forward {
                    assert_eq!(rg.region_of(p.source()), Some(e.a));
                    assert_eq!(rg.region_of(p.destination()), Some(e.b));
                    assert!(p.validate(&net).is_ok());
                }
                if let Some(p) = &o.backward {
                    assert_eq!(rg.region_of(p.source()), Some(e.b));
                    assert_eq!(rg.region_of(p.destination()), Some(e.a));
                    assert!(p.validate(&net).is_ok());
                }
            }
        }
    }

    #[test]
    fn shared_model_handle_keeps_the_model_alive_and_identical() {
        let (net, rg) = build();
        let engine = Engine::from_graphs(&net, &rg);
        let handle = engine.shared_model();
        assert_eq!(
            handle.network().num_vertices(),
            engine.network().num_vertices()
        );
        // A second engine compiled off the shared handle answers identically.
        let twin = Engine::from_shared(handle);
        let mut s1 = QueryScratch::new();
        let mut s2 = QueryScratch::new();
        let n = net.num_vertices() as u32;
        for i in (0..n).step_by(9) {
            let (s, d) = (VertexId(i), VertexId((i * 5 + 3) % n));
            assert_eq!(engine.route(&mut s1, s, d), twin.route(&mut s2, s, d));
        }
    }
}
