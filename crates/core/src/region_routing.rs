//! Path finding on the region graph (Section VI, Case 1).
//!
//! The paper's routing on the region graph prefers region paths with few
//! region edges and always moves towards regions that are geometrically close
//! to the destination: a direct region edge is used when it exists; otherwise
//! neighbouring regions closer to the destination are explored first.  We
//! realise this as a best-first search whose priority is the Euclidean
//! distance between a region's centroid and the destination region's
//! centroid, with the number of hops as a tie breaker.
//!
//! The search state lives in a reusable [`RegionSearchSpace`] mirroring
//! `l2r_road_network::SearchSpace`: generation-stamped `visited`/`parent`
//! arrays invalidated in O(1) per search, so the serving path performs no
//! per-query allocation for region-level routing.  The free
//! [`find_region_path`] function is a thread-local-reuse wrapper, exactly
//! like the free Dijkstra functions of `l2r_road_network`.

use std::cell::RefCell;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

use l2r_region_graph::{RegionEdgeId, RegionGraph, RegionId};

/// An entry of the best-first frontier.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Frontier {
    /// Euclidean distance from this region to the destination region.
    distance_to_dest: f64,
    /// Number of region edges used so far.
    hops: usize,
    region: RegionId,
}

impl Eq for Frontier {}

impl Ord for Frontier {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on (distance, hops).
        other
            .distance_to_dest
            .total_cmp(&self.distance_to_dest)
            .then_with(|| other.hops.cmp(&self.hops))
            .then_with(|| other.region.0.cmp(&self.region.0))
    }
}

impl PartialOrd for Frontier {
    // l2r: allow(float-total-cmp) — trait-mandated shim; delegates to the
    // total_cmp-based Ord above, so no NaN-unsafe comparison happens here.
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A path on the region graph: the region sequence and the region edges
/// connecting consecutive regions.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RegionPath {
    /// Visited regions from source to destination (inclusive).
    pub regions: Vec<RegionId>,
    /// The region edges between consecutive regions (`regions.len() - 1`
    /// entries).
    pub edges: Vec<RegionEdgeId>,
}

impl RegionPath {
    /// Number of region edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True when source and destination are the same region.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Clears both sequences, retaining capacity (scratch reuse).
    pub fn clear(&mut self) {
        self.regions.clear();
        self.edges.clear();
    }
}

/// Sentinel for "no parent recorded".
const NO_PARENT: u32 = u32::MAX;

/// Reusable best-first search state for the region graph, mirroring
/// `l2r_road_network::SearchSpace`: a slot of `visited`/`parent` is only
/// meaningful when its generation stamp matches the current generation, so
/// starting a new search is a counter increment instead of an O(|V_R|)
/// clear.  One instance per thread; the serving path keeps one inside its
/// per-query scratch.
#[derive(Debug, Clone, Default)]
pub struct RegionSearchSpace {
    generation: u32,
    /// Stamp marking visited regions.
    visited: Vec<u32>,
    /// Parent region (by index) and connecting edge; valid iff the matching
    /// `parent_stamp` slot equals the current generation.
    parent: Vec<(u32, RegionEdgeId)>,
    parent_stamp: Vec<u32>,
    heap: BinaryHeap<Frontier>,
}

thread_local! {
    /// Shared per-thread space backing the free [`find_region_path`].
    static THREAD_REGION_SPACE: RefCell<RegionSearchSpace> =
        RefCell::new(RegionSearchSpace::new());
}

impl RegionSearchSpace {
    /// Creates an empty space; arrays grow on first use.
    pub fn new() -> RegionSearchSpace {
        RegionSearchSpace::default()
    }

    /// The current search generation (incremented once per search); exposed
    /// so scratch-reuse tests can assert every region search went through
    /// this space.
    pub fn generation(&self) -> u32 {
        self.generation
    }

    /// Starts a new search generation sized for `n` regions.
    fn begin(&mut self, n: usize) {
        if self.visited.len() < n {
            self.visited.resize(n, 0);
            self.parent.resize(n, (NO_PARENT, RegionEdgeId(0)));
            self.parent_stamp.resize(n, 0);
        }
        if self.generation == u32::MAX {
            self.visited.fill(0);
            self.parent_stamp.fill(0);
            self.generation = 0;
        }
        self.generation += 1;
        self.heap.clear();
    }

    /// Finds a region path from `source` to `destination`, writing it into
    /// `out` (cleared first).  Returns `false` — leaving `out` empty — when
    /// the two regions are not connected in the region graph.
    ///
    /// The result is identical to the historical allocating implementation:
    /// same frontier ordering, same tie-breaks, same reconstruction.
    pub fn find_region_path_into(
        &mut self,
        rg: &RegionGraph,
        source: RegionId,
        destination: RegionId,
        out: &mut RegionPath,
    ) -> bool {
        out.clear();
        if source == destination {
            out.regions.push(source);
            return true;
        }
        // Direct edge: always preferred (Section VI).
        if let Some(e) = rg.edge_between(source, destination) {
            out.regions.push(source);
            out.regions.push(destination);
            out.edges.push(e);
            return true;
        }

        let n = rg.num_regions();
        self.begin(n);
        let generation = self.generation;
        self.visited[source.idx()] = generation;
        self.heap.push(Frontier {
            distance_to_dest: rg.region_distance_m(source, destination),
            hops: 0,
            region: source,
        });

        while let Some(Frontier { hops, region, .. }) = self.heap.pop() {
            if region == destination {
                break;
            }
            // If a direct edge to the destination exists, take it immediately.
            if let Some(e) = rg.edge_between(region, destination) {
                if self.visited[destination.idx()] != generation {
                    self.visited[destination.idx()] = generation;
                    self.parent[destination.idx()] = (region.0, e);
                    self.parent_stamp[destination.idx()] = generation;
                    break;
                }
            }
            for eid in rg.adjacent_edges(region) {
                let next = rg.edge(*eid).other(region);
                if self.visited[next.idx()] == generation {
                    continue;
                }
                self.visited[next.idx()] = generation;
                self.parent[next.idx()] = (region.0, *eid);
                self.parent_stamp[next.idx()] = generation;
                self.heap.push(Frontier {
                    distance_to_dest: rg.region_distance_m(next, destination),
                    hops: hops + 1,
                    region: next,
                });
            }
        }

        if self.visited[destination.idx()] != generation {
            return false;
        }
        // Reconstruct backwards, then reverse in place.
        out.regions.push(destination);
        let mut cur = destination;
        while self.parent_stamp[cur.idx()] == generation {
            let (prev, e) = self.parent[cur.idx()];
            let prev = RegionId(prev);
            out.edges.push(e);
            out.regions.push(prev);
            cur = prev;
        }
        out.regions.reverse();
        out.edges.reverse();
        debug_assert_eq!(out.regions[0], source);
        true
    }
}

/// Finds a region path from `source` to `destination`.
///
/// Returns `None` when the two regions are not connected in the region graph
/// (cannot happen after the BFS connectivity pass unless the road network
/// itself is disconnected).
///
/// This is a thread-local-reuse wrapper over
/// [`RegionSearchSpace::find_region_path_into`]; hot loops should hold their
/// own space (and output buffer) instead.
pub fn find_region_path(
    rg: &RegionGraph,
    source: RegionId,
    destination: RegionId,
) -> Option<RegionPath> {
    THREAD_REGION_SPACE.with(|cell| {
        let mut out = RegionPath::default();
        let found = match cell.try_borrow_mut() {
            Ok(mut space) => space.find_region_path_into(rg, source, destination, &mut out),
            Err(_) => {
                RegionSearchSpace::new().find_region_path_into(rg, source, destination, &mut out)
            }
        };
        found.then_some(out)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use l2r_datagen::{
        generate_network, generate_workload, SyntheticNetworkConfig, WorkloadConfig,
    };
    use l2r_region_graph::{bottom_up_clustering, TrajectoryGraph};

    fn build() -> RegionGraph {
        let syn = generate_network(&SyntheticNetworkConfig::tiny());
        let wl = generate_workload(&syn, &WorkloadConfig::tiny(250));
        let tg = TrajectoryGraph::build(&syn.net, &wl.trajectories);
        let clusters = bottom_up_clustering(&tg);
        RegionGraph::build(&syn.net, &clusters, &wl.trajectories, 2)
    }

    #[test]
    fn same_region_is_a_trivial_region_path() {
        let rg = build();
        let r = rg.regions()[0].id;
        let p = find_region_path(&rg, r, r).unwrap();
        assert!(p.is_empty());
        assert_eq!(p.regions, vec![r]);
    }

    #[test]
    fn direct_edge_is_used_when_present() {
        let rg = build();
        let e = &rg.edges()[0];
        let p = find_region_path(&rg, e.a, e.b).unwrap();
        assert_eq!(p.len(), 1);
        assert_eq!(p.edges[0], e.id);
    }

    #[test]
    fn all_region_pairs_are_reachable_in_a_connected_region_graph() {
        let rg = build();
        assert!(rg.is_connected());
        let regions = rg.regions();
        let a = regions.first().unwrap().id;
        for r in regions.iter().skip(1).take(20) {
            let p = find_region_path(&rg, a, r.id).expect("connected region graph");
            assert_eq!(*p.regions.first().unwrap(), a);
            assert_eq!(*p.regions.last().unwrap(), r.id);
            assert_eq!(p.regions.len(), p.edges.len() + 1);
            // Consecutive regions are joined by the reported edges.
            for (i, e) in p.edges.iter().enumerate() {
                let edge = rg.edge(*e);
                let (x, y) = (p.regions[i], p.regions[i + 1]);
                assert!(
                    (edge.a == x && edge.b == y) || (edge.a == y && edge.b == x),
                    "edge endpoints must match the region sequence"
                );
            }
        }
    }

    #[test]
    fn region_path_has_no_repeated_regions() {
        let rg = build();
        let regions = rg.regions();
        let a = regions.first().unwrap().id;
        let b = regions.last().unwrap().id;
        let p = find_region_path(&rg, a, b).unwrap();
        let unique: std::collections::HashSet<_> = p.regions.iter().collect();
        assert_eq!(unique.len(), p.regions.len());
    }

    #[test]
    fn reused_space_reproduces_fresh_results() {
        let rg = build();
        let regions = rg.regions();
        let mut space = RegionSearchSpace::new();
        let mut out = RegionPath::default();
        let g0 = space.generation();
        let mut searched = 0u32;
        for a in regions.iter().take(6) {
            for b in regions.iter().rev().take(6) {
                let mut fresh_out = RegionPath::default();
                let fresh =
                    RegionSearchSpace::new().find_region_path_into(&rg, a.id, b.id, &mut fresh_out);
                let trivial = a.id == b.id || rg.edge_between(a.id, b.id).is_some();
                if !trivial {
                    searched += 1;
                }
                assert_eq!(
                    space.find_region_path_into(&rg, a.id, b.id, &mut out),
                    fresh
                );
                assert_eq!(out, fresh_out, "{:?} -> {:?}", a.id, b.id);
            }
        }
        // Non-trivial queries each consumed exactly one generation of the
        // reused space (trivial/direct-edge answers never start a search).
        assert_eq!(space.generation() - g0, searched);
    }
}
