//! Path finding on the region graph (Section VI, Case 1).
//!
//! The paper's routing on the region graph prefers region paths with few
//! region edges and always moves towards regions that are geometrically close
//! to the destination: a direct region edge is used when it exists; otherwise
//! neighbouring regions closer to the destination are explored first.  We
//! realise this as a best-first search whose priority is the Euclidean
//! distance between a region's centroid and the destination region's
//! centroid, with the number of hops as a tie breaker.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use l2r_region_graph::{RegionEdgeId, RegionGraph, RegionId};

/// An entry of the best-first frontier.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Frontier {
    /// Euclidean distance from this region to the destination region.
    distance_to_dest: f64,
    /// Number of region edges used so far.
    hops: usize,
    region: RegionId,
}

impl Eq for Frontier {}

impl Ord for Frontier {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on (distance, hops).
        other
            .distance_to_dest
            .partial_cmp(&self.distance_to_dest)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.hops.cmp(&self.hops))
            .then_with(|| other.region.0.cmp(&self.region.0))
    }
}

impl PartialOrd for Frontier {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A path on the region graph: the region sequence and the region edges
/// connecting consecutive regions.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionPath {
    /// Visited regions from source to destination (inclusive).
    pub regions: Vec<RegionId>,
    /// The region edges between consecutive regions (`regions.len() - 1`
    /// entries).
    pub edges: Vec<RegionEdgeId>,
}

impl RegionPath {
    /// Number of region edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True when source and destination are the same region.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }
}

/// Finds a region path from `source` to `destination`.
///
/// Returns `None` when the two regions are not connected in the region graph
/// (cannot happen after the BFS connectivity pass unless the road network
/// itself is disconnected).
pub fn find_region_path(
    rg: &RegionGraph,
    source: RegionId,
    destination: RegionId,
) -> Option<RegionPath> {
    if source == destination {
        return Some(RegionPath {
            regions: vec![source],
            edges: Vec::new(),
        });
    }
    // Direct edge: always preferred (Section VI).
    if let Some(e) = rg.edge_between(source, destination) {
        return Some(RegionPath {
            regions: vec![source, destination],
            edges: vec![e],
        });
    }

    let n = rg.num_regions();
    let mut visited = vec![false; n];
    let mut parent: Vec<Option<(RegionId, RegionEdgeId)>> = vec![None; n];
    let mut heap = BinaryHeap::new();
    visited[source.idx()] = true;
    heap.push(Frontier {
        distance_to_dest: rg.region_distance_m(source, destination),
        hops: 0,
        region: source,
    });

    while let Some(Frontier { hops, region, .. }) = heap.pop() {
        if region == destination {
            break;
        }
        // If a direct edge to the destination exists, take it immediately.
        if let Some(e) = rg.edge_between(region, destination) {
            if !visited[destination.idx()] {
                visited[destination.idx()] = true;
                parent[destination.idx()] = Some((region, e));
                break;
            }
        }
        for eid in rg.adjacent_edges(region) {
            let next = rg.edge(*eid).other(region);
            if visited[next.idx()] {
                continue;
            }
            visited[next.idx()] = true;
            parent[next.idx()] = Some((region, *eid));
            heap.push(Frontier {
                distance_to_dest: rg.region_distance_m(next, destination),
                hops: hops + 1,
                region: next,
            });
        }
    }

    if !visited[destination.idx()] {
        return None;
    }
    // Reconstruct.
    let mut regions = vec![destination];
    let mut edges = Vec::new();
    let mut cur = destination;
    while let Some((prev, e)) = parent[cur.idx()] {
        edges.push(e);
        regions.push(prev);
        cur = prev;
    }
    regions.reverse();
    edges.reverse();
    debug_assert_eq!(regions[0], source);
    Some(RegionPath { regions, edges })
}

#[cfg(test)]
mod tests {
    use super::*;
    use l2r_datagen::{
        generate_network, generate_workload, SyntheticNetworkConfig, WorkloadConfig,
    };
    use l2r_region_graph::{bottom_up_clustering, TrajectoryGraph};

    fn build() -> RegionGraph {
        let syn = generate_network(&SyntheticNetworkConfig::tiny());
        let wl = generate_workload(&syn, &WorkloadConfig::tiny(250));
        let tg = TrajectoryGraph::build(&syn.net, &wl.trajectories);
        let clusters = bottom_up_clustering(&tg);
        RegionGraph::build(&syn.net, &clusters, &wl.trajectories, 2)
    }

    #[test]
    fn same_region_is_a_trivial_region_path() {
        let rg = build();
        let r = rg.regions()[0].id;
        let p = find_region_path(&rg, r, r).unwrap();
        assert!(p.is_empty());
        assert_eq!(p.regions, vec![r]);
    }

    #[test]
    fn direct_edge_is_used_when_present() {
        let rg = build();
        let e = &rg.edges()[0];
        let p = find_region_path(&rg, e.a, e.b).unwrap();
        assert_eq!(p.len(), 1);
        assert_eq!(p.edges[0], e.id);
    }

    #[test]
    fn all_region_pairs_are_reachable_in_a_connected_region_graph() {
        let rg = build();
        assert!(rg.is_connected());
        let regions = rg.regions();
        let a = regions.first().unwrap().id;
        for r in regions.iter().skip(1).take(20) {
            let p = find_region_path(&rg, a, r.id).expect("connected region graph");
            assert_eq!(*p.regions.first().unwrap(), a);
            assert_eq!(*p.regions.last().unwrap(), r.id);
            assert_eq!(p.regions.len(), p.edges.len() + 1);
            // Consecutive regions are joined by the reported edges.
            for (i, e) in p.edges.iter().enumerate() {
                let edge = rg.edge(*e);
                let (x, y) = (p.regions[i], p.regions[i + 1]);
                assert!(
                    (edge.a == x && edge.b == y) || (edge.a == y && edge.b == x),
                    "edge endpoints must match the region sequence"
                );
            }
        }
    }

    #[test]
    fn region_path_has_no_repeated_regions() {
        let rg = build();
        let regions = rg.regions();
        let a = regions.first().unwrap().id;
        let b = regions.last().unwrap().id;
        let p = find_region_path(&rg, a, b).unwrap();
        let unique: std::collections::HashSet<_> = p.regions.iter().collect();
        assert_eq!(unique.len(), p.regions.len());
    }
}
